"""Tests for the generic AST infrastructure in repro.tree."""

import pytest

from repro.miniml import parse_expr, parse_program, pretty_expr
from repro.miniml.ast_nodes import EApp, EBinop, EConst, EVar
from repro.tree import (
    ancestor_paths,
    copy_tree,
    find_path,
    get_at,
    node_depth,
    node_size,
    replace_at,
    structurally_equal,
    walk,
)


@pytest.fixture
def app():
    return parse_expr("f (g 1) (h 2 3)")


class TestChildDiscovery:
    def test_children_of_application(self, app):
        kids = app.children()
        assert isinstance(app, EApp)
        assert len(kids) == 3  # func + two args

    def test_child_items_steps(self, app):
        steps = [step for step, _ in app.child_items()]
        assert steps[0] == "func"
        assert steps[1] == ("args", 0)
        assert steps[2] == ("args", 1)

    def test_leaf_has_no_children(self):
        assert parse_expr("42").children() == []


class TestWalkAndPaths:
    def test_walk_yields_root_first(self, app):
        paths = list(walk(app))
        assert paths[0][0] == ()
        assert paths[0][1] is app

    def test_walk_counts_all_nodes(self):
        e = parse_expr("1 + 2")
        # EBinop, EConst, EConst
        assert node_size(e) == 3

    def test_get_at_roundtrip(self, app):
        for path, node in walk(app):
            assert get_at(app, path) is node

    def test_find_path_identity(self, app):
        target = app.children()[2]
        assert find_path(app, target) == (("args", 1),)

    def test_find_path_missing(self, app):
        other = parse_expr("42")
        assert find_path(app, other) is None

    def test_ancestor_paths_order(self):
        path = (("args", 0), "func", ("items", 2))
        ancestors = list(ancestor_paths(path))
        assert ancestors == [(("args", 0), "func"), (("args", 0),), ()]


class TestReplaceAt:
    def test_replace_root(self, app):
        new = EConst(1, "int")
        assert replace_at(app, (), new) is new

    def test_replace_is_functional(self, app):
        new = EVar("replaced")
        result = replace_at(app, (("args", 0),), new)
        assert result is not app
        assert get_at(result, (("args", 0),)) is new
        # original untouched
        assert isinstance(get_at(app, (("args", 0),)), EApp)

    def test_replace_shares_off_path_subtrees(self, app):
        new = EVar("replaced")
        result = replace_at(app, (("args", 0),), new)
        assert get_at(result, (("args", 1),)) is get_at(app, (("args", 1),))

    def test_replace_deep(self):
        e = parse_expr("f (g (h 1))")
        path = (("args", 0), ("args", 0), ("args", 0))
        result = replace_at(e, path, EConst(9, "int"))
        assert pretty_expr(result) == "f (g (h 9))"

    def test_replace_direct_field(self):
        e = parse_expr("1 + 2")
        result = replace_at(e, ("left",), EConst(7, "int"))
        assert pretty_expr(result) == "7 + 2"


class TestStructuralEquality:
    def test_equal_reparse(self):
        a = parse_expr("fun x -> x + 1")
        b = parse_expr("fun x -> x + 1")
        assert structurally_equal(a, b)

    def test_spans_ignored(self):
        a = parse_expr("  1 +   2")
        b = parse_expr("1 + 2")
        assert structurally_equal(a, b)

    def test_different_shapes(self):
        assert not structurally_equal(parse_expr("1 + 2"), parse_expr("1 - 2"))
        assert not structurally_equal(parse_expr("1"), parse_expr("x"))

    def test_program_equality(self):
        a = parse_program("let x = 1\nlet y = x + 1")
        b = parse_program("let x = 1\nlet y = x + 1")
        assert structurally_equal(a, b)


class TestCopyTree:
    def test_copy_is_equal_but_not_identical(self, app):
        dup = copy_tree(app)
        assert dup is not app
        assert structurally_equal(dup, app)

    def test_copy_of_leaf(self):
        leaf = parse_expr("42")
        dup = copy_tree(leaf)
        assert dup is not leaf
        assert structurally_equal(dup, leaf)


class TestMetrics:
    def test_depth_of_leaf(self):
        assert node_depth(parse_expr("1")) == 1

    def test_depth_nested(self):
        assert node_depth(parse_expr("f (g (h 1))")) == 4
