"""Tests for ground-truth message grading."""

import random

import pytest

from repro.core import explain
from repro.corpus.grading import (
    Grade,
    grade_checker,
    grade_seminal,
    grade_suggestion,
)
from repro.corpus.mutations import apply_mutation
from repro.corpus.seeds import ASSIGNMENTS
from repro.miniml import parse_program, typecheck_program

HW1 = parse_program(ASSIGNMENTS["hw1"])


def mutate(family, seed=3, program=HW1):
    for s in range(seed, seed + 30):
        result = apply_mutation(program, "hw1", family, random.Random(s))
        if result is not None:
            return result
    raise AssertionError(f"could not apply {family}")


class TestGradeScore:
    def test_scores(self):
        assert Grade(True, True).score == 2
        assert Grade(True, False).score == 1
        assert Grade(False, False).score == 0
        assert Grade(False, True).score == 0  # accuracy needs location


class TestCheckerGrading:
    def test_wrong_literal_is_transparent(self):
        mutated = mutate("wrong-literal")
        error = typecheck_program(mutated.program).error
        grade = grade_checker(mutated, error)
        # A mismatch message at the bad literal fully explains the fault.
        assert grade.score == 2

    def test_unbound_name_is_transparent(self):
        mutated = mutate("unbound-name")
        error = typecheck_program(mutated.program).error
        assert grade_checker(mutated, error).score == 2

    def test_swap_args_not_accurate(self):
        # Fig. 8: the checker's message is at a fine location but does not
        # describe argument order.
        mutated = mutate("swap-args")
        error = typecheck_program(mutated.program).error
        grade = grade_checker(mutated, error)
        assert not grade.accurate


class TestSeminalGrading:
    def test_exact_inverse_scores_two(self):
        mutated = mutate("swap-args")
        result = explain(mutated.program)
        grade = grade_seminal(mutated, result)
        assert grade.score == 2

    def test_fixing_rule_credit(self):
        mutated = mutate("list-commas")
        result = explain(mutated.program)
        best = result.best
        assert best is not None
        grade = grade_suggestion(mutated, best)
        assert grade.score == 2

    def test_no_suggestion_scores_zero(self):
        mutated = mutate("wrong-literal")
        empty = explain(mutated.program, max_oracle_calls=2)
        grade = grade_seminal(mutated, empty)
        assert grade.score == 0

    def test_forgot_rec_graded(self):
        mutated = mutate("forgot-rec")
        result = explain(mutated.program)
        assert grade_seminal(mutated, result).score == 2

    def test_unbound_detection_credited(self):
        mutated = mutate("unbound-name")
        result = explain(mutated.program)
        grade = grade_seminal(mutated, result)
        assert grade.location


class TestLocationSlack:
    def test_whole_program_blame_not_a_good_location(self):
        from repro.core.changes import Change, Suggestion, KIND_REMOVE
        from repro.core.enumerator import wildcard_expr

        mutated = mutate("wrong-literal")
        # A fake suggestion blaming the whole first declaration.
        decl = mutated.program.decls[0]
        sugg = Suggestion(
            change=Change(
                path=((("decls", 0),)),
                original=decl,
                replacement=wildcard_expr(),
                kind=KIND_REMOVE,
                description="",
            ),
            program=mutated.program,
        )
        # Either the fault is inside decl 0 (unlikely to be within slack for
        # a 1-node literal) or the location is plainly wrong.
        grade = grade_suggestion(mutated, sugg)
        assert grade.score <= 1
