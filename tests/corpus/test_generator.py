"""Tests for corpus generation and programmer profiles."""

import random

import pytest

from repro.corpus.generator import Corpus, generate_corpus
from repro.corpus.profiles import Profile, default_profiles
from repro.miniml import typecheck_program


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(scale=0.3, seed=123)


class TestProfiles:
    def test_default_cohort_size(self):
        assert len(default_profiles()) == 10  # the paper's 10 participants

    def test_profiles_deterministic(self):
        a = default_profiles(seed=5)
        b = default_profiles(seed=5)
        assert [p.recompile_p for p in a] == [p.recompile_p for p in b]

    def test_learning_reduces_problem_count(self):
        profile = default_profiles()[0]
        rng = random.Random(0)
        early = sum(profile.problems_for_assignment(0, rng) for _ in range(50))
        late = sum(profile.problems_for_assignment(4, rng) for _ in range(50))
        assert late < early

    def test_class_sizes_geometric(self):
        profile = default_profiles()[0]
        rng = random.Random(0)
        sizes = [profile.class_size(rng) for _ in range(300)]
        assert min(sizes) == 1
        assert max(sizes) > 2  # a real tail exists

    def test_pick_families_count(self):
        profile = default_profiles()[0]
        rng = random.Random(0)
        for _ in range(20):
            families = profile.pick_families(rng)
            assert 1 <= len(families) <= 3


class TestGeneratedCorpus:
    def test_every_file_ill_typed(self, corpus):
        for f in corpus.representatives:
            assert not typecheck_program(f.program).ok

    def test_representatives_are_class_firsts(self, corpus):
        for f in corpus.files:
            assert f.is_representative == (f.sequence_index == 0)

    def test_class_members_share_problem(self, corpus):
        by_class = {}
        for f in corpus.files:
            by_class.setdefault(f.class_id, []).append(f)
        for members in by_class.values():
            programs = {id(m.mutated) for m in members}
            assert len(programs) == 1  # same MutatedProgram object

    def test_quotienting_reduces_file_count(self, corpus):
        assert len(corpus.representatives) < len(corpus.files)

    def test_class_sizes_sum_to_file_count(self, corpus):
        assert sum(corpus.class_sizes) == len(corpus.files)

    def test_all_programmers_and_assignments_present(self):
        full = generate_corpus(scale=1.0, seed=9)
        assert len(full.by_programmer()) == 10
        assert len(full.by_assignment()) == 5

    def test_timestamps_increase(self, corpus):
        stamps = [f.timestamp for f in corpus.files]
        assert stamps == sorted(stamps)

    def test_deterministic_for_seed(self):
        a = generate_corpus(scale=0.2, seed=4)
        b = generate_corpus(scale=0.2, seed=4)
        assert len(a.files) == len(b.files)
        assert [f.class_id for f in a.files] == [f.class_id for f in b.files]

    def test_scale_controls_size(self):
        small = generate_corpus(scale=0.2, seed=4)
        large = generate_corpus(scale=1.0, seed=4)
        assert len(large.files) > len(small.files)

    def test_multi_error_files_exist(self):
        full = generate_corpus(scale=1.0, seed=9)
        multi = [f for f in full.representatives if f.mutated.is_multi_error]
        assert multi, "study needs multi-error files to exercise triage"
