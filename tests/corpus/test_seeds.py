"""Tests for the homework seed programs."""

import pytest

from repro.corpus.seeds import ASSIGNMENTS, assignment_names, assignment_source
from repro.miniml import parse_program, typecheck_source
from repro.tree import node_size


class TestSeeds:
    def test_five_assignments(self):
        # The paper's study covers 5 homework assignments.
        assert len(ASSIGNMENTS) == 5

    @pytest.mark.parametrize("name", list(ASSIGNMENTS))
    def test_seed_typechecks(self, name):
        result = typecheck_source(ASSIGNMENTS[name])
        assert result.ok, result.error.render() if result.error else ""

    @pytest.mark.parametrize("name", list(ASSIGNMENTS))
    def test_seed_is_substantial(self, name):
        """Seeds must be big enough for interesting search (not toys)."""
        program = parse_program(ASSIGNMENTS[name])
        assert len(program.decls) >= 6
        assert node_size(program) >= 120

    def test_assignment_names_ordered(self):
        assert assignment_names() == ["hw1", "hw2", "hw3", "hw4", "hw5"]

    def test_assignment_source_lookup(self):
        assert "map2" in assignment_source("hw1")

    def test_genres_cover_paper_domains(self):
        # hw3 is the Logo-like mover domain of the paper's Figure 9.
        assert "move" in assignment_source("hw3")
        assert "tree" in assignment_source("hw5")
        assert "mutable" in assignment_source("hw4")
