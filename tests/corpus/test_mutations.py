"""Tests for the student-error injectors."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.mutations import (
    FIXING_RULES,
    MUTATORS,
    apply_mutation,
    apply_mutations,
    family_names,
)
from repro.corpus.seeds import ASSIGNMENTS
from repro.miniml import parse_program, typecheck_program
from repro.tree import get_at, structurally_equal


HW1 = parse_program(ASSIGNMENTS["hw1"])
HW2 = parse_program(ASSIGNMENTS["hw2"])
HW4 = parse_program(ASSIGNMENTS["hw4"])


class TestSingleMutations:
    @pytest.mark.parametrize("family", family_names())
    def test_mutation_produces_ill_typed_program(self, family):
        rng = random.Random(3)
        applied = False
        for seed in [HW1, HW2, HW4]:
            result = apply_mutation(seed, "seed", family, rng)
            if result is None:
                continue
            applied = True
            assert not typecheck_program(result.program).ok
        assert applied, f"{family} applied to no seed"

    def test_ground_truth_original_matches_seed(self):
        rng = random.Random(5)
        result = apply_mutation(HW1, "hw1", "swap-args", rng)
        assert result is not None
        mutation = result.mutations[0]
        pristine = get_at(HW1, mutation.path)
        assert structurally_equal(pristine, mutation.original)

    def test_mutated_node_installed(self):
        rng = random.Random(5)
        result = apply_mutation(HW1, "hw1", "swap-args", rng)
        installed = get_at(result.program, result.mutations[0].path)
        assert structurally_equal(installed, result.mutations[0].mutated)

    def test_original_program_untouched(self):
        rng = random.Random(5)
        before = typecheck_program(HW1).ok
        apply_mutation(HW1, "hw1", "missing-arg", rng)
        assert typecheck_program(HW1).ok == before is True

    def test_avoid_paths_respected(self):
        rng = random.Random(5)
        first = apply_mutation(HW1, "hw1", "swap-args", rng)
        second = apply_mutation(
            first.program, "hw1", "swap-args", rng, avoid_paths=[first.mutations[0].path]
        )
        if second is not None:
            assert second.mutations[0].path != first.mutations[0].path

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            apply_mutation(HW1, "hw1", "not-a-family", random.Random(0))


class TestMultiMutations:
    def test_multi_error_program(self):
        rng = random.Random(11)
        result = apply_mutations(HW2, "hw2", ["wrong-literal", "unbound-name"], rng)
        assert result is not None
        assert len(result.mutations) >= 1
        assert not typecheck_program(result.program).ok

    def test_multi_errors_prefer_same_declaration(self):
        hits = 0
        trials = 12
        for i in range(trials):
            rng = random.Random(100 + i)
            result = apply_mutations(
                HW2, "hw2", ["wrong-literal", "operator-confusion"], rng
            )
            if result is None or len(result.mutations) < 2:
                continue
            decls = {m.path[0] for m in result.mutations if m.path}
            if len(decls) == 1:
                hits += 1
        assert hits >= trials // 3  # strong same-decl bias

    def test_is_multi_error_flag(self):
        rng = random.Random(11)
        result = apply_mutations(HW2, "hw2", ["wrong-literal", "unbound-name"], rng)
        assert result.is_multi_error == (len(result.mutations) > 1)

    def test_families_property(self):
        rng = random.Random(11)
        result = apply_mutations(HW2, "hw2", ["wrong-literal"], rng)
        assert result.families == [m.family for m in result.mutations]


class TestFixingRules:
    def test_every_family_has_entry(self):
        for family in family_names():
            assert family in FIXING_RULES

    def test_fixing_rules_reference_real_rules(self):
        from repro.core.enumerator import MiniMLEnumerator
        import repro.core.enumerator as enum_mod
        import inspect

        source = inspect.getsource(enum_mod)
        for family, rules in FIXING_RULES.items():
            for rule in rules:
                assert f'"{rule}"' in source, f"{rule} not in enumerator"


class TestMutationDeterminism:
    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_seeded_rng_is_deterministic(self, seed):
        a = apply_mutation(HW1, "hw1", "swap-args", random.Random(seed))
        b = apply_mutation(HW1, "hw1", "swap-args", random.Random(seed))
        if a is None:
            assert b is None
        else:
            assert a.mutations[0].path == b.mutations[0].path

    @given(st.sampled_from(family_names()), st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_mutations_always_ill_typed(self, family, seed):
        result = apply_mutation(HW1, "hw1", family, random.Random(seed))
        if result is not None:
            assert not typecheck_program(result.program).ok
