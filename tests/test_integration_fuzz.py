"""Corpus-driven fuzzing: system-level invariants over random mutations.

These tests exercise the full pipeline (seed -> mutation -> search ->
ranking -> rendering -> quick fix) on randomly generated ill-typed programs
and check invariants that must hold for *every* input:

* the searcher never crashes and never claims an ill-typed program is fine;
* every non-triaged suggestion's program type-checks (the oracle is the
  gatekeeper — a suggestion that does not check would be a search bug);
* every triaged suggestion's reduced program type-checks;
* rendering never raises and always mentions the changed code;
* quick-fix application yields parseable source.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import apply_suggestion, explain
from repro.core.messages import render_suggestion
from repro.corpus.mutations import apply_mutation, apply_mutations, family_names
from repro.corpus.seeds import ASSIGNMENTS
from repro.miniml import parse_program, typecheck_program
from repro.miniml.parser import parse_program as reparse

_SEEDS = {name: parse_program(src) for name, src in ASSIGNMENTS.items()}

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_mutant(seed_name, family, rng_seed):
    program = _SEEDS[seed_name]
    return apply_mutation(program, seed_name, family, random.Random(rng_seed))


@st.composite
def mutants(draw):
    seed_name = draw(st.sampled_from(list(_SEEDS)))
    family = draw(st.sampled_from(family_names()))
    rng_seed = draw(st.integers(0, 10_000))
    return _random_mutant(seed_name, family, rng_seed)


@st.composite
def multi_mutants(draw):
    seed_name = draw(st.sampled_from(list(_SEEDS)))
    families = draw(st.lists(st.sampled_from(family_names()), min_size=2, max_size=3))
    rng_seed = draw(st.integers(0, 10_000))
    return apply_mutations(
        _SEEDS[seed_name], seed_name, families, random.Random(rng_seed)
    )


class TestSearchInvariants:
    @given(mutants())
    @_settings
    def test_search_never_crashes_and_stays_sound(self, mutant):
        if mutant is None:
            return
        result = explain(mutant.program, max_oracle_calls=4000)
        assert not result.ok  # the program is ill-typed by construction

    @given(mutants())
    @_settings
    def test_every_suggestion_program_typechecks(self, mutant):
        if mutant is None:
            return
        result = explain(mutant.program, max_oracle_calls=4000)
        for suggestion in result.suggestions:
            check = typecheck_program(suggestion.program)
            assert check.ok, (
                f"suggestion {suggestion.change.rule or suggestion.kind} "
                f"produced an ill-typed program"
            )

    @given(multi_mutants())
    @_settings
    def test_multi_error_invariants(self, mutant):
        if mutant is None:
            return
        result = explain(mutant.program, max_oracle_calls=6000)
        assert not result.ok
        for suggestion in result.suggestions:
            assert typecheck_program(suggestion.program).ok

    @given(mutants())
    @_settings
    def test_rendering_total(self, mutant):
        if mutant is None:
            return
        result = explain(mutant.program, max_oracle_calls=4000)
        for suggestion in result.suggestions[:3]:
            text = render_suggestion(suggestion)
            assert isinstance(text, str) and text

    @given(mutants())
    @_settings
    def test_ranking_deterministic(self, mutant):
        if mutant is None:
            return
        a = explain(mutant.program, max_oracle_calls=4000)
        b = explain(mutant.program, max_oracle_calls=4000)
        a_rules = [(s.kind, s.change.rule, s.triaged) for s in a.suggestions]
        b_rules = [(s.kind, s.change.rule, s.triaged) for s in b.suggestions]
        assert a_rules == b_rules


class TestQuickFixInvariants:
    @given(mutants())
    @_settings
    def test_applying_best_yields_parseable_source(self, mutant):
        if mutant is None:
            return
        from repro.miniml.pretty import pretty_program

        source = pretty_program(mutant.program)
        # Re-parse so suggestion spans refer to this exact text.
        result = explain(source, max_oracle_calls=4000)
        if result.best is None:
            return
        fix = apply_suggestion(source, result.best)
        reparse(fix.source)  # must not raise

    @given(mutants())
    @_settings
    def test_applying_nontriaged_best_typechecks(self, mutant):
        if mutant is None:
            return
        from repro.miniml.pretty import pretty_program

        source = pretty_program(mutant.program)
        result = explain(source, max_oracle_calls=4000)
        best = next(
            (s for s in result.suggestions if not s.triaged and s.kind != "adapt"),
            None,
        )
        if best is None:
            return
        fix = apply_suggestion(source, best)
        assert typecheck_program(reparse(fix.source)).ok
