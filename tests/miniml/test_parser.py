"""Tests for the MiniML parser: shapes, precedence, declarations, errors."""

import pytest

from repro.miniml import parse_expr, parse_program
from repro.miniml.ast_nodes import (
    Binding,
    DException,
    DExpr,
    DLet,
    DType,
    EApp,
    EBinop,
    ECons,
    EConst,
    EConstructor,
    EFieldGet,
    EFieldSet,
    EFun,
    EFunction,
    EIf,
    EList,
    ELet,
    EMatch,
    ERaise,
    ERecord,
    ESeq,
    ETuple,
    EUnop,
    EVar,
    PCons,
    PConst,
    PConstructor,
    PList,
    PTuple,
    PVar,
    PWild,
)
from repro.miniml.parser import ParseError


class TestAtoms:
    def test_int(self):
        e = parse_expr("42")
        assert isinstance(e, EConst) and e.kind == "int" and e.value == 42

    def test_negative_int_folds(self):
        e = parse_expr("-3")
        assert isinstance(e, EConst) and e.value == -3

    def test_unit(self):
        e = parse_expr("()")
        assert isinstance(e, EConst) and e.kind == "unit"

    def test_bools(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False

    def test_string(self):
        e = parse_expr('"hi"')
        assert e.kind == "string" and e.value == "hi"

    def test_var(self):
        assert isinstance(parse_expr("foo"), EVar)

    def test_qualified_var(self):
        e = parse_expr("List.map")
        assert isinstance(e, EVar) and e.name == "List.map"

    def test_parenthesized(self):
        e = parse_expr("((42))")
        assert isinstance(e, EConst)

    def test_begin_end(self):
        e = parse_expr("begin 1 + 2 end")
        assert isinstance(e, EBinop)


class TestApplication:
    def test_flat_nary_application(self):
        e = parse_expr("f a b c")
        assert isinstance(e, EApp)
        assert isinstance(e.func, EVar)
        assert len(e.args) == 3

    def test_nested_application_parens(self):
        e = parse_expr("f (g a) b")
        assert isinstance(e.args[0], EApp)

    def test_application_binds_tighter_than_plus(self):
        e = parse_expr("f x + 1")
        assert isinstance(e, EBinop) and e.op == "+"
        assert isinstance(e.left, EApp)

    def test_constructor_application(self):
        e = parse_expr("Some 1")
        assert isinstance(e, EConstructor) and e.name == "Some"
        assert isinstance(e.arg, EConst)

    def test_constructor_with_tuple_arg(self):
        e = parse_expr("For (1, lst)")
        assert isinstance(e, EConstructor)
        assert isinstance(e.arg, ETuple)

    def test_nullary_constructor(self):
        e = parse_expr("None")
        assert isinstance(e, EConstructor) and e.arg is None


class TestOperatorPrecedence:
    def test_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_add_left_assoc(self):
        e = parse_expr("1 - 2 - 3")
        assert e.op == "-" and isinstance(e.left, EBinop)

    def test_comparison_looser_than_add(self):
        e = parse_expr("a + 1 = b")
        assert e.op == "="

    def test_cons_right_assoc(self):
        e = parse_expr("1 :: 2 :: []")
        assert isinstance(e, ECons) and isinstance(e.tail, ECons)

    def test_cons_tighter_than_comma(self):
        e = parse_expr("1, 2 :: []")
        assert isinstance(e, ETuple)
        assert isinstance(e.items[1], ECons)

    def test_and_tighter_than_or(self):
        e = parse_expr("a || b && c")
        assert e.op == "||" and e.right.op == "&&"

    def test_assign_low_precedence(self):
        e = parse_expr("r := 1 + 2")
        assert e.op == ":=" and isinstance(e.right, EBinop)

    def test_tuple_loosest(self):
        e = parse_expr("1 + 2, 3")
        assert isinstance(e, ETuple)

    def test_seq_looser_than_tuple(self):
        e = parse_expr("f x; g y")
        assert isinstance(e, ESeq)

    def test_deref(self):
        e = parse_expr("!r + 1")
        assert e.op == "+" and isinstance(e.left, EUnop)

    def test_unary_minus_on_var(self):
        e = parse_expr("- x")
        assert isinstance(e, EUnop) and e.op == "-"

    def test_string_concat_right(self):
        e = parse_expr('"a" ^ "b" ^ "c"')
        assert e.op == "^" and isinstance(e.right, EBinop)

    def test_mod_keyword_operator(self):
        e = parse_expr("a mod 2")
        assert isinstance(e, EBinop) and e.op == "mod"


class TestDataLiterals:
    def test_list_semicolons(self):
        e = parse_expr("[1; 2; 3]")
        assert isinstance(e, EList) and len(e.items) == 3

    def test_list_of_one_tuple_pitfall(self):
        # The paper's parsing pitfall: [1,2,3] is a 1-element list of a tuple.
        e = parse_expr("[1, 2, 3]")
        assert isinstance(e, EList) and len(e.items) == 1
        assert isinstance(e.items[0], ETuple)

    def test_empty_list(self):
        assert parse_expr("[]").items == []

    def test_trailing_semicolon_in_list(self):
        e = parse_expr("[1; 2;]")
        assert len(e.items) == 2

    def test_record_literal(self):
        e = parse_expr("{x = 1; y = 2}")
        assert isinstance(e, ERecord)
        assert [f.name for f in e.fields] == ["x", "y"]

    def test_field_get(self):
        e = parse_expr("p.x")
        assert isinstance(e, EFieldGet) and e.field_name == "x"

    def test_field_set(self):
        e = parse_expr("p.x <- 3")
        assert isinstance(e, EFieldSet)

    def test_field_set_requires_field(self):
        with pytest.raises(ParseError):
            parse_expr("x <- 3")


class TestControl:
    def test_if_then_else(self):
        e = parse_expr("if a then b else c")
        assert isinstance(e, EIf) and e.else_branch is not None

    def test_if_without_else(self):
        e = parse_expr("if a then b")
        assert e.else_branch is None

    def test_fun_multi_params(self):
        e = parse_expr("fun x y -> x + y")
        assert isinstance(e, EFun) and len(e.params) == 2

    def test_fun_tuple_param(self):
        e = parse_expr("fun (x, y) -> x + y")
        assert len(e.params) == 1
        assert isinstance(e.params[0], PTuple)

    def test_function_cases(self):
        e = parse_expr("function [] -> 0 | x :: _ -> x")
        assert isinstance(e, EFunction) and len(e.cases) == 2

    def test_match(self):
        e = parse_expr("match x with 0 -> a | _ -> b")
        assert isinstance(e, EMatch) and len(e.cases) == 2

    def test_match_leading_bar(self):
        e = parse_expr("match x with | 0 -> a | _ -> b")
        assert len(e.cases) == 2

    def test_let_in(self):
        e = parse_expr("let x = 1 in x + 1")
        assert isinstance(e, ELet) and not e.rec

    def test_let_rec_in(self):
        e = parse_expr("let rec f x = f x in f")
        assert e.rec

    def test_let_and(self):
        e = parse_expr("let x = 1 and y = 2 in x + y")
        assert len(e.bindings) == 2

    def test_let_function_sugar(self):
        e = parse_expr("let f x y = x + y in f")
        binding = e.bindings[0]
        assert isinstance(binding, Binding)
        assert binding.fun_name == "f"
        assert isinstance(binding.expr, EFun)
        assert len(binding.expr.params) == 2

    def test_raise(self):
        e = parse_expr("raise Foo")
        assert isinstance(e, ERaise)

    def test_guards_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("match x with n when n > 0 -> 1 | _ -> 0")


class TestPatterns:
    def parse_pattern(self, src):
        e = parse_expr(f"match x with {src} -> 0")
        return e.cases[0].pattern

    def test_wildcard(self):
        assert isinstance(self.parse_pattern("_"), PWild)

    def test_var(self):
        assert isinstance(self.parse_pattern("v"), PVar)

    def test_tuple_no_parens(self):
        p = self.parse_pattern("a, b")
        assert isinstance(p, PTuple)

    def test_cons(self):
        p = self.parse_pattern("h :: t")
        assert isinstance(p, PCons)

    def test_cons_right_assoc(self):
        p = self.parse_pattern("a :: b :: t")
        assert isinstance(p.tail, PCons)

    def test_list_pattern(self):
        p = self.parse_pattern("[1; 2]")
        assert isinstance(p, PList) and len(p.items) == 2

    def test_constructor_pattern(self):
        p = self.parse_pattern("Some v")
        assert isinstance(p, PConstructor) and isinstance(p.arg, PVar)

    def test_constructor_tuple_pattern(self):
        p = self.parse_pattern("For (n, lst)")
        assert isinstance(p.arg, PTuple)

    def test_constructor_cons_pattern(self):
        # Fig. 9 shape: For (moves, lst) :: tl
        p = self.parse_pattern("For (moves, lst) :: tl")
        assert isinstance(p, PCons)
        assert isinstance(p.head, PConstructor)

    def test_negative_literal_pattern(self):
        p = self.parse_pattern("-1")
        assert isinstance(p, PConst) and p.value == -1


class TestDeclarations:
    def test_top_level_lets(self):
        prog = parse_program("let x = 1\nlet y = 2")
        assert len(prog.decls) == 2
        assert all(isinstance(d, DLet) for d in prog.decls)

    def test_double_semicolon_separators(self):
        prog = parse_program("let x = 1;;\nlet y = 2;;")
        assert len(prog.decls) == 2

    def test_variant_type_decl(self):
        prog = parse_program("type move = For of int * (move list) | Stop")
        decl = prog.decls[0]
        assert isinstance(decl, DType)
        assert [v.name for v in decl.variants] == ["For", "Stop"]
        assert decl.variants[1].arg is None

    def test_parameterized_type(self):
        prog = parse_program("type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree")
        assert prog.decls[0].params == ["a"]

    def test_two_param_type(self):
        prog = parse_program("type ('a, 'b) pair = Pair of 'a * 'b")
        assert prog.decls[0].params == ["a", "b"]

    def test_record_type_decl(self):
        prog = parse_program("type point = {x : int; mutable y : int}")
        decl = prog.decls[0]
        assert [f.name for f in decl.record_fields] == ["x", "y"]
        assert decl.record_fields[1].mutable

    def test_exception_decl(self):
        prog = parse_program("exception Bad of string")
        assert isinstance(prog.decls[0], DException)

    def test_top_level_expr(self):
        prog = parse_program("print_string \"hi\"")
        assert isinstance(prog.decls[0], DExpr)

    def test_top_level_let_in_is_expr(self):
        prog = parse_program("let x = 1 in x + 1")
        assert isinstance(prog.decls[0], DExpr)

    def test_let_tuple_pattern(self):
        prog = parse_program("let (a, b) = (1, 2)")
        assert isinstance(prog.decls[0].bindings[0].pattern, PTuple)


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "let = 3",
            "fun -> x",
            "match x with",
            "if then 1 else 2",
            "f (",
            "[1; 2",
            "type t =",
            "let (x + 1) = 2",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_program(bad)

    def test_trailing_garbage_in_expr(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 )")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc_info:
            parse_program("let x = in 3")
        assert exc_info.value.token.span.start_line == 1


class TestSpans:
    def test_expression_span_covers_text(self):
        prog = parse_program("let x = 1 + 2")
        rhs = prog.decls[0].bindings[0].expr
        assert rhs.span.start_line == 1
        src = "let x = 1 + 2"
        assert src[rhs.span.start_offset : rhs.span.end_offset] == "1 + 2"

    def test_nested_spans_nest(self):
        prog = parse_program("let y = f (a + b) c")
        rhs = prog.decls[0].bindings[0].expr
        inner = rhs.args[0]
        assert rhs.span.covers(inner.span)
