"""Tests for the pretty-printer, including parse/print round-trip properties.

Round-tripping matters because SEMINAL's error messages quote rewritten
programs in concrete syntax: a suggestion that prints with the wrong
precedence would describe a different program than the one that type-checked.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.miniml import parse_expr, parse_program
from repro.miniml.ast_nodes import (
    EApp,
    EBinop,
    EConst,
    ECons,
    EConstructor,
    EFun,
    EIf,
    EList,
    ETuple,
    EVar,
    PVar,
)
from repro.miniml.pretty import (
    WILDCARD_TEXT,
    pretty_decl,
    pretty_expr,
    pretty_pattern,
    pretty_program,
)
from repro.tree import mark_synthetic, structurally_equal


def roundtrip(src: str) -> str:
    return pretty_expr(parse_expr(src))


class TestExpressionPrinting:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("1 + 2 * 3", "1 + 2 * 3"),
            ("(1 + 2) * 3", "(1 + 2) * 3"),
            ("f a b", "f a b"),
            ("f (g a)", "f (g a)"),
            ("f (a + 1)", "f (a + 1)"),
            ("fun x y -> x + y", "fun x y -> x + y"),
            ("fun (x, y) -> x + y", "fun (x, y) -> x + y"),
            ("[1; 2; 3]", "[1; 2; 3]"),
            ("[1, 2, 3]", "[1, 2, 3]"),
            ("(1, 2)", "1, 2"),
            ("f (1, 2)", "f (1, 2)"),
            ("1 :: 2 :: []", "1 :: 2 :: []"),
            ("if a then b else c", "if a then b else c"),
            ('"hi\\n"', '"hi\\n"'),
            ("let x = 1 in x", "let x = 1 in x"),
            ("let f x = x in f", "let f x = x in f"),
            ("match x with 0 -> a | _ -> b", "match x with 0 -> a | _ -> b"),
            ("r := !r + 1", "r := !r + 1"),
            ("a; b; c", "a; b; c"),
            ("raise Foo", "raise Foo"),
            ("Some (1, 2)", "Some (1, 2)"),
            ("p.x <- 3", "p.x <- 3"),
            ("{x = 1; y = 2}", "{x = 1; y = 2}"),
            ("f a.fld", "f a.fld"),
            ("1 - (2 - 3)", "1 - (2 - 3)"),
            ("a = b && c = d", "a = b && c = d"),
            ("(a && b) = c", "(a && b) = c"),
            ("- x", "-x"),
            ("function [] -> 0 | _ -> 1", "function [] -> 0 | _ -> 1"),
        ],
    )
    def test_expected_rendering(self, src, expected):
        assert roundtrip(src) == expected

    def test_negative_literal(self):
        assert pretty_expr(EConst(-3, "int")) == "-3"

    def test_negative_literal_in_application(self):
        e = EApp(EVar("f"), [EConst(-3, "int")])
        assert pretty_expr(e) == "f (-3)"

    def test_float_keeps_point(self):
        assert pretty_expr(EConst(2.0, "float")) == "2.0"


class TestWildcardAndAdapt:
    def test_synthetic_prints_as_hole(self):
        e = parse_expr("raise Foo")
        mark_synthetic(e)
        assert pretty_expr(e) == WILDCARD_TEXT

    def test_hole_inside_context(self):
        e = parse_expr("f (raise Foo) y")
        mark_synthetic(e.args[0])
        assert pretty_expr(e) == f"f {WILDCARD_TEXT} y"

    def test_adapt_application_prints_argument(self):
        e = parse_expr("__seminal_adapt (f x)")
        assert pretty_expr(e) == "f x"


class TestDeclarationPrinting:
    @pytest.mark.parametrize(
        "src",
        [
            "let x = 1",
            "let rec f x = f x",
            "let f x y = x + y",
            "let (a, b) = (1, 2)",
            "type move = For of int * move list | Stop",
            "type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree",
            "type point = {x : int; mutable y : int}",
            "exception Bad of string",
            "let x = 1 and y = 2",
        ],
    )
    def test_decl_roundtrip(self, src):
        prog = parse_program(src)
        printed = pretty_program(prog)
        reparsed = parse_program(printed)
        assert structurally_equal(prog, reparsed), printed

    def test_program_multiple_decls(self):
        src = "let x = 1\nlet y = x + 1\nlet z = y * 2"
        printed = pretty_program(parse_program(src))
        assert printed.count("\n") == 3


# ---------------------------------------------------------------------------
# Property: pretty-printing then re-parsing yields the same tree.
# ---------------------------------------------------------------------------

_idents = st.sampled_from(["x", "y", "z", "f", "g", "lst", "acc"])


@st.composite
def exprs(draw, depth=0):
    if depth >= 4:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return EConst(draw(st.integers(0, 99)), "int")
        if choice == 1:
            return EVar(draw(_idents))
        return EConst(draw(st.booleans()), "bool")
    choice = draw(st.integers(0, 9))
    sub = lambda: draw(exprs(depth=depth + 1))  # noqa: E731
    if choice == 0:
        return EConst(draw(st.integers(0, 99)), "int")
    if choice == 1:
        return EVar(draw(_idents))
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "=", "<", "&&", "||", "^", "@"]))
        return EBinop(op, sub(), sub())
    if choice == 3:
        n = draw(st.integers(1, 3))
        return EApp(EVar(draw(_idents)), [sub() for _ in range(n)])
    if choice == 4:
        n = draw(st.integers(0, 3))
        return EList([sub() for _ in range(n)])
    if choice == 5:
        n = draw(st.integers(2, 3))
        return ETuple([sub() for _ in range(n)])
    if choice == 6:
        return EIf(sub(), sub(), sub())
    if choice == 7:
        params = [PVar(draw(_idents))]
        return EFun(params, sub())
    if choice == 8:
        return ECons(sub(), sub())
    return EConstructor("Some", sub())


class TestRoundTripProperty:
    @given(exprs())
    @settings(max_examples=300, deadline=None)
    def test_print_parse_roundtrip(self, e):
        printed = pretty_expr(e)
        reparsed = parse_expr(printed)
        assert structurally_equal(e, reparsed), printed

    @given(exprs())
    @settings(max_examples=100, deadline=None)
    def test_printing_total(self, e):
        assert isinstance(pretty_expr(e), str)
