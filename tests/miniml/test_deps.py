"""Per-declaration def/use extraction (`repro.miniml.deps`).

The dependency engine's soundness rests entirely on these summaries being
*over*-approximations of what a declaration can observe: a missed use means
a stale replay, a missed def means a missed shadow cut.  So the tests pin
the exact sets for every declaration form and every shadowing shape.
"""

from repro.miniml import parse_program
from repro.miniml.deps import (
    NS_CTOR,
    NS_FIELD,
    NS_TYPE,
    NS_VALUE,
    decl_use_def,
    pattern_names,
    program_use_defs,
)


def _decl(src: str, index: int = 0):
    return parse_program(src).decls[index]


class TestValueDecls:
    def test_simple_let_defines_its_name(self):
        ud = decl_use_def(_decl("let x = 1"))
        assert ud.defs == {(NS_VALUE, "x")}
        assert ud.uses == frozenset()

    def test_free_variable_is_a_use(self):
        ud = decl_use_def(_decl("let y = x + 1"))
        assert (NS_VALUE, "x") in ud.uses
        assert ud.defs == {(NS_VALUE, "y")}

    def test_fun_params_shadow(self):
        ud = decl_use_def(_decl("let f x = x + y"))
        assert (NS_VALUE, "x") not in ud.uses
        assert (NS_VALUE, "y") in ud.uses

    def test_let_rec_own_name_is_not_a_use(self):
        ud = decl_use_def(_decl("let rec loop n = loop (n - 1)"))
        assert (NS_VALUE, "loop") not in ud.uses
        assert ud.defs == {(NS_VALUE, "loop")}

    def test_non_rec_let_same_name_is_a_use(self):
        # `let x = x + 1` at top level *uses* the previous x.
        ud = decl_use_def(_decl("let x = x + 1"))
        assert (NS_VALUE, "x") in ud.uses
        assert (NS_VALUE, "x") in ud.defs

    def test_inner_let_shadows_in_body_only(self):
        ud = decl_use_def(_decl("let a = let b = c in b + d"))
        assert (NS_VALUE, "b") not in ud.uses
        assert (NS_VALUE, "c") in ud.uses
        assert (NS_VALUE, "d") in ud.uses

    def test_inner_let_rec_shadows_its_own_expr(self):
        ud = decl_use_def(_decl("let a = let rec f n = f n in f 1"))
        assert (NS_VALUE, "f") not in ud.uses

    def test_match_case_patterns_shadow(self):
        ud = decl_use_def(
            _decl("let f v = match v with (a, b) -> a + b + c")
        )
        assert (NS_VALUE, "a") not in ud.uses
        assert (NS_VALUE, "b") not in ud.uses
        assert (NS_VALUE, "c") in ud.uses

    def test_operators_are_not_uses(self):
        # Operator schemes are unshadowable (OPERATOR_SCHEMES), so they
        # can never carry a dependency edge.
        ud = decl_use_def(_decl("let n = 1 + 2 * 3"))
        assert ud.uses == frozenset()

    def test_tuple_pattern_defines_all_names(self):
        ud = decl_use_def(_decl("let (p, q) = (1, 2)"))
        assert ud.defs == {(NS_VALUE, "p"), (NS_VALUE, "q")}

    def test_constructor_use_in_expr_and_pattern(self):
        ud = decl_use_def(
            _decl(
                "type t = A | B of int\n"
                "let f v = match v with B n -> n | A -> 0",
                index=1,
            )
        )
        assert (NS_CTOR, "A") in ud.uses
        assert (NS_CTOR, "B") in ud.uses

    def test_annotation_types_are_uses(self):
        ud = decl_use_def(_decl("type t = T\nlet f x = (x : t)", index=1))
        assert (NS_TYPE, "t") in ud.uses


class TestTypeAndExceptionDecls:
    def test_variant_type_defs(self):
        ud = decl_use_def(_decl("type color = Red | Green | Blue"))
        assert (NS_TYPE, "color") in ud.defs
        assert (NS_CTOR, "Red") in ud.defs
        assert (NS_CTOR, "Blue") in ud.defs

    def test_variant_arg_types_are_uses(self):
        ud = decl_use_def(
            _decl("type t = Wrap of int list", index=0)
        )
        assert (NS_TYPE, "list") in ud.uses
        assert (NS_TYPE, "int") in ud.uses

    def test_recursive_type_reference_is_not_a_use(self):
        ud = decl_use_def(_decl("type tree = Leaf | Node of tree * tree"))
        assert (NS_TYPE, "tree") not in ud.uses

    def test_record_type_defines_fields(self):
        ud = decl_use_def(_decl("type point = { x : int; y : int }"))
        assert (NS_FIELD, "x") in ud.defs
        assert (NS_FIELD, "y") in ud.defs
        assert (NS_TYPE, "point") in ud.defs

    def test_record_expr_and_access_use_fields(self):
        ud = decl_use_def(
            _decl(
                "type point = { x : int; y : int }\n"
                "let norm p = p.x + { x = 1; y = 2 }.y",
                index=1,
            )
        )
        assert (NS_FIELD, "x") in ud.uses
        assert (NS_FIELD, "y") in ud.uses

    def test_exception_defs_ctor_and_uses_arg_type(self):
        ud = decl_use_def(_decl("exception Boom of string"))
        assert ud.defs == {(NS_CTOR, "Boom")}
        assert (NS_TYPE, "string") in ud.uses


class TestProgramLevel:
    def test_program_use_defs_in_order(self):
        uds = program_use_defs(
            parse_program("let a = 1\nlet b = a\nlet a = b")
        )
        assert [ud.defs for ud in uds] == [
            frozenset({(NS_VALUE, "a")}),
            frozenset({(NS_VALUE, "b")}),
            frozenset({(NS_VALUE, "a")}),
        ]
        assert (NS_VALUE, "a") in uds[1].uses
        assert (NS_VALUE, "b") in uds[2].uses

    def test_pattern_names_in_binding_order(self):
        decl = _decl("let (a, (b, c)) = (1, (2, 3))")
        assert pattern_names(decl.bindings[0].pattern) == ["a", "b", "c"]
