"""Deep-nesting stress: every layer rejects gracefully, never RecursionError.

The parser, the structural keyers, and inference are all recursive; a
pathological program (or a pathological *candidate* the enumerator built)
must come back as a typed, catchable rejection — ``ParseError``,
``TreeTooDeep``, or an ill-typed ``CheckResult`` — because a raw
``RecursionError`` from any of them would kill the whole search.
"""

import sys

import pytest

from repro.miniml.ast_nodes import DExpr, EApp, EVar, Program
from repro.miniml.errors import NestingTooDeepError
from repro.miniml.infer import typecheck_program
from repro.miniml.parser import ParseError, parse_program
from repro.tree import (
    DepthProbe,
    StructuralKeyer,
    TreeTooDeep,
    node_depth,
    structural_key,
)

#: Deep enough that naive recursion over it trips the interpreter limit.
PATHOLOGICAL = sys.getrecursionlimit() * 2


def deep_app_chain(depth: int) -> Program:
    """``f x x ... x`` nested ``depth`` applications deep, built iteratively."""
    expr = EVar("f")
    for _ in range(depth):
        expr = EApp(expr, [EVar("x")])
    return Program([DExpr(expr)])


class TestParser:
    def test_deep_parens_raise_parse_error(self):
        source = "let x = " + "(" * PATHOLOGICAL + "1" + ")" * PATHOLOGICAL
        with pytest.raises(ParseError) as excinfo:
            parse_program(source)
        assert "nested too deeply" in str(excinfo.value)

    def test_reasonable_nesting_still_parses(self):
        # The expression grammar's descent chain costs ~20 frames per
        # nesting level, so human-plausible depths sit well inside the
        # interpreter limit while 2x the limit is far beyond it.
        source = "let x = " + "(" * 30 + "1" + ")" * 30
        program = parse_program(source)
        assert len(program.decls) == 1


class TestTreeKeying:
    def test_structural_key_raises_tree_too_deep(self):
        with pytest.raises(TreeTooDeep):
            structural_key(deep_app_chain(PATHOLOGICAL))

    def test_structural_keyer_raises_tree_too_deep(self):
        with pytest.raises(TreeTooDeep):
            StructuralKeyer()(deep_app_chain(PATHOLOGICAL))

    def test_tree_too_deep_is_catchable_as_runtime_error(self):
        # Callers that guard broadly must still catch it (it is the
        # conversion of a RecursionError, not a RecursionError itself).
        assert issubclass(TreeTooDeep, RuntimeError)
        assert not issubclass(TreeTooDeep, RecursionError)

    def test_shallow_keys_unaffected(self):
        program = deep_app_chain(20)
        assert structural_key(program) == StructuralKeyer()(program)


class TestNodeDepth:
    def test_node_depth_is_iterative(self):
        # Would raise RecursionError if implemented by naive recursion.
        assert node_depth(deep_app_chain(PATHOLOGICAL)) > PATHOLOGICAL

    def test_node_depth_small_values(self):
        assert node_depth(EVar("x")) == 1
        # Program -> DExpr -> EApp -> EVar
        assert node_depth(deep_app_chain(1)) == 4


class TestDepthProbe:
    def test_probe_handles_pathological_depth(self):
        probe = DepthProbe()
        assert probe.exceeds(deep_app_chain(PATHOLOGICAL), 100)

    def test_probe_agrees_with_node_depth(self):
        probe = DepthProbe()
        for depth in (1, 5, 50):
            program = deep_app_chain(depth)
            assert probe.depth(program) == node_depth(program)

    def test_probe_memoizes_shared_subtrees(self):
        probe = DepthProbe()
        program = deep_app_chain(PATHOLOGICAL)
        first = probe.depth(program)
        # Rewrapping reuses the whole chain: only the new spine is walked,
        # so this completes instantly despite the pathological depth.
        rewrapped = Program([DExpr(EApp(program.decls[0].expr, [EVar("y")]))])
        assert probe.depth(rewrapped) == first + 1

    def test_clear_resets_memo(self):
        probe = DepthProbe()
        program = deep_app_chain(10)
        probe.depth(program)
        probe.clear()
        assert probe.depth(program) == node_depth(program)


class TestInference:
    def test_deep_program_rejected_not_crashed(self):
        result = typecheck_program(deep_app_chain(PATHOLOGICAL))
        assert result.ok is False
        assert isinstance(result.error, NestingTooDeepError)

    def test_nesting_error_renders(self):
        message = NestingTooDeepError().render()
        assert "nested too deeply" in message

    def test_deep_source_end_to_end(self):
        # Through the oracle: the depth pre-check rejects before inference
        # ever sees the tree (no call consumed, no recursion risked).
        from repro.core import Oracle

        oracle = Oracle()
        result = oracle.check(deep_app_chain(PATHOLOGICAL))
        assert result.ok is False
        assert oracle.depth_rejections == 1
        assert oracle.calls == 0
