"""Tests for semantic types, schemes, and unification."""

import pytest
from hypothesis import given, strategies as st

from repro.miniml.types import (
    BOOL,
    INT,
    STRING,
    Scheme,
    TArrow,
    TCon,
    TTuple,
    TVar,
    arrows,
    free_type_vars,
    generalize,
    instantiate,
    monotype,
    resolve,
    t_list,
    t_ref,
    type_to_string,
    types_to_strings,
)
from repro.miniml.unify import UnifyError, occurs_in, unifiable, unify


class TestConstruction:
    def test_arrows_right_nested(self):
        t = arrows(INT, BOOL, STRING)
        assert isinstance(t, TArrow)
        assert t.param is INT
        assert isinstance(t.result, TArrow)

    def test_resolve_follows_links(self):
        a, b = TVar(0), TVar(0)
        a.link = b
        b.link = INT
        assert resolve(a) is INT


class TestUnify:
    def test_identical_constructors(self):
        unify(INT, TCon("int"))

    def test_var_binds(self):
        v = TVar(0)
        unify(v, INT)
        assert resolve(v) is INT

    def test_symmetric_var_binding(self):
        v = TVar(0)
        unify(STRING, v)
        assert resolve(v) is STRING

    def test_arrow_components(self):
        a, b = TVar(0), TVar(0)
        unify(TArrow(a, b), arrows(INT, BOOL))
        assert resolve(a) is INT
        assert resolve(b) is BOOL

    def test_mismatched_constructors(self):
        with pytest.raises(UnifyError):
            unify(INT, BOOL)

    def test_mismatched_shapes(self):
        with pytest.raises(UnifyError):
            unify(TArrow(INT, INT), INT)

    def test_tuple_arity_mismatch(self):
        with pytest.raises(UnifyError):
            unify(TTuple([INT, INT]), TTuple([INT, INT, INT]))

    def test_list_element_conflict_reports_outer_types(self):
        # OCaml reports "int list vs string list", not "int vs string".
        with pytest.raises(UnifyError) as exc_info:
            unify(t_list(INT), t_list(STRING))
        s1, s2 = types_to_strings([exc_info.value.t1, exc_info.value.t2])
        assert s1 == "int list"
        assert s2 == "string list"

    def test_occurs_check(self):
        v = TVar(0)
        with pytest.raises(UnifyError):
            unify(v, t_list(v))

    def test_occurs_in_positive(self):
        v = TVar(0)
        assert occurs_in(v, TArrow(INT, t_list(v)))

    def test_occurs_in_negative(self):
        v = TVar(0)
        assert not occurs_in(v, TArrow(INT, t_list(TVar(0))))

    def test_unifiable_helper(self):
        assert unifiable(TVar(0), INT)
        assert not unifiable(INT, BOOL)

    def test_level_adjustment(self):
        outer = TVar(1)
        inner = TVar(5)
        unify(outer, t_list(inner))
        assert inner.level == 1

    def test_failed_occurs_commits_no_level_adjustments(self):
        # Regression for the fused occurs+adjust traversal: the occurs
        # failure surfaces in the *second* child here, after the walk has
        # already seen the level-5 variable in the first.  An
        # adjust-as-you-go fusion would lower it before failing; the
        # collect-then-commit contract is that a failed unification leaves
        # every level untouched (``unifiable`` callers continue the pass,
        # and a half-lowered level changes later generalization).
        var = TVar(1)
        early = TVar(5)
        cyclic = TArrow(t_list(early), t_list(var))
        assert not unifiable(var, cyclic)
        assert early.level == 5
        assert var.link is None

    def test_successful_unify_still_adjusts_all_levels(self):
        var = TVar(1)
        first, second = TVar(5), TVar(7)
        unify(var, TArrow(t_list(first), second))
        assert first.level == 1
        assert second.level == 1


class TestGeneralization:
    def test_generalize_quantifies_deeper_levels(self):
        v = TVar(2)
        scheme = generalize(TArrow(v, v), level=1)
        assert scheme.vars == [v]

    def test_generalize_keeps_shallow_vars_free(self):
        v = TVar(1)
        scheme = generalize(TArrow(v, v), level=1)
        assert scheme.vars == []

    def test_instantiate_makes_fresh_vars(self):
        v = TVar(2)
        scheme = Scheme([v], TArrow(v, v))
        t1 = instantiate(scheme, level=0)
        t2 = instantiate(scheme, level=0)
        assert isinstance(t1, TArrow)
        assert resolve(t1.param) is not resolve(t2.param)
        # ... but within one instantiation the variable is shared
        assert resolve(t1.param) is resolve(t1.result)

    def test_instantiate_monotype_is_identity(self):
        t = arrows(INT, BOOL)
        assert instantiate(monotype(t), 0) is t

    def test_free_type_vars_order(self):
        a, b = TVar(0), TVar(0)
        fvs = free_type_vars(TTuple([b, a, b]))
        assert fvs == [b, a]


class TestPrinting:
    def test_base_types(self):
        assert type_to_string(INT) == "int"

    def test_list(self):
        assert type_to_string(t_list(INT)) == "int list"

    def test_nested_list(self):
        assert type_to_string(t_list(t_list(STRING))) == "string list list"

    def test_arrow(self):
        assert type_to_string(arrows(INT, INT, INT)) == "int -> int -> int"

    def test_arrow_param_parenthesized(self):
        assert type_to_string(TArrow(TArrow(INT, BOOL), INT)) == "(int -> bool) -> int"

    def test_tuple(self):
        assert type_to_string(TTuple([INT, STRING])) == "int * string"

    def test_tuple_in_list(self):
        assert type_to_string(t_list(TTuple([INT, BOOL]))) == "(int * bool) list"

    def test_vars_named_in_order(self):
        a, b = TVar(0), TVar(0)
        assert type_to_string(arrows(a, b, a)) == "'a -> 'b -> 'a"

    def test_ref(self):
        assert type_to_string(t_ref(INT)) == "int ref"

    def test_shared_printer_scope(self):
        a = TVar(0)
        s1, s2 = types_to_strings([a, t_list(a)])
        assert (s1, s2) == ("'a", "'a list")

    def test_multi_arg_constructor(self):
        assert type_to_string(TCon("hashtbl", [INT, STRING])) == "(int, string) hashtbl"


@st.composite
def ground_types(draw, depth=0):
    """Random variable-free types for property tests."""
    if depth >= 3:
        return draw(st.sampled_from([INT, BOOL, STRING]))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(st.sampled_from([INT, BOOL, STRING]))
    if kind == 1:
        return t_list(draw(ground_types(depth=depth + 1)))
    if kind == 2:
        return TArrow(
            draw(ground_types(depth=depth + 1)), draw(ground_types(depth=depth + 1))
        )
    if kind == 3:
        items = draw(st.lists(ground_types(depth=depth + 1), min_size=2, max_size=3))
        return TTuple(items)
    return t_ref(draw(ground_types(depth=depth + 1)))


class TestUnifyProperties:
    @given(ground_types())
    def test_reflexive(self, t):
        unify(t, t)  # must not raise

    @given(ground_types())
    def test_fresh_var_unifies_with_anything(self, t):
        v = TVar(0)
        unify(v, t)
        assert type_to_string(resolve(v)) == type_to_string(t)

    @given(ground_types(), ground_types())
    def test_symmetry_of_failure(self, t1, t2):
        assert unifiable(t1, t2) == unifiable(t2, t1)

    @given(ground_types())
    def test_printing_deterministic(self, t):
        assert type_to_string(t) == type_to_string(t)
