"""Tests for the pattern-match exhaustiveness/redundancy analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.seeds import ASSIGNMENTS
from repro.miniml.exhaustiveness import match_warnings_source


def kinds(src):
    return [w.kind for w in match_warnings_source(src)]


class TestExhaustive:
    @pytest.mark.parametrize(
        "src",
        [
            "let f x = match x with 0 -> 1 | _ -> 2",
            "let f x = match x with true -> 1 | false -> 0",
            "let f x = match x with [] -> 0 | h :: t -> h",
            "let f x = match x with [] -> 0 | [x] -> x | _ :: _ -> 1",
            "let f p = match p with (a, b) -> a + b",
            "let f x = match x with Some n -> n | None -> 0",
            "type t = A | B of int\nlet f v = match v with A -> 0 | B n -> n",
            "let f u = match u with () -> 1",
            "let f x = match x with n -> n",
            # nested completeness
            "let f x = match x with (true, _) -> 1 | (false, _) -> 0",
        ],
    )
    def test_no_warnings(self, src):
        assert kinds(src) == []


class TestNonExhaustive:
    @pytest.mark.parametrize(
        "src",
        [
            "let f x = match x with 0 -> 1 | 1 -> 2",
            'let f s = match s with "a" -> 1',
            "let f x = match x with true -> 1",
            "let f x = match x with [] -> 0",
            "let f x = match x with h :: t -> h",
            "let f x = match x with Some n -> n",
            "type t = A | B of int\nlet f v = match v with B n -> n",
            "let f x = match x with (0, _) -> 1",
            # nested: misses (false, false)
            "let f p = match p with (true, _) -> 1 | (_, true) -> 2",
        ],
    )
    def test_warns(self, src):
        assert "non-exhaustive" in kinds(src)


class TestUnused:
    @pytest.mark.parametrize(
        "src",
        [
            "let f x = match x with _ -> 1 | 0 -> 2",
            "let f x = match x with n -> n | 0 -> 2",
            "let f x = match x with 0 -> 1 | 0 -> 2 | _ -> 3",
            "let f x = match x with Some _ -> 1 | Some 3 -> 2 | None -> 0",
            "let f x = match x with [] -> 0 | h :: t -> h | [x] -> x",
            "let f x = match x with true -> 1 | false -> 0 | _ -> 2",
        ],
    )
    def test_warns(self, src):
        assert "unused-case" in kinds(src)

    def test_unused_points_at_the_case(self):
        warnings = match_warnings_source("let f x = match x with _ -> 1 | 0 -> 2")
        (w,) = warnings
        assert w.span is not None
        assert "unused" in w.render()


class TestTryHandlers:
    def test_try_not_required_exhaustive(self):
        assert kinds("let g x = try x with Not_found -> 0") == []

    def test_try_unused_arm_still_flagged(self):
        src = "let g x = try x with _ -> 0 | Not_found -> 1"
        assert "unused-case" in kinds(src)


class TestFunctionSugar:
    def test_function_checked(self):
        assert "non-exhaustive" in kinds("let f = function 0 -> 1")

    def test_function_complete(self):
        assert kinds("let f = function [] -> 0 | _ :: _ -> 1") == []


class TestSeeds:
    @pytest.mark.parametrize("name", list(ASSIGNMENTS))
    def test_seeds_warning_clean(self, name):
        """The homework seeds model good student code: no match warnings."""
        assert match_warnings_source(ASSIGNMENTS[name]) == []


class TestProperties:
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=5, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_literal_matches_never_exhaustive_without_wildcard(self, literals):
        arms = " | ".join(f"{n} -> {n}" for n in literals)
        src = f"let f x = match x with {arms}"
        assert "non-exhaustive" in kinds(src)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=5, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_adding_wildcard_restores_exhaustiveness(self, literals):
        arms = " | ".join(f"{n} -> {n}" for n in literals)
        src = f"let f x = match x with {arms} | _ -> 0"
        assert "non-exhaustive" not in kinds(src)

    @given(st.integers(0, 5), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_duplicate_literal_arm_is_unused(self, a, b):
        src = f"let f x = match x with {a} -> 1 | {b} -> 2 | _ -> 3"
        warnings = kinds(src)
        if a == b:
            assert "unused-case" in warnings
        else:
            assert warnings == []
