"""Coverage tests for the standard environment: every binding is usable
correctly and rejects a characteristic misuse."""

import pytest

from repro.miniml import typecheck_source
from repro.miniml.stdlib import OPERATOR_SCHEMES, default_env, operator_scheme
from repro.miniml.types import type_to_string


def ok(src):
    result = typecheck_source(src)
    assert result.ok, result.error.render() if result.error else ""


def bad(src):
    assert not typecheck_source(src).ok


class TestListModule:
    @pytest.mark.parametrize(
        "src",
        [
            "let x = List.length [1;2]",
            "let x = List.hd [1]",
            "let x = List.tl [1;2]",
            "let x = List.nth [1;2] 0",
            "let x = List.rev [true]",
            "let x = List.append [1] [2]",
            "let x = List.concat [[1]; [2]]",
            "let x = List.flatten [[1]; [2]]",
            "let x = List.map string_of_int [1]",
            "let x = List.mapi (fun i v -> i + v) [1]",
            "let x = List.iter print_int [1]",
            "let x = List.fold_left (+) 0 [1]" if False else "let x = List.fold_left (fun a b -> a + b) 0 [1]",
            "let x = List.fold_right (fun a b -> a + b) [1] 0",
            "let x = List.mem 1 [1]",
            "let x = List.filter (fun n -> n > 0) [1]",
            "let x = List.exists (fun n -> n > 0) [1]",
            "let x = List.for_all (fun n -> n > 0) [1]",
            "let x = List.find (fun n -> n > 0) [1]",
            "let x = List.combine [1] [true]",
            "let x = List.split [(1, true)]",
            'let x = List.assoc "k" [("k", 1)]',
            'let x = List.mem_assoc "k" [("k", 1)]',
            "let x = List.sort compare [3; 1]",
            "let x = List.rev_append [1] [2]",
            "let x = List.init 3 (fun i -> i * i)",
            "let x = List.partition (fun n -> n > 0) [1; -1]",
        ],
    )
    def test_good_uses(self, src):
        ok(src)

    @pytest.mark.parametrize(
        "src",
        [
            "let x = List.length 3",
            "let x = List.nth [1] true",
            "let x = List.map 3 [1]",
            "let x = List.mem 1 [true]",
            'let x = List.assoc 1 [("k", 1)]',
        ],
    )
    def test_bad_uses(self, src):
        bad(src)


class TestStringsAndIO:
    @pytest.mark.parametrize(
        "src",
        [
            'let x = String.length "ab"',
            'let x = String.sub "abc" 0 2',
            'let x = String.concat "," ["a"; "b"]',
            'let x = String.uppercase "a"',
            'let x = String.make 3 "a"',
            "let x = string_of_int 3",
            'let x = int_of_string "3"',
            "let x = string_of_float 1.5",
            "let x = string_of_bool true",
            'let u = print_endline "x"',
            "let u = print_newline ()",
        ],
    )
    def test_good_uses(self, src):
        ok(src)

    def test_print_string_wants_string(self):
        bad("let u = print_string 3")


class TestRefsAndMisc:
    @pytest.mark.parametrize(
        "src",
        [
            "let r = ref 0\nlet u = incr r",
            "let r = ref 0\nlet u = decr r",
            "let x = fst (1, true)",
            "let x = snd (1, true)",
            "let u = ignore [1;2;3]",
            "let x = abs (-3)",
            "let x = succ 1",
            "let x = pred 1",
            "let x = max 1 2",
            'let x = min "a" "b"',
            "let x = not true",
            "let x = float_of_int 3",
            "let x = int_of_float 3.5",
            'let x = failwith "die"',
            'let x = invalid_arg "die"',
            "let x = exit 0",
            "let h = Hashtbl.create 16\nlet u = Hashtbl.add h \"k\" 1\nlet v = Hashtbl.find h \"k\"",
            "let h = Hashtbl.create 16\nlet u = Hashtbl.add h 1 true\nlet m = Hashtbl.mem h 1",
        ],
    )
    def test_good_uses(self, src):
        ok(src)

    def test_incr_wants_int_ref(self):
        bad('let r = ref "s"\nlet u = incr r')

    def test_fst_wants_pair(self):
        bad("let x = fst (1, 2, 3)")


class TestOperators:
    def test_every_operator_has_scheme(self):
        for op in OPERATOR_SCHEMES:
            assert operator_scheme(op) is not None

    def test_unknown_operator(self):
        assert operator_scheme("<=>") is None

    def test_schemes_are_fresh_per_call(self):
        a = operator_scheme("=")
        b = operator_scheme("=")
        assert a is not b
        assert a.vars[0] is not b.vars[0]

    @pytest.mark.parametrize(
        "src",
        [
            "let x = 1 + 2",
            "let x = 1.5 *. 2.0",
            'let x = "a" ^ "b"',
            "let x = [1] @ [2]",
            "let x = 1 = 1",
            'let x = "a" < "b"',
            "let x = true && false",
            "let x = 5 mod 2",
            "let r = ref 1\nlet u = r := 2",
        ],
    )
    def test_operator_uses(self, src):
        ok(src)


class TestEnvironment:
    def test_fork_isolates_type_tables(self):
        base = default_env()
        fork = base.fork()
        fork.type_arities["custom"] = 0
        assert "custom" not in base.type_arities

    def test_fork_sees_base_values(self):
        base = default_env()
        fork = base.fork()
        assert fork.lookup("List.map") is not None

    def test_child_chain_lookup(self):
        base = default_env()
        child = base.child()
        from repro.miniml.types import INT
        from repro.miniml.stdlib import TypeEnv
        from repro.miniml.types import monotype

        child.bind("x", monotype(INT))
        grandchild = child.child()
        assert grandchild.lookup("x") is not None
        assert base.lookup("x") is None

    def test_builtin_exceptions_present(self):
        env = default_env()
        for name in ("Foo", "Not_found", "Failure", "Invalid_argument", "Exit"):
            assert env.lookup_ctor(name) is not None

    def test_adapt_scheme_shape(self):
        env = default_env()
        scheme = env.lookup("__seminal_adapt")
        assert scheme is not None
        assert len(scheme.vars) == 2
