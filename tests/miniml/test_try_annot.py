"""Tests for ``try ... with`` and type annotations ``(e : t)``."""

import pytest

from repro.core import explain
from repro.miniml import parse_expr, parse_program, pretty_expr, typecheck_source
from repro.miniml.ast_nodes import EAnnot, EMatch, ETry
from repro.miniml.errors import PatternMismatchError, TypeMismatchError
from repro.miniml.infer import is_syntactic_value
from repro.miniml.parser import ParseError
from repro.tree import structurally_equal


class TestParsing:
    def test_try_with(self):
        e = parse_expr("try f x with Not_found -> 0")
        assert isinstance(e, ETry)
        assert len(e.cases) == 1

    def test_try_multiple_handlers(self):
        e = parse_expr('try f x with Not_found -> 0 | Failure msg -> 1')
        assert len(e.cases) == 2

    def test_annotation(self):
        e = parse_expr("(x : int)")
        assert isinstance(e, EAnnot)

    def test_annotation_on_compound(self):
        e = parse_expr("(f x + 1 : int)")
        assert isinstance(e, EAnnot)

    def test_annotation_with_tyvar(self):
        e = parse_expr("(x : 'a list)")
        assert isinstance(e, EAnnot)

    def test_plain_parens_still_work(self):
        e = parse_expr("(x)")
        assert not isinstance(e, EAnnot)


class TestPrinting:
    @pytest.mark.parametrize(
        "src",
        [
            "try f x with Not_found -> 0",
            "try f x with Not_found -> 0 | Failure m -> 1",
            "(x : int)",
            "(f x : int list)",
            "(g : int -> bool)",
        ],
    )
    def test_roundtrip(self, src):
        e = parse_expr(src)
        assert structurally_equal(e, parse_expr(pretty_expr(e)))


class TestTyping:
    def test_try_well_typed(self):
        assert typecheck_source(
            "let f g x = try g x with Not_found -> 0"
        ).ok

    def test_try_handler_patterns_are_exceptions(self):
        result = typecheck_source("let f x = try x + 1 with 3 -> 0")
        assert isinstance(result.error, PatternMismatchError)

    def test_try_branches_share_type(self):
        result = typecheck_source('let f x = try x + 1 with Not_found -> "s"')
        assert isinstance(result.error, TypeMismatchError)

    def test_try_body_checked_against_context(self):
        result = typecheck_source('let f x = 1 + (try "s" with Not_found -> "t")')
        assert not result.ok

    def test_user_exception_handler(self):
        src = 'exception Boom of string\nlet f g = try g () with Boom msg -> String.length msg'
        assert typecheck_source(src).ok

    def test_annotation_accepts_match(self):
        assert typecheck_source("let x = (3 : int)").ok

    def test_annotation_rejects_mismatch(self):
        result = typecheck_source("let x = (3 : string)")
        assert isinstance(result.error, TypeMismatchError)

    def test_annotation_guides_inference(self):
        assert typecheck_source("let f = (fun x -> x : int -> int)\nlet y = f 3").ok

    def test_annotation_with_tyvars(self):
        assert typecheck_source("let empty = ([] : 'a list)").ok

    def test_annotation_unknown_type_rejected(self):
        result = typecheck_source("let x = (3 : nosuch)")
        assert not result.ok

    def test_annotated_value_still_generalizes(self):
        src = "let id = (fun x -> x : 'a -> 'a)\nlet a = id 1\nlet b = id true"
        assert typecheck_source(src).ok

    def test_value_restriction_on_annot(self):
        e = parse_expr("(fun x -> x : 'a -> 'a)")
        assert is_syntactic_value(e)
        assert not is_syntactic_value(parse_expr("(f x : int)"))


class TestSearchIntegration:
    def test_match_to_try_suggested(self):
        # Matching an int scrutinee against exception patterns: the student
        # meant ``try`` — the constructive change finds exactly that.
        src = "let f x = match x + 1 with Not_found -> 0 | Foo -> 1"
        result = explain(src)
        rules = {s.change.rule for s in result.suggestions}
        assert "match-to-try" in rules

    def test_try_to_match_suggested(self):
        src = """
type res = Good of int | Bad
let f g x = try g x with Good n -> n | Bad -> 0
let use = f (fun n -> Good n) 3
"""
        result = explain(src)
        rules = {s.change.rule for s in result.suggestions}
        assert "try-to-match" in rules

    def test_drop_annot_suggested(self):
        result = explain("let x = (3 : string) + 1")
        assert result.best is not None
        assert result.best.change.rule == "drop-annot"
        assert pretty_expr(result.best.change.replacement) == "3"

    def test_drop_handler_available(self):
        src = "let f x = try x + 1 with Not_found -> \"s\""
        result = explain(src)
        rules = {s.change.rule for s in result.suggestions}
        assert "drop-handler" in rules
