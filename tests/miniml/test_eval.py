"""Tests for the MiniML interpreter, including runtime type soundness."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.corpus.seeds import ASSIGNMENTS
from repro.miniml import typecheck_source
from repro.miniml.eval import (
    Interpreter,
    MatchFailure,
    MiniMLException,
    RuntimeTypeError,
    VConst,
    VConstructor,
    VList,
    VTuple,
    eval_expr_source,
    render_value,
    run_source,
    values_equal,
)


def result_of(src):
    return render_value(eval_expr_source(src))


class TestArithmetic:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("1 + 2 * 3", "7"),
            ("(1 + 2) * 3", "9"),
            ("10 - 3 - 4", "3"),
            ("7 / 2", "3"),
            ("-7 / 2", "-3"),  # OCaml truncates toward zero
            ("7 mod 2", "1"),
            ("-7 mod 2", "-1"),
            ("1.5 +. 2.25", "3.75"),
            ("3.0 *. 2.0", "6.0"),
            ('"foo" ^ "bar"', '"foobar"'),
            ("[1; 2] @ [3]", "[1; 2; 3]"),
            ("-3", "-3"),
            ("abs (-3)", "3"),
            ("max 2 5", "5"),
            ('min "b" "a"', '"a"'),
        ],
    )
    def test_expr(self, src, expected):
        assert result_of(src) == expected

    def test_division_by_zero_raises_minml_exception(self):
        with pytest.raises(MiniMLException):
            eval_expr_source("1 / 0")

    def test_mod_by_zero(self):
        with pytest.raises(MiniMLException):
            eval_expr_source("1 mod 0")


class TestBooleansAndComparison:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("1 = 1", "true"),
            ("[1; 2] = [1; 2]", "true"),
            ("(1, true) = (1, false)", "false"),
            ("1 < 2", "true"),
            ('"abc" < "abd"', "true"),
            ("true && false", "false"),
            ("true || false", "true"),
            ("not true", "false"),
            ("compare 3 3", "0"),
        ],
    )
    def test_expr(self, src, expected):
        assert result_of(src) == expected

    def test_and_short_circuits(self):
        # The right side would raise; && must not evaluate it.
        assert result_of("false && (1 / 0 = 0)") == "false"

    def test_or_short_circuits(self):
        assert result_of("true || (1 / 0 = 0)") == "true"


class TestFunctions:
    def test_closure_capture(self):
        assert result_of("let a = 10 in let f x = x + a in let a = 0 in f 5") == "15"

    def test_curried_partial_application(self):
        assert result_of("let add a b = a + b in let inc = add 1 in inc 41") == "42"

    def test_recursion(self):
        assert result_of("let rec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 6") == "720"

    def test_mutual_recursion(self):
        src = (
            "let rec even n = if n = 0 then true else odd (n - 1) "
            "and odd n = if n = 0 then false else even (n - 1) in even 10"
        )
        assert result_of(src) == "true"

    def test_function_cases(self):
        assert result_of("(function [] -> 0 | x :: _ -> x) [7; 8]") == "7"

    def test_tuple_parameter(self):
        assert result_of("(fun (x, y) -> x + y) (3, 4)") == "7"

    def test_higher_order(self):
        assert result_of("List.fold_left (fun acc x -> acc + x) 0 [1;2;3;4]") == "10"


class TestDataAndMatching:
    def test_constructors(self):
        assert result_of("Some (1 + 1)") == "Some 2"

    def test_match_constructor(self):
        assert result_of("match Some 3 with Some n -> n | None -> 0") == "3"

    def test_match_cons(self):
        assert result_of("match [1;2;3] with x :: _ -> x | [] -> 0") == "1"

    def test_match_failure(self):
        with pytest.raises(MatchFailure):
            eval_expr_source("match [] with x :: _ -> x")

    def test_nested_patterns(self):
        assert result_of("match (1, [2; 3]) with (a, b :: _) -> a + b | _ -> 0") == "3"

    def test_records(self):
        src = "let p = {x = 1; y = 2} in p.x + p.y"
        assert result_of(src) == "3"

    def test_mutable_field(self):
        src = "let p = {x = 1; y = 2} in p.y <- 40; p.x + p.y"
        assert result_of(src) == "41"

    def test_refs(self):
        assert result_of("let r = ref 1 in r := !r + 41; !r") == "42"

    def test_incr(self):
        assert result_of("let r = ref 0 in incr r; incr r; !r") == "2"


class TestExceptions:
    def test_raise_and_catch(self):
        assert result_of("try raise Not_found with Not_found -> 9") == "9"

    def test_uncaught_propagates(self):
        with pytest.raises(MiniMLException):
            eval_expr_source("raise (Failure \"boom\")")

    def test_handler_pattern_selective(self):
        src = 'try failwith "x" with Not_found -> 1 | Failure _ -> 2'
        assert result_of(src) == "2"

    def test_try_body_value_passes_through(self):
        assert result_of("try 5 with Not_found -> 0") == "5"

    def test_list_find_not_found(self):
        assert result_of("try List.find (fun n -> n > 9) [1] with Not_found -> -1") == "-1"


class TestOutput:
    def test_print_capture(self):
        _, out = run_source('let u = print_string "a"; print_int 3; print_newline ()')
        assert out == "a3\n"

    def test_print_endline(self):
        _, out = run_source('let u = print_endline "line"')
        assert out == "line\n"


class TestSeedsRun:
    """The corpus seeds are real programs: they run and print."""

    EXPECTED = {
        "hw1": "bob, alice15\n",
        "hw2": "42 size=5\n",
        "hw3": "3\n",
        "hw4": "bob3\n",
        "hw5": "60\n",
    }

    @pytest.mark.parametrize("name", list(ASSIGNMENTS))
    def test_seed_runs(self, name):
        _, out = run_source(ASSIGNMENTS[name])
        assert out == self.EXPECTED[name]


class TestDivergenceGuard:
    def test_fuel_limits_infinite_loops(self):
        with pytest.raises(RuntimeTypeError):
            eval_expr_source("let rec loop x = loop x in loop 0", max_steps=10_000)


class TestValueHelpers:
    def test_values_equal_structural(self):
        a = VList([VConst(1, "int"), VConst(2, "int")])
        b = VList([VConst(1, "int"), VConst(2, "int")])
        assert values_equal(a, b)

    def test_functional_values_not_comparable(self):
        with pytest.raises(RuntimeTypeError):
            eval_expr_source("(fun x -> x) = (fun y -> y)")

    def test_render_forms(self):
        assert render_value(VTuple([VConst(1, "int"), VConst(True, "bool")])) == "(1, true)"
        assert render_value(VConstructor("None")) == "None"


# ---------------------------------------------------------------------------
# Runtime type soundness: well-typed programs never hit RuntimeTypeError.
# ---------------------------------------------------------------------------

_WELL_TYPED_SNIPPETS = [
    "let x = List.map (fun n -> n * n) [1;2;3]",
    "let x = List.fold_left (fun a b -> a ^ b) \"\" [\"x\"; \"y\"]",
    "let rec f n = if n <= 0 then [] else n :: f (n - 1)\nlet x = f 5",
    "let x = try List.hd [] with Failure _ -> 0",
    "let r = ref []\nlet u = r := [1; 2]\nlet n = List.length !r",
    "let x = (fun (a, b) -> a) (1, \"s\")",
    "type t = A | B of int\nlet f v = match v with A -> 0 | B n -> n\nlet x = f (B 3)",
    "let x = List.sort compare [3; 1; 2]",
    "let x = String.concat \",\" (List.map string_of_int [1;2])",
]


class TestSoundness:
    @pytest.mark.parametrize("src", _WELL_TYPED_SNIPPETS)
    def test_well_typed_runs_without_runtime_type_error(self, src):
        assert typecheck_source(src).ok
        try:
            run_source(src, max_steps=200_000)
        except MiniMLException:
            pass  # MiniML-level exceptions are fine; RuntimeTypeError is not
        except MatchFailure:
            pass  # inexhaustive matches are not type errors

    @given(st.sampled_from(list(ASSIGNMENTS)), st.integers(0, 2000))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_mutated_seeds_never_hit_runtime_type_error_when_well_typed(self, name, seed):
        """Apply a mutation; if the result happens to still type-check (the
        injector filters these out for the corpus, but we generate raw ones
        here), running it must not hit RuntimeTypeError."""
        import random

        from repro.corpus.mutations import MUTATORS, family_names
        from repro.miniml import parse_program
        from repro.tree import replace_at

        rng = random.Random(seed)
        program = parse_program(ASSIGNMENTS[name])
        family = rng.choice(family_names())
        candidates = MUTATORS[family](program, rng)
        if not candidates:
            return
        path, replacement, _ = rng.choice(candidates)
        mutated = replace_at(program, path, replacement)
        if not typecheck_source(  # only run the still-well-typed ones
            __import__("repro.miniml.pretty", fromlist=["pretty_program"]).pretty_program(mutated)
        ).ok:
            return
        interpreter = Interpreter(max_steps=100_000)
        try:
            interpreter.run_program(mutated)
        except (MiniMLException, MatchFailure):
            pass
        except RuntimeTypeError as err:
            if "step budget" in str(err):
                pass  # divergence is not a type error
            else:
                raise
