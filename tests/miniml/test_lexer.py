"""Tests for the MiniML lexer."""

import pytest

from repro.miniml.lexer import LexError, tokenize
from repro.miniml.tokens import TokenKind


def kinds(src):
    return [t.kind for t in tokenize(src)][:-1]  # drop EOF


def texts(src):
    return [t.text for t in tokenize(src)][:-1]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_integers(self):
        toks = tokenize("42 0 123")
        assert [t.value for t in toks[:-1]] == [42, 0, 123]
        assert all(t.kind is TokenKind.INT for t in toks[:-1])

    def test_floats(self):
        toks = tokenize("3.14 2. 0.5")
        assert [t.value for t in toks[:-1]] == [3.14, 2.0, 0.5]
        assert all(t.kind is TokenKind.FLOAT for t in toks[:-1])

    def test_strings_with_escapes(self):
        toks = tokenize(r'"hello" "a\nb" "say \"hi\""')
        assert [t.value for t in toks[:-1]] == ["hello", "a\nb", 'say "hi"']

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestIdentifiers:
    def test_lowercase_ident(self):
        (tok,) = tokenize("foo_bar'")[:-1]
        assert tok.kind is TokenKind.LIDENT
        assert tok.text == "foo_bar'"

    def test_uppercase_ident(self):
        (tok,) = tokenize("Some")[:-1]
        assert tok.kind is TokenKind.UIDENT

    def test_module_qualified(self):
        (tok,) = tokenize("List.map")[:-1]
        assert tok.kind is TokenKind.LIDENT
        assert tok.text == "List.map"

    def test_module_alone_is_uident(self):
        toks = texts("List + x")
        assert toks == ["List", "+", "x"]

    def test_keywords(self):
        assert all(t.kind is TokenKind.KEYWORD for t in tokenize("let rec in fun match")[:-1])

    def test_underscore_alone_is_op(self):
        (tok,) = tokenize("_")[:-1]
        assert tok.kind is TokenKind.OP

    def test_underscore_prefixed_ident(self):
        (tok,) = tokenize("_foo")[:-1]
        assert tok.kind is TokenKind.LIDENT


class TestOperators:
    def test_multichar_operators_greedy(self):
        assert texts("-> <- := :: ;; == != <> <= >= && ||") == [
            "->", "<-", ":=", "::", ";;", "==", "!=", "<>", "<=", ">=", "&&", "||",
        ]

    def test_float_operators(self):
        assert texts("+. -. *. /.") == ["+.", "-.", "*.", "/."]

    def test_cons_vs_colon(self):
        assert texts("x :: y : z") == ["x", "::", "y", ":", "z"]

    def test_semicolons(self):
        assert texts("[1; 2]") == ["[", "1", ";", "2", "]"]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("x ~ y")


class TestComments:
    def test_simple_comment(self):
        assert texts("1 (* hi mom *) 2") == ["1", "2"]

    def test_nested_comment(self):
        assert texts("1 (* outer (* inner *) still *) 2") == ["1", "2"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("1 (* oops")

    def test_comment_with_string_like_content(self):
        assert texts('(* "not a string *) x') == ["x"]


class TestTypeVariables:
    def test_tyvar(self):
        (tok,) = tokenize("'a")[:-1]
        assert tok.kind is TokenKind.CHAR
        assert tok.text == "'a"

    def test_stray_quote(self):
        with pytest.raises(LexError):
            tokenize("' +")


class TestSpans:
    def test_line_and_column_tracking(self):
        toks = tokenize("let x =\n  42")
        let_tok, x_tok, eq_tok, int_tok = toks[:-1]
        assert (let_tok.span.start_line, let_tok.span.start_col) == (1, 1)
        assert (x_tok.span.start_line, x_tok.span.start_col) == (1, 5)
        assert (int_tok.span.start_line, int_tok.span.start_col) == (2, 3)

    def test_offsets_are_half_open(self):
        (tok,) = tokenize("abc")[:-1]
        assert (tok.span.start_offset, tok.span.end_offset) == (0, 3)
