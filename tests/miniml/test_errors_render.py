"""Tests for error-object rendering and metadata."""

import pytest

from repro.miniml import parse_program, typecheck_source
from repro.miniml.errors import (
    ConstructorArityError,
    DuplicateBindingError,
    MiniMLTypeError,
    NotAFunctionError,
    PatternMismatchError,
    TypeMismatchError,
    UnboundConstructorError,
    UnboundFieldError,
    UnboundVariableError,
)
from repro.miniml.types import INT, STRING, arrows


class TestRendering:
    def test_mismatch_includes_both_types(self):
        error = typecheck_source("let x = 1 + true").error
        text = error.render()
        assert "bool" in text and "int" in text
        assert "Line 1" in text

    def test_mismatch_quotes_expression(self):
        error = typecheck_source("let f x = (x + 1) && true").error
        assert "x + 1" in error.message

    def test_unbound_value(self):
        error = typecheck_source("let x = nope").error
        assert error.render().endswith("Unbound value nope")

    def test_unbound_constructor(self):
        error = typecheck_source("let x = Nope 3").error
        assert "Unbound constructor Nope" in error.message

    def test_unbound_field(self):
        error = typecheck_source("let x = {bogus = 1}").error
        assert "Unbound record field bogus" in error.message

    def test_not_a_function_message(self):
        error = typecheck_source("let x = 3 4").error
        assert "It is not a function; it cannot be applied" in error.message

    def test_constructor_arity(self):
        error = typecheck_source("let x = None 1").error
        assert "expects 0 argument(s)" in error.message

    def test_pattern_mismatch(self):
        error = typecheck_source("let m = match 1 with true -> 0 | _ -> 1").error
        assert "This pattern matches values of type bool" in error.message

    def test_duplicate_binding(self):
        error = typecheck_source("let f (a, a) = a").error
        assert "bound several times" in error.message

    def test_render_without_span(self):
        error = MiniMLTypeError("synthetic message", node=None)
        assert error.render() == "synthetic message"

    def test_types_rendered_eagerly(self):
        # The strings must be snapshot at construction (types are mutable).
        from repro.miniml.ast_nodes import EVar

        error = TypeMismatchError(EVar("x"), INT, arrows(STRING, STRING))
        assert error.actual_str == "int"
        assert error.expected_str == "string -> string"


class TestKinds:
    @pytest.mark.parametrize(
        "src,kind",
        [
            ("let x = 1 + true", "mismatch"),
            ("let x = nope", "unbound"),
            ("let x = Nope", "unbound-constructor"),
            ("let x = 3 4", "not-a-function"),
            ("let m = match 1 with true -> 0", "pattern-mismatch"),
            ("let f (a, a) = a", "duplicate-binding"),
            ("type t = A of missing", "unknown-type"),
        ],
    )
    def test_error_kind_tags(self, src, kind):
        assert typecheck_source(src).error.kind == kind

    def test_kinds_are_unique_per_class(self):
        kinds = {
            cls.kind
            for cls in (
                TypeMismatchError,
                PatternMismatchError,
                UnboundVariableError,
                UnboundConstructorError,
                UnboundFieldError,
                NotAFunctionError,
                ConstructorArityError,
                DuplicateBindingError,
            )
        }
        assert len(kinds) == 8


class TestSpans:
    def test_error_span_is_inside_source(self):
        src = "let outer = 1\nlet x = [1; true; 3]"
        error = typecheck_source(src).error
        assert error.span.start_line == 2
        text = src.splitlines()[1]
        assert "true" in text[error.span.start_col - 1 : error.span.end_col + 4]

    def test_first_error_wins(self):
        src = "let a = 1 + true\nlet b = 2 + false"
        error = typecheck_source(src).error
        assert error.span.start_line == 1
