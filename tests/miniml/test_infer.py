"""Tests for the MiniML type-checker: acceptance, rejection, error fidelity.

The "paper examples" class pins down the exact conventional-checker messages
the paper quotes (Figures 2, 8, 9) — these are the baselines SEMINAL is
evaluated against, so their wording and location must not drift.
"""

import pytest

from repro.miniml import (
    parse_program,
    typecheck_source,
)
from repro.miniml.ast_nodes import EApp, EBinop, EVar
from repro.miniml.errors import (
    ConstructorArityError,
    DuplicateBindingError,
    NotAFunctionError,
    PatternMismatchError,
    RecordFieldError,
    TypeMismatchError,
    UnboundConstructorError,
    UnboundFieldError,
    UnboundVariableError,
    UnknownTypeError,
)
from repro.miniml.infer import typecheck_program
from repro.miniml.types import type_to_string


def check(src):
    return typecheck_source(src)


def scheme_str(result, name):
    scheme = result.top_level[name]
    return type_to_string(scheme.body)


class TestWellTyped:
    @pytest.mark.parametrize(
        "src",
        [
            "let x = 1",
            "let x = 1 + 2 * 3",
            'let s = "a" ^ "b"',
            "let f = fun x -> x + 1",
            "let f x y = x + y",
            "let rec fact n = if n = 0 then 1 else n * fact (n - 1)",
            "let l = [1; 2; 3]",
            "let l = 1 :: 2 :: []",
            "let p = (1, true, \"s\")",
            "let o = Some 3",
            "let n = None",
            "let f = function [] -> 0 | x :: _ -> x",
            "let m x = match x with 0 -> true | _ -> false\nlet y = m 3",
            "let r = ref 0\nlet u = r := !r + 1",
            "let x = if true then 1 else 2",
            "let u = if true then print_string \"hi\"",
            "let f g l = List.map g l",
            "let pairs = List.combine [1] [true]",
            "let id x = x\nlet a = id 1\nlet b = id true",
            "let apply f x = f x",
            "let twice f x = f (f x)",
            "let x = let y = 3 in y + 1",
            "let f = fun (a, b) -> a + b\nlet s = f (1, 2)",
            'let u = print_string "x"; print_newline ()',
            "let h = List.fold_left (fun acc x -> acc + x) 0 [1;2;3]",
            "let e = raise Not_found",
            'let e = raise (Failure "bad")',
            "let x = 1.5 +. 2.5",
            "let c = compare 1 2",
            "let neg = -5",
        ],
    )
    def test_accepts(self, src):
        result = check(src)
        assert result.ok, result.error.render() if result.error else ""

    def test_polymorphic_scheme(self):
        result = check("let id x = x")
        assert scheme_str(result, "id") == "'a -> 'a"

    def test_map_scheme(self):
        result = check("let rec map f l = match l with [] -> [] | h :: t -> f h :: map f t")
        assert scheme_str(result, "map") == "('a -> 'b) -> 'a list -> 'b list"

    def test_tuple_pattern_binding(self):
        result = check("let (a, b) = (1, true)")
        assert scheme_str(result, "a") == "int"
        assert scheme_str(result, "b") == "bool"

    def test_value_restriction_blocks_generalization(self):
        # ``let r = ref []`` must stay monomorphic.
        result = check("let r = ref []\nlet u = r := [1]\nlet v = r := [true]")
        assert not result.ok

    def test_value_restriction_allows_eta_expanded(self):
        result = check("let f = fun x -> x\nlet a = f 1\nlet b = f true")
        assert result.ok

    def test_shadowing(self):
        result = check("let x = 1\nlet x = true\nlet y = x && false")
        assert result.ok

    def test_mutual_recursion(self):
        src = (
            "let rec even n = if n = 0 then true else odd (n - 1) "
            "and odd n = if n = 0 then false else even (n - 1)"
        )
        result = check(src)
        assert result.ok
        assert scheme_str(result, "even") == "int -> bool"

    def test_user_variant(self):
        src = """
type shape = Circle of int | Square of int | Point
let area s = match s with Circle r -> r * r * 3 | Square w -> w * w | Point -> 0
let a = area (Circle 2)
"""
        result = check(src)
        assert result.ok
        assert scheme_str(result, "area") == "shape -> int"

    def test_parameterized_variant(self):
        src = """
type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
let rec size t = match t with Leaf -> 0 | Node (l, _, r) -> 1 + size l + size r
"""
        result = check(src)
        assert result.ok
        assert scheme_str(result, "size") == "'a tree -> int"

    def test_recursive_variant(self):
        src = "type move = For of int * (move list) | Stop\nlet m = For (1, [Stop])"
        assert check(src).ok

    def test_records(self):
        src = """
type point = {x : int; mutable y : int}
let p = {x = 1; y = 2}
let gx = p.x
let set = p.y <- 3
"""
        result = check(src)
        assert result.ok
        assert scheme_str(result, "gx") == "int"

    def test_exception_decl_and_raise(self):
        src = 'exception Bad of string\nlet f () = raise (Bad "oops")'
        assert check(src).ok

    def test_raise_fits_any_context(self):
        # This is the property the searcher exploits for its wildcard.
        assert check("let x = 1 + raise Foo").ok
        assert check("let f = List.map (raise Foo) (raise Foo)").ok
        assert check("let x = if raise Foo then raise Foo else raise Foo").ok

    def test_adapt_function_registered(self):
        assert check("let x = 1 + __seminal_adapt \"str\"").ok


class TestIllTyped:
    @pytest.mark.parametrize(
        "src,error_type",
        [
            ("let x = 1 + true", TypeMismatchError),
            ('let x = "a" + 2', TypeMismatchError),
            ("let x = 1.5 + 2", TypeMismatchError),
            ("let l = [1; true]", TypeMismatchError),
            ("let l = 1 :: [true]", TypeMismatchError),
            ("let x = if 1 then 2 else 3", TypeMismatchError),
            ("let x = if true then 1 else false", TypeMismatchError),
            ("let f = fun x -> x + 1\nlet y = f true", TypeMismatchError),
            ("let x = undefined_thing", UnboundVariableError),
            ("let x = Nonexistent", UnboundConstructorError),
            ("let x = 3 4", NotAFunctionError),
            ("let f x = x + 1\nlet y = f 1 2", NotAFunctionError),
            ("let x = Some", ConstructorArityError),
            ("let x = None 3", ConstructorArityError),
            ("let m = match 3 with true -> 1 | _ -> 2", PatternMismatchError),
            ("let m = match [1] with (a, b) -> a", PatternMismatchError),
            ("let f (x, x) = x", DuplicateBindingError),
            ("let x = {nofield = 3}", UnboundFieldError),
            ("let x = p.nofield", UnboundFieldError),
            ("type t = A of nosuchtype", UnknownTypeError),
            ("type t = A of int list list list litt", UnknownTypeError),
            ("let u = 1 := 2", TypeMismatchError),
            ("let m = match (1, 2) with (a, b, c) -> a", PatternMismatchError),
        ],
    )
    def test_rejects(self, src, error_type):
        result = check(src)
        assert not result.ok
        assert isinstance(result.error, error_type), result.error

    def test_record_missing_field(self):
        src = "type p = {x : int; y : int}\nlet v = {x = 1}"
        result = check(src)
        assert isinstance(result.error, RecordFieldError)

    def test_immutable_field_update(self):
        src = "type p = {x : int}\nlet v = {x = 1}\nlet u = v.x <- 2"
        result = check(src)
        assert isinstance(result.error, RecordFieldError)

    def test_let_rec_non_variable_pattern(self):
        result = check("let rec (a, b) = (1, 2)")
        assert not result.ok

    def test_occurs_check_self_application(self):
        result = check("let f x = x x")
        assert not result.ok

    def test_error_has_span(self):
        result = check("let x = 1 + true")
        assert result.error.span is not None
        assert result.error.span.start_line == 1


class TestPaperExamples:
    """The conventional-checker baselines quoted in the paper."""

    FIG2 = """
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
let ans = List.filter (fun x -> x == 0) lst
"""

    def test_figure2_message_and_location(self):
        result = check(self.FIG2)
        assert not result.ok
        err = result.error
        # Paper: "The expression x+y has type int but is here used with
        # type 'a -> 'b" — reported at the addition, NOT at the real bug.
        assert isinstance(err, TypeMismatchError)
        assert err.actual_str == "int"
        assert err.expected_str == "'a -> 'b"
        assert isinstance(err.node, EBinop)
        assert err.node.op == "+"

    FIG8 = """
let add str lst = if List.mem str lst then lst else str :: lst
let s = "hello"
let vList1 = [["a"]; ["b"]]
let r = add vList1 s
"""

    def test_figure8_message_and_location(self):
        result = check(self.FIG8)
        err = result.error
        assert isinstance(err, TypeMismatchError)
        # Paper: "The expression s has type string but is here used with
        # type string list list" (with vList1 : string list list the types
        # shift one list level; with string list they are as quoted).
        assert isinstance(err.node, EVar)
        assert err.node.name == "s"
        assert err.actual_str == "string"

    FIG9 = """
type move = For of int * (move list) | Ahead of int | Turn of int
let rec loop movelist x y dir acc =
  match movelist with
    [] -> acc
  | For (moves, lst) :: tl ->
      let rec finalLst index searchLst =
        if index = (moves - 1) then []
        else (List.nth searchLst) :: (finalLst (index + 1) searchLst)
      in loop (finalLst 0 lst) x y dir acc
  | Ahead n :: tl -> loop tl (x + n) y dir acc
  | Turn n :: tl -> loop tl x y (dir + n) acc
"""

    def test_figure9_message_and_location(self):
        result = check(self.FIG9)
        err = result.error
        assert isinstance(err, TypeMismatchError)
        # Paper: "The expression (finalLst 0 lst) has type (int -> move) list
        # but is here used with type move list"
        assert err.actual_str == "(int -> move) list"
        assert err.expected_str == "move list"
        assert isinstance(err.node, EApp)

    def test_print_vs_print_string_unbound(self):
        # Section 3.3 scenario: the checker finds the unbound variable.
        src = """
let f x = match x with 0 -> print "zero" | _ -> print "other"
"""
        result = check(src)
        assert isinstance(result.error, UnboundVariableError)
        assert result.error.name == "print"

    def test_multiple_errors_reports_first(self):
        # Section 2.4 example: 3 + true then 4 + "hi"; checker reports first.
        src = 'let x = 3 + true\nlet y = 4 + "hi"'
        result = check(src)
        assert result.error.span.start_line == 1


class TestCheckResult:
    def test_bool_protocol(self):
        assert check("let x = 1")
        assert not check("let x = 1 + true")

    def test_top_level_only_on_success(self):
        result = check("let x = 1 + true")
        assert result.top_level == {}
