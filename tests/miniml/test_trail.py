"""Property tests for the undo trail (the speculative checks' safety net).

The oracle's speculative tiers run real unifications against *shared*
mutable state — the armed snapshot's live environment, the decl table's
recorded weak schemes — and rely on :class:`~repro.miniml.types.Trail` to
restore every ``TVar`` link/level and every trailed table slot exactly.
These tests drive randomized unification workloads against a shared
variable pool and assert the restoration is perfect, entry for entry.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.miniml.types import (
    BOOL,
    INT,
    STRING,
    TArrow,
    TTuple,
    TVar,
    Trail,
    active_trail,
    prune,
    set_trail,
    t_list,
    t_ref,
    trail_map_set,
)
from repro.miniml.unify import UnifyError, unify


@pytest.fixture(autouse=True)
def _no_leaked_trail():
    """Every test must leave the module-global trail uninstalled."""
    assert active_trail() is None
    yield
    set_trail(None)


def snapshot_vars(pool):
    """The observable state of every variable: (link identity, level)."""
    return [(v.link, v.level) for v in pool]


@st.composite
def unify_scripts(draw):
    """A shared variable pool plus a random sequence of unification goals.

    Goals mix plain var-var links, var-structure bindings (which adjust
    levels), deliberate failures (constructor clashes, occurs checks), and
    nested composites over already-touched variables — the same shapes a
    speculative suffix check produces against armed weak schemes.
    """
    pool = [TVar(draw(st.integers(0, 9))) for _ in range(draw(st.integers(4, 10)))]
    goals = []
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.integers(0, 5))
        a = draw(st.sampled_from(pool))
        b = draw(st.sampled_from(pool))
        if kind == 0:
            goals.append((a, b))
        elif kind == 1:
            goals.append((a, t_list(b)))
        elif kind == 2:
            goals.append((a, TArrow(b, draw(st.sampled_from([INT, BOOL, STRING])))))
        elif kind == 3:
            goals.append((a, draw(st.sampled_from([INT, BOOL, STRING]))))
        elif kind == 4:
            goals.append((t_ref(a), t_ref(t_list(a))))  # likely occurs failure
        else:
            goals.append((TTuple([a, b]), TTuple([INT, t_list(INT)])))
    return pool, goals


def run_goals(goals):
    """Apply each unification goal, swallowing expected failures."""
    outcomes = []
    for t1, t2 in goals:
        try:
            unify(t1, t2)
            outcomes.append(True)
        except UnifyError:
            outcomes.append(False)
    return outcomes


class TestTrailRestoration:
    @given(unify_scripts())
    @settings(max_examples=200)
    def test_undo_restores_exact_variable_state(self, script):
        pool, goals = script
        before = snapshot_vars(pool)
        trail = Trail()
        previous = set_trail(trail)
        try:
            mark = trail.mark()
            run_goals(goals)
            trail.undo(mark)
        finally:
            set_trail(previous)
        assert snapshot_vars(pool) == before

    @given(unify_scripts())
    @settings(max_examples=100)
    def test_undo_is_idempotent_at_mark(self, script):
        pool, goals = script
        trail = Trail()
        previous = set_trail(trail)
        try:
            mark = trail.mark()
            run_goals(goals)
            recorded = trail.mark() - mark
            first = trail.undo(mark)
            second = trail.undo(mark)
        finally:
            set_trail(previous)
        assert first == recorded
        assert second == 0
        assert trail.mark() == mark

    @given(unify_scripts(), unify_scripts())
    @settings(max_examples=100)
    def test_nested_marks_unwind_in_order(self, outer_script, inner_script):
        outer_pool, outer_goals = outer_script
        inner_pool, inner_goals = inner_script
        outer_before = snapshot_vars(outer_pool)
        trail = Trail()
        previous = set_trail(trail)
        try:
            outer_mark = trail.mark()
            run_goals(outer_goals)
            mid = snapshot_vars(outer_pool)
            inner_mark = trail.mark()
            run_goals(inner_goals)
            trail.undo(inner_mark)
            # Inner rollback restores the mid-state of the *outer* pool
            # (the inner goals may alias outer variables only via links,
            # which the trail restores regardless of which pool they
            # belong to).
            assert snapshot_vars(outer_pool) == mid
            trail.undo(outer_mark)
        finally:
            set_trail(previous)
        assert snapshot_vars(outer_pool) == outer_before
        # Inner pool variables touched during the outer bracket are
        # restored to their pristine (fresh) state too.
        assert all(v.link is None for v in inner_pool)

    @given(unify_scripts())
    @settings(max_examples=100)
    def test_replay_after_undo_is_deterministic(self, script):
        pool, goals = script
        trail = Trail()
        previous = set_trail(trail)
        try:
            mark = trail.mark()
            first = run_goals(goals)
            trail.undo(mark)
            second = run_goals(goals)
            trail.undo(mark)
        finally:
            set_trail(previous)
        assert first == second

    def test_undo_count_matches_entries(self):
        trail = Trail()
        previous = set_trail(trail)
        try:
            v1, v2 = TVar(0), TVar(0)
            mark = trail.mark()
            unify(v1, INT)
            unify(v2, t_list(INT))
            recorded = len(trail.entries) - mark
            assert recorded >= 2
            assert trail.undo(mark) == recorded
        finally:
            set_trail(previous)
        assert v1.link is None and v2.link is None

    def test_level_adjustments_are_trailed(self):
        # unify(outer, list(inner)) lowers inner's level; undo restores it.
        trail = Trail()
        previous = set_trail(trail)
        try:
            outer, inner = TVar(1), TVar(5)
            mark = trail.mark()
            unify(outer, t_list(inner))
            assert inner.level == 1
            trail.undo(mark)
        finally:
            set_trail(previous)
        assert inner.level == 5
        assert outer.link is None

    def test_prune_path_compression_is_trailed(self):
        trail = Trail()
        previous = set_trail(trail)
        try:
            a, b = TVar(0), TVar(0)
            a.link = b
            b.link = INT
            mark = trail.mark()
            assert prune(a) is INT
            assert a.link is INT  # compressed
            trail.undo(mark)
        finally:
            set_trail(previous)
        assert a.link is b  # compression rolled back


class TestTrailMapWrites:
    def test_overwrite_and_insert_restored(self):
        trail = Trail()
        previous = set_trail(trail)
        try:
            table = {"x": 1}
            mark = trail.mark()
            trail_map_set(table, "x", 2)  # overwrite
            trail_map_set(table, "y", 3)  # fresh insert
            trail_map_set(table, "y", 4)  # overwrite the insert
            assert table == {"x": 2, "y": 4}
            trail.undo(mark)
        finally:
            set_trail(previous)
        assert table == {"x": 1}

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 100)),
            min_size=1,
            max_size=30,
        )
    )
    def test_random_map_writes_restored(self, writes):
        base = {0: "a", 1: "b"}
        table = dict(base)
        trail = Trail()
        previous = set_trail(trail)
        try:
            mark = trail.mark()
            for key, value in writes:
                trail_map_set(table, key, value)
            trail.undo(mark)
        finally:
            set_trail(previous)
        assert table == base

    def test_without_trail_writes_are_permanent(self):
        table = {}
        trail_map_set(table, "k", 1)
        assert table == {"k": 1}


class TestTrailInstallation:
    def test_set_trail_returns_previous(self):
        t1, t2 = Trail(), Trail()
        assert set_trail(t1) is None
        assert set_trail(t2) is t1
        assert set_trail(None) is t2
        assert active_trail() is None

    def test_clear_empties_entries(self):
        trail = Trail()
        previous = set_trail(trail)
        try:
            unify(TVar(0), INT)
            assert trail.entries
            trail.clear()
        finally:
            set_trail(previous)
        assert trail.mark() == 0
