"""Hypothesis properties for the generic tree machinery.

These invariants underpin the whole search: if path addressing or
functional replacement were wrong, every candidate program the searcher
builds would be wrong too.
"""

from hypothesis import given, settings, strategies as st

from repro.core.enumerator import wildcard_expr
from repro.miniml import parse_expr
from repro.miniml.ast_nodes import EConst, EVar
from repro.tree import (
    get_at,
    node_size,
    replace_at,
    structurally_equal,
    walk,
)

_idents = st.sampled_from(["x", "y", "f", "g"])


@st.composite
def expr_trees(draw, depth=0):
    from repro.miniml.ast_nodes import EApp, EBinop, EIf, EList, ETuple

    if depth >= 3:
        if draw(st.booleans()):
            return EConst(draw(st.integers(0, 9)), "int")
        return EVar(draw(_idents))
    choice = draw(st.integers(0, 5))
    sub = lambda: draw(expr_trees(depth=depth + 1))  # noqa: E731
    if choice == 0:
        return EConst(draw(st.integers(0, 9)), "int")
    if choice == 1:
        return EVar(draw(_idents))
    if choice == 2:
        return EBinop(draw(st.sampled_from(["+", "-", "*"])), sub(), sub())
    if choice == 3:
        return EApp(EVar(draw(_idents)), [sub() for _ in range(draw(st.integers(1, 3)))])
    if choice == 4:
        return EList([sub() for _ in range(draw(st.integers(0, 3)))])
    return EIf(sub(), sub(), sub())


class TestWalkProperties:
    @given(expr_trees())
    @settings(max_examples=200, deadline=None)
    def test_every_walked_path_addresses_its_node(self, tree):
        for path, node in walk(tree):
            assert get_at(tree, path) is node

    @given(expr_trees())
    @settings(max_examples=200, deadline=None)
    def test_node_size_equals_walk_length(self, tree):
        assert node_size(tree) == len(list(walk(tree)))

    @given(expr_trees())
    @settings(max_examples=100, deadline=None)
    def test_paths_are_unique(self, tree):
        paths = [p for p, _ in walk(tree)]
        assert len(paths) == len(set(paths))


class TestReplaceProperties:
    @given(expr_trees(), st.integers(0, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_replace_installs_exactly_at_path(self, tree, pick):
        nodes = list(walk(tree))
        path, _ = nodes[pick % len(nodes)]
        marker = EConst(424242, "int")
        replaced = replace_at(tree, path, marker)
        assert get_at(replaced, path) is marker

    @given(expr_trees(), st.integers(0, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_original_tree_unchanged(self, tree, pick):
        nodes = list(walk(tree))
        path, original_node = nodes[pick % len(nodes)]
        before = node_size(tree)
        replace_at(tree, path, wildcard_expr())
        assert get_at(tree, path) is original_node
        assert node_size(tree) == before

    @given(expr_trees(), st.integers(0, 10_000))
    @settings(max_examples=150, deadline=None)
    def test_replace_with_same_subtree_is_structural_identity(self, tree, pick):
        nodes = list(walk(tree))
        path, node = nodes[pick % len(nodes)]
        replaced = replace_at(tree, path, node)
        assert structurally_equal(replaced, tree)

    @given(expr_trees(), st.integers(0, 10_000))
    @settings(max_examples=150, deadline=None)
    def test_off_path_subtrees_shared_not_copied(self, tree, pick):
        nodes = list(walk(tree))
        path, _ = nodes[pick % len(nodes)]
        replaced = replace_at(tree, path, wildcard_expr())
        # Every node NOT on the replacement path is the same object.
        on_path_prefixes = {path[:i] for i in range(len(path) + 1)}
        for other_path, other_node in walk(tree):
            if other_path in on_path_prefixes:
                continue
            if other_path[: len(path)] == path:
                continue  # inside the replaced subtree
            try:
                assert get_at(replaced, other_path) is other_node
            except KeyError:
                pass  # path shape changed under the replacement


class TestStructuralEqualityProperties:
    @given(expr_trees())
    @settings(max_examples=150, deadline=None)
    def test_reflexive(self, tree):
        assert structurally_equal(tree, tree)

    @given(expr_trees())
    @settings(max_examples=100, deadline=None)
    def test_pretty_parse_preserves_structure(self, tree):
        from repro.miniml.pretty import pretty_expr

        assert structurally_equal(tree, parse_expr(pretty_expr(tree)))

    @given(expr_trees(), expr_trees())
    @settings(max_examples=100, deadline=None)
    def test_symmetric(self, a, b):
        assert structurally_equal(a, b) == structurally_equal(b, a)
