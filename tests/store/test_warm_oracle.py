"""Warm-start contract: a persistent store changes *cost*, never *answers*.

The acceptance bar, verbatim from the design: suggestions, ranks, and
``--stats`` must be byte-identical whether the store is cold, warm, or
absent; and a warm second run over the corpus must spend strictly fewer
real checker invocations (the ``oracle.calls`` *metric* — the logical
``Oracle.calls`` attribute still counts every question so budgets behave
identically).
"""

from __future__ import annotations

import pytest

from repro.core import explain, explain_many
from repro.core.messages import render_suggestion
from repro.core.oracle import Oracle
from repro.core.quickfix import fix_all
from repro.corpus import generate_corpus
from repro.miniml.parser import parse_program
from repro.obs import MetricsRegistry
from repro.store import VerdictStore

FIG2 = """\
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""

ILL_TYPED = "let f x = x + 1\nlet b = f true\n"


def _signature(result):
    return (
        result.ok,
        result.bad_decl_index,
        result.oracle_calls,
        result.render(limit=50),
        [render_suggestion(s) for s in result.suggestions],
    )


class TestOracleStoreTier:
    def test_warm_oracle_skips_real_checks(self, tmp_path):
        program = parse_program(ILL_TYPED)
        cold_metrics = MetricsRegistry()
        cold = Oracle(metrics=cold_metrics,
                      store=VerdictStore(tmp_path / "s"))
        cold_result = cold.check(program)
        cold.store.close()
        assert cold.store_misses > 0
        assert cold.store_writes > 0

        warm_metrics = MetricsRegistry()
        warm = Oracle(metrics=warm_metrics,
                      store=VerdictStore(tmp_path / "s"))
        warm_result = warm.check(program)
        assert warm.store_hits > 0
        # Logical accounting identical; the real-invocation metric is not.
        assert warm.calls == cold.calls
        assert warm_metrics.value("oracle.calls") == 0
        assert cold_metrics.value("oracle.calls") > 0
        assert warm_metrics.value("oracle.store.hits") == warm.store_hits

        assert warm_result.ok == cold_result.ok
        assert warm_result.error.render() == cold_result.error.render()
        assert getattr(warm_result.error, "kind", None) == getattr(
            cold_result.error, "kind", None
        )

    def test_memo_still_first_tier(self, tmp_path):
        program = parse_program(ILL_TYPED)
        oracle = Oracle(cache=True, store=VerdictStore(tmp_path / "s"))
        oracle.check(program)
        hits_before = oracle.store_hits
        oracle.check(program)  # in-memory memo answers, store untouched
        assert oracle.store_hits == hits_before

    def test_reset_keeps_store_attached(self, tmp_path):
        oracle = Oracle(store=VerdictStore(tmp_path / "s"))
        oracle.check(parse_program(ILL_TYPED))
        oracle.reset()
        assert oracle.store is not None
        assert (oracle.store_hits, oracle.store_misses, oracle.store_writes) \
            == (0, 0, 0)


class TestExplainStoreDeterminism:
    def test_cold_warm_absent_byte_identical(self, tmp_path):
        absent = explain(FIG2)
        cold = explain(FIG2, store=tmp_path / "s")
        warm = explain(FIG2, store=tmp_path / "s")
        assert _signature(cold) == _signature(absent)
        assert _signature(warm) == _signature(absent)

    def test_warm_run_hits_store(self, tmp_path):
        explain(FIG2, store=tmp_path / "s")
        metrics = MetricsRegistry()
        explain(FIG2, store=tmp_path / "s", metrics=metrics)
        assert metrics.value("oracle.store.hits") > 0
        assert metrics.value("oracle.calls") \
            < metrics.value("oracle.store.hits")

    def test_pooled_warm_matches_serial(self, tmp_path):
        serial = explain(FIG2)
        explain(FIG2, store=tmp_path / "s")  # seed the store
        pooled = explain(FIG2, store=tmp_path / "s", jobs=2)
        assert _signature(pooled) == _signature(serial)

    def test_fix_all_accepts_store(self, tmp_path):
        cold = fix_all(ILL_TYPED, store=tmp_path / "s")
        metrics = MetricsRegistry()
        warm = fix_all(ILL_TYPED, store=tmp_path / "s", metrics=metrics)
        assert (warm.source, warm.ok, warm.applied) \
            == (cold.source, cold.ok, cold.applied)
        assert metrics.value("oracle.store.hits") > 0


CORPUS = generate_corpus(scale=0.15, seed=11)


def _batch_signature(entries):
    return [
        (e.label, e.ok, e.error, e.report, e.best, e.suggestions,
         e.oracle_calls)
        for e in entries
    ]


def _aggregate_calls(entries):
    total = MetricsRegistry()
    for entry in entries:
        if entry.metrics:
            total.merge_snapshot(entry.metrics)
    return total.value("oracle.calls")


class TestCorpusWarmVsCold:
    """The headline acceptance test, at jobs=1 and jobs=4."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_warm_byte_identical_and_strictly_cheaper(self, tmp_path, jobs):
        sources = [f.program for f in CORPUS.representatives]
        labels = [
            f"{f.programmer}/{f.assignment}" for f in CORPUS.representatives
        ]
        store = tmp_path / f"store-j{jobs}"
        baseline = explain_many(sources, labels, jobs=jobs,
                                collect_metrics=True)
        cold = explain_many(sources, labels, jobs=jobs, store=store,
                            collect_metrics=True)
        warm = explain_many(sources, labels, jobs=jobs, store=store,
                            collect_metrics=True)

        assert _batch_signature(cold) == _batch_signature(baseline)
        assert _batch_signature(warm) == _batch_signature(baseline)

        cold_calls = _aggregate_calls(cold)
        warm_calls = _aggregate_calls(warm)
        assert warm_calls < cold_calls
