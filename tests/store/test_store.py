"""Unit tests for the persistent verdict store (`repro.store`).

The store's contract is resilience-first: whatever is on disk — whole
segments, torn tails, stale fingerprints, leftover temp files, garbage —
opening and probing must degrade to a smaller cache, never raise.  These
tests exercise that contract file-by-file, plus the maintenance verbs
behind ``python -m repro cache``.
"""

from __future__ import annotations

import json

import pytest

from repro.store import (
    NO_PREFIX_FP,
    StoredVerdict,
    VerdictStore,
    checker_fingerprint,
    key_digest,
    prefix_fingerprint,
)

KEY_A = ("Let", ("Var", "x"), ("Lit", 1))
KEY_B = ("Let", ("Var", "y"), ("Lit", 2))
KEY_C = ("App", ("Var", "f"), ("Lit", True))


class TestFingerprints:
    def test_checker_fingerprint_is_stable_hex(self):
        fp = checker_fingerprint()
        assert fp == checker_fingerprint()
        assert len(fp) == 32
        int(fp, 16)  # hex digest

    def test_key_digest_distinguishes_programs(self):
        assert key_digest(KEY_A) != key_digest(KEY_B)
        assert key_digest(KEY_A) == key_digest(KEY_A)

    def test_prefix_fingerprint_sentinel(self):
        assert prefix_fingerprint(None) == NO_PREFIX_FP
        assert prefix_fingerprint(()) == NO_PREFIX_FP
        assert prefix_fingerprint([]) == NO_PREFIX_FP

    def test_prefix_fingerprint_depends_on_keys_and_order(self):
        ab = prefix_fingerprint([KEY_A, KEY_B])
        ba = prefix_fingerprint([KEY_B, KEY_A])
        assert ab != NO_PREFIX_FP
        assert ab != ba
        assert ab == prefix_fingerprint((KEY_A, KEY_B))


class TestRoundTrip:
    def test_put_get_same_process(self, tmp_path):
        store = VerdictStore(tmp_path / "s")
        assert store.get(NO_PREFIX_FP, KEY_A) is None  # miss
        assert store.put(NO_PREFIX_FP, KEY_A, False, "full",
                         err="boom", err_kind="mismatch")
        entry = store.get(NO_PREFIX_FP, KEY_A)
        assert entry == StoredVerdict(ok=False, kind="full",
                                      err="boom", err_kind="mismatch")
        assert (store.hits, store.misses, store.writes) == (1, 1, 1)

    def test_survives_reopen(self, tmp_path):
        with VerdictStore(tmp_path / "s") as store:
            store.put(NO_PREFIX_FP, KEY_A, True, "full")
            store.put("deadbeef", KEY_B, False, "reused", err="no")
        again = VerdictStore(tmp_path / "s")
        assert len(again) == 2
        assert again.get(NO_PREFIX_FP, KEY_A).ok is True
        reused = again.get("deadbeef", KEY_B)
        assert (reused.ok, reused.kind, reused.err) == (False, "reused", "no")

    def test_prefix_regime_partitions_entries(self, tmp_path):
        store = VerdictStore(tmp_path / "s")
        store.put(NO_PREFIX_FP, KEY_A, True, "full")
        assert store.get("otherprefix", KEY_A) is None

    def test_put_refuses_non_storable_kinds(self, tmp_path):
        store = VerdictStore(tmp_path / "s")
        assert not store.put(NO_PREFIX_FP, KEY_A, False, "crash")
        assert not store.put(NO_PREFIX_FP, KEY_A, False, "fallback")
        assert store.writes == 0
        assert store.flush() is None

    def test_put_refuses_duplicates(self, tmp_path):
        store = VerdictStore(tmp_path / "s")
        assert store.put(NO_PREFIX_FP, KEY_A, True, "full")
        assert not store.put(NO_PREFIX_FP, KEY_A, True, "full")
        assert store.writes == 1

    def test_read_only_never_writes(self, tmp_path):
        (tmp_path / "s").mkdir()
        store = VerdictStore(tmp_path / "s", read_only=True)
        assert not store.put(NO_PREFIX_FP, KEY_A, True, "full")
        store.close()
        assert list((tmp_path / "s").iterdir()) == []

    def test_read_only_missing_directory_degrades(self, tmp_path):
        store = VerdictStore(tmp_path / "absent", read_only=True)
        assert store.get(NO_PREFIX_FP, KEY_A) is None

    def test_flush_every_publishes_automatically(self, tmp_path):
        store = VerdictStore(tmp_path / "s", flush_every=2)
        store.put(NO_PREFIX_FP, KEY_A, True, "full")
        assert not list((tmp_path / "s").glob("seg-*"))
        store.put(NO_PREFIX_FP, KEY_B, True, "full")
        assert len(list((tmp_path / "s").glob("seg-*"))) == 1


def _segment(store_dir):
    segments = sorted(store_dir.glob("seg-*.jsonl"))
    assert segments, "expected a published segment"
    return segments[0]


class TestCorruptionDegrades:
    """Torn and corrupt files shrink the cache; they never raise."""

    @pytest.fixture
    def populated(self, tmp_path):
        with VerdictStore(tmp_path / "s") as store:
            store.put(NO_PREFIX_FP, KEY_A, True, "full")
            store.put(NO_PREFIX_FP, KEY_B, False, "full", err="no")
        return tmp_path / "s"

    def test_garbage_line_skipped_rest_kept(self, populated):
        seg = _segment(populated)
        seg.write_text(seg.read_text() + "{not json\n")
        store = VerdictStore(populated)
        assert store.skipped_lines == 1
        assert len(store) == 2

    def test_torn_tail_skipped_rest_kept(self, populated):
        seg = _segment(populated)
        text = seg.read_text()
        seg.write_text(text[: len(text) - 10])  # tear the last line
        store = VerdictStore(populated)
        assert store.skipped_lines == 1
        assert store.get(NO_PREFIX_FP, KEY_A) is not None
        assert store.get(NO_PREFIX_FP, KEY_B) is None

    def test_missing_fields_skipped(self, populated):
        seg = _segment(populated)
        seg.write_text(seg.read_text() + json.dumps({"ok": True}) + "\n")
        store = VerdictStore(populated)
        assert store.skipped_lines == 1
        assert len(store) == 2

    def test_garbage_header_skips_segment(self, populated):
        seg = _segment(populated)
        body = seg.read_text().splitlines()
        seg.write_text("\n".join(["garbage header"] + body[1:]) + "\n")
        store = VerdictStore(populated)
        assert store.skipped_segments == 1
        assert len(store) == 0

    def test_future_schema_version_skips_segment(self, populated):
        seg = _segment(populated)
        lines = seg.read_text().splitlines()
        header = json.loads(lines[0])
        header["v"] = 2
        seg.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        store = VerdictStore(populated)
        assert store.skipped_segments == 1
        assert len(store) == 0

    def test_empty_segment_skipped(self, populated):
        (populated / "seg-0000000000000-1-9.jsonl").write_text("")
        store = VerdictStore(populated)
        assert store.skipped_segments == 1
        assert len(store) == 2

    def test_tmp_files_ignored(self, populated):
        (populated / ".tmp-999-1").write_text('{"p": "torn')
        store = VerdictStore(populated)
        assert len(store) == 2
        assert store.skipped_segments == 0


class TestInvalidation:
    def _write_stale_segment(self, store_dir, n=3):
        store_dir.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({"v": 1, "checker": "0" * 32})]
        for i in range(n):
            lines.append(json.dumps(
                {"p": NO_PREFIX_FP, "k": f"{i:032d}", "ok": True, "kind": "full"}
            ))
        (store_dir / "seg-0000000000000-1-1.jsonl").write_text(
            "\n".join(lines) + "\n"
        )

    def test_stale_checker_entries_not_indexed(self, tmp_path):
        self._write_stale_segment(tmp_path / "s")
        store = VerdictStore(tmp_path / "s")
        assert len(store) == 0
        assert store.invalidated == 3

    def test_take_invalidated_reports_once(self, tmp_path):
        self._write_stale_segment(tmp_path / "s")
        store = VerdictStore(tmp_path / "s")
        assert store.take_invalidated() == 3
        assert store.take_invalidated() == 0

    def test_compact_deletes_stale_segments(self, tmp_path):
        self._write_stale_segment(tmp_path / "s")
        with VerdictStore(tmp_path / "s") as store:
            store.put(NO_PREFIX_FP, KEY_A, True, "full")
        summary = VerdictStore(tmp_path / "s").compact()
        assert summary["removed_segments"] == 1
        assert summary["remaining_segments"] == 1
        fresh = VerdictStore(tmp_path / "s")
        assert fresh.invalidated == 0
        assert len(fresh) == 1


class TestCompaction:
    def test_compact_drops_tmp_files(self, tmp_path):
        with VerdictStore(tmp_path / "s") as store:
            store.put(NO_PREFIX_FP, KEY_A, True, "full")
        (tmp_path / "s" / ".tmp-4242-7").write_text("half a segm")
        summary = VerdictStore(tmp_path / "s").compact()
        assert summary["removed_tmp"] == 1
        assert summary["remaining_segments"] == 1

    def test_size_cap_evicts_least_recently_hit(self, tmp_path):
        import time

        store = VerdictStore(tmp_path / "s")
        for key in (KEY_A, KEY_B, KEY_C):
            store.put(NO_PREFIX_FP, key, True, "full")
            store.flush()
            time.sleep(0.01)  # distinct segment mtimes
        store.close()
        # Hit the *oldest* segment from a fresh reader so recency inverts
        # written order: its marker stamp (now) beats the younger
        # segments' mtimes.
        reader = VerdictStore(tmp_path / "s")
        reader.get(NO_PREFIX_FP, KEY_A)
        reader.close()
        time.sleep(0.01)

        survivor = VerdictStore(tmp_path / "s")
        seg_a = survivor.get(NO_PREFIX_FP, KEY_A).segment
        one_size = max(
            p.stat().st_size for p in (tmp_path / "s").glob("seg-*.jsonl")
        )
        summary = survivor.compact(max_bytes=one_size)
        assert summary["removed_segments"] == 2
        assert summary["remaining_bytes"] <= one_size
        remaining = [p.name for p in (tmp_path / "s").glob("seg-*.jsonl")]
        assert remaining == [seg_a]  # the hit segment survived

    def test_clear_removes_everything(self, tmp_path):
        with VerdictStore(tmp_path / "s") as store:
            store.put(NO_PREFIX_FP, KEY_A, True, "full")
            store.get(NO_PREFIX_FP, KEY_A)
        (tmp_path / "s" / ".tmp-1-1").write_text("x")
        store = VerdictStore(tmp_path / "s")
        assert store.clear() >= 2
        assert len(store) == 0
        assert not list((tmp_path / "s").glob("seg-*"))
        again = VerdictStore(tmp_path / "s")
        assert len(again) == 0


class TestStats:
    def test_stats_counts_segments_and_entries(self, tmp_path):
        with VerdictStore(tmp_path / "s") as store:
            store.put(NO_PREFIX_FP, KEY_A, True, "full")
            store.put(NO_PREFIX_FP, KEY_B, False, "full", err="no")
        (tmp_path / "s" / ".tmp-1-1").write_text("x")
        stats = VerdictStore(tmp_path / "s").stats()
        assert stats.segments == 1
        assert stats.entries == 2
        assert stats.bytes > 0
        assert stats.tmp_files == 1
        assert stats.per_segment[0][1] == 2
        as_dict = stats.as_dict()
        assert as_dict["entries"] == 2
        assert as_dict["per_segment"][0]["entries"] == 2
