"""Tests for ``python -m repro cache`` and the ``--store`` CLI flag."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.store import NO_PREFIX_FP, VerdictStore

ILL_TYPED = "let f x = x + 1\nlet b = f true\n"


@pytest.fixture
def seeded_store(tmp_path):
    store_dir = tmp_path / "store"
    with VerdictStore(store_dir) as store:
        store.put(NO_PREFIX_FP, ("a",), True, "full")
        store.put(NO_PREFIX_FP, ("b",), False, "full", err="no")
    return store_dir


class TestCacheSubcommand:
    def test_stats(self, seeded_store, capsys):
        assert main(["cache", "stats", "--store", str(seeded_store)]) == 0
        out = capsys.readouterr().out
        assert f"store: {seeded_store}" in out
        assert "segments: 1  entries: 2" in out
        assert "invalidated: 0" in out

    def test_clear(self, seeded_store, capsys):
        assert main(["cache", "clear", "--store", str(seeded_store)]) == 0
        assert "cleared 1 file(s)" in capsys.readouterr().out
        assert not list(seeded_store.glob("seg-*"))

    def test_compact(self, seeded_store, capsys):
        (seeded_store / ".tmp-1-1").write_text("torn")
        assert main(["cache", "compact", "--store", str(seeded_store)]) == 0
        out = capsys.readouterr().out
        assert "1 temp file(s)" in out
        assert "1 segment(s)" in out

    def test_compact_max_bytes_zero_evicts_all(self, seeded_store, capsys):
        code = main(
            ["cache", "compact", "--store", str(seeded_store),
             "--max-bytes", "0"]
        )
        assert code == 0
        assert not list(seeded_store.glob("seg-*"))

    def test_missing_action_usage_error(self, capsys):
        assert main(["cache"]) == 2

    def test_missing_store_usage_error(self, capsys):
        assert main(["cache", "stats"]) == 2


class TestStoreFlag:
    def test_single_mode_warm_output_identical(self, tmp_path, capsys):
        source = tmp_path / "bad.ml"
        source.write_text(ILL_TYPED)
        store = tmp_path / "store"

        code_cold = main([str(source), "--store", str(store)])
        cold_out = capsys.readouterr().out
        code_warm = main([str(source), "--store", str(store)])
        warm_out = capsys.readouterr().out

        assert code_cold == code_warm
        assert warm_out == cold_out
        assert list(store.glob("seg-*.jsonl"))  # verdicts persisted

    def test_batch_mode_warm_output_identical(self, tmp_path, capsys):
        bad = tmp_path / "bad.ml"
        bad.write_text(ILL_TYPED)
        ok = tmp_path / "ok.ml"
        ok.write_text("let x = 1 + 2\n")
        store = tmp_path / "store"
        argv = ["explain", str(bad), str(ok), "--store", str(store)]

        code_cold = main(argv)
        cold_out = capsys.readouterr().out
        code_warm = main(argv)
        warm_out = capsys.readouterr().out

        assert code_cold == code_warm == 1
        # Identical up to the per-file wall-time column — the one thing a
        # cache is supposed to change.
        strip = lambda text: [
            line.rsplit("  ", 1)[0] for line in text.splitlines()
        ]
        assert strip(warm_out) == strip(cold_out)

    def test_stats_line_identical_cold_and_warm(self, tmp_path, capsys):
        source = tmp_path / "bad.ml"
        source.write_text(ILL_TYPED)
        store = tmp_path / "store"

        main([str(source), "--stats", "--store", str(store)])
        cold_out = capsys.readouterr().out
        main([str(source), "--stats", "--store", str(store)])
        warm_out = capsys.readouterr().out
        main([str(source), "--stats"])
        absent_out = capsys.readouterr().out

        assert warm_out == cold_out == absent_out
