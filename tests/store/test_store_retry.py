"""Unit tests for the verdict store's retrying segment I/O.

The store's contract under I/O faults is *degrade, never raise*: a
transient ``OSError`` is retried per the injectable policy (deterministic
backoff, recorded sleeps), and an exhausted retry turns into a skipped
segment (reads) or a dropped flush (writes) — a cache miss either way.
"""

from __future__ import annotations

import pytest

from repro.core.retry import RetryPolicy
from repro.store import VerdictStore


def _put_one(store, key="k"):
    assert store.put("prefix-fp", key, True, "full")


class FlakySeams(VerdictStore):
    """Fail the read/write seams a scripted number of times."""

    def __init__(self, path, *, read_failures=0, write_failures=0, **kwargs):
        self._read_failures = read_failures
        self._write_failures = write_failures
        super().__init__(path, **kwargs)

    def _read_segment_text(self, segment):
        if self._read_failures > 0:
            self._read_failures -= 1
            raise OSError("injected read failure")
        return super()._read_segment_text(segment)

    def _write_segment_file(self, tmp, final, body):
        if self._write_failures > 0:
            self._write_failures -= 1
            raise OSError("injected write failure")
        super()._write_segment_file(tmp, final, body)


class TestRetriedWrites:
    def test_transient_write_failure_is_retried(self, tmp_path):
        slept = []
        store = FlakySeams(
            tmp_path / "s",
            write_failures=1,
            retry_policy=RetryPolicy(attempts=3, backoff_seconds=0.01),
            sleep=slept.append,
        )
        _put_one(store)
        assert store.flush() is not None  # the retry landed the segment
        assert store.io_retries == 1
        assert store.io_errors == 0
        assert slept == [0.01]
        store.close()
        # The published segment is real: a fresh store loads it.
        fresh = VerdictStore(tmp_path / "s")
        assert len(fresh) == 1
        fresh.close()

    def test_exhausted_write_degrades_to_no_segment(self, tmp_path):
        store = FlakySeams(
            tmp_path / "s",
            write_failures=5,
            retry_policy=RetryPolicy(attempts=2, backoff_seconds=0.0),
            sleep=lambda s: None,
        )
        _put_one(store)
        assert store.flush() is None  # dropped, not raised
        assert store.io_errors == 1
        assert store.io_retries == 1
        # No half-written temp files left behind for the next run to skip.
        assert list((tmp_path / "s").glob("*.tmp-*")) == []
        store.close()


class TestRetriedReads:
    def test_transient_read_failure_is_retried(self, tmp_path):
        with VerdictStore(tmp_path / "s") as seed:
            _put_one(seed)
        slept = []
        store = FlakySeams(
            tmp_path / "s",
            read_failures=1,
            retry_policy=RetryPolicy(attempts=3, backoff_seconds=0.02),
            sleep=slept.append,
        )
        assert len(store) == 1  # the retried read loaded the segment
        assert store.io_retries == 1
        assert store.io_errors == 0
        assert store.skipped_segments == 0
        assert slept == [0.02]
        store.close()

    def test_exhausted_read_skips_the_segment(self, tmp_path):
        with VerdictStore(tmp_path / "s") as seed:
            _put_one(seed)
        store = FlakySeams(
            tmp_path / "s",
            read_failures=10,
            retry_policy=RetryPolicy(attempts=2, backoff_seconds=0.0),
            sleep=lambda s: None,
        )
        assert len(store) == 0  # degraded to a cache miss
        assert store.io_errors == 1
        assert store.skipped_segments == 1
        store.close()


class TestIoCounterHandoff:
    def test_take_io_counters_returns_and_zeroes(self, tmp_path):
        store = FlakySeams(
            tmp_path / "s",
            write_failures=1,
            retry_policy=RetryPolicy(attempts=2, backoff_seconds=0.0),
            sleep=lambda s: None,
        )
        _put_one(store)
        store.flush()
        assert store.take_io_counters() == (1, 0)
        assert store.take_io_counters() == (0, 0)
        store.close()

    def test_oracle_drains_counters_into_metrics_and_events(self, tmp_path):
        from repro.core import Oracle
        from repro.obs import MetricsRegistry

        events = []

        class Recorder:
            enabled = True

            def emit(self, type, **fields):
                events.append((type, fields))

        registry = MetricsRegistry()
        store = FlakySeams(
            tmp_path / "s",
            write_failures=5,
            retry_policy=RetryPolicy(attempts=2, backoff_seconds=0.0),
            sleep=lambda s: None,
        )
        store.flush_every = 1  # flush (and fail) on the first write
        oracle = Oracle(metrics=registry, events=Recorder())
        oracle.attach_store(store)
        from repro.miniml.parser import parse_program

        oracle.check(parse_program("let x = 1"))
        store.close()
        assert registry.value("oracle.store.io_errors") >= 1
        kinds = [kind for kind, _ in events]
        assert "store_io_error" in kinds
