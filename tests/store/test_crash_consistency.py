"""Crash consistency: a writer killed mid-run must never poison the store.

The store's publication discipline (build in ``.tmp-*``, publish with one
atomic rename) means a reader can only ever observe whole segments.  These
tests kill a writing process for real — ``os._exit`` via the fault
harness's ``crash_kind="hard-exit"``, the kill no ``except`` can catch —
and then assert the recovery story: the next reader opens cleanly, serves
whatever was published, ignores the dead writer's leftovers, and the next
run backfills the verdicts the crash lost.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

ILL_TYPED = "let f x = x + 1\nlet b = f true\n"

#: Runs in a child process: checks programs against a chaos oracle that
#: hard-exits the whole process on the Nth call, with the verdict store
#: publishing a segment per verdict (flush_every=1) so earlier answers
#: are already on disk when the kill lands.
WRITER_SCRIPT = """
import sys
from repro.core.oracle import Oracle
from repro.faults import ChaosOracle, FaultPlan
from repro.miniml.parser import parse_program
from repro.store import VerdictStore

store_dir, crash_every = sys.argv[1], int(sys.argv[2])
store = VerdictStore(store_dir, flush_every=1)
plan = FaultPlan(name="kill", crash_every=crash_every,
                 crash_kind="hard-exit")
oracle = ChaosOracle(plan, store=store)
programs = [
    "let a = 1 + 2",
    "let b = true && false",
    "let c = [1; 2; 3]",
    "let d = 1 + true",
    "let e = if 1 then 2 else 3",
    "let f x = x + 1\\nlet g = f true",
]
for source in programs:
    oracle.check(parse_program(source))
print("survived", oracle.calls)
"""


def _run_writer(store_dir, crash_every):
    return subprocess.run(
        [sys.executable, "-c", WRITER_SCRIPT, str(store_dir), str(crash_every)],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestHardExitWriter:
    def test_killed_writer_leaves_usable_store(self, tmp_path):
        from repro.store import VerdictStore

        store_dir = tmp_path / "s"
        proc = _run_writer(store_dir, crash_every=4)
        assert proc.returncode == 23  # hard-exit fired, writer is dead
        assert "survived" not in proc.stdout

        store = VerdictStore(store_dir)
        # Verdicts published before the kill are served; the run after the
        # kill never raises on whatever the corpse left behind.
        assert len(store) == 3
        assert store.skipped_segments == 0
        assert store.invalidated == 0

    def test_next_run_backfills_lost_verdicts(self, tmp_path):
        from repro.core.oracle import Oracle
        from repro.miniml.parser import parse_program
        from repro.store import VerdictStore

        store_dir = tmp_path / "s"
        assert _run_writer(store_dir, crash_every=4).returncode == 23
        before = len(VerdictStore(store_dir, read_only=True))

        oracle = Oracle(store=VerdictStore(store_dir))
        oracle.check(parse_program(ILL_TYPED))
        oracle.store.close()

        after = VerdictStore(store_dir, read_only=True)
        assert len(after) > before  # the crash-lost verdicts re-accumulate
        assert after.skipped_segments == 0

    def test_torn_tmp_from_dead_writer_is_invisible(self, tmp_path):
        from repro.store import NO_PREFIX_FP, VerdictStore

        store_dir = tmp_path / "s"
        with VerdictStore(store_dir) as store:
            store.put(NO_PREFIX_FP, ("key",), True, "full")
        # A writer that died between write() and the atomic rename leaves
        # a half-written temp file; readers must not even look at it.
        (store_dir / ".tmp-31337-1").write_text('{"v": 1, "chec')

        reader = VerdictStore(store_dir)
        assert len(reader) == 1
        assert reader.skipped_segments == 0
        assert reader.skipped_lines == 0
        # Compaction sweeps the corpse.
        assert VerdictStore(store_dir).compact()["removed_tmp"] == 1


#: Runs in a child process: publishes some verdicts, then starts a
#: segment write that blocks *between* the temp-file write and the
#: atomic rename, prints a marker, and waits for the parent's SIGINT.
#: The interrupt therefore provably lands mid-publication — the worst
#: possible moment — leaving a fully-written ``.tmp-*`` corpse behind.
INTERRUPTED_WRITER_SCRIPT = """
import os, sys, time
from repro.store import NO_PREFIX_FP, VerdictStore

class MidWriteStall(VerdictStore):
    def _write_segment_file(self, tmp, final, body):
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(body + "\\n")
        if getattr(self, "stall", False):
            print("MID-WRITE", flush=True)
            time.sleep(30)  # SIGINT lands here
        os.replace(tmp, final)

store = MidWriteStall(sys.argv[1], flush_every=1)
store.put(NO_PREFIX_FP, ("published-1",), True, "full")
store.put(NO_PREFIX_FP, ("published-2",), False, "full")
store.stall = True
store.put(NO_PREFIX_FP, ("torn",), True, "full")
print("UNREACHED", flush=True)
"""


class TestSigintWriter:
    def test_interrupt_mid_publication_leaves_store_clean(self, tmp_path):
        import os
        import signal
        import time

        from repro.store import VerdictStore

        store_dir = tmp_path / "s"
        proc = subprocess.Popen(
            [sys.executable, "-c", INTERRUPTED_WRITER_SCRIPT, str(store_dir)],
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            start_new_session=True,
        )
        line = proc.stdout.readline().strip()
        assert line == "MID-WRITE"
        os.kill(proc.pid, signal.SIGINT)
        out, _ = proc.communicate(timeout=30)
        assert "UNREACHED" not in out  # the interrupt really killed it
        assert proc.returncode != 0

        # The corpse is there — and invisible to the next run.
        tmps = list(store_dir.glob(".tmp-*"))
        assert len(tmps) == 1
        reader = VerdictStore(store_dir)
        assert len(reader) == 2  # both published verdicts, nothing torn
        assert reader.skipped_segments == 0
        assert reader.skipped_lines == 0
        assert reader.compact()["removed_tmp"] == 1
        assert list(store_dir.glob(".tmp-*")) == []
