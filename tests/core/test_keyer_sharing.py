"""One structural keyer per search (interning shared across checks).

Candidate dedup, the oracle's verdict cache, and the declaration outcome
table all key the same subtrees; before this change each kept a private
memo and re-walked shared structure.  The searcher now owns a single
:class:`~repro.tree.StructuralKeyer` per search, adopts it into the
oracle, and reports how much it interned as ``search.keys.interned``.
"""

from repro.core import Oracle
from repro.core.searcher import SearchConfig, Searcher
from repro.miniml import parse_program
from repro.obs.metrics import MetricsRegistry
from repro.tree import StructuralKeyer

ILL_TYPED = "let a = 1\nlet b = a + 1\nlet c = b ^ a"


class TestSharedKeyer:
    def test_oracle_adopts_the_search_keyer(self):
        searcher = Searcher(config=SearchConfig())
        assert searcher.oracle._keyer is searcher._keyer
        if searcher.config.dedup:
            assert searcher._dedup_keyer is searcher._keyer

    def test_adopt_refuses_custom_key_fn(self):
        oracle = Oracle(key_fn=lambda node: repr(node))
        assert oracle.adopt_keyer(StructuralKeyer()) is False

    def test_interned_property_counts_memo_entries(self):
        keyer = StructuralKeyer()
        assert keyer.interned == 0
        program = parse_program(ILL_TYPED)
        keyer(program)
        assert keyer.interned > 0

    def test_search_emits_interned_metric(self):
        metrics = MetricsRegistry()
        searcher = Searcher(
            config=SearchConfig(), oracle=Oracle(metrics=metrics), metrics=metrics
        )
        searcher.search_program(parse_program(ILL_TYPED))
        assert metrics.value("search.keys.interned") > 0

    def test_keyer_resets_between_searches(self):
        searcher = Searcher(config=SearchConfig())
        searcher.search_program(parse_program(ILL_TYPED))
        grown = searcher._keyer.interned
        assert grown > 0
        searcher.search_program(parse_program("let solo = 1 + true"))
        # A fresh search starts from a cleared memo: the second (smaller)
        # program cannot still see the first one's interned entries.
        assert searcher._keyer.interned < grown
