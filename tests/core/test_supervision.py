"""Tests for worker-pool supervision (`repro.core.parallel` + resilience).

Three layers, bottom up:

* :class:`CircuitBreaker` / :class:`RestartPolicy` unit tests under a fake
  clock — trip threshold, rolling window, half-open probing, recovery.
* Pool supervision integration: a crashing worker costs a supervised
  respawn (not a broken pool), the failed batch is recovered by bisection,
  and answers stay byte-identical to the serial run.
* Resource watchdogs: runaway checks become clean crash verdicts.
"""

from __future__ import annotations

import pytest

from repro.core import explain
from repro.core.messages import render_suggestion
from repro.core.parallel import WorkerPool
from repro.core.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RestartPolicy,
)
from repro.core.searcher import SearchConfig, Searcher
from repro.faults import FaultPlan
from repro.miniml.parser import parse_program
from repro.obs import MetricsRegistry

FIG2 = """\
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""

WELL_TYPED = "let f x = x + 1\nlet b = f 2\n"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


#: A supervision policy with zero backoff/cooldown sleeps for fast tests.
FAST = RestartPolicy(backoff_seconds=0.0, cooldown_seconds=0.0)


class TestRestartPolicy:
    def test_backoff_curve(self):
        policy = RestartPolicy(
            backoff_seconds=0.05, backoff_multiplier=2.0, max_backoff_seconds=0.15
        )
        assert [policy.backoff_for(n) for n in (1, 2, 3, 4)] == [
            0.05, 0.1, 0.15, 0.15,
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_restarts=-1),
            dict(window_seconds=0),
            dict(backoff_seconds=-0.1),
            dict(backoff_multiplier=0.9),
            dict(cooldown_seconds=-1),
            dict(hang_timeout_seconds=0),
            dict(max_probes=0),
            dict(poison_confirmations=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RestartPolicy(**kwargs)


class TestCircuitBreaker:
    def _breaker(self, **policy_kwargs):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            RestartPolicy(**policy_kwargs),
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        return breaker, clock, transitions

    def test_stays_closed_below_threshold(self):
        breaker, _, transitions = self._breaker(max_restarts=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()
        assert transitions == []

    def test_trips_open_past_threshold(self):
        breaker, _, transitions = self._breaker(max_restarts=2)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert transitions == [(BREAKER_CLOSED, BREAKER_OPEN)]

    def test_rolling_window_forgets_old_failures(self):
        breaker, clock, _ = self._breaker(max_restarts=1, window_seconds=10.0)
        breaker.record_failure()
        clock.advance(11.0)  # first failure ages out of the window
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_opens_after_cooldown(self):
        breaker, clock, transitions = self._breaker(
            max_restarts=0, cooldown_seconds=5.0
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the transition happens in allow()
        assert breaker.state == BREAKER_HALF_OPEN
        assert transitions == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
        ]

    def test_half_open_success_closes_and_clears_history(self):
        breaker, clock, _ = self._breaker(max_restarts=0, cooldown_seconds=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.recent_failures == 0

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        breaker, clock, _ = self._breaker(max_restarts=0, cooldown_seconds=2.0)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe batch failed
        assert breaker.state == BREAKER_OPEN
        clock.advance(1.0)
        assert not breaker.allow()  # fresh cool-down, not the old one
        clock.advance(1.0)
        assert breaker.allow()

    def test_success_when_closed_is_a_noop(self):
        breaker, _, transitions = self._breaker()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert transitions == []


def _signature(outcome):
    return (
        [render_suggestion(s) for s in outcome.suggestions],
        outcome.oracle_calls,
    )


class TestPoolSupervision:
    def test_crash_costs_a_restart_not_the_pool(self):
        """A hard-exit worker death is supervised: the executor respawns,
        bisection recovers the batch, and answers match the serial run."""
        serial = Searcher().search_program(parse_program(FIG2))
        registry = MetricsRegistry()
        config = SearchConfig(
            jobs=2,
            worker_fault_plan=FaultPlan(
                name="kill-worker", crash_every=3, crash_kind="hard-exit"
            ),
            supervision=FAST,
        )
        searcher = Searcher(config=config, metrics=registry)
        outcome = searcher.search_program(parse_program(FIG2))
        assert _signature(outcome) == _signature(serial)
        assert outcome.degradation.worker_crashes >= 1
        assert outcome.degradation.worker_restarts >= 1
        assert registry.value("parallel.restarts") >= 1

    def test_restart_backoff_is_bounded_and_recorded(self):
        slept = []
        pool = WorkerPool(
            2,
            supervision=RestartPolicy(
                backoff_seconds=0.05,
                backoff_multiplier=2.0,
                max_backoff_seconds=0.1,
                cooldown_seconds=0.0,
                max_restarts=100,
            ),
            sleep=slept.append,
        )
        try:
            pool._respawn_pending = True
            pool._ensure_executor()
            pool._teardown_workers()
            pool._ensure_executor()
            pool._teardown_workers()
            pool._ensure_executor()
        finally:
            pool.shutdown()
        assert pool.restarts == 3
        assert slept == [0.05, 0.1, 0.1]

    def test_breaker_trips_to_serial_then_recovers(self):
        """A restart storm trips the breaker (ready() -> False); after the
        cool-down the pool half-opens and a clean batch restores it."""
        clock = FakeClock()
        pool = WorkerPool(
            2,
            supervision=RestartPolicy(
                max_restarts=0, cooldown_seconds=10.0, backoff_seconds=0.0
            ),
            clock=clock,
            sleep=lambda s: None,
        )
        try:
            program = parse_program(WELL_TYPED)
            pool.arm(tuple(program.decls[:1]))
            assert pool.ready()
            pool.breaker.record_failure()  # one failed batch trips it
            assert not pool.ready()  # searcher drains serially now
            clock.advance(10.0)
            assert pool.ready()  # half-open: probe allowed
            verdicts = pool.check_suffixes([tuple(program.decls[1:])])
            assert verdicts[0].ok is True  # clean probe batch ...
            assert pool.breaker.state == BREAKER_CLOSED  # ... closes it
            assert pool.ready()
        finally:
            pool.shutdown()

    def test_breaker_metrics_and_events(self):
        registry = MetricsRegistry()
        events = []

        class Recorder:
            enabled = True

            def emit(self, type, **fields):
                events.append(type)

        clock = FakeClock()
        pool = WorkerPool(
            2,
            metrics=registry,
            events=Recorder(),
            supervision=RestartPolicy(max_restarts=0, cooldown_seconds=1.0),
            clock=clock,
        )
        try:
            pool.breaker.record_failure()
            clock.advance(1.0)
            pool.breaker.allow()
            pool.breaker.record_success()
        finally:
            pool.shutdown()
        assert registry.value("parallel.breaker.open") == 1
        assert registry.value("parallel.breaker.half_open") == 1
        assert registry.value("parallel.breaker.closed") == 1
        assert events == ["breaker_open", "breaker_half_open", "breaker_closed"]

    def test_searcher_drains_serially_while_breaker_open(self):
        """With the breaker permanently open (max_restarts=0 and a huge
        cool-down after one instant failure) the pooled search falls back
        to the serial oracle and still matches byte-for-byte."""
        serial = Searcher().search_program(parse_program(FIG2))
        config = SearchConfig(
            jobs=2,
            worker_fault_plan=FaultPlan(
                name="kill-worker", crash_every=1, crash_kind="hard-exit"
            ),
            supervision=RestartPolicy(
                max_restarts=0,
                cooldown_seconds=3600.0,
                backoff_seconds=0.0,
                max_probes=1,
            ),
        )
        searcher = Searcher(config=config)
        outcome = searcher.search_program(parse_program(FIG2))
        assert _signature(outcome) == _signature(serial)
        assert outcome.degradation.worker_crashes >= 1


class TestWatchdogs:
    def test_candidate_timeout_converts_hang_to_crash_verdict(self):
        """A check stalled past the per-candidate wall-clock limit comes
        back as a clean crash verdict, not a hung worker."""
        registry = MetricsRegistry()
        plan = FaultPlan(name="stall", hang_every=1, hang_seconds=5.0)
        pool = WorkerPool(
            2, metrics=registry, candidate_timeout=0.2, supervision=FAST
        )
        try:
            program = parse_program(WELL_TYPED)
            pool.arm(tuple(program.decls[:1]), fault_plan=plan)
            verdicts = pool.check_suffixes([tuple(program.decls[1:])])
        finally:
            pool.shutdown()
        assert verdicts[0] is not None
        assert verdicts[0].ok is False
        assert verdicts[0].kind == "crash"
        assert "watchdog" in verdicts[0].sample
        assert pool.watchdog_timeouts == 1
        assert registry.value("parallel.watchdog.timeouts") == 1
        assert pool.worker_hangs == 0  # caught in the worker, not by the pool

    def test_rss_ceiling_converts_hog_to_crash_verdict(self):
        """An absurdly low RSS ceiling trips on the first candidate: crash
        verdict with a watchdog sample, worker pool recycled."""
        registry = MetricsRegistry()
        pool = WorkerPool(2, metrics=registry, rss_limit_mb=1.0, supervision=FAST)
        try:
            program = parse_program(WELL_TYPED)
            pool.arm(tuple(program.decls[:1]))
            verdicts = pool.check_suffixes([tuple(program.decls[1:])])
        finally:
            pool.shutdown()
        assert verdicts[0].ok is False
        assert verdicts[0].kind == "crash"
        assert "rss" in verdicts[0].sample
        assert pool.watchdog_rss == 1
        assert registry.value("parallel.watchdog.rss") == 1

    def test_watchdog_kills_reach_the_degradation_report(self):
        # Every pooled check trips the absurd 1MiB ceiling, so each batch
        # yields exactly one watchdog crash verdict (the rest re-checked
        # serially): the search must complete well-formed, never raise,
        # and the report must carry the kills.
        result = explain(FIG2, jobs=2, worker_rss_limit_mb=1.0, supervision=FAST)
        assert isinstance(result.ok, bool)
        assert result.degradation is not None
        assert result.degradation.watchdog_kills >= 1
        assert result.degradation.degraded
        assert "watchdog_kills=" in result.degradation.summary()

    def test_hang_timeout_override_kills_a_stuck_worker(self):
        """With no candidate timeout, a genuinely hung worker is killed by
        the pool-side hang timeout and counted as a hang."""
        registry = MetricsRegistry()
        plan = FaultPlan(name="stall", hang_every=1, hang_seconds=30.0)
        pool = WorkerPool(
            2,
            metrics=registry,
            supervision=RestartPolicy(
                hang_timeout_seconds=0.3,
                backoff_seconds=0.0,
                cooldown_seconds=0.0,
                max_probes=1,
            ),
        )
        try:
            program = parse_program(WELL_TYPED)
            pool.arm(tuple(program.decls[:1]), fault_plan=plan)
            verdicts = pool.check_suffixes([tuple(program.decls[1:])])
        finally:
            pool.shutdown()
        assert verdicts == [None]  # unresolved: serial fallback territory
        assert pool.worker_hangs >= 1
        assert registry.value("parallel.worker_hangs") >= 1
