"""Integration tests for the search procedure on the paper's examples.

Each test pins both the *checker baseline* and the *SEMINAL suggestion* the
paper reports, so any regression in search, ranking, or rendering that
changes who wins on a paper example fails loudly.
"""

import pytest

from repro.core import (
    KIND_ADAPT,
    KIND_CONSTRUCTIVE,
    KIND_REMOVE,
    Oracle,
    SearchConfig,
    Searcher,
    explain,
)
from repro.miniml import parse_program
from repro.miniml.pretty import pretty


FIG2 = """
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
let ans = List.filter (fun x -> x == 0) lst
"""

FIG8 = """
let add str lst = if List.mem str lst then lst else str :: lst
let s = "hello"
let vList1 = ["a"; "b"]
let r = add vList1 s
"""

FIG9 = """
type move = For of int * (move list) | Ahead of int | Turn of int
let rec loop movelist x y dir acc =
  match movelist with
    [] -> acc
  | For (moves, lst) :: tl ->
      let rec finalLst index searchLst =
        if index = (moves - 1) then []
        else (List.nth searchLst) :: (finalLst (index + 1) searchLst)
      in loop (finalLst 0 lst) x y dir acc
  | Ahead n :: tl -> loop tl (x + n) y dir acc
  | Turn n :: tl -> loop tl x y (dir + n) acc
"""


class TestWellTyped:
    def test_ok_program_short_circuits(self):
        result = explain("let x = 1 + 2")
        assert result.ok
        assert result.suggestions == []
        assert result.oracle_calls == 1

    def test_render_ok(self):
        assert "type-checks" in explain("let x = 1").render()


class TestFigure2:
    def test_best_is_currying_fix(self):
        result = explain(FIG2)
        best = result.best
        assert best.kind == KIND_CONSTRUCTIVE
        assert best.change.rule == "curry-params"
        assert pretty(best.change.original) == "fun (x, y) -> x + y"
        assert pretty(best.change.replacement) == "fun x y -> x + y"

    def test_best_message_matches_paper(self):
        message = explain(FIG2).render_best()
        assert "Try replacing fun (x, y) -> x + y with fun x y -> x + y" in message
        assert "of type int -> int -> int" in message
        assert "let lst = map2 (fun x y -> x + y) [1; 2; 3] [4; 5; 6]" in message

    def test_not_triaged(self):
        assert not explain(FIG2).best.triaged

    def test_bad_decl_localized(self):
        # map2's definition is fine; the second declaration fails.
        assert explain(FIG2).bad_decl_index == 1

    def test_checker_location_differs_from_seminal(self):
        """The whole point: the checker blames x + y, search blames the fun."""
        result = explain(FIG2)
        assert "x + y" in result.checker_message
        assert "fun (x, y)" not in result.checker_message


class TestFigure8:
    def test_best_is_argument_swap(self):
        best = explain(FIG8).best
        assert best.change.rule == "permute-args"
        assert pretty(best.change.replacement) == "add s vList1"

    def test_message(self):
        message = explain(FIG8).render_best()
        assert "Try replacing add vList1 s with add s vList1" in message


class TestFigure9:
    def test_best_adds_missing_argument(self):
        best = explain(FIG9).best
        assert best.change.rule == "insert-arg"
        assert pretty(best.change.original) == "List.nth searchLst"
        assert "List.nth searchLst [[...]]" in pretty(best.change.replacement)

    def test_two_candidate_regions_found(self):
        # The paper: "small suggestions both in the body of finalLst and its
        # use", with the constructive one in the body ranked first.
        result = explain(FIG9)
        originals = {pretty(s.change.original) for s in result.suggestions}
        assert "List.nth searchLst" in originals
        assert any("finalLst 0 lst" in o for o in originals)


class TestAdaptation:
    SRC = """
let upper s = String.uppercase s
let f e2 e3 e4 = if upper e2 then e3 else e4
"""

    def test_adaptation_preferred_at_larger_expression(self):
        # Section 2.3: adapting ``e1 e2`` (the whole call) must outrank
        # adapting just ``e1``.
        result = explain(self.SRC)
        adaptations = [s for s in result.suggestions if s.kind == KIND_ADAPT]
        assert adaptations, "expected adaptation suggestions"
        top_adapt = adaptations[0]
        assert pretty(top_adapt.change.original) == "upper e2"

    def test_adaptation_outranks_removal(self):
        result = explain(self.SRC)
        kinds = [s.kind for s in result.suggestions]
        assert kinds.index(KIND_ADAPT) < kinds.index(KIND_REMOVE)


class TestLetNonLocalExample:
    # Section 2.1's ``let x = e1 in e2`` example: e1 has the wrong type and
    # x is used many times in e2; the checker complains at a use of x, the
    # search suggests changing e1.
    SRC = """
let f () =
  let x = "zero" in
  let a = x + 1 in
  let b = x + 2 in
  let c = x + 3 in
  a + b + c
"""

    def test_checker_blames_a_use(self):
        result = explain(self.SRC)
        assert "x" in result.checker_message

    def test_search_blames_the_binding(self):
        result = explain(self.SRC)
        originals = [pretty(s.change.original) for s in result.suggestions]
        assert '"zero"' in originals


class TestUnboundVariable:
    def test_unbound_flag_set(self):
        result = explain('let f x = print "hi"')
        assert any(s.unbound_variable == "print" for s in result.suggestions)

    def test_unbound_message(self):
        result = explain('let f x = print "hi"')
        best_unbound = [s for s in result.suggestions if s.unbound_variable]
        from repro.core.messages import render_suggestion

        assert "appears to be unbound" in render_suggestion(best_unbound[0])


class TestBudget:
    def test_budget_exhaustion_is_graceful(self):
        result = explain(FIG2, max_oracle_calls=5)
        assert not result.ok
        assert result.budget_exhausted
        assert result.oracle_calls <= 5

    def test_checker_error_still_reported_on_budget(self):
        result = explain(FIG2, max_oracle_calls=5)
        assert result.checker_message is not None


class TestConfigKnobs:
    def test_disable_adaptation(self):
        result = explain(TestAdaptation.SRC, enable_adaptation=False)
        assert all(s.kind != KIND_ADAPT for s in result.suggestions)

    def test_disabled_rules_respected(self):
        result = explain(FIG2, disabled_rules=["curry-params"])
        assert all(s.change.rule != "curry-params" for s in result.suggestions)

    def test_searcher_reuse_resets_oracle(self):
        searcher = Searcher(config=SearchConfig())
        p1 = parse_program("let x = 1 + true")
        searcher.search_program(p1)
        first_calls = searcher.oracle.calls
        searcher.search_program(p1)
        assert searcher.oracle.calls == first_calls


class TestSuggestionPrograms:
    def test_every_suggestion_program_typechecks(self):
        from repro.miniml import typecheck_program

        for src in [FIG2, FIG8, FIG9]:
            result = explain(src)
            for s in result.suggestions:
                if s.triaged:
                    continue  # triaged programs have other errors wildcarded
                assert typecheck_program(s.program).ok, pretty(s.change.replacement)

    def test_triaged_programs_typecheck_too(self):
        # Triage verifies candidates against the *reduced* program, which
        # includes the wildcards — so those must also pass.
        from repro.miniml import typecheck_program

        src = 'let f a = (3 + true) + (4 + "hi") + a'
        result = explain(src)
        for s in result.suggestions:
            assert typecheck_program(s.program).ok
