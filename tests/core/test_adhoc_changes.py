"""Tests for the ad-hoc conversion/print changes (Section 2.2's
"special cases are encouraged rather than discouraged")."""

import pytest

from repro.core import explain
from repro.core.enumerator import MiniMLEnumerator
from repro.miniml import parse_expr, typecheck_program
from repro.miniml.pretty import pretty


def rules_for(src):
    enum = MiniMLEnumerator()
    return {(cn.change.rule, pretty(cn.change.replacement)) for cn in enum.changes(parse_expr(src), ())}


class TestCatalog:
    def test_string_concat_conversion_offered(self):
        rendered = rules_for('"n = " ^ n')
        assert ("wrap-conversion", '"n = " ^ string_of_int n') in rendered

    def test_both_sides_offered(self):
        rendered = {r for r, _ in rules_for("a ^ b")}
        assert "wrap-conversion" in rendered

    def test_arith_parse_conversion_offered(self):
        rendered = rules_for("total + input")
        assert ("wrap-conversion", "total + int_of_string input") in rendered

    def test_print_family_swaps(self):
        rendered = rules_for("print_string n")
        assert ("swap-print-fn", "print_int n") in rendered
        assert ("swap-print-fn", "print_endline n") in rendered

    def test_non_print_call_not_swapped(self):
        rendered = {r for r, _ in rules_for("foo n")}
        assert "swap-print-fn" not in rendered


class TestEndToEnd:
    def test_string_of_int_fix_found_and_ranked_first(self):
        result = explain('let msg = "answer = " ^ 42')
        best = result.best
        assert best is not None
        assert best.change.rule == "wrap-conversion"
        assert pretty(best.change.replacement) == '"answer = " ^ string_of_int 42'

    def test_print_int_fix(self):
        result = explain("let u = print_string 42")
        rules = {s.change.rule for s in result.suggestions}
        assert "swap-print-fn" in rules
        best = result.best
        assert pretty(best.change.replacement) == "print_int 42"

    def test_int_of_string_fix(self):
        result = explain('let total n = n + "5"')
        rules = {s.change.rule for s in result.suggestions}
        assert "wrap-conversion" in rules

    def test_all_fix_programs_typecheck(self):
        for src in ['let msg = "x" ^ 1', "let u = print_string 3"]:
            for s in explain(src).suggestions:
                assert typecheck_program(s.program).ok
