"""Declaration outcome table: record/replay equivalence and degradation.

The table's contract mirrors the prefix snapshot's: *semantic
transparency*.  For any candidate, :func:`replay_decl_table` must return
the same verdict — and on failure, the same rendered error — as a full
:func:`typecheck_program` pass.  Staleness and fingerprint mismatches may
only ever cost speed (degrading replays to real checks), never answers.
"""

import pytest

from repro.core import Oracle, explain
from repro.core.messages import render_suggestion
from repro.corpus import generate_corpus
from repro.miniml import parse_program
from repro.miniml.infer import (
    record_decl_table,
    replay_decl_table,
    typecheck_program,
)
from repro.obs.metrics import MetricsRegistry

WELL_TYPED = """\
let base = 10
let double x = x * 2
let rec fact n = if n <= 1 then 1 else n * fact (n - 1)
let total = base + double 3
let label = "done"
"""

ILL_TYPED = """\
let base = 10
let double x = x * 2
let bad = double "nope"
let after = base + 1
"""


def _errtext(result):
    return result.error.render() if result.error is not None else None


def _assert_same(a, b):
    assert a.ok == b.ok
    assert _errtext(a) == _errtext(b)


class TestRecord:
    def test_recording_is_a_complete_check(self):
        program = parse_program(WELL_TYPED)
        table, result = record_decl_table(program)
        _assert_same(result, typecheck_program(program))
        assert table is not None
        assert len(table) == len(program.decls)

    def test_recording_stops_at_failing_decl(self):
        program = parse_program(ILL_TYPED)
        table, result = record_decl_table(program)
        assert not result.ok
        assert table is not None
        # Entries cover decls up to and including the failing one.
        assert len(table) == 3
        assert table.entries[2].error is not None


class TestReplay:
    def test_identical_program_is_pure_replay(self):
        program = parse_program(WELL_TYPED)
        table, _ = record_decl_table(program)
        replayed = replay_decl_table(program, table)
        _assert_same(replayed, typecheck_program(program))
        assert replayed.decls_replayed == len(program.decls)
        assert replayed.decls_checked == 0

    def test_recorded_failure_replays(self):
        program = parse_program(ILL_TYPED)
        table, _ = record_decl_table(program)
        replayed = replay_decl_table(program, table)
        _assert_same(replayed, typecheck_program(program))
        assert not replayed.ok

    def test_mutated_decl_rechecks_only_dependents(self):
        baseline = parse_program(WELL_TYPED)
        table, _ = record_decl_table(baseline)
        # Mutate `double` (decl 1): `total` (decl 3) uses it; `base`,
        # `fact`, `label` are independent.
        candidate_decls = list(baseline.decls)
        candidate_decls[1] = parse_program("let double x = x + x").decls[0]
        candidate = type(baseline)(candidate_decls)
        replayed = replay_decl_table(candidate, table)
        _assert_same(replayed, typecheck_program(candidate))
        assert replayed.decls_checked == 2
        assert replayed.decls_replayed == 3
        assert replayed.decls_degraded == 0

    def test_mutation_that_breaks_a_dependent_fails_identically(self):
        baseline = parse_program(WELL_TYPED)
        table, _ = record_decl_table(baseline)
        candidate_decls = list(baseline.decls)
        # `double` now returns a string: `total = base + double 3` breaks.
        candidate_decls[1] = parse_program('let double x = "two"').decls[0]
        candidate = type(baseline)(candidate_decls)
        replayed = replay_decl_table(candidate, table)
        full = typecheck_program(candidate)
        _assert_same(replayed, full)
        assert not replayed.ok

    def test_weak_scheme_replay_does_not_leak_across_passes(self):
        # `cell` is weak (value restriction).  Replaying it twice with
        # incompatible downstream mutations must not let one candidate's
        # unifications contaminate the other (or the table itself).
        src = "let cell = ref []\nlet put = cell := [1]\nlet tail = 0"
        baseline = parse_program(src)
        table, rec = record_decl_table(baseline)
        assert rec.ok and table is not None
        mk = lambda last: type(baseline)(  # noqa: E731
            list(baseline.decls[:2]) + [parse_program(last).decls[0]]
        )
        for last in ('let tail = cell := ["s"]', "let tail = cell := [2]"):
            candidate = mk(last)
            _assert_same(
                replay_decl_table(candidate, table),
                typecheck_program(candidate),
            )


class TestDegradation:
    def test_stale_table_degrades_to_full_check(self):
        program = parse_program(WELL_TYPED)
        table, _ = record_decl_table(program)
        table.stale = True
        replayed = replay_decl_table(program, table)
        _assert_same(replayed, typecheck_program(program))
        assert replayed.decls_replayed == 0
        assert replayed.decls_checked == len(program.decls)
        assert replayed.decls_degraded == len(program.decls)

    def test_corrupt_fingerprint_degrades_that_decl_onward(self):
        program = parse_program(WELL_TYPED)
        table, _ = record_decl_table(program)
        # `total` (decl 3) records an env fingerprint for `base` and
        # `double`; corrupting it must force a real check of decl 3+.
        entry = table.entries[3]
        assert entry.env_fp, "expected a non-empty used-names fingerprint"
        name = sorted(entry.env_fp)[0]
        entry.env_fp = dict(entry.env_fp, **{name: "corrupted"})
        replayed = replay_decl_table(program, table)
        _assert_same(replayed, typecheck_program(program))
        assert replayed.decls_degraded >= 1
        assert replayed.decls_checked >= 2  # decl 3 and everything after


class TestCrossCheckSweep:
    """ISSUE acceptance gate: cross_check over the corpus, zero mismatches.

    ``cross_check=True`` re-derives every table-served verdict from
    scratch in-process and raises ``IncrementalMismatch`` on any
    divergence — so a clean sweep *is* the proof."""

    @pytest.mark.parametrize("scale,seed", [(0.1, 7)])
    def test_corpus_sweep_zero_mismatches(self, scale, seed):
        corpus = generate_corpus(scale=scale, seed=seed).representatives
        crosschecked = 0
        for corpus_file in corpus:
            metrics = MetricsRegistry()
            oracle = Oracle(cross_check=True, metrics=metrics)
            checked = explain(corpus_file.program, oracle=oracle)
            plain = explain(corpus_file.program)
            assert checked.ok == plain.ok
            assert [render_suggestion(s) for s in checked.suggestions] == [
                render_suggestion(s) for s in plain.suggestions
            ]
            crosschecked += metrics.value("oracle.decl.crosschecked")
        assert crosschecked > 0
