"""Dependency pruning is invisible: corpus-wide output equivalence.

The ISSUE's acceptance bar for the declaration outcome table is *byte
identity* of everything user-visible: for every corpus representative,
with pruning on vs off, at ``jobs=1`` and ``jobs=4`` — same suggestions,
same ranks, same ``--stats`` summary, same event log.  Only the
``oracle.decl.*`` telemetry (and wall time) may differ.  Additionally the
per-declaration counters themselves must agree between ``jobs=1`` and
``jobs=4`` when pruning is on: a worker-checked candidate must account
exactly like a parent-checked one.
"""

import io
import json

import pytest

from repro.core import explain
from repro.core.messages import render_suggestion
from repro.corpus import generate_corpus
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry

CORPUS_SCALE = 0.1
CORPUS_SEED = 7

#: Metric families allowed to differ when toggling ``depprune`` — the
#: pruning telemetry itself, and keyer interning (the table interns
#: declaration keys the off-configuration never builds).
TOGGLE_SENSITIVE = ("oracle.decl.", "search.keys.interned")

#: Event fields that are run-scoped, not behaviour: wall-clock values and
#: process ids (the ``t`` field is already pinned by the injected clock).
VOLATILE_FIELDS = ("t", "pid", "wall_time", "seconds", "elapsed_seconds")


@pytest.fixture(scope="module")
def corpus_files():
    return generate_corpus(scale=CORPUS_SCALE, seed=CORPUS_SEED).representatives


def _run(program, **kwargs):
    buf = io.StringIO()
    events = EventLog(buf, clock=lambda: 0.0)
    metrics = MetricsRegistry()
    result = explain(program, metrics=metrics, events=events, **kwargs)
    events.close()
    return result, metrics, buf.getvalue()


def _events(raw):
    out = []
    for line in raw.splitlines():
        record = json.loads(line)
        for fld in VOLATILE_FIELDS:
            record.pop(fld, None)
        out.append(record)
    return out


def _visible(result):
    return (
        result.ok,
        result.bad_decl_index,
        result.oracle_calls,
        result.budget_exhausted,
        [render_suggestion(s) for s in result.suggestions],
        result.stats.summary() if result.stats is not None else None,
    )


def _stable_counters(metrics):
    return {
        k: v
        for k, v in metrics.counters().items()
        if not any(k.startswith(p) for p in TOGGLE_SENSITIVE)
    }


def _decl_counters(metrics):
    return {
        k: v for k, v in metrics.counters().items() if k.startswith("oracle.decl.")
    }


class TestSerialEquivalence:
    def test_corpus_on_vs_off_jobs1(self, corpus_files):
        replayed_total = 0
        for corpus_file in corpus_files:
            on, m_on, ev_on = _run(corpus_file.program)
            off, m_off, ev_off = _run(corpus_file.program, depprune=False)
            assert _visible(on) == _visible(off)
            assert _stable_counters(m_on) == _stable_counters(m_off)
            assert _events(ev_on) == _events(ev_off)
            assert m_off.value("oracle.decl.replayed") == 0
            replayed_total += m_on.value("oracle.decl.replayed")
        # The sweep as a whole must actually have pruned something.
        assert replayed_total > 0


class TestPooledEquivalence:
    """Pool spawns are expensive, so the jobs=4 sweep runs on the largest
    representatives — the ones whose searches actually dispatch batches."""

    def _largest(self, corpus_files, n=6):
        return sorted(
            corpus_files, key=lambda c: len(c.program.decls), reverse=True
        )[:n]

    def test_on_vs_off_jobs4(self, corpus_files):
        for corpus_file in self._largest(corpus_files):
            on, m_on, ev_on = _run(corpus_file.program, jobs=4)
            off, m_off, ev_off = _run(corpus_file.program, jobs=4, depprune=False)
            assert _visible(on) == _visible(off)
            assert _events(ev_on) == _events(ev_off)

    def test_decl_counters_jobs4_match_jobs1(self, corpus_files):
        # The tentpole's parallel contract: a worker-checked candidate
        # accounts its replay/check split exactly like a parent-checked
        # one, so the oracle.decl.* family is byte-identical across jobs.
        for corpus_file in self._largest(corpus_files):
            serial, m1, _ = _run(corpus_file.program)
            pooled, m4, _ = _run(corpus_file.program, jobs=4)
            assert _visible(serial) == _visible(pooled)
            assert _decl_counters(m1) == _decl_counters(m4)


class TestRebindingCut:
    """Shadowing probe at the full-search level: rebinding the mutated
    name keeps the suffix replayable, and both searches agree anyway."""

    SRC = (
        "let size = 4\n"
        "let bad = size + true\n"
        "let size = 100\n"
        "let uses = size * 2\n"
    )

    def test_rebound_suffix_is_pruned_and_identical(self):
        on, m_on, _ = _run(self.SRC)
        off, m_off, _ = _run(self.SRC, depprune=False)
        assert _visible(on) == _visible(off)
        assert m_on.value("oracle.decl.replayed") > 0
        assert m_on.value("oracle.decl.degraded") == 0
