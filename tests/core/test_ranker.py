"""Tests for the ranking heuristics (Sections 2.2-2.4)."""

from repro.core.changes import (
    KIND_ADAPT,
    KIND_CONSTRUCTIVE,
    KIND_REMOVE,
    Change,
    Suggestion,
)
from repro.core.enumerator import wildcard_expr
from repro.core.ranker import dedupe, rank, rank_key
from repro.miniml import parse_expr, parse_program


def make(kind, original_src, replacement_src=None, path=(), triaged=False, removed=0,
         rule=""):
    original = parse_expr(original_src)
    replacement = wildcard_expr() if replacement_src is None else parse_expr(replacement_src)
    change = Change(
        path=path,
        original=original,
        replacement=replacement,
        kind=kind,
        description="test",
        rule=rule,
    )
    program = parse_program("let x = 1")
    return Suggestion(
        change=change,
        program=program,
        triaged=triaged,
        removed_paths=[((("decls", i),)) for i in range(removed)],
    )


class TestKindOrdering:
    def test_constructive_beats_adapt_beats_removal(self):
        removal = make(KIND_REMOVE, "f x")
        adapt = make(KIND_ADAPT, "f x", "f x")
        constructive = make(KIND_CONSTRUCTIVE, "f x", "f x y")
        ranked = rank([removal, adapt, constructive])
        assert [s.kind for s in ranked] == [KIND_CONSTRUCTIVE, KIND_ADAPT, KIND_REMOVE]

    def test_triaged_always_last(self):
        triaged_constructive = make(KIND_CONSTRUCTIVE, "f x", "f y", triaged=True)
        plain_removal = make(KIND_REMOVE, "f x")
        ranked = rank([triaged_constructive, plain_removal])
        assert ranked[0] is plain_removal


class TestSizePreferences:
    def test_smaller_constructive_change_first(self):
        small = make(KIND_CONSTRUCTIVE, "x", "y")
        big = make(KIND_CONSTRUCTIVE, "f (g (h x))", "f (g (h y))")
        assert rank([big, small])[0] is small

    def test_larger_adaptation_first(self):
        # Section 2.3's inversion: prefer adapting bigger expressions.
        # Real adaptation suggestions wrap (and reuse) the original node.
        from repro.core.enumerator import adapt_expr

        small = make(KIND_ADAPT, "x", "x")
        small.change.replacement = adapt_expr(small.change.original)
        big = make(KIND_ADAPT, "f (g (h x))", "f (g (h x))")
        big.change.replacement = adapt_expr(big.change.original)
        assert rank([small, big])[0] is big

    def test_fewer_removed_siblings_first(self):
        lots = make(KIND_CONSTRUCTIVE, "x", "y", triaged=True, removed=3)
        few = make(KIND_CONSTRUCTIVE, "x", "y", triaged=True, removed=1)
        assert rank([lots, few])[0] is few


class TestCodePreservation:
    def test_swap_beats_drop(self):
        # Swapping reuses both argument subtrees; dropping loses one.
        swap = make(KIND_CONSTRUCTIVE, "f a b", "f b a", rule="permute-args")
        drop = make(KIND_CONSTRUCTIVE, "f a b", "f a", rule="drop-arg")
        # simulate subtree reuse: swap's replacement shares children
        e = parse_expr("f a b")
        from repro.miniml.ast_nodes import EApp

        swap.change.original = e
        swap.change.replacement = EApp(e.func, [e.args[1], e.args[0]])
        drop.change.original = e
        drop.change.replacement = EApp(e.func, [e.args[0]])
        assert rank([drop, swap])[0] is swap

    def test_rule_priority_breaks_ties(self):
        e = parse_expr("f a b")
        from repro.miniml.ast_nodes import EApp, ETuple

        swap = make(KIND_CONSTRUCTIVE, "f a b", "f b a", rule="permute-args")
        swap.change.original = e
        swap.change.replacement = EApp(e.func, [e.args[1], e.args[0]])
        tup = make(KIND_CONSTRUCTIVE, "f a b", "f (a, b)", rule="tuple-args")
        tup.change.original = e
        tup.change.replacement = EApp(e.func, [ETuple(list(e.args))])
        assert rank([tup, swap])[0] is swap


class TestDepthAndPosition:
    def test_deeper_changes_first(self):
        shallow = make(KIND_CONSTRUCTIVE, "x", "y", path=((("decls", 0),)))
        deep = make(
            KIND_CONSTRUCTIVE, "x", "y",
            path=(("decls", 0), ("bindings", 0), "expr", ("args", 0)),
        )
        assert rank([shallow, deep])[0] is deep

    def test_right_argument_preferred(self):
        # "a heuristic for preferring the expression on the right in a
        # function application"
        left = make(KIND_REMOVE, "x", path=(("args", 0),))
        right = make(KIND_REMOVE, "x", path=(("args", 1),))
        assert rank([left, right])[0] is right


class TestDedupe:
    def test_identical_suggestions_merged(self):
        a = make(KIND_REMOVE, "f x", path=("body",))
        b = make(KIND_REMOVE, "f x", path=("body",))
        assert len(dedupe([a, b])) == 1

    def test_different_paths_kept(self):
        a = make(KIND_REMOVE, "f x", path=("body",))
        b = make(KIND_REMOVE, "f x", path=("cond",))
        assert len(dedupe([a, b])) == 2

    def test_rank_key_is_total(self):
        suggestions = [
            make(KIND_REMOVE, "x"),
            make(KIND_ADAPT, "x", "x"),
            make(KIND_CONSTRUCTIVE, "x", "y", triaged=True),
        ]
        keys = [rank_key(s) for s in suggestions]
        assert sorted(keys)  # comparable without TypeError
