"""Regression: error messages render lazily, not once per oracle call.

A search raises (and discards) one checker error per failing candidate;
rendering each error's message eagerly walks and prints semantic types
thousands of times for text nobody reads.  The lazy contract is that
``types_to_strings`` runs only for errors whose text is actually consumed
— the handful that survive into suggestions/stats — plus the speculative
tiers' explicit freezes, never once per check.
"""

import repro.miniml.errors as errors_mod
from repro.core import explain
from repro.miniml import parse_program

BROKEN = """\
let double x = x * 2
let shout s = s ^ "!"
let xs = [1; 2; 3]
let bad = double (shout 7)
let tail = double 4
"""


class RenderCounter:
    def __init__(self, monkeypatch):
        self.calls = 0
        real = errors_mod.types_to_strings

        def counting(types):
            self.calls += 1
            return real(types)

        monkeypatch.setattr(errors_mod, "types_to_strings", counting)


def test_search_renders_far_fewer_messages_than_checks(monkeypatch):
    counter = RenderCounter(monkeypatch)
    result = explain(parse_program(BROKEN))
    assert result.oracle_calls > 20
    assert result.suggestions
    # Every failing check materializes an error object, but only the few
    # whose text is consumed (original message, surviving suggestions,
    # speculative freezes) may render.  The historical eager behaviour
    # rendered once per failing check.
    assert counter.calls < result.oracle_calls / 2, (
        f"{counter.calls} renders for {result.oracle_calls} oracle calls — "
        "error messages are being rendered eagerly"
    )


def test_discarded_error_never_renders(monkeypatch):
    from repro.miniml import typecheck_source

    counter = RenderCounter(monkeypatch)
    result = typecheck_source("let bad = 1 + true\n")
    assert not result.ok
    assert counter.calls == 0, "typechecking alone must not render"
    _ = result.error.message
    assert counter.calls == 1, "first read renders exactly once"
    _ = result.error.message
    assert counter.calls == 1, "second read is served from the cache"
