"""Tests for message rendering (the paper's Figure 2/8/9-style output)."""

import pytest

from repro.core import explain
from repro.core.messages import (
    MAX_CONTEXT_CHARS,
    context_text,
    render_report,
    render_suggestion,
    replacement_type,
)
from repro.miniml.pretty import WILDCARD_TEXT


@pytest.fixture(scope="module")
def fig2():
    return explain(
        """
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""
    )


class TestSuggestionRendering:
    def test_try_replacing_form(self, fig2):
        message = render_suggestion(fig2.best)
        assert message.startswith("Try replacing ")
        assert " with " in message
        assert "within context" in message

    def test_type_reported(self, fig2):
        assert "of type int -> int -> int" in render_suggestion(fig2.best)

    def test_context_is_whole_declaration_when_short(self, fig2):
        assert context_text(fig2.best).startswith("let lst = ")

    def test_removal_prints_wildcard(self):
        result = explain("let x = 1 + true")
        removals = [s for s in result.suggestions if s.kind == "remove"]
        assert removals
        assert WILDCARD_TEXT in render_suggestion(removals[0])

    def test_removal_reports_hole_type(self):
        result = explain("let f b = if b then 1 else true")
        removals = [s for s in result.suggestions if s.kind == "remove"]
        texts = [render_suggestion(s) for s in removals]
        assert any("of type" in t for t in texts)

    def test_adaptation_rendering(self):
        result = explain("let g f x = if f x x then 1 else 2")
        adapts = [s for s in result.suggestions if s.kind == "adapt"]
        if adapts:
            message = render_suggestion(adapts[0])
            assert "type-checks by itself" in message


class TestContextFallback:
    def test_long_declaration_falls_back_to_small_context(self):
        # A declaration whose rendering exceeds the context budget.
        items = " + ".join(f"x{i}" for i in range(40))
        src = f"let f {' '.join('x%d' % i for i in range(40))} = {items} + true"
        result = explain(src)
        assert result.best is not None
        ctx = context_text(result.best)
        assert len(ctx) <= max(MAX_CONTEXT_CHARS, len(ctx))  # never crashes
        assert "true" in ctx or WILDCARD_TEXT in ctx


class TestReplacementType:
    def test_memoized(self, fig2):
        first = replacement_type(fig2.best)
        assert first == "int -> int -> int"
        assert fig2.best.new_type == first
        assert replacement_type(fig2.best) is fig2.best.new_type


class TestReport:
    def test_report_limits_suggestions(self, fig2):
        report = render_report(fig2.suggestions, limit=2)
        assert report.count("Suggestion") == 2

    def test_report_without_suggestions_shows_checker(self):
        report = render_report([], checker_message="Unbound value x")
        assert "Unbound value x" in report

    def test_report_empty(self):
        assert render_report([], None) == "No suggestion found."

    def test_explain_render_roundtrip(self, fig2):
        text = fig2.render(3)
        assert "Suggestion 1:" in text


class TestTriageRendering:
    def test_triage_preamble_and_epilogue(self):
        result = explain('let f a = (a + true) + (4 + "hi") + (a + false)')
        triaged = [s for s in result.suggestions if s.triaged]
        assert triaged
        message = render_suggestion(triaged[0])
        assert "several type errors" in message
        assert WILDCARD_TEXT in message
