"""Tests for the constructive-change catalog (paper Figure 3)."""

import pytest

from repro.core.changes import KIND_CONSTRUCTIVE
from repro.core.enumerator import (
    MiniMLEnumerator,
    adapt_expr,
    wildcard_expr,
    wildcard_for,
    wildcard_pattern,
)
from repro.miniml import parse_expr, parse_program, typecheck_program
from repro.miniml.ast_nodes import EFun, EMatch, ERaise, PWild
from repro.miniml.pretty import WILDCARD_TEXT, pretty, pretty_expr
from repro.tree import replace_at


def rules_for(src, node=None):
    e = node if node is not None else parse_expr(src)
    enum = MiniMLEnumerator()
    return {(cn.change.rule, pretty(cn.change.replacement)) for cn in enum.changes(e, ())}


def rule_set(src):
    return {r for r, _ in rules_for(src)}


class TestWildcards:
    def test_expr_wildcard_is_raise_foo(self):
        w = wildcard_expr()
        assert isinstance(w, ERaise)
        assert w.synthetic

    def test_expr_wildcard_prints_as_hole(self):
        assert pretty_expr(wildcard_expr()) == WILDCARD_TEXT

    def test_expr_wildcard_typechecks_anywhere(self):
        prog = parse_program("let x = 1 + 2")
        target_path = (("decls", 0), ("bindings", 0), "expr")
        fixed = replace_at(prog, target_path, wildcard_expr())
        assert typecheck_program(fixed).ok

    def test_pattern_wildcard(self):
        w = wildcard_pattern()
        assert isinstance(w, PWild) and w.synthetic

    def test_wildcard_for_dispatch(self):
        assert isinstance(wildcard_for(parse_expr("1")), ERaise)
        prog = parse_program("let f x = x")
        pattern = prog.decls[0].bindings[0].expr.params[0]
        assert isinstance(wildcard_for(pattern), PWild)
        assert wildcard_for(prog.decls[0]) is None

    def test_adapt_wrapper_typechecks_when_inner_ok(self):
        # if (adapt (f x)) then ... : adapt discards the context constraint.
        prog = parse_program("let g f x = if f x then 1 else 2")
        cond_path = (("decls", 0), ("bindings", 0), "expr", "body", "cond")
        cond = prog.decls[0].bindings[0].expr.body.cond
        adapted = replace_at(prog, cond_path, adapt_expr(cond))
        assert typecheck_program(adapted).ok

    def test_adapt_prints_as_its_argument(self):
        assert pretty_expr(adapt_expr(parse_expr("f x"))) == "f x"


class TestApplicationChanges:
    """Every Figure 3 application change must appear in the catalog."""

    def test_drop_arg(self):
        assert ("drop-arg", "f a1 a3") in rules_for("f a1 a2 a3")

    def test_insert_arg(self):
        assert ("insert-arg", f"f a1 {WILDCARD_TEXT} a2 a3") in rules_for("f a1 a2 a3")

    def test_permutations_are_probe_gated(self):
        enum = MiniMLEnumerator()
        e = parse_expr("f a1 a2 a3")
        probes = [cn for cn in enum.changes(e, ()) if cn.change.is_probe]
        assert len(probes) == 1
        followups = probes[0].on_success()
        rendered = {pretty(cn.change.replacement) for cn in followups}
        assert "f a3 a2 a1" in rendered
        assert len(followups) == 5  # 3! - identity

    def test_two_arg_swap_not_gated(self):
        assert ("permute-args", "f b a") in rules_for("f a b")

    def test_nest_call(self):
        assert ("nest-call", "f (a1 a2 a3)") in rules_for("f a1 a2 a3")

    def test_tuple_args(self):
        assert ("tuple-args", "f (a1, a2, a3)") in rules_for("f a1 a2 a3")

    def test_untuple_args(self):
        assert ("untuple-args", "f a1 a2 a3") in rules_for("f (a1, a2, a3)")


class TestFunctionChanges:
    def test_curry_params(self):
        assert ("curry-params", "fun x y -> x + y") in rules_for("fun (x, y) -> x + y")

    def test_tuple_params(self):
        assert ("tuple-params", "fun (x, y) -> x + y") in rules_for("fun x y -> x + y")

    def test_add_param(self):
        assert "add-param" in rule_set("fun x -> x")

    def test_drop_param_needs_two(self):
        assert "drop-param" not in rule_set("fun x -> x")
        assert "drop-param" in rule_set("fun x y -> x")


class TestOperatorChanges:
    def test_eq_alternatives(self):
        rendered = rules_for("a = b")
        assert ("swap-operator", "a == b") in rendered
        assert ("swap-operator", "a := b") in rendered

    def test_plus_to_float_plus(self):
        assert ("swap-operator", "a +. b") in rules_for("a + b")

    def test_plus_to_concat(self):
        assert ("swap-operator", "a ^ b") in rules_for("a + b")

    def test_swap_operands(self):
        assert ("swap-operands", "b - a") in rules_for("a - b")

    def test_refupdate_to_fieldset(self):
        # Figure 3: e1.fld := e2  =>  e1.fld <- e2
        assert ("refupdate-to-fieldset", "r.fld <- v") in rules_for("r.fld := v")

    def test_fieldset_to_refupdate(self):
        assert ("fieldset-to-refupdate", "r.fld := v") in rules_for("r.fld <- v")


class TestLiteralChanges:
    def test_list_of_tuple_to_list(self):
        # Figure 3 / Section 5.3: [e1, e2, e3] => [e1; e2; e3]
        assert ("list-of-tuple-to-list", "[1; 2; 3]") in rules_for("[1, 2, 3]")

    def test_tuple_permutation_probe(self):
        enum = MiniMLEnumerator()
        e = parse_expr("(a, b, c)")
        probes = [cn for cn in enum.changes(e, ()) if cn.change.is_probe]
        assert len(probes) == 1

    def test_cons_swap(self):
        assert ("swap-cons", "xs :: x") in rules_for("x :: xs")


class TestControlChanges:
    def test_make_rec(self):
        prog = parse_program("let f x = f (x - 1)")
        enum = MiniMLEnumerator()
        rules = {cn.change.rule for cn in enum.changes(prog.decls[0], ())}
        assert "make-rec" in rules

    def test_make_rec_expr_level(self):
        assert "make-rec" in rule_set("let f x = f x in f 1")

    def test_add_else(self):
        assert "add-else" in rule_set("if c then 1")

    def test_drop_case(self):
        assert "drop-case" in rule_set("match x with 0 -> a | 1 -> b")

    def test_reparen_match_present_for_nested(self):
        src = "match x with 0 -> (match y with 1 -> a | 2 -> b) | _ -> c"
        assert "reparen-match" in rule_set(src)

    def test_reparen_match_absent_without_nesting(self):
        assert "reparen-match" not in rule_set("match x with 0 -> a | _ -> c")

    def test_qualify_name(self):
        assert ("qualify-name", "List.map") in rules_for("map")


class TestDisabledRules:
    def test_disabling_removes_rule(self):
        enum = MiniMLEnumerator(disabled_rules=["permute-args"])
        e = parse_expr("f a b")
        rules = {cn.change.rule for cn in enum.changes(e, ())}
        assert "permute-args" not in rules
        assert "drop-arg" in rules

    def test_all_changes_are_constructive_kind(self):
        enum = MiniMLEnumerator()
        for src in ["f a b", "fun (x, y) -> x", "a + b", "[1, 2]", "(a, b)"]:
            for cn in enum.changes(parse_expr(src), ()):
                assert cn.change.kind == KIND_CONSTRUCTIVE
