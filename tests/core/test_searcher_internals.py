"""Unit tests for the searcher's internal machinery (not just outcomes)."""

import pytest

from repro.core import Oracle, SearchConfig, Searcher
from repro.core.enumerator import wildcard_for
from repro.miniml import parse_program
from repro.miniml.ast_nodes import Binding, EBinop, EConst, Expr, Pattern
from repro.tree import get_at


def make_searcher(**config_kwargs):
    return Searcher(config=SearchConfig(**config_kwargs))


class TestPrefixLocalization:
    def test_first_bad_decl_found(self):
        src = "let a = 1\nlet b = a + true\nlet c = b + 1"
        searcher = make_searcher()
        program = parse_program(src)
        assert searcher._localize_bad_decl(program) == 1

    def test_error_in_first_decl(self):
        program = parse_program("let a = 1 + true\nlet b = 2")
        assert make_searcher()._localize_bad_decl(program) == 0

    def test_later_decls_never_checked(self):
        # The paper: "It does not examine the third top-level binding."
        src = "let a = 1\nlet b = a + true\nlet c = nonsense_that_is_unbound"
        searcher = make_searcher()
        outcome = searcher.search_program(parse_program(src))
        assert outcome.bad_decl_index == 1
        # All suggestions live inside declaration 1.
        for s in outcome.suggestions:
            assert s.change.path[0] == ("decls", 1)

    def test_type_decl_errors_fall_back_to_checker(self):
        # No searchable children inside a bad type declaration.
        searcher = make_searcher()
        outcome = searcher.search_program(parse_program("type t = A of nosuch"))
        assert outcome.bad_decl_index == 0
        assert outcome.checker_error is not None
        assert outcome.suggestions == []


class TestSearchableChildren:
    def test_descends_through_transparent_nodes(self):
        # Binding and MatchCase nodes are transparent; their expression and
        # pattern children are the searchable units.
        program = parse_program("let f x = match x with 0 -> 1 | n -> n")
        searcher = make_searcher()
        decl_path = (("decls", 0),)
        children = list(searcher._searchable_children(program, decl_path))
        kinds = {type(get_at(program, p)).__name__ for p in children}
        # The binding's pattern (PVar f) and its expression (EFun).
        assert "PVar" in kinds
        assert "EFun" in kinds

    def test_children_are_exprs_or_patterns(self):
        program = parse_program("let f (a, b) = a + b")
        searcher = make_searcher()
        for path in searcher._searchable_children(program, (("decls", 0),)):
            node = get_at(program, path)
            assert isinstance(node, (Expr, Pattern))


class TestBudgetDuringSearch:
    def test_partial_results_on_budget(self):
        src = """
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""
        searcher = Searcher(config=SearchConfig(max_oracle_calls=12))
        outcome = searcher.search_program(parse_program(src))
        assert outcome.budget_exhausted
        assert outcome.oracle_calls <= 12

    def test_well_typed_costs_one_call(self):
        searcher = make_searcher()
        outcome = searcher.search_program(parse_program("let x = 1"))
        assert outcome.ok
        assert outcome.oracle_calls == 1


class TestOnlyRemovalLogic:
    def test_small_node_not_triaged(self):
        # 1 + true is below the triage threshold: plain removal suggestions.
        searcher = make_searcher(triage_threshold=5)
        outcome = searcher.search_program(parse_program("let x = 1 + true"))
        assert all(not s.triaged for s in outcome.suggestions)

    def test_threshold_zero_triages_eagerly(self):
        searcher = make_searcher(triage_threshold=0)
        src = 'let f a = (a + true) + (4 + "hi")'
        outcome = searcher.search_program(parse_program(src))
        assert any(s.triaged for s in outcome.suggestions)

    def test_max_triage_depth_zero_disables_triage(self):
        searcher = make_searcher(max_triage_depth=0)
        src = 'let f a = (a + true) + (4 + "hi")'
        outcome = searcher.search_program(parse_program(src))
        assert all(not s.triaged for s in outcome.suggestions)


class TestWildcardDispatch:
    def test_exprs_and_patterns_removable(self):
        program = parse_program("let f x = x + 1")
        binding = program.decls[0].bindings[0]
        assert wildcard_for(binding.expr) is not None
        assert wildcard_for(binding.pattern) is not None
        assert wildcard_for(binding) is None
        assert wildcard_for(program.decls[0]) is None


class TestLocalizationCallCount:
    # Satellite fix: localization used to re-test the full program as the
    # final "prefix" even though search_program had just proved it fails.

    def test_no_oracle_call_for_final_prefix(self):
        # Error in the last of three declarations: only the two proper
        # prefixes are tested; the full program is already known to fail.
        src = "let a = 1\nlet b = 2\nlet c = a + true"
        searcher = make_searcher()
        outcome = searcher.search_program(parse_program(src))
        assert outcome.bad_decl_index == 2
        assert outcome.stats.prefix_tests == 2

    def test_single_decl_localized_for_free(self):
        searcher = make_searcher()
        outcome = searcher.search_program(parse_program("let a = 1 + true"))
        assert outcome.bad_decl_index == 0
        assert outcome.stats.prefix_tests == 0

    def test_early_failure_stops_at_first_bad_prefix(self):
        src = "let a = 1\nlet b = a + true\nlet c = 2\nlet d = 3"
        searcher = make_searcher()
        outcome = searcher.search_program(parse_program(src))
        assert outcome.bad_decl_index == 1
        assert outcome.stats.prefix_tests == 2


class TestAdaptBuiltOnce:
    def test_adapt_expr_called_once_per_adaptation_test(self, monkeypatch):
        # Satellite fix: step 4 used to build adapt_expr(node) twice (once
        # for the probe, once for the reported Change).  The replacement in
        # the Change must be the very object the oracle tested, so each
        # adaptation test builds the wrapper exactly once.
        import repro.core.searcher as searcher_mod
        from repro.core.changes import KIND_ADAPT

        real = searcher_mod.adapt_expr
        calls = []

        def counting(node):
            calls.append(node)
            return real(node)

        monkeypatch.setattr(searcher_mod, "adapt_expr", counting)
        src = """
let upper s = String.uppercase s
let f e2 e3 e4 = if upper e2 then e3 else e4
"""
        searcher = make_searcher()
        outcome = searcher.search_program(parse_program(src))
        adaptations = [s for s in outcome.suggestions if s.kind == KIND_ADAPT]
        assert adaptations, "expected adaptation suggestions"
        assert len(calls) == outcome.stats.adaptation_tests
        # And the accepted suggestion reports the tested object itself.
        for s in adaptations:
            from repro.tree import get_at as _get_at

            assert _get_at(s.program, s.change.path) is s.change.replacement


class TestWorklistOrder:
    def test_fifo_expansion_order(self, monkeypatch):
        # Satellite fix: the worklist moved from list.pop(0) to
        # deque.popleft() — same FIFO discipline, O(1) per pop.  Guard the
        # discipline: follow-ups are appended, not prepended.
        from repro.core.changes import Change, ChangeNode, KIND_CONSTRUCTIVE
        from repro.miniml.ast_nodes import EConst

        program = parse_program("let x = 1 + true")
        searcher = make_searcher()
        paths = [
            p
            for p in searcher._searchable_children(program, (("decls", 0),))
            if isinstance(get_at(program, p), Expr)
        ]
        path = paths[0]
        node = get_at(program, path)

        def mk(label, on_failure=None):
            change = Change(
                path=path,
                original=node,
                replacement=EConst(label, "string"),
                kind=KIND_CONSTRUCTIVE,
                description=label,
            )
            return ChangeNode(change, on_failure=on_failure)

        d = mk("D")
        b = mk("B", on_failure=lambda: [d])
        c = mk("C")
        a = mk("A", on_failure=lambda: [b, c])

        tried = []

        def spy(candidate):
            tried.append(get_at(candidate, path).value)
            return False

        monkeypatch.setattr(searcher, "_passes", spy)
        monkeypatch.setattr(searcher.enumerator, "changes", lambda n, p: [a])
        assert searcher._try_changes(program, path, node) == []
        assert tried == ["A", "B", "C", "D"]
