"""Prefix-reuse incremental typechecking: snapshot API and equivalence.

The optimization's contract is *semantic transparency*: for any program
whose first ``k`` declarations type-check, inference seeded from a
:class:`~repro.miniml.infer.PrefixSnapshot` of those ``k`` declarations
must return the same verdict — and on failure, the same rendered error —
as inference from the empty environment.  These tests exercise the
contract directly at the infer layer, then property-style over generated
corpus programs through the full search (with the oracle's ``cross_check``
assertion mode on, so every reused answer is re-derived from scratch and
compared in-process).
"""

import pytest

from repro.core import Oracle
from repro.core.messages import render_suggestion
from repro.core.seminal import explain
from repro.miniml import parse_program
from repro.miniml.ast_nodes import Program
from repro.miniml.infer import snapshot_prefix, typecheck_program

#: Ill-typed programs with at least one passing leading declaration,
#: covering the declaration forms a snapshot must capture: values,
#: functions, type declarations (constructors + arities), exceptions.
PROGRAMS = [
    "let x = 1\nlet y = x + true",
    "let f x = x + 1\nlet g = f true",
    "let pair = (1, true)\nlet s = fst pair ^ \"!\"",
    "type t = A | B of int\nlet v = B true",
    "exception Boom of int\nlet r = raise (Boom true)",
    "let id x = x\nlet twice f x = f (f x)\nlet bad = twice id true + 1",
]


def _passing_splits(program):
    """Split points whose prefix type-checks (snapshot candidates)."""
    for k in range(1, len(program.decls)):
        if typecheck_program(Program(program.decls[:k])).ok:
            yield k


class TestSnapshotApi:
    def test_matches_is_identity_based(self):
        program = parse_program("let a = 1\nlet b = a + true")
        snapshot = snapshot_prefix(program, 1)
        assert snapshot.matches(program)
        # Rewriting the suffix keeps the (shared) prefix matching.
        edited_suffix = Program(
            [program.decls[0], parse_program("let b = a").decls[0]]
        )
        assert snapshot.matches(edited_suffix)
        # An equal-looking but distinct first declaration does not match:
        # identity, not structural equality, is the (cheap, sound) test.
        edited_prefix = Program(
            [parse_program("let a = 1").decls[0], program.decls[1]]
        )
        assert not snapshot.matches(edited_prefix)

    def test_shorter_program_never_matches(self):
        program = parse_program("let a = 1\nlet b = 2\nlet c = a + true")
        snapshot = snapshot_prefix(program, 2)
        assert not snapshot.matches(Program(program.decls[:1]))

    def test_no_snapshot_for_empty_prefix(self):
        program = parse_program("let a = 1")
        assert snapshot_prefix(program, 0) is None

    def test_no_snapshot_for_failing_prefix(self):
        program = parse_program("let a = 1 + true\nlet b = 2")
        assert snapshot_prefix(program, 1) is None


class TestEquivalence:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_incremental_agrees_at_every_split(self, source):
        program = parse_program(source)
        full = typecheck_program(program)
        splits = list(_passing_splits(program))
        assert splits, "test program needs a passing prefix"
        for k in splits:
            snapshot = snapshot_prefix(program, k)
            assert snapshot is not None
            fast = typecheck_program(program, prefix=snapshot)
            assert fast.ok == full.ok
            if not full.ok:
                assert fast.error.render() == full.error.render()

    def test_well_typed_suffix_agrees(self):
        program = parse_program("let f x = x + 1\nlet g = f 2\nlet h = g + 3")
        snapshot = snapshot_prefix(program, 1)
        assert typecheck_program(program, prefix=snapshot).ok

    def test_snapshot_is_reusable_across_candidates(self):
        # One snapshot, many suffixes — the point of the optimization.
        base = parse_program("let f x = x + 1\nlet g = f true")
        snapshot = snapshot_prefix(base, 1)
        for suffix in ["let g = f 2", "let g = f true", "let g = f f"]:
            candidate = Program(
                [base.decls[0], parse_program(suffix).decls[0]]
            )
            fast = typecheck_program(candidate, prefix=snapshot)
            assert fast.ok == typecheck_program(candidate).ok


class TestFreeVariableIsolation:
    """The value restriction leaves un-generalized type variables in
    top-level schemes (``let r = ref []`` : ``'_a list ref``).  Suffix
    inference unifies through them, so each incremental check must get a
    fresh isomorphic copy — links must never leak across oracle calls."""

    def test_monomorphic_ref_does_not_leak_between_checks(self):
        base = parse_program("let r = ref []\nlet u = r := [1]")
        snapshot = snapshot_prefix(base, 1)
        assert snapshot is not None
        int_use = base
        bool_use = Program(
            [base.decls[0], parse_program("let u = r := [true]").decls[0]]
        )
        # Both suffixes pin '_a differently; with shared state the second
        # (and the re-run of the first) would spuriously fail.
        assert typecheck_program(int_use, prefix=snapshot).ok
        assert typecheck_program(bool_use, prefix=snapshot).ok
        assert typecheck_program(int_use, prefix=snapshot).ok

    def test_conflict_within_one_suffix_still_detected(self):
        program = parse_program(
            "let r = ref []\nlet u = r := [1]\nlet v = r := [true]"
        )
        snapshot = snapshot_prefix(program, 1)
        full = typecheck_program(program)
        fast = typecheck_program(program, prefix=snapshot)
        assert not full.ok
        assert fast.ok == full.ok
        assert fast.error.render() == full.error.render()


class TestCorpusAgreement:
    """Property-style: over generated corpus programs, a search with the
    incremental oracle (cross-check mode on) and a search with it disabled
    must agree bit-for-bit — same verdict, same oracle-call count, same
    rendered suggestions in the same order."""

    @pytest.fixture(scope="class")
    def corpus_programs(self):
        from repro.corpus.generator import generate_corpus

        corpus = generate_corpus(scale=0.15, seed=11)
        files = sorted(
            corpus.representatives,
            key=lambda f: len(f.program.decls),
            reverse=True,
        )
        return [f.program for f in files[:6]]

    def test_search_results_identical(self, corpus_programs):
        for program in corpus_programs:
            baseline = explain(program, incremental=False)
            checked = explain(program, oracle=Oracle(cross_check=True))
            assert checked.ok == baseline.ok
            assert checked.oracle_calls == baseline.oracle_calls
            assert checked.bad_decl_index == baseline.bad_decl_index
            assert [render_suggestion(s) for s in checked.suggestions] == [
                render_suggestion(s) for s in baseline.suggestions
            ]
