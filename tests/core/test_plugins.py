"""Tests for the open change framework (paper Section 6 future work)."""

from repro.core import (
    ChangeNode,
    MiniMLEnumerator,
    SearchConfig,
    Searcher,
    constructive_change,
    explain,
)
from repro.miniml import parse_expr, parse_program
from repro.miniml.ast_nodes import EConst, EVar
from repro.miniml.pretty import pretty


def int_to_string_literal(node, path):
    """A custom rule: try converting an int literal to its string form."""
    if isinstance(node, EConst) and node.kind == "int":
        change = constructive_change(
            path,
            node,
            EConst(str(node.value), "string"),
            "int-to-string-literal",
            "quote the number as a string",
        )
        return [ChangeNode(change)]
    return []


class TestRegistration:
    def test_register_adds_rule(self):
        enum = MiniMLEnumerator()
        enum.register(int_to_string_literal)
        changes = enum.changes(parse_expr("42"), ())
        rules = {cn.change.rule for cn in changes}
        assert "int-to-string-literal" in rules

    def test_constructor_accepts_rules(self):
        enum = MiniMLEnumerator(custom_rules=[int_to_string_literal])
        changes = enum.changes(parse_expr("42"), ())
        assert any(cn.change.rule == "int-to-string-literal" for cn in changes)

    def test_rule_consulted_for_every_node_kind(self):
        calls = []

        def spy(node, path):
            calls.append(type(node).__name__)
            return []

        enum = MiniMLEnumerator(custom_rules=[spy])
        enum.changes(parse_expr("f x"), ())
        enum.changes(parse_expr("42"), ())
        assert "EApp" in calls and "EConst" in calls

    def test_disabled_rules_filter_custom(self):
        enum = MiniMLEnumerator(
            disabled_rules=["int-to-string-literal"],
            custom_rules=[int_to_string_literal],
        )
        changes = enum.changes(parse_expr("42"), ())
        assert all(cn.change.rule != "int-to-string-literal" for cn in changes)


class TestEndToEnd:
    SRC = 'let greeting = "hello " ^ 42'

    def test_custom_rule_produces_suggestion(self):
        result = explain(self.SRC, custom_rules=[int_to_string_literal])
        rules = {s.change.rule for s in result.suggestions}
        assert "int-to-string-literal" in rules

    def test_custom_suggestion_program_typechecks(self):
        from repro.miniml import typecheck_program

        result = explain(self.SRC, custom_rules=[int_to_string_literal])
        custom = [s for s in result.suggestions if s.change.rule == "int-to-string-literal"]
        assert custom
        assert typecheck_program(custom[0].program).ok
        assert pretty(custom[0].change.replacement) == '"42"'

    def test_without_custom_rule_not_suggested(self):
        result = explain(self.SRC)
        rules = {s.change.rule for s in result.suggestions}
        assert "int-to-string-literal" not in rules

    def test_bad_custom_change_is_harmless(self):
        """A nonsensical custom change can never hurt correctness: the
        oracle simply rejects it (the paper's safety argument)."""

        def nonsense(node, path):
            if isinstance(node, EVar):
                change = constructive_change(
                    path, node, EConst(True, "bool"), "nonsense", "replace with true"
                )
                return [ChangeNode(change)]
            return []

        result = explain("let x = 1 + y", custom_rules=[nonsense])
        for s in result.suggestions:
            from repro.miniml import typecheck_program

            assert typecheck_program(s.program).ok
