"""Tests for the search-phase telemetry (SearchStats)."""

import pytest

from repro.core import SearchConfig, Searcher, SearchStats, explain
from repro.miniml import parse_program

FIG2 = """
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""

MULTI = 'let f a = (a + true) + (4 + "hi") + (a + false)'


class TestAccounting:
    def test_phases_sum_to_oracle_calls(self):
        result = explain(FIG2)
        stats = result.stats
        # +1 for the initial whole-program check the phases don't count.
        accounted = (
            stats.prefix_tests
            + stats.removal_tests
            + stats.constructive_tests
            + stats.adaptation_tests
            + stats.triage_tests
        )
        assert accounted + 1 == result.oracle_calls

    def test_multi_error_spends_on_triage(self):
        result = explain(MULTI)
        assert result.stats.triage_tests > 0

    def test_single_error_spends_nothing_on_triage(self):
        result = explain("let x = 1 + true")
        assert result.stats.triage_tests == 0

    def test_rule_successes_recorded(self):
        result = explain(FIG2)
        assert result.stats.rule_successes.get("curry-params") == 1

    def test_stats_reset_between_searches(self):
        searcher = Searcher(config=SearchConfig())
        program = parse_program(MULTI)
        first = searcher.search_program(program)
        second = searcher.search_program(program)
        assert first.stats.triage_tests == second.stats.triage_tests

    def test_well_typed_program_stats_empty(self):
        result = explain("let x = 1")
        assert result.stats is not None
        assert result.stats.constructive_tests == 0


class TestSummary:
    def test_summary_mentions_phases(self):
        stats = SearchStats(prefix_tests=2, removal_tests=5, constructive_tests=7)
        text = stats.summary()
        assert "prefix=2" in text
        assert "removal=5" in text
        assert "constructive=7" in text

    def test_summary_lists_winning_rules(self):
        stats = SearchStats()
        stats.record_success("curry-params")
        stats.record_success("curry-params")
        stats.record_success("")
        text = stats.summary()
        assert "curry-paramsx2" in text
        assert "(removal/adapt)x1" in text

    def test_phase_breakdown_matches_design_expectations(self):
        # Fig. 2's budget is dominated by constructive attempts — the
        # quantity Section 2.2's lazy collections exist to control.
        result = explain(FIG2)
        stats = result.stats
        assert stats.constructive_tests >= stats.removal_tests
