"""Tests for the generic retry helper (`repro.core.retry`).

The helper backs the verdict store's segment I/O (transient ``OSError``
must degrade to a cache miss, not an exception), so the contract here is
strict determinism: jitter-free bounded exponential backoff, an exact
attempt budget, and retries only for the allowlisted exception types.
"""

import pytest

from repro.core.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry, with_retry


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.attempts == 3
        assert policy.retryable == (OSError,)
        assert DEFAULT_RETRY_POLICY.attempts == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(attempts=0),
            dict(backoff_seconds=-0.1),
            dict(multiplier=0.5),
            dict(max_backoff_seconds=-1.0),
            dict(retryable=()),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_sequence_is_bounded_exponential(self):
        policy = RetryPolicy(
            attempts=5, backoff_seconds=0.1, multiplier=2.0,
            max_backoff_seconds=0.35,
        )
        delays = [policy.delay_for(n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.35, 0.35]  # capped, jitter-free


class TestWithRetry:
    def test_success_passes_through(self):
        slept = []
        wrapped = with_retry(lambda x: x * 2, sleep=slept.append)
        assert wrapped(21) == 42
        assert slept == []

    def test_retries_then_succeeds(self):
        slept = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, backoff_seconds=0.01, multiplier=2.0)
        assert with_retry(flaky, policy, sleep=slept.append)() == "ok"
        assert calls["n"] == 3
        assert slept == [0.01, 0.02]  # one sleep per retry, exponential

    def test_exhaustion_reraises_the_last_error(self):
        def always():
            raise OSError("persistent")

        policy = RetryPolicy(attempts=2, backoff_seconds=0.0)
        with pytest.raises(OSError, match="persistent"):
            with_retry(always, policy, sleep=lambda s: None)()

    def test_non_retryable_raises_immediately(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            with_retry(boom, sleep=lambda s: pytest.fail("must not sleep"))()
        assert calls["n"] == 1

    def test_on_retry_observer_sees_each_failure(self):
        seen = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(f"fail {calls['n']}")
            return "ok"

        with_retry(
            flaky,
            RetryPolicy(attempts=3, backoff_seconds=0.0),
            sleep=lambda s: None,
            on_retry=lambda n, err: seen.append((n, str(err))),
        )()
        assert seen == [(1, "fail 1"), (2, "fail 2")]

    def test_decorator_form(self):
        slept = []
        calls = {"n": 0}

        @retry(RetryPolicy(attempts=2, backoff_seconds=0.05), sleep=slept.append)
        def flaky(value):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("once")
            return value

        assert flaky("done") == "done"
        assert slept == [0.05]
