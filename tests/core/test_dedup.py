"""Tests for in-flight candidate dedup (``SearchConfig.dedup``).

The memo is answer-preserving by construction: a duplicate candidate's
verdict is *replayed* (suggestion recording and lazy expansions still
happen), only the redundant oracle call is skipped.  These tests pin both
halves: suggestions never change, and duplicate-heavy programs actually
skip calls (``search.dedup_skipped``).
"""

from __future__ import annotations

from repro.core import explain
from repro.core.messages import render_suggestion
from repro.corpus import generate_corpus
from repro.obs import MetricsRegistry

#: ``f`` is binary but applied to three arguments: several enumerator
#: rules (drop-an-argument variants, currying probes) propose the same
#: repaired applications, so this search tests duplicate candidates.
OVERAPPLIED = "let f x y = x + y\nlet r = f 1 1 1\n"

FIG2 = """\
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""


def _signature(result):
    return (
        result.ok,
        result.bad_decl_index,
        result.render(limit=50),
        [render_suggestion(s) for s in result.suggestions],
    )


def test_dedup_skips_duplicate_candidates():
    registry = MetricsRegistry()
    result = explain(OVERAPPLIED, metrics=registry)
    assert registry.value("search.dedup_skipped") > 0
    assert result.stats.dedup_skipped == registry.value("search.dedup_skipped")


def test_dedup_reduces_oracle_calls():
    with_dedup = explain(OVERAPPLIED)
    without = explain(OVERAPPLIED, dedup=False)
    assert with_dedup.oracle_calls < without.oracle_calls


def test_suggestions_unchanged_by_dedup():
    for source in (OVERAPPLIED, FIG2):
        with_dedup = explain(source)
        without = explain(source, dedup=False)
        assert _signature(with_dedup) == _signature(without)


def test_suggestions_unchanged_across_corpus():
    corpus = generate_corpus(scale=0.1, seed=23)
    for corpus_file in corpus.representatives:
        with_dedup = explain(corpus_file.program)
        without = explain(corpus_file.program, dedup=False)
        assert _signature(with_dedup) == _signature(without), (
            f"dedup changed answers on {corpus_file.programmer}/"
            f"{corpus_file.assignment}"
        )


def test_dedup_statistics_line():
    result = explain(OVERAPPLIED)
    assert "duplicate candidates skipped" in result.stats.summary()


def test_disabled_dedup_reports_no_skips():
    registry = MetricsRegistry()
    result = explain(OVERAPPLIED, dedup=False, metrics=registry)
    assert registry.value("search.dedup_skipped") == 0
    assert result.stats.dedup_skipped == 0


def test_memo_is_per_search():
    """Two searches on one Searcher must not leak verdicts across runs."""
    from repro.core.searcher import SearchConfig, Searcher
    from repro.miniml.parser import parse_program

    searcher = Searcher(config=SearchConfig())
    first = searcher.search_program(parse_program(OVERAPPLIED))
    second = searcher.search_program(parse_program(OVERAPPLIED))
    assert first.oracle_calls == second.oracle_calls
    assert [render_suggestion(s) for s in first.suggestions] == [
        render_suggestion(s) for s in second.suggestions
    ]


def test_dedup_works_with_parallel():
    serial = explain(OVERAPPLIED)
    pooled = explain(OVERAPPLIED, jobs=2)
    assert _signature(pooled) == _signature(serial)
    assert pooled.oracle_calls == serial.oracle_calls
    assert pooled.stats.dedup_skipped == serial.stats.dedup_skipped
