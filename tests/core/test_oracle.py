"""Tests for the type-checker oracle wrapper."""

import pytest

from repro.core.oracle import BudgetExceeded, IncrementalMismatch, Oracle
from repro.miniml import parse_program
from repro.miniml.ast_nodes import Program
from repro.obs import MetricsRegistry


@pytest.fixture
def good():
    return parse_program("let x = 1")


@pytest.fixture
def bad():
    return parse_program("let x = 1 + true")


@pytest.fixture
def two_decl_bad():
    """A passing first declaration followed by a failing second one."""
    return parse_program("let a = 1\nlet b = a + true")


class TestBasics:
    def test_passes_well_typed(self, good):
        assert Oracle().passes(good)

    def test_rejects_ill_typed(self, bad):
        assert not Oracle().passes(bad)

    def test_check_returns_error_object(self, bad):
        result = Oracle().check(bad)
        assert not result.ok
        assert result.error is not None

    def test_call_counting(self, good, bad):
        oracle = Oracle()
        oracle.passes(good)
        oracle.passes(bad)
        oracle.passes(good)
        assert oracle.calls == 3

    def test_reset(self, good):
        oracle = Oracle()
        oracle.passes(good)
        oracle.reset()
        assert oracle.calls == 0


class TestBudget:
    def test_budget_enforced(self, good):
        oracle = Oracle(max_calls=2)
        oracle.passes(good)
        oracle.passes(good)
        with pytest.raises(BudgetExceeded):
            oracle.passes(good)

    def test_budget_none_is_unlimited(self, good):
        oracle = Oracle(max_calls=None)
        for _ in range(10):
            oracle.passes(good)
        assert oracle.calls == 10


class TestCache:
    def test_cache_hits_counted(self, good):
        oracle = Oracle(cache=True)
        oracle.passes(good)
        oracle.passes(good)
        assert oracle.calls == 1
        assert oracle.cache_hits == 1

    def test_cache_keyed_on_text(self):
        oracle = Oracle(cache=True)
        # Same source text parsed twice: distinct ASTs, one oracle call.
        oracle.passes(parse_program("let x = 1"))
        oracle.passes(parse_program("let x = 1"))
        assert oracle.calls == 1

    def test_cache_distinguishes_programs(self, good, bad):
        oracle = Oracle(cache=True)
        assert oracle.passes(good)
        assert not oracle.passes(bad)
        assert oracle.calls == 2

    def test_no_cache_by_default(self, good):
        oracle = Oracle()
        oracle.passes(good)
        oracle.passes(good)
        assert oracle.calls == 2


class TestBudgetCacheInteraction:
    def test_budget_exceeded_is_not_a_cache_miss(self, good, bad):
        # The budget gate fires before miss accounting: a rejected call
        # checked nothing, so it must not count as a miss (or a call).
        oracle = Oracle(cache=True, max_calls=1)
        oracle.passes(good)
        with pytest.raises(BudgetExceeded):
            oracle.passes(bad)
        assert oracle.calls == 1
        assert oracle.cache_misses == 1

    def test_cache_hit_served_after_budget_spent(self, good):
        # A hit is free — it must be served even once the budget is gone.
        oracle = Oracle(cache=True, max_calls=1)
        assert oracle.passes(good)
        assert oracle.passes(good)
        assert oracle.cache_hits == 1
        assert oracle.calls == 1

    def test_metrics_agree_with_counters(self, good, bad):
        registry = MetricsRegistry()
        oracle = Oracle(cache=True, max_calls=1, metrics=registry)
        oracle.passes(good)
        with pytest.raises(BudgetExceeded):
            oracle.passes(bad)
        assert registry.value("oracle.cache.misses") == 1
        assert registry.value("oracle.budget_exceeded") == 1
        assert registry.value("oracle.calls") == 1


class TestCustomChecker:
    def test_pluggable_typecheck(self, good):
        """The oracle is language-agnostic: any callable works."""
        from repro.miniml.infer import CheckResult

        calls = []

        def fake(program):
            calls.append(program)
            return CheckResult(ok=True)

        oracle = Oracle(typecheck=fake)
        assert oracle.passes(good)
        assert calls == [good]

    def test_custom_typecheck_cannot_arm_prefix(self, two_decl_bad):
        # A custom checker brings no snapshot function, so prefix reuse
        # silently stays off instead of calling it with a kwarg it would
        # not understand.
        from repro.miniml.infer import CheckResult

        oracle = Oracle(typecheck=lambda program: CheckResult(ok=True))
        assert not oracle.arm_prefix(two_decl_bad, 1)
        assert not oracle.prefix_armed


class TestPrefixReuse:
    def test_arm_and_reuse(self, two_decl_bad):
        oracle = Oracle()
        assert oracle.arm_prefix(two_decl_bad, 1)
        assert oracle.prefix_armed
        assert not oracle.passes(two_decl_bad)
        assert oracle.prefix_reused == 1
        assert oracle.full_checks == 0

    def test_candidate_sharing_prefix_rides_fast_path(self, two_decl_bad):
        oracle = Oracle()
        oracle.arm_prefix(two_decl_bad, 1)
        # Same first-decl *object*, rewritten second decl: still matches.
        candidate = Program(
            [two_decl_bad.decls[0], parse_program("let b = a + 1").decls[0]]
        )
        assert oracle.passes(candidate)
        assert oracle.prefix_reused == 1
        assert oracle.prefix_armed

    def test_prefix_edit_invalidates_snapshot(self, two_decl_bad):
        oracle = Oracle()
        oracle.arm_prefix(two_decl_bad, 1)
        # An equal-looking but *distinct* first declaration: the snapshot
        # matches by identity, so this candidate edited the prefix.
        candidate = Program(
            [parse_program("let a = 1").decls[0], two_decl_bad.decls[1]]
        )
        oracle.passes(candidate)
        assert oracle.prefix_invalidated == 1
        assert not oracle.prefix_armed
        assert oracle.full_checks == 1
        # Later calls stay on the full path — no snapshot left to reuse.
        oracle.passes(two_decl_bad)
        assert oracle.full_checks == 2

    def test_same_answer_with_and_without_prefix(self, two_decl_bad):
        full = Oracle(incremental=False).check(two_decl_bad)
        incremental = Oracle()
        incremental.arm_prefix(two_decl_bad, 1)
        fast = incremental.check(two_decl_bad)
        assert incremental.prefix_reused == 1
        assert fast.ok == full.ok
        assert fast.error.render() == full.error.render()

    def test_reset_clears_snapshot_and_counters(self, two_decl_bad):
        oracle = Oracle()
        oracle.arm_prefix(two_decl_bad, 1)
        oracle.passes(two_decl_bad)
        oracle.reset()
        assert not oracle.prefix_armed
        assert oracle.prefix_reused == 0
        assert oracle.prefix_invalidated == 0
        assert oracle.full_checks == 0
        # After reset every check is a full check again.
        oracle.passes(two_decl_bad)
        assert oracle.full_checks == 1

    def test_arm_noop_when_incremental_off(self, two_decl_bad):
        oracle = Oracle(incremental=False)
        assert not oracle.arm_prefix(two_decl_bad, 1)
        oracle.passes(two_decl_bad)
        assert oracle.full_checks == 1
        assert oracle.prefix_reused == 0

    def test_arm_noop_on_empty_prefix(self, two_decl_bad):
        assert not Oracle().arm_prefix(two_decl_bad, 0)

    def test_arm_noop_when_prefix_fails(self):
        program = parse_program("let a = 1 + true\nlet b = 2")
        assert not Oracle().arm_prefix(program, 1)

    def test_prefix_metrics(self, two_decl_bad):
        registry = MetricsRegistry()
        oracle = Oracle(metrics=registry)
        oracle.arm_prefix(two_decl_bad, 1)
        oracle.passes(two_decl_bad)
        assert registry.value("oracle.prefix.armed") == 1
        assert registry.value("oracle.prefix.reused") == 1
        assert registry.value("oracle.full_checks") == 0


class TestCrossCheck:
    def test_consistent_answers_pass(self, two_decl_bad):
        registry = MetricsRegistry()
        oracle = Oracle(cross_check=True, metrics=registry)
        oracle.arm_prefix(two_decl_bad, 1)
        assert not oracle.passes(two_decl_bad)
        assert registry.value("oracle.prefix.crosschecked") == 1

    def test_divergence_raises(self, two_decl_bad):
        # A checker that answers "ok" on the incremental path but "fail"
        # from scratch must be caught by the assertion mode.
        from repro.miniml.infer import CheckResult

        class AlwaysMatches:
            def matches(self, program):
                return True

        def two_faced(program, prefix=None):
            return CheckResult(ok=prefix is not None)

        oracle = Oracle(
            typecheck=two_faced,
            snapshot_fn=lambda program, n_decls: AlwaysMatches(),
            cross_check=True,
        )
        assert oracle.arm_prefix(two_decl_bad, 1)
        with pytest.raises(IncrementalMismatch):
            oracle.check(two_decl_bad)
