"""Tests for the type-checker oracle wrapper."""

import pytest

from repro.core.oracle import BudgetExceeded, Oracle
from repro.miniml import parse_program


@pytest.fixture
def good():
    return parse_program("let x = 1")


@pytest.fixture
def bad():
    return parse_program("let x = 1 + true")


class TestBasics:
    def test_passes_well_typed(self, good):
        assert Oracle().passes(good)

    def test_rejects_ill_typed(self, bad):
        assert not Oracle().passes(bad)

    def test_check_returns_error_object(self, bad):
        result = Oracle().check(bad)
        assert not result.ok
        assert result.error is not None

    def test_call_counting(self, good, bad):
        oracle = Oracle()
        oracle.passes(good)
        oracle.passes(bad)
        oracle.passes(good)
        assert oracle.calls == 3

    def test_reset(self, good):
        oracle = Oracle()
        oracle.passes(good)
        oracle.reset()
        assert oracle.calls == 0


class TestBudget:
    def test_budget_enforced(self, good):
        oracle = Oracle(max_calls=2)
        oracle.passes(good)
        oracle.passes(good)
        with pytest.raises(BudgetExceeded):
            oracle.passes(good)

    def test_budget_none_is_unlimited(self, good):
        oracle = Oracle(max_calls=None)
        for _ in range(10):
            oracle.passes(good)
        assert oracle.calls == 10


class TestCache:
    def test_cache_hits_counted(self, good):
        oracle = Oracle(cache=True)
        oracle.passes(good)
        oracle.passes(good)
        assert oracle.calls == 1
        assert oracle.cache_hits == 1

    def test_cache_keyed_on_text(self):
        oracle = Oracle(cache=True)
        # Same source text parsed twice: distinct ASTs, one oracle call.
        oracle.passes(parse_program("let x = 1"))
        oracle.passes(parse_program("let x = 1"))
        assert oracle.calls == 1

    def test_cache_distinguishes_programs(self, good, bad):
        oracle = Oracle(cache=True)
        assert oracle.passes(good)
        assert not oracle.passes(bad)
        assert oracle.calls == 2

    def test_no_cache_by_default(self, good):
        oracle = Oracle()
        oracle.passes(good)
        oracle.passes(good)
        assert oracle.calls == 2


class TestCustomChecker:
    def test_pluggable_typecheck(self, good):
        """The oracle is language-agnostic: any callable works."""
        from repro.miniml.infer import CheckResult

        calls = []

        def fake(program):
            calls.append(program)
            return CheckResult(ok=True)

        oracle = Oracle(typecheck=fake)
        assert oracle.passes(good)
        assert calls == [good]
