"""Tests for quick-fix application and the iterative repair loop."""

import pytest

from repro.core import apply_suggestion, explain, fix_all
from repro.miniml import typecheck_source

FIG8 = """let add str lst = if List.mem str lst then lst else str :: lst
let s = "hello"
let vList1 = ["a"; "b"]
let r = add vList1 s
"""


class TestApplySuggestion:
    def test_splice_preserves_surrounding_text(self):
        result = explain(FIG8)
        fix = apply_suggestion(FIG8, result.best)
        assert fix.spliced
        # All untouched lines survive byte-for-byte (comments/layout kept).
        assert 'let s = "hello"' in fix.source
        assert "let r = add s vList1" in fix.source

    def test_result_typechecks(self):
        result = explain(FIG8)
        fix = apply_suggestion(FIG8, result.best)
        assert typecheck_source(fix.source).ok

    def test_comments_survive(self):
        src = "(* important comment *)\nlet x = 1 + true\n"
        result = explain(src)
        fix = apply_suggestion(src, result.best)
        if fix.spliced:
            assert "important comment" in fix.source

    def test_description_mentions_both_sides(self):
        result = explain(FIG8)
        fix = apply_suggestion(FIG8, result.best)
        assert "add vList1 s" in fix.description
        assert "add s vList1" in fix.description

    def test_removal_suggestion_applies(self):
        src = "let x = 1 + true\n"
        result = explain(src)
        removals = [s for s in result.suggestions if s.kind == "remove"]
        assert removals
        fix = apply_suggestion(src, removals[0])
        # The wildcard splices as real code (raise Foo), never as [[...]].
        assert "[[...]]" not in fix.source
        assert typecheck_source(fix.source).ok

    def test_triaged_suggestion_need_not_typecheck(self):
        src = 'let f a = (a + true) + (4 + "hi") + (a + false)'
        result = explain(src)
        triaged = [s for s in result.suggestions if s.triaged]
        assert triaged
        fix = apply_suggestion(src, triaged[0])
        assert fix.source  # applies without demanding a full fix


class TestFixAll:
    def test_single_error_fixed_in_one_round(self):
        result = fix_all(FIG8)
        assert result.ok
        assert result.rounds == 1
        assert typecheck_source(result.source).ok

    def test_already_ok_program(self):
        result = fix_all("let x = 1\n")
        assert result.ok
        assert result.rounds == 0
        assert result.applied == []

    def test_multi_error_program_converges(self):
        src = """let f a =
  let x = 3 + true in
  let y = 4 + "hi" in
  x + y + a
"""
        result = fix_all(src)
        assert result.ok, result.source
        assert typecheck_source(result.source).ok
        assert result.rounds >= 2  # one per isolated error

    def test_applied_log(self):
        result = fix_all(FIG8)
        assert len(result.applied) == 1
        assert "replace" in result.applied[0]

    def test_round_limit_respected(self):
        src = 'let f a = (a + true) + (4 + "hi")'
        result = fix_all(src, max_rounds=1)
        assert result.rounds <= 1

    def test_kwargs_forwarded(self):
        result = fix_all(FIG8, enable_triage=False)
        assert result.ok  # single-error file: triage irrelevant
