"""Trail speculation is invisible: corpus-wide output equivalence.

The tentpole's acceptance bar: everything user-visible is *byte
identical* with speculation on vs off, composed with every other reuse
tier — dependency pruning on/off, ``jobs=1`` vs ``jobs=4``, verdict store
cold vs warm.  Only the ``oracle.trail.*`` telemetry (plus the families
the composed toggles already own) and wall time may differ.
"""

import io
import json

import pytest

from repro.core import explain
from repro.core.messages import render_suggestion
from repro.corpus import generate_corpus
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.store import VerdictStore

CORPUS_SCALE = 0.1
CORPUS_SEED = 7

#: Metric families allowed to differ when toggling ``speculate`` (alone or
#: composed with ``depprune``): the trail telemetry itself, the pruning
#: telemetry, keyer interning, and store accounting (a warm store answers
#: checks the cold configuration re-derives).
TOGGLE_SENSITIVE = (
    "oracle.trail.",
    "oracle.decl.",
    "search.keys.interned",
    "oracle.store.",
)

VOLATILE_FIELDS = ("t", "pid", "wall_time", "seconds", "elapsed_seconds")


@pytest.fixture(scope="module")
def corpus_files():
    return generate_corpus(scale=CORPUS_SCALE, seed=CORPUS_SEED).representatives


def _run(program, **kwargs):
    buf = io.StringIO()
    events = EventLog(buf, clock=lambda: 0.0)
    metrics = MetricsRegistry()
    result = explain(program, metrics=metrics, events=events, **kwargs)
    events.close()
    return result, metrics, buf.getvalue()


def _events(raw):
    out = []
    for line in raw.splitlines():
        record = json.loads(line)
        for fld in VOLATILE_FIELDS:
            record.pop(fld, None)
        out.append(record)
    return out


def _visible(result):
    return (
        result.ok,
        result.bad_decl_index,
        result.oracle_calls,
        result.budget_exhausted,
        [render_suggestion(s) for s in result.suggestions],
        result.stats.summary() if result.stats is not None else None,
    )


def _stable_counters(metrics):
    return {
        k: v
        for k, v in metrics.counters().items()
        if not any(k.startswith(p) for p in TOGGLE_SENSITIVE)
    }


class TestSerialEquivalence:
    def test_corpus_speculate_on_vs_off(self, corpus_files):
        speculated_total = 0
        for corpus_file in corpus_files:
            on, m_on, ev_on = _run(corpus_file.program)
            off, m_off, ev_off = _run(corpus_file.program, speculate=False)
            assert _visible(on) == _visible(off)
            assert _stable_counters(m_on) == _stable_counters(m_off)
            assert _events(ev_on) == _events(ev_off)
            assert m_off.value("oracle.trail.speculated") == 0
            assert m_on.value("oracle.trail.fallbacks") == 0
            speculated_total += m_on.value("oracle.trail.speculated")
        # The sweep as a whole must actually have speculated something.
        assert speculated_total > 0

    def test_corpus_speculate_without_depprune(self, corpus_files):
        # Speculation must compose with the decl table *off* too: the
        # snapshot tier's live-state checks are then the only speculative
        # path, and outputs still match the fully-copying configuration.
        for corpus_file in corpus_files:
            on, m_on, ev_on = _run(corpus_file.program, depprune=False)
            off, m_off, ev_off = _run(
                corpus_file.program, depprune=False, speculate=False
            )
            assert _visible(on) == _visible(off)
            assert _stable_counters(m_on) == _stable_counters(m_off)
            assert _events(ev_on) == _events(ev_off)

    def test_both_toggles_off_is_the_same_answer(self, corpus_files):
        # Anchor the whole 2x2: the all-on default equals the all-off
        # (copy-everything) configuration.
        for corpus_file in corpus_files[::3]:
            on, _, ev_on = _run(corpus_file.program)
            off, _, ev_off = _run(
                corpus_file.program, speculate=False, depprune=False
            )
            assert _visible(on) == _visible(off)
            assert _events(ev_on) == _events(ev_off)


class TestPooledEquivalence:
    """jobs=4 on the largest representatives (the ones that dispatch
    batches): speculation must not perturb the pooled protocol either."""

    def _largest(self, corpus_files, n=4):
        return sorted(
            corpus_files, key=lambda c: len(c.program.decls), reverse=True
        )[:n]

    def test_speculate_on_vs_off_jobs4(self, corpus_files):
        for corpus_file in self._largest(corpus_files):
            on, _, ev_on = _run(corpus_file.program, jobs=4)
            off, _, ev_off = _run(corpus_file.program, jobs=4, speculate=False)
            assert _visible(on) == _visible(off)
            assert _events(ev_on) == _events(ev_off)

    def test_jobs4_matches_jobs1_with_speculation(self, corpus_files):
        def sans_jobs(events):
            # The search_started event echoes the jobs *configuration*;
            # everything else must match across pool sizes.
            return [{k: v for k, v in e.items() if k != "jobs"} for e in events]

        for corpus_file in self._largest(corpus_files):
            serial, _, ev1 = _run(corpus_file.program)
            pooled, _, ev4 = _run(corpus_file.program, jobs=4)
            assert _visible(serial) == _visible(pooled)
            assert sans_jobs(_events(ev1)) == sans_jobs(_events(ev4))


class TestStoreEquivalence:
    """Cold vs warm verdict store, speculation on vs off: same answers,
    and the warm pass actually serves from disk."""

    def _sample(self, corpus_files, n=5):
        return sorted(
            corpus_files, key=lambda c: len(c.program.decls), reverse=True
        )[:n]

    def test_cold_and_warm_match_across_toggle(self, corpus_files, tmp_path):
        for i, corpus_file in enumerate(self._sample(corpus_files)):
            on_dir = tmp_path / f"on-{i}"
            off_dir = tmp_path / f"off-{i}"
            with VerdictStore(on_dir) as store:
                cold_on, _, _ = _run(corpus_file.program, store=store)
            with VerdictStore(on_dir) as store:
                warm_on, m_warm, _ = _run(corpus_file.program, store=store)
            with VerdictStore(off_dir) as store:
                cold_off, _, _ = _run(
                    corpus_file.program, store=store, speculate=False
                )
            with VerdictStore(off_dir) as store:
                warm_off, _, _ = _run(
                    corpus_file.program, store=store, speculate=False
                )
            assert (
                _visible(cold_on)
                == _visible(warm_on)
                == _visible(cold_off)
                == _visible(warm_off)
            )
            assert m_warm.value("oracle.store.hits") > 0
