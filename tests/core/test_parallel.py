"""Tests for the parallel candidate-checking layer (`repro.core.parallel`).

The contract under test, in order of importance:

* **Determinism** — any ``jobs`` value produces byte-identical results
  (rendered reports, suggestion order, oracle-call counts, budget
  behaviour) to the serial default, across the corpus.
* **Crash isolation** — a dying worker process (including a hard
  ``os._exit``) degrades the search, never raises, and the answers still
  match the serial run because unchecked candidates fall back to the
  parent oracle.
* **Serial purity** — ``jobs=1`` never constructs a pool: the pre-parallel
  code path runs verbatim.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core import explain, explain_many
from repro.core.messages import render_suggestion
from repro.core.parallel import AUTO_JOBS, WorkerPool, resolve_jobs
from repro.core.searcher import SearchConfig, Searcher
from repro.corpus import generate_corpus
from repro.faults import FaultPlan
from repro.miniml.parser import parse_program
from repro.obs import MetricsRegistry

FIG2 = """\
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""

ILL_TYPED = "let f x = x + 1\nlet b = f true\n"
WELL_TYPED = "let f x = x + 1\nlet b = f 2\n"
PARSE_ERROR = "let let = ("


def _signature(result):
    return (
        result.ok,
        result.bad_decl_index,
        result.oracle_calls,
        result.render(limit=50),
        [render_suggestion(s) for s in result.suggestions],
    )


class TestResolveJobs:
    def test_serial_values(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_explicit_count(self):
        assert resolve_jobs(4) == 4
        assert resolve_jobs("3") == 3

    def test_auto_is_cpu_count(self):
        assert resolve_jobs(AUTO_JOBS) == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -1, "many", 1.5])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad)


class TestWorkerPool:
    def test_unarmed_pool_answers_unchecked(self):
        pool = WorkerPool(2)
        try:
            assert pool.check_suffixes([("anything",)]) == [None]
        finally:
            pool.shutdown()

    def test_empty_batch(self):
        pool = WorkerPool(2)
        try:
            assert pool.check_suffixes([]) == []
        finally:
            pool.shutdown()

    def test_checks_real_suffixes(self):
        good = parse_program(WELL_TYPED)
        bad = parse_program(ILL_TYPED)
        pool = WorkerPool(2)
        try:
            pool.arm(tuple(good.decls[:1]))
            verdicts = pool.check_suffixes(
                [tuple(good.decls[1:]), tuple(bad.decls[1:])]
            )
            assert [v.ok for v in verdicts] == [True, False]
            # Workers arm the incremental prefix, so both checks ride it.
            assert [v.kind for v in verdicts] == ["reused", "reused"]
            assert pool.batches == 1
            assert pool.candidates == 2
        finally:
            pool.shutdown()

    def test_broken_pool_short_circuits(self):
        pool = WorkerPool(2)
        pool.broken = True
        try:
            program = parse_program(WELL_TYPED)
            pool.arm(tuple(program.decls[:1]))
            assert pool.check_suffixes([tuple(program.decls[1:])]) == [None]
        finally:
            pool.shutdown()

    def test_counts_into_metrics(self):
        registry = MetricsRegistry()
        program = parse_program(WELL_TYPED)
        pool = WorkerPool(2, metrics=registry)
        try:
            pool.arm(tuple(program.decls[:1]))
            pool.check_suffixes([tuple(program.decls[1:])])
        finally:
            pool.shutdown()
        assert registry.value("parallel.batches") == 1
        assert registry.value("parallel.candidates") == 1


class TestDeterminism:
    def test_fig2_byte_identical(self):
        serial = explain(FIG2)
        pooled = explain(FIG2, jobs=2)
        assert _signature(pooled) == _signature(serial)
        assert not pooled.degraded

    def test_corpus_byte_identical(self):
        corpus = generate_corpus(scale=0.15, seed=11)
        for corpus_file in corpus.representatives:
            serial = explain(corpus_file.program)
            pooled = explain(corpus_file.program, jobs=2)
            assert _signature(pooled) == _signature(serial), (
                f"parallel diverged on {corpus_file.programmer}/"
                f"{corpus_file.assignment}"
            )

    def test_budget_exhaustion_matches_serial(self):
        serial = explain(FIG2, max_oracle_calls=12)
        pooled = explain(FIG2, max_oracle_calls=12, jobs=2)
        assert serial.budget_exhausted
        assert pooled.budget_exhausted
        assert _signature(pooled) == _signature(serial)

    def test_no_triage_configuration_matches(self):
        serial = explain(FIG2, enable_triage=False)
        pooled = explain(FIG2, enable_triage=False, jobs=2)
        assert _signature(pooled) == _signature(serial)

    def test_non_incremental_matches(self):
        serial = explain(FIG2, incremental=False)
        pooled = explain(FIG2, incremental=False, jobs=2)
        assert _signature(pooled) == _signature(serial)

    def test_parallel_telemetry_counted(self):
        registry = MetricsRegistry()
        explain(FIG2, jobs=2, metrics=registry)
        assert registry.value("parallel.batches") > 0
        assert registry.value("parallel.candidates") > 0
        assert registry.value("parallel.worker_crashes") == 0


class TestSerialPurity:
    def test_jobs_1_never_builds_a_pool(self, monkeypatch):
        """The default path must be the exact pre-parallel code: if a pool
        is ever constructed with jobs=1, that's a regression."""

        def boom(*args, **kwargs):  # pragma: no cover - the assertion
            raise AssertionError("WorkerPool constructed on the serial path")

        import repro.core.searcher as searcher_mod

        monkeypatch.setattr(searcher_mod, "WorkerPool", boom)
        result = explain(FIG2)  # default jobs=1
        assert result.suggestions

    def test_pool_is_released_after_search(self):
        searcher = Searcher(config=SearchConfig(jobs=2))
        searcher.search_program(parse_program(FIG2))
        assert searcher._pool is None


class TestCrashIsolation:
    def test_hard_exit_worker_degrades_not_raises(self):
        """A worker killed outright (os._exit) marks the pool broken; the
        search finishes serially with byte-identical answers."""
        serial = Searcher().search_program(parse_program(FIG2))
        config = SearchConfig(
            jobs=2,
            worker_fault_plan=FaultPlan(
                name="kill-worker", crash_every=3, crash_kind="hard-exit"
            ),
        )
        searcher = Searcher(config=config)
        outcome = searcher.search_program(parse_program(FIG2))
        assert outcome.degradation.worker_crashes >= 1
        assert outcome.degradation.degraded
        assert [render_suggestion(s) for s in outcome.suggestions] == [
            render_suggestion(s) for s in serial.suggestions
        ]
        assert outcome.oracle_calls == serial.oracle_calls

    def test_soft_worker_crash_stays_isolated(self):
        """Exception-flavoured faults in workers are absorbed by the worker
        oracle's own crash guard — the pool stays up, verdicts keep the
        crash-as-rejection semantics of a serial chaos run."""
        plan = FaultPlan(name="chaos", crash_every=4)
        from repro.faults import ChaosOracle

        serial = explain(FIG2, oracle=ChaosOracle(plan))
        config = SearchConfig(jobs=2, worker_fault_plan=plan)
        searcher = Searcher(oracle=ChaosOracle(plan), config=config)
        outcome = searcher.search_program(parse_program(FIG2))
        assert outcome.degradation.worker_crashes == 0

    def test_worker_crash_metric(self):
        registry = MetricsRegistry()
        config = SearchConfig(
            jobs=2,
            worker_fault_plan=FaultPlan(
                name="kill-worker", crash_every=2, crash_kind="hard-exit"
            ),
        )
        searcher = Searcher(config=config, metrics=registry)
        searcher.search_program(parse_program(FIG2))
        assert registry.value("parallel.worker_crashes") >= 1


class TestExplainMany:
    SOURCES = [FIG2, WELL_TYPED, PARSE_ERROR, ILL_TYPED]
    LABELS = ["fig2.ml", "ok.ml", "broken.ml", "bool.ml"]

    def test_serial_batch_order_and_outcomes(self):
        entries = explain_many(self.SOURCES, self.LABELS)
        assert [e.label for e in entries] == self.LABELS
        assert [e.ok for e in entries] == [False, True, False, False]
        assert entries[2].error is not None
        assert entries[0].suggestions > 0
        assert entries[0].result is not None

    def test_parallel_batch_matches_serial(self):
        serial = explain_many(self.SOURCES, self.LABELS)
        parallel = explain_many(self.SOURCES, self.LABELS, jobs=2)
        assert [e.label for e in parallel] == [e.label for e in serial]
        assert [e.report for e in parallel] == [e.report for e in serial]
        assert [e.best for e in parallel] == [e.best for e in serial]
        assert [e.oracle_calls for e in parallel] == [
            e.oracle_calls for e in serial
        ]

    def test_parallel_batch_uses_workers(self):
        entries = explain_many([FIG2, ILL_TYPED], jobs=2)
        pids = {e.worker_pid for e in entries}
        assert os.getpid() not in pids

    def test_default_labels(self):
        entries = explain_many([WELL_TYPED])
        assert entries[0].label == "program[0]"

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            explain_many([WELL_TYPED], ["a", "b"])

    def test_results_are_picklable(self):
        """Full ExplainResults (including checker errors with node/type
        payloads) must survive the process boundary."""
        for source in (FIG2, ILL_TYPED):
            result = explain(source)
            clone = pickle.loads(pickle.dumps(result))
            assert clone.checker_message == result.checker_message
            assert len(clone.suggestions) == len(result.suggestions)

    def test_parallel_batch_ships_full_results(self):
        entries = explain_many([ILL_TYPED], jobs=2)
        assert entries[0].result is not None
        assert entries[0].result.checker_message
