"""The fault-tolerance layer: deadlines, crash isolation, self-healing.

The contract under test (see ``repro.core.resilience``): budget or deadline
exhaustion and oracle crashes never escape ``explain()`` — the caller always
gets the suggestions found so far plus an accurate ``DegradationReport``.
"""

import sys

import pytest

from repro.core import (
    BudgetExceeded,
    Deadline,
    DeadlineExceeded,
    DegradationReport,
    IncrementalMismatch,
    Oracle,
    REASON_BUDGET,
    REASON_CRASH,
    REASON_DEADLINE,
    REASON_FALLBACK,
    SearchConfig,
    Searcher,
    explain,
)
from repro.miniml.infer import CheckResult
from repro.miniml.parser import parse_program


class FakeClock:
    """A hand-cranked monotonic clock for deterministic deadline tests."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


TWO_DECLS = "let x = 1\nlet y = x + true"


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_elapsed_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.elapsed() == 0.0
        assert deadline.remaining() == 10.0
        clock.advance(4.0)
        assert deadline.elapsed() == 4.0
        assert deadline.remaining() == 6.0

    def test_expiry(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert not deadline.expired()
        clock.advance(0.999)
        assert not deadline.expired()
        clock.advance(0.001)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_soft_horizon_before_hard(self):
        clock = FakeClock()
        deadline = Deadline(1.0, soft_fraction=0.85, clock=clock)
        clock.advance(0.84)
        assert not deadline.soft_expired()
        clock.advance(0.02)
        assert deadline.soft_expired()
        assert not deadline.expired()

    def test_none_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired()
        assert not deadline.soft_expired()
        assert deadline.remaining() is None
        assert deadline.elapsed() == pytest.approx(1e9)

    def test_remaining_clamped_at_zero(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        assert deadline.remaining() == 0.0


# ---------------------------------------------------------------------------
# DegradationReport
# ---------------------------------------------------------------------------


class TestDegradationReport:
    def test_fresh_report_is_not_degraded(self):
        report = DegradationReport()
        assert not report.degraded
        assert report.summary() == "search degradation: none"

    def test_note_is_idempotent_and_ordered(self):
        report = DegradationReport()
        report.note(REASON_DEADLINE)
        report.note(REASON_CRASH)
        report.note(REASON_DEADLINE)
        assert report.reasons == [REASON_DEADLINE, REASON_CRASH]
        assert report.degraded

    def test_note_shed_counts(self):
        report = DegradationReport()
        report.note_shed("triage")
        report.note_shed("triage")
        report.note_shed("constructive")
        assert report.phases_shed == {"triage": 2, "constructive": 1}

    def test_summary_mentions_everything(self):
        report = DegradationReport(
            reasons=[REASON_BUDGET, REASON_CRASH],
            oracle_crashes=3,
            prefix_fallbacks=1,
            depth_rejections=2,
            phases_shed={"triage": 4},
            elapsed_seconds=1.5,
            deadline_seconds=2.0,
        )
        text = report.summary()
        assert "degraded (budget+crash)" in text
        assert "crashes=3" in text
        assert "prefix_fallbacks=1" in text
        assert "depth_rejections=2" in text
        assert "shed=triagex4" in text
        assert "elapsed=1.500s" in text
        assert "deadline=2s" in text


# ---------------------------------------------------------------------------
# Oracle crash isolation
# ---------------------------------------------------------------------------


def _crashy_typecheck(crash_on):
    """A checker that raises on programs whose id is in ``crash_on``."""

    def typecheck(program, prefix=None):
        if id(program) in crash_on:
            raise RuntimeError("checker exploded")
        return CheckResult(ok=True)

    return typecheck


class TestCrashIsolation:
    def test_crash_becomes_candidate_rejected(self):
        program = parse_program("let x = 1")
        oracle = Oracle(typecheck=_crashy_typecheck({id(program)}))
        result = oracle.check(program)
        assert result.ok is False
        assert oracle.crashes == 1
        assert len(oracle.crash_samples) == 1
        assert "checker exploded" in oracle.crash_samples[0]

    def test_strict_mode_propagates(self):
        program = parse_program("let x = 1")
        oracle = Oracle(typecheck=_crashy_typecheck({id(program)}), strict=True)
        with pytest.raises(RuntimeError):
            oracle.check(program)

    def test_crash_samples_are_bounded(self):
        def always_crash(program, prefix=None):
            raise ValueError("boom")

        oracle = Oracle(typecheck=always_crash, crash_sample_limit=2)
        program = parse_program("let x = 1")
        for _ in range(5):
            assert oracle.check(program).ok is False
        assert oracle.crashes == 5
        assert len(oracle.crash_samples) == 2

    def test_budget_exceeded_still_raises(self):
        oracle = Oracle(max_calls=0)
        with pytest.raises(BudgetExceeded):
            oracle.check(parse_program("let x = 1"))

    def test_recursion_error_is_isolated(self):
        def deep_crash(program, prefix=None):
            raise RecursionError("maximum recursion depth exceeded")

        oracle = Oracle(typecheck=deep_crash)
        assert oracle.check(parse_program("let x = 1")).ok is False
        assert oracle.crashes == 1

    def test_reset_clears_crash_accounting(self):
        def always_crash(program, prefix=None):
            raise ValueError("boom")

        oracle = Oracle(typecheck=always_crash)
        oracle.check(parse_program("let x = 1"))
        oracle.reset()
        assert oracle.crashes == 0
        assert oracle.crash_samples == []


# ---------------------------------------------------------------------------
# Self-healing incremental mode
# ---------------------------------------------------------------------------


class _ExplodingSnapshot:
    """Matches every candidate but explodes when inference touches it."""

    def matches(self, program):
        return True

    def __getattr__(self, name):
        raise RuntimeError(f"poisoned snapshot: {name}")


class TestSelfHealing:
    def _oracle_with_poisoned_snapshot(self, **kwargs):
        # The real typecheck_program only touches the snapshot when given
        # one, so the poison fires exactly on the incremental fast path.
        oracle = Oracle(
            snapshot_fn=lambda program, n: _ExplodingSnapshot(), **kwargs
        )
        program = parse_program(TWO_DECLS)
        assert oracle.arm_prefix(program, 1)
        return oracle, program

    def test_poisoned_snapshot_falls_back_to_full_check(self):
        oracle, program = self._oracle_with_poisoned_snapshot()
        result = oracle.check(program)
        # The from-scratch answer, not a crash: y = x + true is ill-typed.
        assert result.ok is False
        assert result.error is not None
        assert oracle.prefix_fallbacks == 1
        assert oracle.crashes == 1
        assert not oracle.prefix_armed  # healed away, not retried forever

    def test_fallback_happens_once_then_stays_full(self):
        oracle, program = self._oracle_with_poisoned_snapshot()
        oracle.check(program)
        oracle.check(program)
        assert oracle.prefix_fallbacks == 1
        assert oracle.full_checks == 2

    def test_strict_mode_propagates_snapshot_crash(self):
        oracle, program = self._oracle_with_poisoned_snapshot(strict=True)
        with pytest.raises(RuntimeError):
            oracle.check(program)

    def test_crashing_snapshot_fn_is_isolated(self):
        def bad_snapshot(program, n):
            raise RuntimeError("snapshot bug")

        oracle = Oracle(snapshot_fn=bad_snapshot)
        program = parse_program(TWO_DECLS)
        assert oracle.arm_prefix(program, 1) is False
        assert oracle.crashes == 1
        assert not oracle.prefix_armed

    def test_cross_check_mismatch_still_raises(self):
        # The assertion mode must survive the crash guard: a divergence is
        # a soundness bug, not a fault to degrade through.
        class LyingSnapshot:
            def matches(self, program):
                return True

        def lying_typecheck(program, prefix=None):
            if prefix is not None:
                return CheckResult(ok=True)  # incremental says yes
            return CheckResult(ok=False)  # from-scratch says no

        oracle = Oracle(
            typecheck=lying_typecheck,
            snapshot_fn=lambda program, n: LyingSnapshot(),
            cross_check=True,
        )
        program = parse_program(TWO_DECLS)
        assert oracle.arm_prefix(program, 1)
        with pytest.raises(IncrementalMismatch):
            oracle.check(program)


# ---------------------------------------------------------------------------
# Memo keys are scoped to the prefix generation (the satellite fix)
# ---------------------------------------------------------------------------


class TestPrefixGenerationMemoKeys:
    def test_rearming_invalidates_cached_verdicts(self):
        program = parse_program(TWO_DECLS)
        oracle = Oracle(cache=True)
        oracle.check(program)
        assert oracle.cache_misses == 1
        oracle.check(program)
        assert oracle.cache_hits == 1
        # Arming a prefix starts a new snapshot regime: the old verdict
        # must not be served even though the program is byte-identical.
        oracle.arm_prefix(program, 1)
        oracle.check(program)
        assert oracle.cache_misses == 2

    def test_healed_snapshot_never_serves_stale_verdict(self):
        # A check that heals the snapshot mid-call computed its result
        # from scratch — it must be cached under the *new* generation.
        oracle = Oracle(
            cache=True, snapshot_fn=lambda program, n: _ExplodingSnapshot()
        )
        program = parse_program(TWO_DECLS)
        oracle.arm_prefix(program, 1)
        gen_at_lookup = oracle._prefix_gen
        oracle.check(program)  # heals: bumps the generation mid-call
        assert oracle._prefix_gen > gen_at_lookup
        assert (gen_at_lookup, oracle._key(program)) not in oracle._cache
        assert (oracle._prefix_gen, oracle._key(program)) in oracle._cache
        # And the post-heal hit serves the from-scratch verdict.
        hits_before = oracle.cache_hits
        assert oracle.check(program).ok is False
        assert oracle.cache_hits == hits_before + 1

    def test_reset_restarts_generation(self):
        oracle = Oracle(cache=True)
        program = parse_program(TWO_DECLS)
        oracle.arm_prefix(program, 1)
        oracle.reset()
        assert oracle._prefix_gen == 0


# ---------------------------------------------------------------------------
# Depth pre-check
# ---------------------------------------------------------------------------


def _deep_program(depth: int):
    from repro.miniml.ast_nodes import DExpr, EApp, EVar, Program

    expr = EVar("f")
    for _ in range(depth):
        expr = EApp(expr, [EVar("x")])
    return Program([DExpr(expr)])


class TestDepthPreCheck:
    def test_deep_candidate_rejected_without_a_call(self):
        oracle = Oracle(max_depth=10)
        result = oracle.check(_deep_program(50))
        assert result.ok is False
        assert oracle.depth_rejections == 1
        assert oracle.calls == 0  # never reached the checker

    def test_shallow_candidate_passes_the_guard(self):
        oracle = Oracle(max_depth=10)
        oracle.check(parse_program("let x = 1"))
        assert oracle.depth_rejections == 0
        assert oracle.calls == 1

    def test_auto_depth_derives_from_recursion_limit(self):
        oracle = Oracle()
        assert oracle.max_depth == max(64, sys.getrecursionlimit() // 6)

    def test_none_disables_the_guard(self):
        from repro.miniml.errors import NestingTooDeepError

        oracle = Oracle(max_depth=None)
        assert oracle._depth_probe is None
        # The checker's own RecursionError conversion then catches the
        # deep tree: a graceful rejection, not a propagated crash.
        result = oracle.check(_deep_program(sys.getrecursionlimit() * 2))
        assert result.ok is False
        assert isinstance(result.error, NestingTooDeepError)
        assert oracle.depth_rejections == 0
        assert oracle.calls == 1


# ---------------------------------------------------------------------------
# The searcher's deadline machinery
# ---------------------------------------------------------------------------


class TestSearcherDeadline:
    def test_tick_raises_past_the_hard_deadline(self):
        clock = FakeClock()
        searcher = Searcher()
        searcher._deadline = Deadline(1.0, clock=clock)
        searcher._tick("removal_tests")  # within budget: no raise
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded):
            searcher._tick("removal_tests")

    def test_shed_past_the_soft_horizon(self):
        clock = FakeClock()
        searcher = Searcher()
        searcher._deadline = Deadline(1.0, soft_fraction=0.5, clock=clock)
        assert not searcher._shed("triage")
        clock.advance(0.6)
        assert searcher._shed("triage")
        assert searcher._shed("constructive")
        assert searcher.degradation.phases_shed == {"triage": 1, "constructive": 1}

    def test_no_deadline_never_sheds(self):
        searcher = Searcher()
        searcher._deadline = Deadline(None)
        assert not searcher._shed("triage")
        searcher._tick("removal_tests")  # and never raises


# ---------------------------------------------------------------------------
# Degradation through explain() — the end-to-end contract
# ---------------------------------------------------------------------------


class TestExplainDegradation:
    def test_budget_zero_degrades_instead_of_raising(self):
        result = explain(TWO_DECLS, max_oracle_calls=0)
        assert result.ok is False
        assert result.degraded
        assert result.degradation.reasons == [REASON_BUDGET]
        assert result.budget_exhausted
        assert result.degradation.budget == 0

    def test_deadline_zero_degrades_instead_of_raising(self):
        result = explain(TWO_DECLS, deadline_seconds=0.0)
        assert result.ok is False
        assert result.degraded
        assert REASON_DEADLINE in result.degradation.reasons
        assert result.degradation.deadline_seconds == 0.0

    def test_small_budget_keeps_best_so_far(self):
        full = explain(TWO_DECLS)
        assert full.suggestions and not full.degraded
        partial = explain(TWO_DECLS, max_oracle_calls=full.oracle_calls // 2)
        assert partial.degraded
        assert len(partial.suggestions) <= len(full.suggestions)

    def test_undegrated_search_reports_clean(self):
        result = explain(TWO_DECLS)
        assert not result.degraded
        assert result.degradation is not None
        assert result.degradation.reasons == []
        assert result.degradation.elapsed_seconds > 0.0

    def test_crashy_oracle_degrades_with_crash_reason(self):
        calls = {"n": 0}
        real = Oracle()._typecheck

        def flaky(program, prefix=None):
            calls["n"] += 1
            if calls["n"] % 5 == 0:
                raise RuntimeError("flaky checker")
            if prefix is not None:
                return real(program, prefix=prefix)
            return real(program)

        result = explain(TWO_DECLS, oracle=Oracle(typecheck=flaky))
        assert result.ok is False
        assert REASON_CRASH in result.degradation.reasons
        assert result.degradation.oracle_crashes >= 1
        assert result.degradation.crash_samples

    def test_report_survives_oracle_reset(self):
        # An explicitly passed oracle carries its own budget; the report
        # copies the crash/fallback counters out, so it stays accurate
        # after the oracle is reset for the next search.
        oracle = Oracle(max_calls=0)
        result = explain(TWO_DECLS, oracle=oracle)
        oracle.reset()
        assert result.degradation.reasons == [REASON_BUDGET]

    def test_search_config_carries_deadline(self):
        config = SearchConfig(deadline_seconds=2.5)
        assert config.deadline_seconds == 2.5
        assert config.soft_deadline_fraction == 0.85


class TestShedFraction:
    """The soft-deadline knob is configurable (``--shed-fraction``) but
    its default and validation are load-bearing: results under a deadline
    depend on where the shed point lands."""

    def test_default_is_085(self):
        config = SearchConfig()
        assert config.shed_fraction == 0.85
        assert config.soft_deadline_fraction == config.shed_fraction

    @pytest.mark.parametrize("bad", [0.0, -0.25, 1.0001, 2.0])
    def test_out_of_range_is_rejected(self, bad):
        with pytest.raises(ValueError, match="shed_fraction"):
            SearchConfig(shed_fraction=bad)

    def test_one_is_allowed_and_disables_early_shedding(self):
        # shed_fraction=1.0 means "shed only at the hard deadline".
        config = SearchConfig(shed_fraction=1.0)
        assert config.shed_fraction == 1.0

    def test_explain_forwards_shed_fraction(self):
        # The kwarg plumbs through explain() to SearchConfig; with no
        # deadline armed it must not change the answer.
        default = explain(TWO_DECLS)
        tuned = explain(TWO_DECLS, shed_fraction=0.5)
        from repro.core.messages import render_suggestion

        assert [render_suggestion(s) for s in tuned.suggestions] == [
            render_suggestion(s) for s in default.suggestions
        ]

    def test_alias_tracks_custom_value(self):
        config = SearchConfig(shed_fraction=0.4)
        assert config.soft_deadline_fraction == 0.4
