"""Checker-agnostic dependency planning (`repro.core.depgraph`).

These tests drive :class:`DeclDepGraph` and :func:`plan_replay` with
hand-built def/use summaries — no MiniML involved — so the propagation
rules (dirty seeding, shadow cuts, rename invalidation, weak cliques) are
each pinned in isolation.
"""

from repro.core.depgraph import (
    PLAN_CHECK,
    PLAN_REPLAY,
    DeclDepGraph,
    DeclOutcome,
    DeclTable,
    plan_replay,
)

V = lambda n: ("value", n)  # noqa: E731


def _graph(*pairs):
    return DeclDepGraph([(frozenset(u), frozenset(d)) for u, d in pairs])


def _table(*entries):
    outs = []
    for i, (uses, defs, weak) in enumerate(entries):
        outs.append(
            DeclOutcome(
                skey=("k", i),
                uses=frozenset(uses),
                defs=frozenset(defs),
                weak_names=frozenset(weak),
            )
        )
    return DeclTable(entries=outs)


def _plan(table, changed_indices, use_defs=None):
    """Plan for a candidate that structurally changed ``changed_indices``."""
    n = len(table)
    skeys = [
        ("changed", i) if i in changed_indices else ("k", i)
        for i in range(n)
    ]
    if use_defs is None:
        use_defs = [(e.uses, e.defs) for e in table.entries]
    return plan_replay(table, skeys, use_defs)


class TestDependentsOf:
    def test_direct_dependent(self):
        g = _graph(([], [V("a")]), ([V("a")], [V("b")]), ([], [V("c")]))
        assert g.dependents_of(0) == [1]

    def test_transitive_dependent(self):
        g = _graph(
            ([], [V("a")]),
            ([V("a")], [V("b")]),
            ([V("b")], [V("c")]),
        )
        assert g.dependents_of(0) == [1, 2]

    def test_shadow_cuts_the_edge(self):
        # decl 1 re-defines `a` without using it: decl 2's use of `a`
        # resolves to decl 1, so changing decl 0 cannot reach decl 2.
        g = _graph(
            ([], [V("a")]),
            ([], [V("a")]),
            ([V("a")], []),
        )
        assert g.dependents_of(0) == []

    def test_dependent_redefinition_stays_dirty(self):
        # decl 1 both uses and re-defines `a`: later users still observe
        # the change (through decl 1's re-inferred binding).
        g = _graph(
            ([], [V("a")]),
            ([V("a")], [V("a")]),
            ([V("a")], []),
        )
        assert g.dependents_of(0) == [1, 2]


class TestPlanReplay:
    def test_unchanged_candidate_is_all_replay(self):
        table = _table(([], [V("a")], []), ([V("a")], [V("b")], []))
        assert _plan(table, set()) == [PLAN_REPLAY, PLAN_REPLAY]

    def test_changed_decl_and_dependents_checked(self):
        table = _table(
            ([], [V("a")], []),
            ([V("a")], [V("b")], []),
            ([], [V("c")], []),
        )
        assert _plan(table, {0}) == [PLAN_CHECK, PLAN_CHECK, PLAN_REPLAY]

    def test_independent_suffix_replays(self):
        table = _table(
            ([], [V("a")], []),
            ([], [V("b")], []),
            ([V("a")], [V("c")], []),
        )
        # Mutating decl 1 leaves both the `a`-chain decls replayable.
        assert _plan(table, {1}) == [PLAN_REPLAY, PLAN_CHECK, PLAN_REPLAY]

    def test_later_rebinding_cuts_dependency(self):
        # ISSUE satellite: a later `let x` re-binding a mutated name must
        # cut the dependency edge for declarations after it.
        table = _table(
            ([], [V("x")], []),      # let x = ...   (mutated)
            ([], [V("x")], []),      # let x = ...   (shadow cut)
            ([V("x")], [V("y")], []),  # sees decl 1's x only
        )
        assert _plan(table, {0}) == [PLAN_CHECK, PLAN_REPLAY, PLAN_REPLAY]

    def test_rename_dirties_baseline_defs(self):
        # Candidate turns `let f` into something no longer defining f:
        # decl 1's recorded check resolved f at decl 0, so it must re-run.
        table = _table(
            ([], [V("f")], []),
            ([V("f")], [], []),
        )
        plan = plan_replay(
            table,
            [("changed", 0), ("k", 1)],
            [(frozenset(), frozenset({V("g")})), (frozenset({V("f")}), frozenset())],
        )
        assert plan == [PLAN_CHECK, PLAN_CHECK]

    def test_new_trailing_decl_is_checked(self):
        table = _table(([], [V("a")], []))
        plan = plan_replay(
            table,
            [("k", 0), ("new", 1)],
            [(frozenset(), frozenset({V("a")})), (frozenset(), frozenset({V("b")}))],
        )
        assert plan == [PLAN_REPLAY, PLAN_CHECK]

    def test_weak_clique_escalates(self):
        # decl 1 holds a weak (value-restriction) binding r; decl 3 uses
        # it.  Changing decl 2 — which also touches r — must re-check the
        # whole clique, including decl 1 *before* the change point.
        table = _table(
            ([], [V("a")], []),
            ([], [V("r")], ["r"]),
            ([V("r")], [], []),
            ([V("r")], [V("z")], []),
        )
        assert _plan(table, {2}) == [
            PLAN_REPLAY,
            PLAN_CHECK,
            PLAN_CHECK,
            PLAN_CHECK,
        ]

    def test_change_outside_weak_clique_stays_pruned(self):
        table = _table(
            ([], [V("a")], []),
            ([], [V("r")], ["r"]),
            ([V("a")], [V("b")], []),
        )
        # decl 0's change propagates to decl 2 but never touches r, so
        # the weak binding at decl 1 replays untouched.
        assert _plan(table, {0}) == [PLAN_CHECK, PLAN_REPLAY, PLAN_CHECK]
