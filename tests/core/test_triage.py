"""Tests for triage mode (Section 2.4): multiple independent type errors."""

import pytest

from repro.core import KIND_REMOVE, explain
from repro.miniml import parse_program, typecheck_program
from repro.miniml.pretty import pretty

MULTI_LET = """
let f a b =
  let x = 3 + true in
  let y = a + b in
  let z = 4 + "hi" in
  y + 1
"""

FIG4 = """
let g x y =
  match (x, y) with
    (0, []) -> []
  | (n, []) -> n
  | (_, 5) -> 5 + "hi"
let h = g 3 [1]
"""

PRINT = """
let f x =
  match x with
    0 -> print "zero"
  | 1 -> print "one"
  | _ -> print "other"
"""


class TestTriageTriggers:
    def test_multi_error_produces_triaged_suggestions(self):
        result = explain(MULTI_LET)
        assert any(s.triaged for s in result.suggestions)

    def test_wholesale_removal_suppressed_when_triage_succeeds(self):
        result = explain(MULTI_LET)
        whole_removals = [
            s
            for s in result.suggestions
            if s.kind == KIND_REMOVE and "let x = " in pretty(s.change.original)
        ]
        assert not whole_removals

    def test_single_error_not_triaged(self):
        result = explain("let x = [1; 2] + 3")
        assert all(not s.triaged for s in result.suggestions)

    def test_triage_disabled(self):
        result = explain(MULTI_LET, enable_triage=False)
        assert all(not s.triaged for s in result.suggestions)
        # Without triage the best we can do is remove the whole body —
        # the terrible suggestion the paper's Section 2.4 opens with.
        assert result.best is not None
        assert result.best.kind == KIND_REMOVE


class TestTriageIsolation:
    def test_both_errors_found(self):
        result = explain(MULTI_LET)
        texts = {pretty(s.change.original) for s in result.suggestions if s.triaged}
        # One suggestion should isolate each bad operand.
        assert any("true" in t for t in texts)
        assert any("hi" in t for t in texts)

    def test_removed_paths_recorded(self):
        result = explain(MULTI_LET)
        triaged = [s for s in result.suggestions if s.triaged]
        assert all(s.removed_paths for s in triaged)

    def test_triaged_ranked_after_untriaged(self):
        src = 'let f a = (a + true) + (4 + "hi")'
        result = explain(src)
        flags = [s.triaged for s in result.suggestions]
        # once the first triaged suggestion appears, no untriaged follows
        if True in flags:
            first = flags.index(True)
            assert all(flags[first:])


class TestMatchPhases:
    def test_fig4_pattern_isolated(self):
        result = explain(FIG4)
        assert result.suggestions, "expected triage to find pattern suggestions"
        top = result.suggestions[0]
        assert top.triaged
        # The paper isolates the third pattern (the bad ``5`` against a list).
        assert "5" in pretty(top.change.original)

    def test_fig4_message_mentions_triage(self):
        message = explain(FIG4).render_best()
        assert "several type errors" in message

    def test_scrutinee_phase(self):
        # Error in the scrutinee AND in an arm: phase 1 must focus on the
        # scrutinee and not descend into patterns.
        src = """
let f a =
  match 3 + "bad" with
    0 -> 1 + true
  | _ -> 2
"""
        result = explain(src)
        assert result.suggestions
        texts = [pretty(s.change.original) for s in result.suggestions]
        assert any('"bad"' in t for t in texts)

    def test_body_phase(self):
        # Patterns fine; two arm bodies broken independently.
        src = """
let f x =
  match x with
    0 -> 1 + true
  | 1 -> 2 + "s"
  | _ -> 3
"""
        result = explain(src)
        triaged = [s for s in result.suggestions if s.triaged]
        texts = {pretty(s.change.original) for s in triaged}
        assert any("true" in t for t in texts)
        assert any('"s"' in t for t in texts)


class TestPrintScenario:
    """Section 3.3's print/print_string story, end to end."""

    def test_checker_finds_unbound(self):
        result = explain(PRINT)
        assert "Unbound value print" in result.checker_message

    def test_without_triage_result_is_terrible(self):
        result = explain(PRINT, enable_triage=False)
        # Only the whole match (or whole arms) can be removed.
        assert result.best is None or result.best.kind == KIND_REMOVE

    def test_with_triage_unbound_detected(self):
        result = explain(PRINT)
        assert any(s.unbound_variable == "print" for s in result.suggestions)


class TestTriagedProgramsValid:
    @pytest.mark.parametrize("src", [MULTI_LET, FIG4, PRINT])
    def test_suggestion_programs_typecheck(self, src):
        result = explain(src)
        for s in result.suggestions:
            assert typecheck_program(s.program).ok


class TestNestedTriage:
    def test_depth_limit_respected(self):
        # Many errors nested deeply: search must terminate and stay bounded.
        src = """
let f a =
  let g1 = (1 + true) + (2 + "a") in
  let g2 = (3 + false) + (4 + "b") in
  g1 + g2 + a
"""
        result = explain(src, max_oracle_calls=20000)
        assert not result.ok
        assert result.oracle_calls < 20000
