"""Fault injection: every corpus program, every fault plan, no exceptions.

The whole point of the resilience layer is a universally quantified claim —
*no* oracle failure mode may escape ``explain()`` — so these tests quantify
over it: the full corpus of representative ill-typed programs crossed with
every standard fault plan must yield well-formed outcomes whose degradation
reports match what was actually injected.
"""

import pytest

from repro.core import (
    REASON_CRASH,
    REASON_DEADLINE,
    REASON_FALLBACK,
    explain,
)
from repro.core.changes import Suggestion
from repro.core.messages import render_suggestion
from repro.corpus import generate_corpus
from repro.faults import (
    ChaosCrash,
    ChaosOracle,
    FaultPlan,
    SnapshotPoisoned,
    standard_fault_plans,
)

CORPUS_SCALE = 0.1
CORPUS_SEED = 7


@pytest.fixture(scope="module")
def corpus_files():
    return generate_corpus(scale=CORPUS_SCALE, seed=CORPUS_SEED).representatives


def _assert_well_formed(result, oracle):
    """The shape every outcome must have, faults or not."""
    assert isinstance(result.ok, bool)
    assert isinstance(result.suggestions, list)
    for suggestion in result.suggestions:
        assert isinstance(suggestion, Suggestion)
        assert isinstance(render_suggestion(suggestion), str)
    report = result.degradation
    assert report is not None
    assert report.oracle_crashes == oracle.crashes
    assert report.prefix_fallbacks == oracle.prefix_fallbacks
    assert report.depth_rejections == oracle.depth_rejections
    assert report.elapsed_seconds >= 0.0
    # The report's reasons must be consistent with its counters.
    if report.oracle_crashes or report.depth_rejections:
        assert REASON_CRASH in report.reasons
    if report.prefix_fallbacks:
        assert REASON_FALLBACK in report.reasons


class TestFaultPlan:
    def test_empty_plan_is_inactive(self):
        assert not FaultPlan().active

    @pytest.mark.parametrize("name", sorted(standard_fault_plans()))
    def test_standard_plans_are_active(self, name):
        assert standard_fault_plans()[name].active

    def test_crash_exception_kinds(self):
        assert isinstance(FaultPlan(crash_every=1).crash_exception(), ChaosCrash)
        assert isinstance(
            FaultPlan(crash_every=1, crash_kind="recursion").crash_exception(),
            RecursionError,
        )


class TestChaosMatrix:
    """The acceptance sweep: every program x every plan, never a raise."""

    @pytest.mark.parametrize("plan_name", sorted(standard_fault_plans()))
    def test_every_corpus_program_survives(self, plan_name, corpus_files):
        plan = standard_fault_plans()[plan_name]
        oracle = ChaosOracle(plan, cache=True)
        for corpus_file in corpus_files:
            oracle.reset()
            result = explain(corpus_file.program, oracle=oracle)
            _assert_well_formed(result, oracle)
            if oracle.injected["crash"]:
                assert REASON_CRASH in result.degradation.reasons
            if oracle.injected["snapshot"] and oracle.prefix_fallbacks:
                assert REASON_FALLBACK in result.degradation.reasons

    def test_crashes_actually_fire(self, corpus_files):
        plan = standard_fault_plans()["crash-every-3"]
        oracle = ChaosOracle(plan)
        fired = 0
        for corpus_file in corpus_files[:10]:
            oracle.reset()
            explain(corpus_file.program, oracle=oracle)
            fired += oracle.injected["crash"]
        assert fired > 0

    def test_snapshot_poisoning_triggers_self_heal(self):
        # A file whose failing declaration comes *after* a passing prefix,
        # so the searcher arms a snapshot for the poison to corrupt.
        source = "let x = 1\nlet y = x + true"
        plan = standard_fault_plans()["snapshot-poison"]
        oracle = ChaosOracle(plan)
        result = explain(source, oracle=oracle)
        assert oracle.injected["snapshot"] == 1
        assert oracle.prefix_fallbacks >= 1
        assert REASON_FALLBACK in result.degradation.reasons
        assert result.suggestions  # healed, then found the real answer

    def test_cache_corruption_keeps_outcomes_well_formed(self, corpus_files):
        plan = standard_fault_plans()["cache-corruption"]
        oracle = ChaosOracle(plan, cache=True)
        corrupted = 0
        for corpus_file in corpus_files[:10]:
            oracle.reset()
            result = explain(corpus_file.program, oracle=oracle)
            _assert_well_formed(result, oracle)
            corrupted += oracle.injected["cache"]
        assert corrupted > 0


class TestDeterminism:
    def test_same_plan_same_program_replays_identically(self, corpus_files):
        plan = standard_fault_plans()["crash-every-3"]
        oracle = ChaosOracle(plan, cache=True)
        runs = []
        for _ in range(2):
            oracle.reset()
            result = explain(corpus_files[0].program, oracle=oracle)
            runs.append(
                (
                    [render_suggestion(s) for s in result.suggestions],
                    dict(oracle.injected),
                    oracle.calls,
                    result.degradation.reasons,
                )
            )
        assert runs[0] == runs[1]


class TestTransparency:
    """With the empty plan, ChaosOracle must be invisible."""

    def test_empty_plan_matches_plain_explain(self, corpus_files):
        for corpus_file in corpus_files[:10]:
            plain = explain(corpus_file.program)
            chaotic = explain(
                corpus_file.program, oracle=ChaosOracle(FaultPlan())
            )
            assert chaotic.ok == plain.ok
            assert [render_suggestion(s) for s in chaotic.suggestions] == [
                render_suggestion(s) for s in plain.suggestions
            ]
            assert chaotic.oracle_calls == plain.oracle_calls
            assert not chaotic.degraded

    def test_empty_plan_injects_nothing(self, corpus_files):
        oracle = ChaosOracle(FaultPlan())
        explain(corpus_files[0].program, oracle=oracle)
        assert oracle.injected == {
            "crash": 0, "latency": 0, "cache": 0, "snapshot": 0,
            "hang": 0, "poison": 0, "hog": 0, "stale": 0,
        }


class TestLatencyAndDeadlines:
    def test_injected_latency_blows_the_deadline(self):
        # Each check sleeps 20ms against a 10ms deadline: the very first
        # post-sleep tick must degrade the search, not hang or raise.
        plan = FaultPlan(name="slow", latency_every=1, latency_seconds=0.02)
        oracle = ChaosOracle(plan)
        result = explain(
            "let x = 1\nlet y = x + true",
            oracle=oracle,
            deadline_seconds=0.01,
        )
        assert result.ok is False
        assert REASON_DEADLINE in result.degradation.reasons
        assert oracle.injected["latency"] >= 1

    def test_injected_sleep_is_swappable(self):
        slept = []
        plan = FaultPlan(name="slow", latency_every=1, latency_seconds=5.0)
        oracle = ChaosOracle(plan, sleep=slept.append)
        explain("let x = 1 + true", oracle=oracle)
        assert slept and all(s == 5.0 for s in slept)


class TestPoisonedSnapshotObject:
    def test_poison_preserves_matches_but_explodes_elsewhere(self):
        from repro.faults import _PoisonedSnapshot

        class Snap:
            env = "secret"

            def matches(self, program):
                return True

        poisoned = _PoisonedSnapshot(Snap())
        assert poisoned.matches(None) is True
        with pytest.raises(SnapshotPoisoned):
            poisoned.env


class TestStaleDeclTable:
    """The `stale-decl-table` plan: a poisoned outcome table may only ever
    cost speed.  Every planned replay must refuse its fingerprint
    verification and re-check for real — same suggestions, same ranks,
    nonzero ``oracle.decl.degraded``, zero wrong answers."""

    def test_degrades_to_full_checks_never_lies(self, corpus_files):
        from repro.obs.metrics import MetricsRegistry

        plan = standard_fault_plans()["stale-decl-table"]
        degraded = 0
        stale_fired = 0
        for corpus_file in corpus_files[:10]:
            metrics = MetricsRegistry()
            oracle = ChaosOracle(plan, metrics=metrics)
            chaotic = explain(corpus_file.program, oracle=oracle)
            plain = explain(corpus_file.program)
            assert chaotic.ok == plain.ok
            assert [render_suggestion(s) for s in chaotic.suggestions] == [
                render_suggestion(s) for s in plain.suggestions
            ]
            assert chaotic.oracle_calls == plain.oracle_calls
            # Staling a table is pure telemetry loss, not degradation in
            # the search-outcome sense (no budget, crash, or deadline hit).
            assert not chaotic.degraded
            assert metrics.value("oracle.decl.replayed") == 0
            degraded += metrics.value("oracle.decl.degraded")
            stale_fired += oracle.injected["stale"]
        assert stale_fired > 0
        assert degraded > 0
