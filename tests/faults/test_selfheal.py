"""Acceptance tests for the self-healing pool and retrying store I/O.

Two end-to-end robustness claims from the supervision work:

* **Poison-candidate quarantine** — a candidate whose check reproducibly
  kills workers (content-keyed, so it crashes again on every retry) is
  isolated by bisection, quarantined, and answered with a clean crash
  verdict; the search completes with the pool still parallel and the
  suggestions/ranks byte-identical to a no-fault serial run.
* **Flaky store I/O** — transient ``OSError`` on verdict-store segment
  reads/writes is retried and, when persistent, degrades to a cache miss;
  cold and warm runs stay byte-identical and nothing escapes ``explain``.
"""

from __future__ import annotations

import pytest

import repro.core.searcher as searcher_mod
from repro.core import explain
from repro.core.messages import render_suggestion
from repro.core.parallel import WorkerPool
from repro.core.resilience import BREAKER_OPEN, RestartPolicy
from repro.core.searcher import SearchConfig, Searcher
from repro.corpus import generate_corpus
from repro.faults import FlakyStore, poison_candidate_plan
from repro.miniml.ast_nodes import Program
from repro.miniml.parser import parse_program
from repro.obs import MetricsRegistry
from repro.store.fingerprint import key_digest
from repro.tree import StructuralKeyer

FIG2 = """\
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""

#: Supervision with no real sleeping, so tests stay fast.
FAST = RestartPolicy(backoff_seconds=0.0, cooldown_seconds=0.0)


def _signature(outcome):
    return (
        [render_suggestion(s) for s in outcome.suggestions],
        outcome.oracle_calls,
    )


class RecordingPool(WorkerPool):
    """A WorkerPool that records every candidate shipped to workers (so a
    test can pick one to poison) and exposes the live instances."""

    shipped = []
    instances = []

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        RecordingPool.instances.append(self)

    def arm(self, prefix_decls, **kwargs):
        self._recorded_prefix = tuple(prefix_decls)
        super().arm(prefix_decls, **kwargs)

    def check_suffixes(self, suffixes, *args, **kwargs):
        for suffix in suffixes:
            RecordingPool.shipped.append(
                (self._recorded_prefix, tuple(suffix))
            )
        return super().check_suffixes(suffixes, *args, **kwargs)


def _parse(source):
    return parse_program(source) if isinstance(source, str) else source


def _pooled_candidate_digests(source, monkeypatch, jobs: int = 2):
    """Digests (in ship order) of every candidate a pooled search checks."""
    RecordingPool.shipped = []
    RecordingPool.instances = []
    monkeypatch.setattr(searcher_mod, "WorkerPool", RecordingPool)
    searcher = Searcher(config=SearchConfig(jobs=jobs, supervision=FAST))
    searcher.search_program(_parse(source))
    keyer = StructuralKeyer()
    digests = []
    for prefix, suffix in RecordingPool.shipped:
        program = Program(list(prefix) + list(suffix))
        digests.append(key_digest(keyer(program)))
    return digests


class TestPoisonQuarantine:
    def _run_poisoned(self, source, digest, monkeypatch, jobs=4):
        RecordingPool.shipped = []
        RecordingPool.instances = []
        monkeypatch.setattr(searcher_mod, "WorkerPool", RecordingPool)
        registry = MetricsRegistry()
        config = SearchConfig(
            jobs=jobs,
            worker_fault_plan=poison_candidate_plan(digest),
            supervision=FAST,
        )
        searcher = Searcher(config=config, metrics=registry)
        outcome = searcher.search_program(_parse(source))
        assert len(RecordingPool.instances) == 1
        return outcome, registry, RecordingPool.instances[0]

    def test_poisoned_candidate_is_quarantined_and_answers_match(
        self, monkeypatch
    ):
        serial = Searcher().search_program(parse_program(FIG2))
        digests = _pooled_candidate_digests(FIG2, monkeypatch)
        assert digests, "the pooled search must ship candidates"
        outcome, registry, pool = self._run_poisoned(
            FIG2, digests[0], monkeypatch
        )
        # Byte-identical to the no-fault serial run: the quarantine crash
        # verdict replays through account_verdict exactly like a serial
        # in-process crash of the same candidate.
        assert _signature(outcome) == _signature(serial)
        assert outcome.degradation.quarantined == 1
        assert registry.value("parallel.quarantined") == 1
        assert registry.value("parallel.quarantine.probes") >= 2
        # The pool survived: not permanently open, never marked broken.
        assert not pool.broken
        assert pool.breaker.state != BREAKER_OPEN
        assert pool.ready()

    def test_requarantine_is_cached_across_batches(self, monkeypatch):
        """A candidate shipped twice (dedup off) hits the quarantine set
        the second time — no more worker kills, just a local verdict."""
        serial_config = SearchConfig(dedup=False)
        serial = Searcher(config=serial_config).search_program(
            parse_program(FIG2)
        )
        RecordingPool.shipped = []
        RecordingPool.instances = []
        monkeypatch.setattr(searcher_mod, "WorkerPool", RecordingPool)
        probe = Searcher(config=SearchConfig(jobs=2, dedup=False, supervision=FAST))
        probe.search_program(parse_program(FIG2))
        keyer = StructuralKeyer()
        digests = [
            key_digest(keyer(Program(list(p) + list(s))))
            for p, s in RecordingPool.shipped
        ]
        repeated = [d for d in digests if digests.count(d) > 1]
        if not repeated:
            pytest.skip("no candidate shipped twice under this corpus shape")
        registry = MetricsRegistry()
        config = SearchConfig(
            jobs=2,
            dedup=False,
            worker_fault_plan=poison_candidate_plan(repeated[0]),
            supervision=FAST,
        )
        RecordingPool.instances = []
        outcome = Searcher(config=config, metrics=registry).search_program(
            parse_program(FIG2)
        )
        assert _signature(outcome) == _signature(serial)
        assert registry.value("parallel.quarantined") == 1
        assert registry.value("parallel.quarantine.hits") >= 1

    def test_corpus_representatives_survive_poison(self, monkeypatch):
        """The acceptance sweep, bounded: for a few corpus representatives
        poison the first pooled candidate and require byte-identity with
        the serial no-fault run plus a surviving parallel pool."""
        corpus = generate_corpus(scale=0.1, seed=7).representatives
        for corpus_file in corpus[:3]:
            source = corpus_file.program
            serial = Searcher().search_program(_parse(source))
            digests = _pooled_candidate_digests(source, monkeypatch)
            if not digests:
                continue  # trivial program: nothing ever pooled
            outcome, registry, pool = self._run_poisoned(
                source, digests[0], monkeypatch
            )
            assert _signature(outcome) == _signature(serial)
            assert registry.value("parallel.quarantined") == 1
            assert not pool.broken
            assert pool.breaker.state != BREAKER_OPEN


class TestFlakyStoreIO:
    def test_cold_run_with_flaky_store_matches_storeless(self, tmp_path):
        plain = explain(FIG2)
        # flush_every=1: one segment write per stored verdict, so the
        # every-2nd-attempt failure schedule actually fires mid-run.
        store = FlakyStore(tmp_path / "store", fail_every=2, flush_every=1)
        flaky = explain(FIG2, store=store)
        store.close()
        assert store.injected_io_failures > 0
        assert [render_suggestion(s) for s in flaky.suggestions] == [
            render_suggestion(s) for s in plain.suggestions
        ]
        assert flaky.oracle_calls == plain.oracle_calls

    def test_warm_run_matches_cold_under_flaky_io(self, tmp_path):
        path = tmp_path / "store"
        cold_store = FlakyStore(path, fail_every=2, flush_every=1)
        cold = explain(FIG2, store=cold_store)
        cold_store.close()
        warm_store = FlakyStore(path, fail_every=2, flush_every=1)
        warm = explain(FIG2, store=warm_store)
        warm_store.close()
        assert [render_suggestion(s) for s in warm.suggestions] == [
            render_suggestion(s) for s in cold.suggestions
        ]
        assert warm.ok == cold.ok

    def test_retry_exhaustion_degrades_to_cache_miss(self, tmp_path):
        """A failure streak at the retry budget exhausts the retry: the
        read degrades to a skipped segment (cache miss), never a raise."""
        path = tmp_path / "store"
        with FlakyStore(path, fail_every=10**9, flush_every=1) as seed_store:
            explain(FIG2, store=seed_store)  # clean seed run, segments real
        # Streak of 3 >= the store policy's 3 attempts: first read fails
        # for good and the segment is skipped.
        store = FlakyStore(path, fail_every=1, fail_streak=3)
        assert store.io_errors >= 1
        assert store.skipped_segments >= 1
        result = explain(FIG2, store=store)  # still never raises
        store.close()
        plain = explain(FIG2)
        assert [render_suggestion(s) for s in result.suggestions] == [
            render_suggestion(s) for s in plain.suggestions
        ]

    def test_store_io_counters_reach_oracle_metrics(self, tmp_path):
        registry = MetricsRegistry()
        store = FlakyStore(
            tmp_path / "store", fail_every=2, flush_every=1
        )
        explain(FIG2, store=store, metrics=registry)
        store.close()
        assert (
            registry.value("oracle.store.retries")
            + registry.value("oracle.store.io_errors")
        ) > 0
