"""Tests for the study runner and figure rendering (small-scale runs)."""

import pytest

from repro.corpus import generate_corpus
from repro.evaluation import (
    Category,
    cdf_points,
    class_size_histogram,
    fraction_within,
    percentile,
    render_figure5,
    render_figure6,
    render_figure7,
    render_headline,
    run_study,
    run_timing_study,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(scale=0.15, seed=31)


@pytest.fixture(scope="module")
def study(corpus):
    return run_study(corpus, max_files=12)


class TestStudyRunner:
    def test_outcomes_per_file(self, study):
        assert len(study.outcomes) == 12

    def test_every_outcome_categorized(self, study):
        for outcome in study.outcomes:
            assert isinstance(outcome.category, Category)

    def test_times_recorded(self, study):
        assert all(o.seconds_full > 0 for o in study.outcomes)
        assert all(o.seconds_no_triage > 0 for o in study.outcomes)

    def test_grouping_partitions_outcomes(self, study):
        by_programmer = study.by_programmer
        assert sum(c.total for c in by_programmer.values()) == len(study.outcomes)
        by_assignment = study.by_assignment
        assert sum(c.total for c in by_assignment.values()) == len(study.outcomes)

    def test_counts_consistent(self, study):
        assert study.counts.total == len(study.outcomes)


class TestFigureRendering:
    def test_figure5_contains_groups(self, study):
        text = render_figure5(study.by_assignment, "Figure 5(b)")
        for name in study.by_assignment:
            assert name in text

    def test_figure5_legend(self, study):
        assert "legend" in render_figure5(study.by_programmer, "t")

    def test_headline_mentions_paper_values(self, study):
        text = render_headline(study.counts, study.unhelpful_tie_fraction)
        assert "(paper: 19%)" in text
        assert "(paper: 83%)" in text

    def test_figure6(self, corpus):
        text = render_figure6(corpus.class_sizes)
        assert "size   1" in text
        assert "total files" in text

    def test_figure6_empty(self):
        assert "empty" in render_figure6([])

    def test_figure7(self, corpus):
        timing = run_timing_study(corpus, max_files=4)
        text = render_figure7(timing.curves, budgets=[0.05, 0.5])
        assert "full tool" in text
        assert "no triage" in text
        assert "median" in text


class TestTimingStudy:
    def test_three_configurations(self, corpus):
        timing = run_timing_study(corpus, max_files=3)
        assert set(timing.curves) == {"full tool", "no reparen-match change", "no triage"}

    def test_curves_sorted(self, corpus):
        timing = run_timing_study(corpus, max_files=3)
        for times in timing.curves.values():
            assert times == sorted(times)

    def test_jobs_parameter_preserves_calls(self, corpus):
        serial = run_timing_study(corpus, max_files=3)
        pooled = run_timing_study(corpus, max_files=3, jobs=2)
        assert pooled.oracle_calls == serial.oracle_calls

    def test_to_run_report_bridge(self, corpus, tmp_path):
        from repro.obs import RunReport

        timing = run_timing_study(corpus, max_files=2)
        report = timing.to_run_report("full tool")
        assert report.label == "full tool"
        assert report.counters["oracle.calls"] > 0
        assert report.elapsed_seconds == pytest.approx(
            sum(timing.curves["full tool"])
        )
        # The bridge produces a valid --diff baseline document.
        path = tmp_path / "baseline.json"
        report.write(path)
        assert RunReport.load(path).counters == report.counters


class TestParallelComparison:
    def test_serial_vs_parallel_wall_time(self, corpus):
        from repro.evaluation import run_parallel_comparison

        comparison = run_parallel_comparison(corpus, max_files=3, jobs=2)
        assert len(comparison.serial_seconds) == 3
        assert len(comparison.parallel_seconds) == 3
        assert comparison.calls_match
        assert comparison.speedup > 0
        rendered = comparison.render()
        assert "serial" in rendered and "2" in rendered and "identical" in rendered


class TestCdfHelpers:
    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]

    def test_fraction_within(self):
        assert fraction_within([1, 2, 3, 4], 2.5) == 0.5
        assert fraction_within([], 1) == 0.0

    def test_percentile(self):
        times = list(range(1, 101))
        assert percentile(times, 0.5) == 50
        assert percentile(times, 0.9) == 90
        assert percentile([], 0.5) == 0.0

    def test_class_size_histogram(self):
        assert class_size_histogram([1, 1, 2, 5]) == {1: 2, 2: 1, 5: 1}


class TestLocationOnlyView:
    def test_location_only_never_worse_than_strict(self, study):
        """Section 3.1: considering only location strictly increases the
        number of good results — the no-worse fraction must not drop."""
        strict = study.counts
        lax = study.counts_location_only
        assert lax.no_worse >= strict.no_worse - 1e-9

    def test_location_only_total_matches(self, study):
        assert study.counts_location_only.total == study.counts.total
