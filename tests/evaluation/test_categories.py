"""Tests for the Section 3.2 category logic and aggregation."""

import pytest

from repro.corpus.grading import FileGrades, Grade
from repro.evaluation.categories import Category, CategoryCounts, categorize


def grades(checker, seminal, no_triage):
    def g(score):
        if score == 2:
            return Grade(True, True)
        if score == 1:
            return Grade(True, False)
        return Grade(False, False)

    return FileGrades(checker=g(checker), seminal=g(seminal), seminal_no_triage=g(no_triage))


class TestCategorize:
    def test_tie_no_triage(self):
        assert categorize(grades(2, 2, 2)) is Category.TIE_NO_TRIAGE

    def test_tie_triage_needed(self):
        assert categorize(grades(2, 2, 0)) is Category.TIE_TRIAGE_NEEDED

    def test_better_no_triage(self):
        assert categorize(grades(1, 2, 2)) is Category.BETTER_NO_TRIAGE

    def test_better_triage_needed(self):
        assert categorize(grades(1, 2, 1)) is Category.BETTER_TRIAGE_NEEDED

    def test_checker_better(self):
        assert categorize(grades(2, 1, 1)) is Category.CHECKER_BETTER

    def test_both_zero_is_tie(self):
        # "ties where both approaches produce a bad message" still category 1.
        assert categorize(grades(0, 0, 0)) is Category.TIE_NO_TRIAGE

    def test_triage_cannot_hurt_categorization(self):
        # If triage made the message worse than no-triage, it is still
        # compared on the full system's score.
        assert categorize(grades(1, 0, 1)) is Category.CHECKER_BETTER


class TestCategoryCounts:
    @pytest.fixture
    def counts(self):
        cats = (
            [Category.TIE_NO_TRIAGE] * 50
            + [Category.TIE_TRIAGE_NEEDED] * 9
            + [Category.BETTER_NO_TRIAGE] * 13
            + [Category.BETTER_TRIAGE_NEEDED] * 6
            + [Category.CHECKER_BETTER] * 17
        )
        return CategoryCounts.tally(cats)

    def test_total(self, counts):
        assert counts.total == 95

    def test_ours_better(self, counts):
        assert counts.ours_better == pytest.approx(19 / 95)

    def test_checker_better(self, counts):
        assert counts.checker_better == pytest.approx(17 / 95)

    def test_no_worse(self, counts):
        assert counts.no_worse == pytest.approx(78 / 95)

    def test_triage_boosts(self, counts):
        assert counts.triage_win_boost == pytest.approx(6 / 13)
        assert counts.triage_tie_boost == pytest.approx(9 / 50)

    def test_triage_helped(self, counts):
        assert counts.triage_helped == pytest.approx(15 / 95)

    def test_as_row_order(self, counts):
        assert counts.as_row() == [50, 9, 13, 6, 17]

    def test_empty_counts_safe(self):
        empty = CategoryCounts.tally([])
        assert empty.total == 0
        assert empty.ours_better == 0.0
        assert empty.triage_win_boost == 0.0

    def test_infinite_boost_when_only_cat4(self):
        counts = CategoryCounts.tally([Category.BETTER_TRIAGE_NEEDED])
        assert counts.triage_win_boost == float("inf")

    def test_labels(self):
        assert "triage" in Category.TIE_TRIAGE_NEEDED.label
