"""Tests for the auto-generated paper-vs-measured report."""

import pytest

from repro.evaluation.report import (
    PAPER_VALUES,
    ReportData,
    collect,
    generate_report,
    headline_table,
    timing_table,
)


@pytest.fixture(scope="module")
def data():
    return collect(scale=0.1, seed=3, timing_files=6)


class TestCollect:
    def test_collect_shapes(self, data):
        assert data.corpus.representatives
        assert data.study.outcomes
        assert set(data.timing.curves) == {
            "full tool",
            "no reparen-match change",
            "no triage",
        }


class TestTables:
    def test_headline_table_rows(self, data):
        table = headline_table(data.study)
        assert table.count("\n") == len(PAPER_VALUES) + 1
        assert "ours better" in table
        assert "19%" in table  # the paper column

    def test_timing_table(self, data):
        table = timing_table(data.timing)
        assert "full tool" in table
        assert "ms" in table


class TestReport:
    def test_report_structure(self, data):
        report = generate_report(data)
        assert report.startswith("# Measured results")
        assert "Figure 5(a)" in report
        assert "Figure 6" in report
        assert "Figure 7" in report
        assert "paper: 2122 / 1075" in report

    def test_report_is_markdown_with_code_fences(self, data):
        report = generate_report(data)
        assert report.count("```") == 2
