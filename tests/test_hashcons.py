"""Hash-consed structural keys: equality, interning, digests, pickling.

:class:`~repro.tree.HCKey` is the currency of every key-addressed layer —
the dedup memo, the oracle cache, the decl table, the persistent store's
``key_digest`` — so its equality semantics must match
:func:`~repro.tree.structurally_equal` exactly, survive pickling (workers
return keys across process boundaries), and its content digest must be
deterministic across keyers.
"""

import pickle

from repro.miniml import parse_program
from repro.store.fingerprint import key_digest, prefix_fingerprint
from repro.tree import HCKey, StructuralKeyer, structural_key, structurally_equal

SRC = """\
let rec fact n = if n <= 1 then 1 else n * fact (n - 1)
let xs = [1; 2; 3]
let total = List.fold_left (fun a b -> a + b) 0 xs
"""

SRC_SPAN_SHIFTED = """\
let rec fact n =
  if n <= 1 then 1 else n * fact (n - 1)

let xs = [ 1 ; 2 ; 3 ]
let total = List.fold_left (fun a b -> a + b) 0 xs
"""

SRC_DIFFERENT = SRC.replace("0 xs", "1 xs")


class TestEquality:
    def test_equal_programs_equal_keys_across_keyers(self):
        k1 = StructuralKeyer()(parse_program(SRC))
        k2 = StructuralKeyer()(parse_program(SRC))
        assert k1 is not k2  # different interners
        assert k1 == k2
        assert hash(k1) == hash(k2)

    def test_spans_do_not_participate(self):
        a, b = parse_program(SRC), parse_program(SRC_SPAN_SHIFTED)
        assert structurally_equal(a, b)
        assert structural_key(a) == structural_key(b)

    def test_different_programs_differ(self):
        k1 = structural_key(parse_program(SRC))
        k2 = structural_key(parse_program(SRC_DIFFERENT))
        assert k1 != k2

    def test_same_keyer_interns_to_identity(self):
        keyer = StructuralKeyer()
        k1 = keyer(parse_program(SRC))
        k2 = keyer(parse_program(SRC))
        assert k1 is k2

    def test_shared_subtree_keys_are_shared(self):
        keyer = StructuralKeyer()
        a, b = parse_program(SRC), parse_program(SRC_SPAN_SHIFTED)
        ka, kb = keyer(a), keyer(b)
        # Distinct trees, equal content: interning collapses to one key
        # object, so every downstream dict op compares by pointer.
        assert ka is kb

    def test_collision_cannot_alias(self):
        # Keys with equal hashes but different parts must stay unequal —
        # dict lookups fall back to the structural comparison.
        k1 = structural_key(parse_program(SRC))
        forged = HCKey.__new__(HCKey)
        forged.parts = structural_key(parse_program(SRC_DIFFERENT)).parts
        forged._hash = hash(k1)  # adversarial collision
        forged._digest = None
        assert hash(forged) == hash(k1)
        assert forged != k1

    def test_not_equal_to_raw_tuples(self):
        key = structural_key(parse_program(SRC))
        assert (key == key.parts) is False


class TestDigest:
    def test_digest_deterministic_across_keyers(self):
        d1 = structural_key(parse_program(SRC)).digest
        d2 = structural_key(parse_program(SRC_SPAN_SHIFTED)).digest
        assert d1 == d2

    def test_digest_distinguishes_content(self):
        d1 = structural_key(parse_program(SRC)).digest
        d2 = structural_key(parse_program(SRC_DIFFERENT)).digest
        assert d1 != d2

    def test_digest_cached(self):
        key = structural_key(parse_program(SRC))
        assert key._digest is None
        first = key.digest
        assert key._digest == first
        assert key.digest is first

    def test_key_digest_serves_hc_digest(self):
        key = structural_key(parse_program(SRC))
        assert key_digest(key) == key.digest

    def test_prefix_fingerprint_over_hc_keys(self):
        keyer = StructuralKeyer()
        decls = parse_program(SRC).decls
        fp = prefix_fingerprint(keyer(d) for d in decls)
        fp2 = prefix_fingerprint(structural_key(d) for d in parse_program(SRC).decls)
        assert fp == fp2
        assert fp != prefix_fingerprint(
            structural_key(d) for d in parse_program(SRC_DIFFERENT).decls
        )


class TestPickling:
    def test_round_trip_preserves_equality_and_digest(self):
        key = structural_key(parse_program(SRC))
        clone = pickle.loads(pickle.dumps(key))
        assert clone == key
        assert hash(clone) == hash(key)
        assert clone.digest == key.digest

    def test_round_trip_nested_keys(self):
        key = structural_key(parse_program(SRC))
        clone = pickle.loads(pickle.dumps(key))
        # Child keys (one per declaration and deeper) survive as HCKeys.
        child_keys = [p for p in clone.parts if isinstance(p, HCKey)] + [
            e
            for p in clone.parts
            if isinstance(p, tuple)
            for e in p
            if isinstance(e, HCKey)
        ]
        assert child_keys
        assert all(isinstance(c, HCKey) for c in child_keys)


class TestKeyerLifecycle:
    def test_clear_releases_interned_keys(self):
        keyer = StructuralKeyer()
        program = parse_program(SRC)
        keyer(program)
        assert keyer.interned > 0
        keyer.clear()
        assert keyer.interned == 0
        # Re-keying after clear still agrees with a fresh keyer.
        assert keyer(program) == StructuralKeyer()(parse_program(SRC))
