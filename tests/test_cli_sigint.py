"""Interrupting a live search must shut the pool down, not orphan it.

These tests run the real CLI in a subprocess (its own session, so the
test runner's terminal is untouched), deliver SIGINT to the *parent
process only* — the workers are forked children that never see the
signal themselves — and assert the contract: exit code 130, a one-line
notice on stderr, and no worker processes left behind.

One platform caveat shapes the harness: a SIGINT that lands while the
parent is *inside* ``os.fork()`` (spawning a pool worker) can surface in
an at-fork callback, where CPython suppresses it ("Exception ignored
in...") — the interrupt is silently lost and the run completes normally.
The interrupt must land early (these searches are fast), which is
exactly when forks happen, so the harness retries the occasional
swallowed delivery instead of trying to dodge the window.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")

ILL_TYPED = "let f x = x + 1\nlet b = f true\n"


def _procs_mentioning(token: str):
    """PIDs whose command line contains ``token`` (fork workers inherit
    the parent's cmdline, so the unique tmp path tags the whole tree)."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            cmdline = (Path("/proc") / entry / "cmdline").read_bytes()
        except OSError:
            continue
        if token.encode() in cmdline:
            pids.append(int(entry))
    return pids


def _wait_until(predicate, timeout: float, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _interrupt_run(argv, token, attempts: int = 5):
    """Run ``argv``, SIGINT the parent the moment its pool starts
    forking, and return ``(returncode, stdout, stderr)``.

    Retries when the interrupt was provably swallowed by the fork race
    (the run completed normally despite the signal).  Each attempt
    starts from a clean process table so the token scan never counts a
    previous attempt's dying workers.
    """
    last = None
    for _ in range(attempts):
        assert _wait_until(
            lambda: _procs_mentioning(token) == [], timeout=30.0
        ), "previous attempt's processes never exited"
        proc = subprocess.Popen(
            argv,
            env={"PYTHONPATH": SRC,
                 "PATH": os.environ.get("PATH", "/usr/bin:/bin")},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            start_new_session=True,  # our own terminal must not see the ^C
        )
        try:
            spawned = _wait_until(
                lambda: len(_procs_mentioning(token)) >= 2, timeout=30.0
            )
            assert spawned, "the batch pool never spawned a worker"
            os.kill(proc.pid, signal.SIGINT)  # the parent ONLY
            out, err = proc.communicate(timeout=60)
            last = (proc.returncode, out, err)
        except subprocess.TimeoutExpired:
            last = None  # wedged: kill and retry below
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if last is not None and last[0] == 130:
            return last
    assert last is not None, "every attempt timed out waiting for exit"
    return last


@pytest.fixture
def corpus_dir(tmp_path):
    # Enough work that the batch is reliably still running when the
    # interrupt lands (each file is an independent full search).
    directory = tmp_path / "sigint-corpus"
    directory.mkdir()
    for i in range(24):
        (directory / f"prog{i:02d}.ml").write_text(ILL_TYPED)
    return directory


class TestSigintMidSearch:
    def test_interrupt_exits_130_and_leaves_no_orphans(self, corpus_dir):
        token = str(corpus_dir)
        code, out, err = _interrupt_run(
            [sys.executable, "-m", "repro", "explain", "--dir", token,
             "--jobs", "2"],
            token,
        )
        assert code == 130, (out, err)
        assert "interrupted" in err
        # Prompt shutdown took the workers with it: nothing in the
        # process table still mentions our unique corpus path.
        assert _wait_until(
            lambda: _procs_mentioning(token) == [], timeout=10.0
        ), f"orphan workers: {_procs_mentioning(token)}"

    def test_interrupted_store_is_usable_next_run(self, corpus_dir, tmp_path):
        from repro.store import VerdictStore

        token = str(corpus_dir)
        store_dir = tmp_path / "store"
        code, out, err = _interrupt_run(
            [sys.executable, "-m", "repro", "explain", "--dir", token,
             "--jobs", "2", "--store", str(store_dir)],
            token,
        )
        assert code == 130, (out, err)
        # Whatever the interrupted run managed to publish is served; any
        # half-written leftovers are invisible (never a raise, no torn
        # segments indexed).
        store = VerdictStore(store_dir)
        assert store.skipped_lines == 0
        store.close()
