"""Tests for the MiniCpp checker and its gcc-style diagnostics."""

import pytest

from repro.cpptemplates import typecheck_cpp_source
from repro.cpptemplates.types import (
    DOUBLE,
    INT,
    LONG,
    TClass,
    TFunc,
    TParam,
    TPtr,
    cpp_type_name,
    deduce,
    DeductionError,
    substitute,
)


def check(src):
    return typecheck_cpp_source(src)


FIG10 = """
#include <algorithm>
#include <vector>
#include <functional>
#include <ext/functional>
#include <cmath>
using namespace std;
using namespace __gnu_cxx;

void myFun(vector<long>& inv, vector<long>& outv) {
    transform(inv.begin(), inv.end(), outv.begin(),
              compose1(bind1st(multiplies<long>(), 5), labs));
}
"""


class TestWellTyped:
    @pytest.mark.parametrize(
        "src",
        [
            "void f() { }",
            "int f() { return 1; }",
            "long f() { return labs(5); }",
            "void f(vector<long>& v) { v.push_back(1); }",
            "void f(vector<long>& v) { long n = *v.begin(); }",
            "void f(vector<long>& v) { int n = v.size(); }",
            "void f(int x) { if (x > 0) { return; } }",
            "void f() { double d = sqrt(2.0); }",
            # The paper's fixed client:
            FIG10.replace("labs));", "ptr_fun(labs)));"),
            # A user template, instantiated correctly:
            "template <class T> T id(T x) { return x; }\nvoid g() { int y = id(3); }",
            # bind1st produces a working unary functor:
            """
void f(vector<long>& v, vector<long>& out) {
    transform(v.begin(), v.end(), out.begin(), bind1st(multiplies<long>(), 5));
}
""",
        ],
    )
    def test_accepts(self, src):
        result = check(src)
        assert result.ok, result.render()


class TestMonomorphicErrors:
    def test_undeclared_name(self):
        result = check("void f() { int x = y; }")
        assert not result.ok
        assert "undeclared" in result.errors[0].message

    def test_bad_initialization(self):
        result = check('void f() { int x = "hello"; }')
        assert "cannot convert" in result.errors[0].message

    def test_return_type_mismatch(self):
        result = check('int f() { return "s"; }')
        assert "cannot convert" in result.errors[0].message

    def test_void_return_with_value(self):
        result = check("void f() { return 3; }")
        assert "returning 'void'" in result.errors[0].message

    def test_arrow_on_object(self):
        result = check("void f(vector<long>& v) { v->size(); }")
        assert "maybe you meant to use `.'" in result.errors[0].message

    def test_dot_on_pointer(self):
        result = check("void f(vector<long>* v) { v.size(); }")
        assert "maybe you meant to use `->'" in result.errors[0].message

    def test_wrong_argument_count(self):
        result = check("void f() { labs(1, 2); }")
        assert "wrong number of arguments" in result.errors[0].message

    def test_cascading_errors_collected(self):
        result = check('void f() { int a = "x"; int b = "y"; }')
        assert len(result.errors) == 2

    def test_widening_allowed(self):
        assert check("void f() { long x = 1; double d = x; }").ok

    def test_narrowing_rejected(self):
        result = check("void f(double d) { int x = d; }")
        assert not result.ok


class TestTemplateInstantiation:
    def test_template_body_unchecked_until_instantiated(self):
        # The body misuses T, but with no call there is no error.
        src = "template <class T> void g(T x) { x.nonexistent(); }"
        assert check(src).ok

    def test_instantiation_error_carries_chain(self):
        src = (
            "template <class T> void g(T x) { int y = x; }\n"
            'void f() { g("hello"); }'
        )
        result = check(src)
        assert not result.ok
        error = result.errors[0]
        assert any("In instantiation of `g<std::string>'" in n for n in error.notes)
        assert error.client_line == 2  # the client call site

    def test_deduction_failure(self):
        src = (
            "template <class T> T pick(vector<T>& v) { return v.front(); }\n"
            "void f(int x) { pick(x); }"
        )
        result = check(src)
        assert "no matching function" in result.errors[0].message

    def test_conflicting_deduction(self):
        src = (
            "template <class T> T both(T a, T b) { return a; }\n"
            'void f() { both(1, "s"); }'
        )
        result = check(src)
        assert "no matching function" in result.errors[0].message


class TestFigure11:
    """The paper's C++ case study: the error chain for Figure 10."""

    def test_client_is_ill_typed(self):
        result = check(FIG10)
        assert not result.ok

    def test_not_a_class_struct_union(self):
        rendered = check(FIG10).render("tester2.cpp")
        assert "`long int ()(long int)' is not a class, struct, or union type" in rendered

    def test_invalidly_declared_field(self):
        rendered = check(FIG10).render("tester2.cpp")
        assert "_M_fn2' invalidly declared function type" in rendered

    def test_cascading_no_match_for_call(self):
        rendered = check(FIG10).render("tester2.cpp")
        assert "no match for call to" in rendered
        assert "(long int&)" in rendered

    def test_errors_located_in_headers_not_client(self):
        result = check(FIG10)
        assert all("functional" in e.message or "stl_algo" in e.message
                   for e in result.errors)

    def test_instantiated_from_here_points_at_client(self):
        rendered = check(FIG10).render("tester2.cpp")
        assert "tester2.cpp" in rendered
        assert "instantiated from here" in rendered

    def test_ptr_fun_fixes_everything(self):
        fixed = FIG10.replace("labs));", "ptr_fun(labs)));")
        assert check(fixed).ok


class TestTypeHelpers:
    def test_gcc_spelling(self):
        assert cpp_type_name(LONG) == "long int"
        assert cpp_type_name(TFunc(LONG, [LONG])) == "long int ()(long int)"
        assert cpp_type_name(TClass("vector", [LONG])) == "vector<long int>"

    def test_nested_template_space(self):
        t = TClass("vector", [TClass("vector", [LONG])])
        assert cpp_type_name(t) == "vector<vector<long int> >"

    def test_deduce_simple(self):
        bindings = {}
        deduce(TParam("T"), LONG, bindings)
        assert bindings == {"T": LONG}

    def test_deduce_through_class(self):
        bindings = {}
        deduce(TClass("vector", [TParam("T")]), TClass("vector", [INT]), bindings)
        assert bindings["T"] == INT

    def test_deduce_conflict(self):
        bindings = {"T": INT}
        with pytest.raises(DeductionError):
            deduce(TParam("T"), DOUBLE, bindings)

    def test_substitute(self):
        t = substitute(TPtr(TParam("T")), {"T": LONG})
        assert t == TPtr(LONG)
