"""Tests for SEMINAL-for-C++ (Section 4.2)."""

import pytest

from repro.cpptemplates import explain_cpp, parse_cpp
from repro.cpptemplates.pretty import pretty_cpp

FIG10 = """
#include <algorithm>
#include <vector>
using namespace std;

void myFun(vector<long>& inv, vector<long>& outv) {
    transform(inv.begin(), inv.end(), outv.begin(),
              compose1(bind1st(multiplies<long>(), 5), labs));
}
"""


class TestWellTyped:
    def test_compiling_program_short_circuits(self):
        result = explain_cpp("void f() { int x = 1; }")
        assert result.ok
        assert result.suggestions == []
        assert "compiles" in result.render_best()


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return explain_cpp(FIG10)

    def test_best_is_ptr_fun_wrap(self, result):
        best = result.best
        assert best is not None
        assert best.change.rule == "wrap-ptr-fun"
        assert pretty_cpp(best.change.original) == "labs"
        assert pretty_cpp(best.change.replacement) == "ptr_fun(labs)"

    def test_best_fixes_everything(self, result):
        assert result.best.fixes_everything

    def test_message_mentions_ptr_fun(self, result):
        assert "ptr_fun(labs)" in result.render_best()

    def test_suggestion_program_compiles(self, result):
        from repro.cpptemplates import typecheck_cpp

        assert typecheck_cpp(result.best.program).ok

    def test_call_count_is_modest(self, result):
        assert result.checker_calls < 100


class TestUnwrap:
    # The reverse confusion: a functor where a raw pointer is needed.
    SRC = """
long twice(long (*fn)(long), long x) {
    return fn(x);
}
void client(vector<long>& v) {
    long r = twice(ptr_fun(labs), 5);
}
"""

    def test_unwrap_suggested(self):
        result = explain_cpp(self.SRC)
        assert not result.ok
        rules = [s.change.rule for s in result.suggestions]
        assert "unwrap-ptr-fun" in rules
        best = result.best
        assert best.change.rule == "unwrap-ptr-fun"
        assert pretty_cpp(best.change.replacement) == "labs"


class TestDotArrow:
    def test_arrow_to_dot(self):
        src = "void f(vector<long>& v) { int n = v->size(); }"
        result = explain_cpp(src)
        best = result.best
        assert best is not None
        assert best.change.rule == "dot-arrow-swap"
        assert "v.size" in pretty_cpp(best.change.replacement)

    def test_dot_to_arrow(self):
        src = "void f(vector<long>* v) { int n = v.size(); }"
        result = explain_cpp(src)
        assert result.best.change.rule == "dot-arrow-swap"


class TestArgumentSurgery:
    def test_swap_args(self):
        src = (
            "long sub(long a, double b) { return a; }\n"
            "void f() { long r = sub(1.5, 2); }\n"
        )
        result = explain_cpp(src)
        assert result.best is not None
        assert result.best.change.rule == "permute-args"

    def test_statement_removal_fallback(self):
        # Two unrelated statements; one is hopeless — removal isolates it.
        src = 'void f() { int a = "bad"; int b = 2; }'
        result = explain_cpp(src)
        rules = [s.change.rule for s in result.suggestions]
        assert "remove-stmt" in rules

    def test_success_requires_no_new_errors(self):
        # Every reported suggestion must strictly shrink the error multiset.
        result = explain_cpp(FIG10)
        for s in result.suggestions:
            assert s.errors_after < s.errors_before


class TestHoisting:
    def test_hoist_isolates_bad_argument(self):
        # The call constrains its argument; hoisting removes the constraint
        # but keeps the argument checked — the Section 4.2 removal analogue.
        src = (
            "void takes_vec(vector<long>& v) { }\n"
            "void f(vector<long>& v) { takes_vec(undeclared_thing); }\n"
        )
        result = explain_cpp(src)
        rules = {s.change.rule for s in result.suggestions}
        # Hoisting alone cannot fix an undeclared name; removal can.
        assert "remove-stmt" in rules


class TestErrorSetComparison:
    def test_improves(self):
        from repro.cpptemplates.search import _improves

        assert _improves({"a": 2, "b": 1}, {"a": 1})
        assert not _improves({"a": 1}, {"a": 1})        # no elimination
        assert not _improves({"a": 2}, {"a": 1, "c": 1})  # new error
        assert _improves({"a": 1}, {})

    def test_multi_error_partial_fix_reported(self):
        src = (
            'void f(vector<long>& v) {\n'
            '    transform(v.begin(), v.end(), v.begin(),\n'
            '              compose1(bind1st(multiplies<long>(), 5), labs));\n'
            '    int bad = "other";\n'
            '}\n'
        )
        result = explain_cpp(src)
        best = result.best
        assert best is not None
        assert best.change.rule == "wrap-ptr-fun"
        assert not best.fixes_everything
        assert "other error" in best.render()
