"""Tests for the MiniCpp concrete-syntax printer."""

import pytest

from repro.cpptemplates import parse_cpp
from repro.cpptemplates.pretty import (
    pretty_cpp,
    pretty_cpp_expr,
    pretty_cpp_function,
    pretty_cpp_stmt,
)


def expr_of(text, params="int x, vector<long>& v, long* p"):
    unit = parse_cpp(f"void f({params}) {{ {text}; }}")
    return unit.functions[0].body.stmts[0].expr


class TestExpressions:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("1 + 2 * 3", "1 + 2 * 3"),
            ("(1 + 2) * 3", "(1 + 2) * 3"),
            ("g(1, 2)", "g(1, 2)"),
            ("v.begin()", "v.begin()"),
            ("p->size()", "p->size()"),
            ("*p", "*p"),
            ("multiplies<long>()", "multiplies<long>()"),
            ("compose1(bind1st(multiplies<long>(), 5), labs)",
             "compose1(bind1st(multiplies<long>(), 5), labs)"),
            ("x < 3", "x < 3"),
            ("v[0]", "v[0]"),
            ('"hi"', '"hi"'),
            ("true", "true"),
            ("!x", "!x"),
        ],
    )
    def test_roundtrip_text(self, src, expected):
        assert pretty_cpp_expr(expr_of(src)) == expected

    def test_nested_template_space(self):
        e = expr_of("unary_compose<vector<long>, vector<long> >()",
                    params="int x")
        # closing '>>' must be split
        assert "> >" in pretty_cpp_expr(e) or ">" in pretty_cpp_expr(e)


class TestStatements:
    def test_declaration(self):
        unit = parse_cpp("void f() { long x = labs(5); }")
        assert pretty_cpp_stmt(unit.functions[0].body.stmts[0]) == "long x = labs(5);"

    def test_return(self):
        unit = parse_cpp("int f() { return 1 + 2; }")
        assert pretty_cpp_stmt(unit.functions[0].body.stmts[0]) == "return 1 + 2;"

    def test_if(self):
        unit = parse_cpp("void f(int x) { if (x > 0) { return; } }")
        text = pretty_cpp_stmt(unit.functions[0].body.stmts[0])
        assert text.startswith("if (x > 0) {")
        assert "return;" in text


class TestFunctions:
    def test_plain_function(self):
        unit = parse_cpp("void f(vector<long>& v) { v.size(); }")
        text = pretty_cpp_function(unit.functions[0])
        assert text.startswith("void f(vector<long>& v) {")
        assert "v.size();" in text

    def test_template_function(self):
        unit = parse_cpp("template <class A, class B> B g(A x) { return x; }")
        text = pretty_cpp_function(unit.functions[0])
        assert text.startswith("template <class A, class B>")
        assert "B g(A x)" in text

    def test_function_pointer_param(self):
        unit = parse_cpp("long apply(long (*fn)(long), long x) { return fn(x); }")
        text = pretty_cpp_function(unit.functions[0])
        assert "long (*)(long) fn" in text or "(*fn)" in text

    def test_translation_unit(self):
        unit = parse_cpp("void a() { }\nvoid b() { }")
        text = pretty_cpp(unit)
        assert "void a()" in text and "void b()" in text


class TestReparse:
    @pytest.mark.parametrize(
        "src",
        [
            "void f(vector<long>& v) { long n = *v.begin(); }",
            "int f(int x) { if (x > 0) { return x; } else { return 0 - x; } }",
            "void f(vector<long>& v, vector<long>& o) { transform(v.begin(), v.end(), o.begin(), bind1st(multiplies<long>(), 5)); }",
        ],
    )
    def test_printed_function_reparses(self, src):
        unit = parse_cpp(src)
        printed = pretty_cpp(unit)
        reparsed = parse_cpp(printed)
        assert len(reparsed.functions) == len(unit.functions)
