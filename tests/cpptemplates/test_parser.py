"""Tests for the MiniCpp parser."""

import pytest

from repro.cpptemplates import (
    CBinop,
    CCall,
    CLit,
    CMember,
    CName,
    CTemplateId,
    CppParseError,
    DeclStmt,
    ExprStmt,
    IfStmt,
    ReturnStmt,
    parse_cpp,
)
from repro.cpptemplates.ast_nodes import CUnop
from repro.cpptemplates.types import (
    INT,
    LONG,
    TClass,
    TFunc,
    TParam,
    TPtr,
    TRef,
    VOID,
)


def first_fn(src):
    return parse_cpp(src).functions[0]


class TestTopLevel:
    def test_simple_function(self):
        fn = first_fn("void f() { }")
        assert fn.name == "f"
        assert fn.ret_type == VOID
        assert not fn.is_template

    def test_preprocessor_and_using_skipped(self):
        src = "#include <vector>\nusing namespace std;\nvoid f() { }"
        unit = parse_cpp(src)
        assert len(unit.functions) == 1

    def test_template_function(self):
        fn = first_fn("template <class A, class B> B g(A x) { return x; }")
        assert fn.template_params == ["A", "B"]
        assert fn.ret_type == TParam("B")

    def test_multiple_functions(self):
        unit = parse_cpp("void a() { }\nvoid b() { }")
        assert [f.name for f in unit.functions] == ["a", "b"]

    def test_line_numbers(self):
        unit = parse_cpp("#include <x>\n\nvoid f() {\n    int x = 1;\n}")
        fn = unit.functions[0]
        assert fn.span.start_line == 3
        assert fn.body.stmts[0].span.start_line == 4


class TestTypes:
    def test_vector_ref_param(self):
        fn = first_fn("void f(vector<long>& v) { }")
        assert fn.params[0].param_type == TRef(TClass("vector", [LONG]))

    def test_long_int_two_words(self):
        fn = first_fn("long int f() { return 1; }")
        assert fn.ret_type == LONG

    def test_const_stripped(self):
        fn = first_fn("void f(const vector<int>& v) { }")
        assert fn.params[0].param_type == TRef(TClass("vector", [INT]))

    def test_pointer_type(self):
        fn = first_fn("void f(long* p) { }")
        assert fn.params[0].param_type == TPtr(LONG)

    def test_function_pointer_param(self):
        fn = first_fn("void f(long (*fp)(long)) { }")
        assert fn.params[0].param_type == TFunc(LONG, [LONG])
        assert fn.params[0].name == "fp"

    def test_nested_template_type(self):
        fn = first_fn("void f(vector<vector<long> >& v) { }")
        inner = TClass("vector", [LONG])
        assert fn.params[0].param_type == TRef(TClass("vector", [inner]))


class TestStatements:
    def test_declaration(self):
        fn = first_fn("void f() { int x = 1; }")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, DeclStmt)
        assert stmt.decl_type == INT

    def test_return(self):
        fn = first_fn("int f() { return 1 + 2; }")
        assert isinstance(fn.body.stmts[0], ReturnStmt)

    def test_if_else(self):
        fn = first_fn("void f(int x) { if (x > 0) { return; } else { x; } }")
        stmt = fn.body.stmts[0]
        assert isinstance(stmt, IfStmt)
        assert stmt.else_block is not None

    def test_expression_statement(self):
        fn = first_fn("void f(int x) { x + 1; }")
        assert isinstance(fn.body.stmts[0], ExprStmt)

    def test_for_infinite_loop(self):
        fn = first_fn("template <class A, class B> B magicFun(A x) { for (;;); }")
        assert fn.is_template


class TestExpressions:
    def expr(self, text, params="int x, vector<long>& v"):
        fn = first_fn(f"void f({params}) {{ {text}; }}")
        return fn.body.stmts[0].expr

    def test_call(self):
        e = self.expr("g(1, 2)")
        assert isinstance(e, CCall) and len(e.args) == 2

    def test_member_call(self):
        e = self.expr("v.begin()")
        assert isinstance(e, CCall)
        assert isinstance(e.func, CMember)
        assert not e.func.arrow

    def test_arrow_member(self):
        e = self.expr("p->size()", params="vector<long>* p")
        assert e.func.arrow

    def test_template_id_constructor(self):
        e = self.expr("multiplies<long>()")
        assert isinstance(e, CCall)
        assert isinstance(e.func, CTemplateId)
        assert e.func.type_args == [LONG]

    def test_less_than_not_template(self):
        e = self.expr("x < 3")
        assert isinstance(e, CBinop) and e.op == "<"

    def test_unary_deref(self):
        e = self.expr("*p", params="long* p")
        assert isinstance(e, CUnop) and e.op == "*"

    def test_nested_calls(self):
        e = self.expr("compose1(bind1st(multiplies<long>(), 5), labs)")
        assert isinstance(e, CCall)
        assert isinstance(e.args[0], CCall)

    def test_qualified_names_collapse(self):
        e = self.expr("std::labs(5)")
        assert isinstance(e.func, CName) and e.func.name == "labs"

    def test_precedence(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "void f( {",
        "void f() { int = 3; }",
        "template <int N> void f() { }",
        "void f() { return 1 }",
    ])
    def test_rejects(self, bad):
        with pytest.raises(CppParseError):
            parse_cpp(bad)
