"""Tests for the extended mini-STL (bind2nd, count_if, accumulate) and the
paper's magicFun observation."""

import pytest

from repro.cpptemplates import explain_cpp, typecheck_cpp_source


class TestBind2nd:
    def test_well_typed(self):
        src = """
void f(vector<long>& v, vector<long>& out) {
    transform(v.begin(), v.end(), out.begin(), bind2nd(multiplies<long>(), 2));
}
"""
        assert typecheck_cpp_source(src).ok

    def test_second_argument_type_checked(self):
        src = 'void f() { bind2nd(multiplies<long>(), "bad"); }'
        result = typecheck_cpp_source(src)
        assert not result.ok
        assert "cannot convert" in result.errors[0].message

    def test_binder2nd_rejects_non_class(self):
        src = "void f() { bind2nd(labs, 2); }"
        result = typecheck_cpp_source(src)
        assert not result.ok
        assert "is not a class, struct, or union type" in result.render()


class TestCountIf:
    def test_well_typed(self):
        src = """
void f(vector<long>& v) {
    int n = count_if(v.begin(), v.end(), bind2nd(multiplies<long>(), 2));
}
"""
        assert typecheck_cpp_source(src).ok

    def test_function_pointer_predicate_needs_ptr_fun_sometimes(self):
        # count_if accepts raw function pointers directly (they are callable).
        src = """
void f(vector<long>& v) {
    int n = count_if(v.begin(), v.end(), labs);
}
"""
        assert typecheck_cpp_source(src).ok

    def test_wrong_predicate(self):
        src = """
void f(vector<long>& v) {
    int n = count_if(v.begin(), v.end(), multiplies<long>());
}
"""
        result = typecheck_cpp_source(src)
        assert not result.ok
        assert "no match for call to" in result.render()


class TestAccumulate:
    def test_well_typed(self):
        src = "void f(vector<long>& v) { long t = accumulate(v.begin(), v.end(), 0); }"
        assert typecheck_cpp_source(src).ok

    def test_element_mismatch(self):
        src = 'void f(vector<long>& v) { string t = accumulate(v.begin(), v.end(), "x"); }'
        result = typecheck_cpp_source(src)
        assert not result.ok


class TestMagicFun:
    """Section 4.2: the paper's magicFun trick, and why it often fails.

    "C++, for deep reasons involving ambiguity and overloading, does not
    have full inference. So in many contexts, magicFun(0) ... will not
    type-check because an appropriate return type cannot be resolved."
    """

    MAGIC = "template <class A, class B> B magicFun(A x) { for (;;); }\n"

    def test_magic_fun_declaration_parses_and_checks(self):
        assert typecheck_cpp_source(self.MAGIC).ok

    def test_return_type_cannot_be_deduced(self):
        src = self.MAGIC + "void f() { magicFun(0); }"
        result = typecheck_cpp_source(src)
        assert not result.ok
        assert "no matching function" in result.errors[0].message
        assert "cannot deduce template parameter B" in result.errors[0].message


class TestSearchWithExtendedStl:
    def test_ptr_fun_unnecessary_gets_unwrapped(self):
        # count_if takes the raw pointer; wrapping was the mistake... the
        # searcher should find that raw labs also works if the wrap breaks
        # something downstream. Here: a user function needing the pointer.
        src = """
long apply_fn(long (*fn)(long), long x) { return fn(x); }
void f() { long r = apply_fn(ptr_fun(labs), 7); }
"""
        result = explain_cpp(src)
        assert result.best is not None
        assert result.best.change.rule == "unwrap-ptr-fun"
