"""Tests for the batch front end: ``python -m repro explain``."""

from __future__ import annotations

import pytest

from repro.cli import main

ILL_TYPED = "let f x = x + 1\nlet b = f true\n"
WELL_TYPED = "let x = 1 + 2\n"
NO_ANSWER_BUDGET = ILL_TYPED  # paired with --max-calls 1 below
PARSE_ERROR = "let let = (\n"


@pytest.fixture
def batch_dir(tmp_path):
    (tmp_path / "bad.ml").write_text(ILL_TYPED)
    (tmp_path / "ok.ml").write_text(WELL_TYPED)
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "nested.ml").write_text(WELL_TYPED)
    return tmp_path


class TestExplainSubcommand:
    def test_table_and_exit_code(self, batch_dir, capsys):
        code = main(["explain", str(batch_dir / "bad.ml"), str(batch_dir / "ok.ml")])
        out = capsys.readouterr().out
        assert code == 1
        assert "ill-typed" in out
        assert "1 ok, 1 ill-typed" in out

    def test_all_ok_exit_zero(self, batch_dir, capsys):
        assert main(["explain", str(batch_dir / "ok.ml")]) == 0
        assert "1 ok, 0 ill-typed" in capsys.readouterr().out

    def test_dir_recurses_sorted(self, batch_dir, capsys):
        code = main(["explain", "--dir", str(batch_dir)])
        out = capsys.readouterr().out
        assert code == 1
        assert "bad.ml" in out
        assert "nested.ml" in out
        assert "3 files" in out
        # sorted order: bad.ml before ok.ml before sub/nested.ml
        assert out.index("bad.ml") < out.index("ok.ml") < out.index("nested.ml")

    def test_parse_error_exit_two(self, batch_dir, capsys):
        broken = batch_dir / "broken.ml"
        broken.write_text(PARSE_ERROR)
        code = main(["explain", str(broken), str(batch_dir / "ok.ml")])
        out = capsys.readouterr().out
        assert code == 2
        assert "input-error" in out

    def test_missing_file_exit_two(self, batch_dir, capsys):
        code = main(["explain", str(batch_dir / "nope.ml"), str(batch_dir / "ok.ml")])
        capsys.readouterr()
        assert code == 2

    def test_no_inputs_exit_two(self, capsys):
        assert main(["explain"]) == 2
        assert "no input files" in capsys.readouterr().err

    def test_bad_dir_exit_two(self, tmp_path, capsys):
        assert main(["explain", "--dir", str(tmp_path / "missing")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_no_answer_exit_three(self, batch_dir, capsys):
        code = main(
            ["explain", str(batch_dir / "bad.ml"), "--max-calls", "1"]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "no-answer" in out
        assert "[degraded]" in out

    def test_jobs_2_matches_serial(self, batch_dir, capsys):
        main(["explain", "--dir", str(batch_dir)])
        serial_out = capsys.readouterr().out
        code = main(["explain", "--dir", str(batch_dir), "--jobs", "2"])
        parallel_out = capsys.readouterr().out
        assert code == 1
        # The table includes per-file wall times; compare everything else.
        strip = lambda text: [
            line.split("0.")[0] for line in text.splitlines()
        ]
        assert strip(parallel_out) == strip(serial_out)

    def test_verbose_prints_reports(self, batch_dir, capsys):
        main(["explain", str(batch_dir / "bad.ml"), "--verbose"])
        out = capsys.readouterr().out
        assert "== " in out
        assert "within context" in out  # a rendered suggestion made it out

    def test_stats_totals(self, batch_dir, capsys):
        main(["explain", str(batch_dir / "bad.ml"), "--stats"])
        err = capsys.readouterr().err
        assert "oracle calls" in err

    def test_jobs_rejects_garbage(self, batch_dir, capsys):
        with pytest.raises(SystemExit):
            main(["explain", str(batch_dir / "ok.ml"), "--jobs", "zero"])

    def test_duplicate_file_listed_once(self, batch_dir, capsys):
        bad = str(batch_dir / "bad.ml")
        code = main(["explain", bad, bad])
        out = capsys.readouterr().out
        assert code == 1
        assert out.count("bad.ml") == 1
        assert "1 files" in out

    def test_file_also_under_dir_listed_once(self, batch_dir, capsys):
        # bad.ml passed explicitly AND found by the --dir walk: one row,
        # under its first-seen spelling (the explicit argument).
        code = main(
            ["explain", str(batch_dir / "bad.ml"), "--dir", str(batch_dir)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert out.count("bad.ml") == 1
        assert "3 files" in out
        assert "1 ok" not in out.splitlines()[0]  # summary is the last line
        assert "2 ok, 1 ill-typed" in out

    def test_dedup_is_spelling_insensitive(self, batch_dir, capsys):
        # `bad.ml` and `sub/../bad.ml` are the same file.
        alias = str(batch_dir / "sub" / ".." / "bad.ml")
        code = main(["explain", str(batch_dir / "bad.ml"), alias])
        out = capsys.readouterr().out
        assert code == 1
        assert "1 files" in out


class TestSingleFileJobs:
    def test_jobs_flag_byte_identical_output(self, batch_dir, capsys):
        serial_code = main([str(batch_dir / "bad.ml")])
        serial_out = capsys.readouterr().out
        parallel_code = main([str(batch_dir / "bad.ml"), "--jobs", "2"])
        parallel_out = capsys.readouterr().out
        assert parallel_code == serial_code == 1
        assert parallel_out == serial_out

    def test_metrics_flag_prints_merged_telemetry(self, batch_dir, capsys):
        code = main(["explain", "--dir", str(batch_dir), "--metrics"])
        err = capsys.readouterr().err
        assert code == 1
        assert "batch telemetry" in err
        assert "oracle.calls" in err

    def test_events_flag_writes_per_file_events(self, batch_dir, tmp_path, capsys):
        from repro.obs import events_of, read_events

        path = tmp_path / "batch.jsonl"
        code = main(["explain", "--dir", str(batch_dir), "--events", str(path)])
        assert code == 1
        events = read_events(path)
        finished = events_of(events, "search_finished")
        # One search_finished row per input file, in table order.
        assert len(finished) == 3
        labels = [e["label"] for e in finished]
        assert labels == sorted(labels)
        assert {e["ok"] for e in finished} == {True, False}
        metrics = events_of(events, "metrics")
        assert len(metrics) == 1
        assert metrics[0]["counters"]["oracle.calls"] > 0

    def test_batch_events_feed_report_subcommand(self, batch_dir, tmp_path, capsys):
        path = tmp_path / "batch.jsonl"
        main(["explain", "--dir", str(batch_dir), "--events", str(path)])
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 search(es)" in out

    def test_no_dedup_flag_accepted(self, batch_dir, capsys):
        assert main([str(batch_dir / "bad.ml"), "--no-dedup"]) == 1
        capsys.readouterr()


class TestDirScanHardening:
    def test_missing_dir_one_line_stderr_no_traceback(self, tmp_path, capsys):
        code = main(["explain", "--dir", str(tmp_path / "nope")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("error: not a directory:")
        assert "Traceback" not in err

    def test_dir_pointing_at_file_exit_two(self, batch_dir, capsys):
        code = main(["explain", "--dir", str(batch_dir / "bad.ml")])
        assert code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_unreadable_dir_scan_exit_two(self, batch_dir, monkeypatch, capsys):
        # Root can read chmod-0 dirs, so inject the scan failure instead.
        import pathlib

        def explode(self, pattern):
            raise OSError("injected permission failure")

        monkeypatch.setattr(pathlib.Path, "rglob", explode)
        code = main(["explain", "--dir", str(batch_dir)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot scan")
        assert "Traceback" not in err

    def test_batch_shed_fraction_flag(self, batch_dir, capsys):
        code = main(["explain", "--dir", str(batch_dir), "--shed-fraction", "0.9"])
        assert code in (0, 1)
        assert "bad.ml" in capsys.readouterr().out
