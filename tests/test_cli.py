"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def ml_file(tmp_path):
    path = tmp_path / "prog.ml"
    path.write_text(
        "let add str lst = if List.mem str lst then lst else str :: lst\n"
        'let r = add ["a"; "b"] "hello"\n'
    )
    return path


@pytest.fixture
def ok_file(tmp_path):
    path = tmp_path / "ok.ml"
    path.write_text("let x = 1 + 2\n")
    return path


@pytest.fixture
def cpp_file(tmp_path):
    path = tmp_path / "prog.cpp"
    path.write_text(
        "void myFun(vector<long>& inv, vector<long>& outv) {\n"
        "    transform(inv.begin(), inv.end(), outv.begin(),\n"
        "              compose1(bind1st(multiplies<long>(), 5), labs));\n"
        "}\n"
    )
    return path


class TestMiniMLMode:
    def test_ok_program_exit_zero(self, ok_file, capsys):
        assert main([str(ok_file)]) == 0
        assert "type-checks" in capsys.readouterr().out

    def test_ill_typed_exit_one(self, ml_file, capsys):
        assert main([str(ml_file)]) == 1
        out = capsys.readouterr().out
        assert "Type-checker:" in out
        assert "Search suggestions:" in out
        assert "Try replacing" in out

    def test_checker_only(self, ml_file, capsys):
        main([str(ml_file), "--checker-only"])
        out = capsys.readouterr().out
        assert "Search suggestions:" not in out

    def test_top_limits_suggestions(self, ml_file, capsys):
        main([str(ml_file), "--top", "1"])
        out = capsys.readouterr().out
        assert "Suggestion 2:" not in out

    def test_stats_flag(self, ml_file, capsys):
        main([str(ml_file), "--stats"])
        err = capsys.readouterr().err
        assert "oracle calls" in err

    def test_no_triage_flag(self, ml_file):
        assert main([str(ml_file), "--no-triage"]) == 1

    def test_fix_mode(self, ml_file, capsys):
        assert main([str(ml_file), "--fix"]) == 0
        captured = capsys.readouterr()
        assert "applied:" in captured.out
        assert "now type-checks" in captured.err

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.ml")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_parse_error_is_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.ml"
        bad.write_text("let = = =\n")
        assert main([str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestTelemetryFlags:
    def test_trace_writes_perfetto_loadable_json(self, ml_file, tmp_path, capsys):
        trace = tmp_path / "out.json"
        assert main([str(ml_file), "--trace", str(trace)]) == 1
        data = json.loads(trace.read_text())
        assert data["traceEvents"]
        names = {e["name"] for e in data["traceEvents"]}
        assert {"search", "localize", "descend", "enumerate"} <= names
        assert "perfetto" in capsys.readouterr().err

    def test_metrics_prints_table(self, ml_file, capsys):
        main([str(ml_file), "--metrics"])
        err = capsys.readouterr().err
        assert "telemetry:" in err
        assert "oracle.calls" in err

    def test_metrics_total_matches_stats_oracle_calls(self, ml_file, capsys):
        main([str(ml_file), "--metrics", "--stats"])
        err = capsys.readouterr().err
        # "[N oracle calls]" from --stats and "oracle.calls N" from --metrics
        stats_n = int(err.split(" oracle calls")[0].rsplit("[", 1)[1])
        metrics_line = next(
            line for line in err.splitlines()
            if line.strip().startswith("oracle.calls ")
        )
        assert int(metrics_line.split()[-1]) == stats_n

    def test_stats_reports_cache_counts(self, ml_file, capsys):
        main([str(ml_file), "--stats", "--cache"])
        err = capsys.readouterr().err
        assert "oracle cache:" in err
        assert "hits" in err and "misses" in err

    def test_stats_notes_disabled_cache(self, ml_file, capsys):
        main([str(ml_file), "--stats"])
        assert "cache disabled" in capsys.readouterr().err

    def test_cache_does_not_change_outcome(self, ml_file, capsys):
        assert main([str(ml_file), "--cache"]) == 1
        assert "Try replacing" in capsys.readouterr().out

    def test_trace_on_well_typed_program(self, ok_file, tmp_path):
        trace = tmp_path / "ok.json"
        assert main([str(ok_file), "--trace", str(trace)]) == 0
        assert json.loads(trace.read_text())["traceEvents"]

    def test_cpp_trace_and_metrics(self, cpp_file, tmp_path, capsys):
        trace = tmp_path / "cpp.json"
        assert main([str(cpp_file), "--trace", str(trace), "--metrics"]) == 1
        data = json.loads(trace.read_text())
        names = {e["name"] for e in data["traceEvents"]}
        assert "cpp.search" in names
        assert "cpp.checker_calls" in capsys.readouterr().err

    def test_fix_mode_accepts_telemetry_flags(self, ml_file, tmp_path, capsys):
        trace = tmp_path / "fix.json"
        assert main([str(ml_file), "--fix", "--trace", str(trace), "--metrics"]) == 0
        assert json.loads(trace.read_text())["traceEvents"]


class TestExitCodes:
    """The documented 0/1/2/3 contract — no path leaks a raw traceback."""

    def test_events_flag_writes_jsonl(self, ml_file, tmp_path, capsys):
        from repro.obs import events_of, read_events

        path = tmp_path / "run.jsonl"
        assert main([str(ml_file), "--events", str(path)]) == 1
        events = read_events(path)
        assert events[0]["type"] == "log_started"
        assert events[-1]["type"] == "log_closed"
        assert events_of(events, "search_started")
        finished = events_of(events, "search_finished")
        assert finished[0]["label"] == str(ml_file)
        assert events_of(events, "suggestions")
        assert events_of(events, "metrics")

    def test_report_flag_writes_run_report(self, ml_file, tmp_path, capsys):
        from repro.obs import RunReport

        path = tmp_path / "run.json"
        assert main([str(ml_file), "--report", str(path)]) == 1
        report = RunReport.load(path)
        assert report.label == str(ml_file)
        assert report.counters["oracle.calls"] > 0
        assert report.suggestions[0]["rank"] == 1
        assert report.elapsed_seconds > 0

    def test_events_on_ok_program(self, ok_file, tmp_path, capsys):
        from repro.obs import events_of, read_events

        path = tmp_path / "ok.jsonl"
        assert main([str(ok_file), "--events", str(path)]) == 0
        finished = events_of(read_events(path), "search_finished")
        assert finished[0]["ok"] is True

    def test_report_subcommand_dispatch(self, ml_file, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        main([str(ml_file), "--events", str(events)])
        capsys.readouterr()
        assert main(["report", str(events)]) == 0
        assert "flight recorder" in capsys.readouterr().out

    def test_report_subcommand_diff_cycle(self, ml_file, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        baseline = tmp_path / "base.json"
        main([str(ml_file), "--events", str(events)])
        assert main(["report", str(events), "--save", str(baseline)]) == 0
        assert main(["report", str(events), "--diff", str(baseline)]) == 0

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "input error" in out
        assert "--deadline" in out

    def test_undecodable_file_is_input_error(self, tmp_path, capsys):
        binary = tmp_path / "blob.ml"
        binary.write_bytes(b"\x80\x81let x = 1\xff")
        assert main([str(binary)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_budget_zero_degrades_to_exit_three(self, ml_file, capsys):
        assert main([str(ml_file), "--max-calls", "0"]) == 3
        captured = capsys.readouterr()
        assert "Traceback" not in captured.err
        assert "degraded" in captured.err

    def test_checker_only_ignores_search_budget(self, ml_file, capsys):
        # --checker-only never runs the search, so the search budget
        # cannot fail it (this used to raise BudgetExceeded).
        assert main([str(ml_file), "--checker-only", "--max-calls", "0"]) == 1
        out = capsys.readouterr().out
        assert "Type-checker:" in out
        assert "Search suggestions:" not in out

    def test_checker_only_ok_program(self, ok_file, capsys):
        assert main([str(ok_file), "--checker-only"]) == 0
        assert "type-checks" in capsys.readouterr().out

    def test_tiny_deadline_degrades_not_crashes(self, ml_file, capsys):
        code = main([str(ml_file), "--deadline", "0.000001", "--stats"])
        assert code in (1, 3)
        err = capsys.readouterr().err
        assert "Traceback" not in err
        assert "degraded" in err

    def test_generous_deadline_changes_nothing(self, ml_file, capsys):
        assert main([str(ml_file), "--deadline", "300"]) == 1
        captured = capsys.readouterr()
        assert "Try replacing" in captured.out
        assert "degraded" not in captured.err

    def test_stats_prints_degradation_line(self, ml_file, capsys):
        main([str(ml_file), "--stats"])
        assert "search degradation: none" in capsys.readouterr().err

    def test_fix_budget_zero_exit_three(self, ml_file, capsys):
        assert main([str(ml_file), "--fix", "--max-calls", "0"]) == 3
        assert "could not fully repair" in capsys.readouterr().err


class TestCppMode:
    def test_extension_selects_cpp(self, cpp_file, capsys):
        assert main([str(cpp_file)]) == 1
        out = capsys.readouterr().out
        assert "Compiler errors:" in out
        assert "ptr_fun(labs)" in out

    def test_explicit_cpp_flag(self, tmp_path, capsys):
        path = tmp_path / "prog.txt"
        path.write_text("void f() { int x = 1; }\n")
        assert main([str(path), "--cpp"]) == 0
        assert "compiles" in capsys.readouterr().out

    def test_cpp_stats(self, cpp_file, capsys):
        main([str(cpp_file), "--stats"])
        assert "compiler calls" in capsys.readouterr().err


class TestRobustnessFlags:
    def test_shed_fraction_accepted(self, ml_file, capsys):
        assert main([str(ml_file), "--shed-fraction", "0.5"]) == 1
        assert "Try replacing" in capsys.readouterr().out

    @pytest.mark.parametrize("bad", ["0", "-0.5", "1.5", "nan", "junk"])
    def test_shed_fraction_rejects_out_of_range(self, ml_file, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            main([str(ml_file), "--shed-fraction", bad])
        assert exc.value.code == 2
        assert "--shed-fraction" in capsys.readouterr().err

    def test_candidate_timeout_accepted(self, ml_file, capsys):
        assert main([str(ml_file), "--candidate-timeout", "30"]) == 1
        assert "Try replacing" in capsys.readouterr().out

    @pytest.mark.parametrize("flag", ["--candidate-timeout", "--worker-rss-mb"])
    @pytest.mark.parametrize("bad", ["0", "-1", "junk"])
    def test_positive_float_flags_reject_nonpositive(self, ml_file, flag, bad, capsys):
        with pytest.raises(SystemExit) as exc:
            main([str(ml_file), flag, bad])
        assert exc.value.code == 2
        assert flag in capsys.readouterr().err

    def test_worker_rss_flag_accepted_serially(self, ml_file, capsys):
        # Serial runs have no pool; the knob parses and is simply unused.
        assert main([str(ml_file), "--worker-rss-mb", "512"]) == 1

    def test_help_documents_interruption(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "130" in out

    def test_keyboard_interrupt_exits_130(self, monkeypatch, ml_file, capsys):
        import repro.cli as cli_mod

        def boom(argv=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "_dispatch", boom)
        assert main([str(ml_file)]) == 130
        assert "interrupted" in capsys.readouterr().err
