"""Tests for the flight recorder's JSONL event log."""

import io
import json

import pytest

from repro.obs import (
    NULL_EVENTS,
    SCHEMA_VERSION,
    EventLog,
    EventSchemaError,
    NullEventLog,
    events_of,
    read_events,
)


class FakeClock:
    """Deterministic monotonic clock: advances by ``step`` per reading."""

    def __init__(self, step=0.5):
        self.now = 100.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestEventLog:
    def test_header_and_footer(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path)
        log.emit("search_started", label="x")
        log.close()
        events = read_events(path)
        assert events[0]["type"] == "log_started"
        assert "pid" in events[0]
        assert events[-1]["type"] == "log_closed"
        assert events[-1]["events"] == 2

    def test_sequence_numbers_monotonic(self):
        sink = io.StringIO()
        log = EventLog(sink)
        for _ in range(3):
            log.emit("tick")
        log.close()
        events = read_events(sink.getvalue().splitlines())
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_timestamps_from_injected_clock(self):
        sink = io.StringIO()
        log = EventLog(sink, clock=FakeClock(step=0.5))
        log.emit("tick")
        events = read_events(sink.getvalue().splitlines())
        # Epoch read at construction, then one reading per emit.
        assert events[0]["t"] == pytest.approx(0.5)
        assert events[1]["t"] == pytest.approx(1.0)

    def test_every_line_carries_schema_version(self):
        sink = io.StringIO()
        with EventLog(sink) as log:
            log.emit("a")
            log.emit("b", detail=1)
        for line in sink.getvalue().splitlines():
            assert json.loads(line)["v"] == SCHEMA_VERSION

    def test_emit_after_close_is_noop(self):
        sink = io.StringIO()
        log = EventLog(sink)
        log.close()
        before = sink.getvalue()
        log.emit("late")
        log.close()
        assert sink.getvalue() == before

    def test_file_sink_owned_and_closed(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("x")
        assert log._handle.closed

    def test_filelike_sink_left_open(self):
        sink = io.StringIO()
        with EventLog(sink):
            pass
        assert not sink.closed

    def test_nonserializable_fields_stringified(self):
        sink = io.StringIO()
        log = EventLog(sink)
        log.emit("odd", obj=object())
        events = read_events(sink.getvalue().splitlines())
        assert isinstance(events[-1]["obj"], str)


class TestReadEvents:
    def test_rejects_unknown_version(self):
        line = json.dumps({"v": 99, "seq": 0, "t": 0.0, "type": "x"})
        with pytest.raises(EventSchemaError, match="unknown event schema version 99"):
            read_events([line])

    def test_rejects_missing_version(self):
        with pytest.raises(EventSchemaError, match="unknown event schema version"):
            read_events(['{"type": "x"}'])

    def test_rejects_malformed_json(self):
        with pytest.raises(EventSchemaError, match="not valid JSON"):
            read_events(["{truncated"])

    def test_rejects_non_object_line(self):
        with pytest.raises(EventSchemaError, match="not an event object"):
            read_events(["[1, 2, 3]"])

    def test_skips_blank_lines(self):
        line = json.dumps({"v": SCHEMA_VERSION, "seq": 0, "t": 0.0, "type": "x"})
        assert len(read_events([line, "", "   ", line])) == 2

    def test_error_names_offending_line(self):
        good = json.dumps({"v": SCHEMA_VERSION, "seq": 0, "t": 0.0, "type": "x"})
        bad = json.dumps({"v": 2, "type": "y"})
        with pytest.raises(EventSchemaError, match="line 2"):
            read_events([good, bad])


class TestEventsOf:
    def test_filters_by_type(self):
        events = [{"type": "a"}, {"type": "b"}, {"type": "a"}]
        assert len(events_of(events, "a")) == 2
        assert events_of(events, "missing") == []


class TestNullEventLog:
    def test_singleton_disabled(self):
        assert isinstance(NULL_EVENTS, NullEventLog)
        assert NULL_EVENTS.enabled is False

    def test_all_operations_are_noops(self):
        NULL_EVENTS.emit("anything", arbitrary="field")
        NULL_EVENTS.close()
        with NULL_EVENTS as log:
            log.emit("inside")
