"""Tests for the metrics registry (counters, histograms, rendering)."""

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry, NullMetrics


class TestCounters:
    def test_incr_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.incr("a")
        assert reg.value("a") == 2

    def test_incr_by_n(self):
        reg = MetricsRegistry()
        reg.incr("a", 5)
        assert reg.value("a") == 5

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_counter_object_is_shared(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.incr()
        assert reg.value("x") == 1

    def test_counters_prefix_filter(self):
        reg = MetricsRegistry()
        reg.incr("oracle.calls")
        reg.incr("oracle.cache.hits")
        reg.incr("search.prefix_tests")
        assert set(reg.counters("oracle.")) == {"oracle.calls", "oracle.cache.hits"}


class TestHistograms:
    def test_observe_and_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("t", v)
        h = reg.histogram("t")
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0

    def test_values_preserve_order(self):
        reg = MetricsRegistry()
        reg.observe("t", 3)
        reg.observe("t", 1)
        assert reg.values_of("t") == [3.0, 1.0]

    def test_percentile(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("t", v)
        assert reg.histogram("t").percentile(0.5) == pytest.approx(50, abs=1)
        assert reg.histogram("t").percentile(1.0) == 100

    def test_empty_histogram_stats(self):
        h = MetricsRegistry().histogram("t")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(0.5) == 0.0

    def test_histogram_names(self):
        reg = MetricsRegistry()
        reg.observe("span.a.seconds", 1)
        reg.observe("other", 1)
        assert reg.histogram_names("span.") == ["span.a.seconds"]


class TestRendering:
    def test_as_dict_flattens_both_kinds(self):
        reg = MetricsRegistry()
        reg.incr("calls", 3)
        reg.observe("seconds", 0.5)
        flat = reg.as_dict()
        assert flat["calls"] == 3
        assert flat["seconds.count"] == 1
        assert flat["seconds.total"] == 0.5

    def test_render_table_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.incr("oracle.calls", 7)
        text = reg.render_table()
        assert "oracle.calls" in text
        assert "7" in text

    def test_render_table_empty(self):
        assert "(empty)" in MetricsRegistry().render_table()

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.observe("b", 1)
        reg.reset()
        assert reg.as_dict() == {}

    def test_merge_folds_counts_and_samples(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.incr("c", 1)
        b.incr("c", 2)
        b.observe("h", 4)
        a.merge(b)
        assert a.value("c") == 3
        assert a.values_of("h") == [4.0]


class TestNullMetrics:
    def test_singleton_identity(self):
        assert NULL_METRICS is NULL_METRICS
        assert isinstance(NULL_METRICS, NullMetrics)
        assert NULL_METRICS.enabled is False

    def test_all_operations_are_noops(self):
        NULL_METRICS.incr("a", 5)
        NULL_METRICS.observe("b", 1.0)
        NULL_METRICS.counter("c").incr()
        assert NULL_METRICS.value("a") == 0
        assert NULL_METRICS.values_of("b") == []
        assert NULL_METRICS.as_dict() == {}
        assert NULL_METRICS.histogram_names() == []
        assert "(disabled)" in NULL_METRICS.render_table()
