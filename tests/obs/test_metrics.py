"""Tests for the metrics registry (counters, histograms, rendering)."""

import pytest

from repro.obs import DEFAULT_BUCKETS, NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.metrics import Histogram


class TestCounters:
    def test_incr_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.incr("a")
        assert reg.value("a") == 2

    def test_incr_by_n(self):
        reg = MetricsRegistry()
        reg.incr("a", 5)
        assert reg.value("a") == 5

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().value("nope") == 0

    def test_counter_object_is_shared(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.incr()
        assert reg.value("x") == 1

    def test_counters_prefix_filter(self):
        reg = MetricsRegistry()
        reg.incr("oracle.calls")
        reg.incr("oracle.cache.hits")
        reg.incr("search.prefix_tests")
        assert set(reg.counters("oracle.")) == {"oracle.calls", "oracle.cache.hits"}


class TestHistograms:
    def test_observe_and_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("t", v)
        h = reg.histogram("t")
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0

    def test_values_preserve_order(self):
        reg = MetricsRegistry()
        reg.observe("t", 3)
        reg.observe("t", 1)
        assert reg.values_of("t") == [3.0, 1.0]

    def test_percentile(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("t", v)
        assert reg.histogram("t").percentile(0.5) == pytest.approx(50, abs=1)
        assert reg.histogram("t").percentile(1.0) == 100

    def test_empty_histogram_stats(self):
        h = MetricsRegistry().histogram("t")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(0.5) == 0.0

    def test_histogram_names(self):
        reg = MetricsRegistry()
        reg.observe("span.a.seconds", 1)
        reg.observe("other", 1)
        assert reg.histogram_names("span.") == ["span.a.seconds"]


class TestRendering:
    def test_as_dict_flattens_both_kinds(self):
        reg = MetricsRegistry()
        reg.incr("calls", 3)
        reg.observe("seconds", 0.5)
        flat = reg.as_dict()
        assert flat["calls"] == 3
        assert flat["seconds.count"] == 1
        assert flat["seconds.total"] == 0.5

    def test_render_table_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.incr("oracle.calls", 7)
        text = reg.render_table()
        assert "oracle.calls" in text
        assert "7" in text

    def test_render_table_empty(self):
        assert "(empty)" in MetricsRegistry().render_table()

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.observe("b", 1)
        reg.reset()
        assert reg.as_dict() == {}

    def test_merge_folds_counts_and_samples(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.incr("c", 1)
        b.incr("c", 2)
        b.observe("h", 4)
        a.merge(b)
        assert a.value("c") == 3
        assert a.values_of("h") == [4.0]


class TestHistogramBuckets:
    def test_default_buckets_shared(self):
        h = Histogram("t")
        assert h.buckets == DEFAULT_BUCKETS

    def test_bucket_counts_length(self):
        h = Histogram("t")
        assert len(h.bucket_counts()) == len(h.buckets) + 1

    def test_bucket_counts_are_cumulative(self):
        h = Histogram("t", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.bucket_counts() == [1, 3, 4, 5]

    def test_bucket_boundary_is_inclusive(self):
        h = Histogram("t", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts() == [1, 1, 1]

    def test_empty_bucket_counts(self):
        h = Histogram("t", buckets=(1.0,))
        assert h.bucket_counts() == [0, 0]


class TestHistogramQuantile:
    def test_empty_is_zero(self):
        assert Histogram("t").quantile(0.5) == 0.0

    def test_single_sample_is_that_sample(self):
        h = Histogram("t")
        h.observe(7.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 7.25

    def test_interpolates_between_order_statistics(self):
        h = Histogram("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(2.5)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0

    def test_clamps_out_of_range(self):
        h = Histogram("t")
        h.observe(1.0)
        h.observe(2.0)
        assert h.quantile(-1.0) == 1.0
        assert h.quantile(2.0) == 2.0

    def test_order_independent(self):
        a, b = Histogram("a"), Histogram("b")
        for v in (5.0, 1.0, 3.0):
            a.observe(v)
        for v in (1.0, 3.0, 5.0):
            b.observe(v)
        assert a.quantile(0.9) == b.quantile(0.9)


class TestHistogramMerge:
    def test_merge_folds_samples(self):
        a, b = Histogram("a"), Histogram("b")
        a.observe(1.0)
        b.observe(2.0)
        a.merge(b)
        assert a.count == 2
        assert a.total == 3.0

    def test_merge_is_associative(self):
        def build(*samples):
            h = Histogram("h")
            for s in samples:
                h.observe(s)
            return h

        # ((a+b)+c) vs (a+(b+c)) — same multiset, same stats and buckets.
        left = build(1.0, 2.0)
        left.merge(build(3.0))
        left.merge(build(0.001, 9.0))

        bc = build(3.0)
        bc.merge(build(0.001, 9.0))
        right = build(1.0, 2.0)
        right.merge(bc)

        assert sorted(left.values) == sorted(right.values)
        assert left.bucket_counts() == right.bucket_counts()
        assert left.quantile(0.5) == right.quantile(0.5)

    def test_merge_empty_is_identity(self):
        h = Histogram("h")
        h.observe(1.0)
        h.merge(Histogram("other"))
        assert h.values == [1.0]


class TestSnapshotTransport:
    def test_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.incr("oracle.calls", 3)
        reg.observe("span.x.seconds", 0.5)
        other = MetricsRegistry()
        other.merge_snapshot(reg.snapshot())
        assert other.value("oracle.calls") == 3
        assert other.values_of("span.x.seconds") == [0.5]

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.incr("a")
        reg.observe("b", 1.5)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_snapshot_skips_prefixes(self):
        reg = MetricsRegistry()
        reg.incr("oracle.calls", 9)
        reg.incr("enum.tested.removal", 2)
        reg.observe("span.worker.check.seconds", 0.1)
        parent = MetricsRegistry()
        parent.merge_snapshot(reg.snapshot(), skip_counter_prefixes=("oracle.",))
        assert parent.value("oracle.calls") == 0
        assert parent.value("enum.tested.removal") == 2
        # Histograms are never skipped — timing merges freely.
        assert parent.values_of("span.worker.check.seconds") == [0.1]

    def test_merge_snapshot_is_deterministic_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        snap = {"counters": {"z": 1, "a": 2}, "histograms": {"h": [1.0]}}
        a.merge_snapshot(snap)
        b.merge_snapshot({"counters": {"a": 2, "z": 1}, "histograms": {"h": [1.0]}})
        assert a.counters() == b.counters()


class TestHistogramSampleCap:
    """Bounded retention: exact scalars forever, capped raw samples."""

    def _full(self, cap=8, extra=4):
        h = Histogram("t", buckets=(1.0, 10.0), sample_cap=cap)
        for i in range(cap + extra):
            h.observe(float(i))
        return h

    def test_scalars_exact_past_cap(self):
        h = self._full(cap=8, extra=4)
        assert h.count == 12
        assert h.total == sum(float(i) for i in range(12))
        assert h.min == 0.0
        assert h.max == 11.0
        assert h.mean == h.total / 12

    def test_bucket_counts_exact_past_cap(self):
        h = self._full(cap=8, extra=4)
        # values 0..11 against bounds (1.0, 10.0): 2 at <=1, 9 at <=10.
        assert h.bucket_counts() == [2, 11, 12]
        assert h.bucket_counts()[-1] == h.count

    def test_samples_are_first_k_and_deterministic(self):
        h = self._full(cap=8, extra=4)
        assert h.values == [float(i) for i in range(8)]
        assert h.truncated
        assert not Histogram("u").truncated

    def test_values_is_a_copy(self):
        h = Histogram("t")
        h.observe(1.0)
        h.values.append(99.0)
        assert h.values == [1.0]

    def test_quantile_approximate_past_cap(self):
        h = self._full(cap=8, extra=100)
        # Quantiles come from the retained prefix — bounded, not exact.
        assert h.quantile(1.0) == 7.0
        assert h.max == 107.0

    def test_merge_truncates_associatively(self):
        def make(lo, n):
            h = Histogram("t", sample_cap=4)
            for i in range(lo, lo + n):
                h.observe(float(i))
            return h

        left = make(0, 3)
        left.merge(make(10, 3))
        left.merge(make(20, 3))

        tail = make(10, 3)
        tail.merge(make(20, 3))
        right = make(0, 3)
        right.merge(tail)

        assert left.values == right.values == [0.0, 1.0, 2.0, 10.0]
        assert left.count == right.count == 9
        assert left.total == right.total
        assert left.max == right.max == 22.0
        assert left.bucket_counts() == right.bucket_counts()

    def test_merge_empty_keeps_extremes(self):
        h = Histogram("t")
        h.observe(5.0)
        h.merge(Histogram("other"))
        assert (h.count, h.min, h.max) == (1, 5.0, 5.0)

    def test_snapshot_roundtrip_untruncated_is_plain_list(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        reg.observe("h", 2.0)
        snap = reg.snapshot()
        assert snap["histograms"]["h"] == [1.0, 2.0]  # legacy wire shape
        other = MetricsRegistry()
        other.merge_snapshot(snap)
        assert other.values_of("h") == [1.0, 2.0]
        assert other.histogram("h").count == 2

    def test_snapshot_roundtrip_truncated_keeps_exact_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.sample_cap = 4
        for i in range(10):
            h.observe(float(i))
        snap = reg.snapshot()
        data = snap["histograms"]["h"]
        assert isinstance(data, dict)
        assert data["count"] == 10

        other = MetricsRegistry()
        other.merge_snapshot(snap)
        merged = other.histogram("h")
        assert merged.count == 10
        assert merged.total == h.total
        assert merged.max == 9.0
        assert merged.bucket_counts() == h.bucket_counts()

    def test_merge_snapshot_legacy_list_shape(self):
        # Old writers shipped bare sample lists; they must still merge.
        reg = MetricsRegistry()
        reg.merge_snapshot({"counters": {}, "histograms": {"h": [0.5, 2.0]}})
        assert reg.histogram("h").count == 2
        assert reg.values_of("h") == [0.5, 2.0]


class TestNullMetrics:
    def test_singleton_identity(self):
        assert NULL_METRICS is NULL_METRICS
        assert isinstance(NULL_METRICS, NullMetrics)
        assert NULL_METRICS.enabled is False

    def test_all_operations_are_noops(self):
        NULL_METRICS.incr("a", 5)
        NULL_METRICS.observe("b", 1.0)
        NULL_METRICS.counter("c").incr()
        assert NULL_METRICS.value("a") == 0
        assert NULL_METRICS.values_of("b") == []
        assert NULL_METRICS.as_dict() == {}
        assert NULL_METRICS.histogram_names() == []
        assert "(disabled)" in NULL_METRICS.render_table()
