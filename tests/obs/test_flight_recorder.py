"""Flight-recorder integration: cross-process aggregation, trace
re-parenting, and lifecycle events from real searches.

The acceptance bar for the telemetry aggregation is *counter identity*:
for every corpus program, the merged metrics of a ``jobs=N`` run must be
byte-identical to the serial run on every counter the serial path
produces (``oracle.*``, ``search.*``, ``enum.*``); only the
parallel-bookkeeping ``parallel.*`` counters may differ (they do not
exist serially).  Workers may legitimately check candidates the search
never applies, so this only holds because the pool discards worker-side
``oracle.*`` counts and the parent oracle re-accounts each *applied*
verdict — see ``Oracle.account_verdict`` and ``WorkerPool.check_suffixes``.
"""

import io
import json

import pytest

from repro.core.seminal import explain
from repro.corpus import generate_corpus
from repro.faults import ChaosOracle, standard_fault_plans
from repro.obs import EventLog, MetricsRegistry, Tracer, events_of, read_events

CORPUS = generate_corpus(scale=0.15, seed=11)


def serial_comparable(registry: MetricsRegistry) -> dict:
    """The counters the serial path produces (``parallel.*`` excluded)."""
    return {
        name: value
        for name, value in registry.counters().items()
        if not name.startswith("parallel.")
    }


def run_with_metrics(program: str, jobs: int) -> tuple:
    registry = MetricsRegistry()
    outcome = explain(program, jobs=jobs, metrics=registry)
    return outcome, registry


class TestParallelCounterIdentity:
    @pytest.mark.parametrize(
        "index", range(len(CORPUS.representatives)),
        ids=[
            f"{f.programmer}-{f.assignment}-{i}"
            for i, f in enumerate(CORPUS.representatives)
        ],
    )
    def test_jobs4_counters_byte_identical_to_serial(self, index):
        program = CORPUS.representatives[index].program
        serial_outcome, serial_reg = run_with_metrics(program, jobs=1)
        pooled_outcome, pooled_reg = run_with_metrics(program, jobs=4)
        assert serial_comparable(pooled_reg) == serial_comparable(serial_reg)
        assert pooled_outcome.oracle_calls == serial_outcome.oracle_calls

    def test_jobs2_metric_dicts_identical_on_corpus_program(self):
        """The regression test for the historical under-counting bug:
        worker-side oracle activity must neither vanish from nor
        double-count into the merged registry."""
        program = CORPUS.representatives[0].program
        _, serial_reg = run_with_metrics(program, jobs=1)
        _, pooled_reg = run_with_metrics(program, jobs=2)
        serial = serial_comparable(serial_reg)
        pooled = serial_comparable(pooled_reg)
        assert pooled == serial
        # The dict is non-trivial — the assertion above compared real work.
        assert serial["oracle.calls"] > 0
        assert any(k.startswith("search.") for k in serial)
        assert any(k.startswith("enum.") for k in serial)

    def test_parallel_only_counters_exist_in_pooled_run(self):
        program = CORPUS.representatives[0].program
        _, pooled_reg = run_with_metrics(program, jobs=2)
        assert pooled_reg.value("parallel.batches") > 0
        assert pooled_reg.value("parallel.candidates") > 0


class TestTraceReparenting:
    def test_worker_spans_reparented_under_parallel_batch(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry, keep_events=True)
        program = CORPUS.representatives[0].program
        explain(program, jobs=2, metrics=registry, tracer=tracer)

        trace = json.loads(tracer.to_json())
        events = trace["traceEvents"]
        batches = [e for e in events if e["name"] == "parallel.batch"]
        workers = [e for e in events if e["name"].startswith("worker.")]
        assert batches, "no parallel.batch spans in a jobs=2 trace"
        assert workers, "no worker spans shipped back from the pool"

        batch_ids = {e["args"]["batch"] for e in batches}
        own_pid = {e["pid"] for e in batches}.pop()
        for worker_event in workers:
            args = worker_event["args"]
            # Every worker span is annotated with the parent batch it was
            # re-parented under, and that batch span really exists.
            assert args["batch"] in batch_ids
            assert args["worker_pid"] == worker_event["tid"]
            assert worker_event["pid"] == own_pid
            parent = next(
                e for e in batches if e["args"]["batch"] == args["batch"]
            )
            # Re-based timestamps: the worker span starts at or after its
            # parent batch span's start.
            assert worker_event["ts"] >= parent["ts"]

    def test_worker_check_durations_merge_into_metrics(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry, keep_events=True)
        explain(
            CORPUS.representatives[0].program,
            jobs=2,
            metrics=registry,
            tracer=tracer,
        )
        assert registry.values_of("span.worker.check.seconds")


class TestLifecycleEvents:
    def explain_events(self, program: str, **kwargs) -> list:
        sink = io.StringIO()
        events = EventLog(sink)
        explain(program, events=events, label="test.ml", **kwargs)
        events.close()
        return read_events(sink.getvalue().splitlines())

    def test_search_lifecycle_events(self):
        events = self.explain_events(CORPUS.representatives[0].program)
        assert events_of(events, "search_started")
        finished = events_of(events, "search_finished")
        assert len(finished) == 1
        assert finished[0]["label"] == "test.ml"
        assert finished[0]["oracle_calls"] > 0
        assert events_of(events, "suggestions")

    def test_deadline_run_emits_degraded_event(self):
        events = self.explain_events(
            CORPUS.representatives[0].program, deadline_seconds=1e-9
        )
        reasons = {e["reason"] for e in events_of(events, "degraded")}
        assert "deadline" in reasons
        assert events_of(events, "search_finished")[0]["degraded"] is True


#: What each standard fault plan must leave in the event log.  The
#: latency and cache-corruption plans do not degrade a search by
#: themselves, so they run under a tiny deadline — the deterministic way
#: to make the flight recorder show *something* for them too.
FAULT_PLAN_EXPECTATIONS = {
    "crash-every-1": ("oracle_crash", {}),
    "crash-every-3": ("oracle_crash", {}),
    "recursion-crash": ("oracle_crash", {}),
    "snapshot-poison": ("degraded", {}),
    "latency": ("degraded", {"deadline_seconds": 1e-9}),
    "cache-corruption": ("degraded", {"deadline_seconds": 1e-9}),
    # The supervision-era plans target pool workers / the verdict store;
    # run in-process with neither, their injections are harmless, so the
    # tiny-deadline trick applies (their real coverage is the supervision
    # and self-heal suites, which assert restarts/quarantine/io counters).
    "worker-hang": ("degraded", {"deadline_seconds": 1e-9}),
    "flaky-store": ("degraded", {"deadline_seconds": 1e-9}),
    "memory-hog": ("degraded", {"deadline_seconds": 1e-9}),
    # Staling the decl outcome table is deliberately event-silent (the
    # depprune on/off event logs must stay byte-identical); it surfaces
    # through the oracle.decl.degraded counter instead, asserted by the
    # chaos suite.  Here the tiny-deadline trick applies as above.
    "stale-decl-table": ("degraded", {"deadline_seconds": 1e-9}),
}


class TestFaultPlanEvents:
    """Satellite (c): every chaos plan shows up in the event log."""

    @pytest.mark.parametrize("plan_name", sorted(standard_fault_plans()))
    def test_plan_yields_matching_event(self, plan_name):
        assert plan_name in FAULT_PLAN_EXPECTATIONS, (
            f"new fault plan {plan_name!r}: declare which event it must emit"
        )
        expected_type, extra_kwargs = FAULT_PLAN_EXPECTATIONS[plan_name]
        plan = standard_fault_plans()[plan_name]
        # A prefix that typechecks (so snapshots arm) then a real error.
        source = "let x = 1\nlet y = x + true"
        sink = io.StringIO()
        events = EventLog(sink)
        oracle = ChaosOracle(plan, cache=True)
        explain(source, oracle=oracle, events=events, **extra_kwargs)
        events.close()
        parsed = read_events(sink.getvalue().splitlines())
        matching = events_of(parsed, expected_type)
        assert matching, (
            f"plan {plan_name} produced no {expected_type!r} event; "
            f"got {[e['type'] for e in parsed]}"
        )

    def test_crash_event_carries_traceback_sample(self):
        plan = standard_fault_plans()["crash-every-1"]
        sink = io.StringIO()
        events = EventLog(sink)
        explain(
            "let x = 1\nlet y = x + true",
            oracle=ChaosOracle(plan),
            events=events,
        )
        events.close()
        crashes = events_of(read_events(sink.getvalue().splitlines()), "oracle_crash")
        assert crashes
        assert "injected oracle crash" in crashes[0]["error"]
