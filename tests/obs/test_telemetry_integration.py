"""End-to-end telemetry: the instrumented pipeline feeding obs correctly."""

import json

import pytest

from repro.core import Oracle, explain
from repro.cpptemplates import explain_cpp
from repro.miniml.parser import parse_program
from repro.obs import MetricsRegistry, Tracer

FIG2 = """
let map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)
let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]
"""

MULTI = 'let f a = (a + true) + (4 + "hi") + (a + false)'

CPP_BAD = """
void myFun(vector<long>& inv, vector<long>& outv) {
    transform(inv.begin(), inv.end(), outv.begin(),
              compose1(bind1st(multiplies<long>(), 5), labs));
}
"""


class TestMetricsAgreement:
    def test_registry_matches_oracle_counter(self):
        registry = MetricsRegistry()
        result = explain(FIG2, metrics=registry)
        assert registry.value("oracle.calls") == result.oracle_calls
        assert (
            registry.value("oracle.calls.ok") + registry.value("oracle.calls.fail")
            == result.oracle_calls
        )

    def test_phase_counters_match_search_stats(self):
        registry = MetricsRegistry()
        result = explain(MULTI, metrics=registry)
        stats = result.stats
        assert registry.value("search.prefix_tests") == stats.prefix_tests
        assert registry.value("search.removal_tests") == stats.removal_tests
        assert registry.value("search.constructive_tests") == stats.constructive_tests
        assert registry.value("search.adaptation_tests") == stats.adaptation_tests
        assert registry.value("search.triage_tests") == stats.triage_tests

    def test_generated_at_least_tested_per_rule(self):
        registry = MetricsRegistry()
        explain(FIG2, metrics=registry)
        tested = registry.counters("enum.tested.")
        for name, count in tested.items():
            rule = name[len("enum.tested."):]
            assert registry.value(f"enum.generated.{rule}") >= count

    def test_suggestions_ranked_counted(self):
        registry = MetricsRegistry()
        result = explain(FIG2, metrics=registry)
        assert registry.value("rank.suggestions_ranked") == len(result.suggestions)

    def test_explain_result_carries_registry(self):
        registry = MetricsRegistry()
        result = explain(FIG2, metrics=registry)
        assert result.metrics is registry

    def test_cache_hits_and_misses_counted(self):
        registry = MetricsRegistry()
        oracle = Oracle(cache=True, metrics=registry)
        program = parse_program("let x = 1")
        oracle.check(program)
        oracle.check(program)
        assert oracle.cache_hits == 1
        assert oracle.cache_misses == 1
        assert registry.value("oracle.cache.hits") == 1
        assert registry.value("oracle.cache.misses") == 1
        assert registry.value("oracle.calls") == 1


class TestTraceShape:
    def test_trace_covers_every_search_phase(self):
        tracer = Tracer()
        explain(MULTI, tracer=tracer)
        names = {e["name"] for e in tracer.spans()}
        assert {"parse", "search", "localize", "descend", "enumerate",
                "adapt", "triage", "rank"} <= names

    def test_descend_spans_carry_path_size_and_calls(self):
        tracer = Tracer()
        explain(FIG2, tracer=tracer)
        descends = tracer.spans("descend")
        assert descends
        for span in descends:
            assert "path" in span["args"]
            assert span["args"]["size"] >= 1
            assert span["args"]["oracle_calls"] >= 0

    def test_trace_json_round_trips_through_json_loads(self):
        tracer = Tracer()
        explain(FIG2, tracer=tracer)
        parsed = json.loads(tracer.to_json())
        assert parsed["traceEvents"]
        names = {e["name"] for e in parsed["traceEvents"]}
        assert "search" in names

    def test_all_spans_closed_after_search(self):
        tracer = Tracer()
        explain(MULTI, tracer=tracer)
        assert tracer.open_spans == 0


class TestBudgetExceeded:
    def test_spans_close_when_budget_exhausts_mid_search(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        result = explain(MULTI, max_oracle_calls=10, tracer=tracer, metrics=registry)
        assert result.budget_exhausted
        assert tracer.open_spans == 0
        # The abort is visible on at least one span.
        aborted = [e for e in tracer.spans() if e["args"].get("aborted")]
        assert any(e["args"]["aborted"] == "BudgetExceeded" for e in aborted)
        assert registry.value("oracle.budget_exceeded") == 1
        # The search span itself still closed normally (budget is caught).
        assert tracer.spans("search")

    def test_budget_metrics_stay_consistent(self):
        registry = MetricsRegistry()
        result = explain(MULTI, max_oracle_calls=10, metrics=registry)
        assert registry.value("oracle.calls") == result.oracle_calls == 10


class TestNullPathBehaviour:
    def test_default_explain_uses_null_telemetry(self):
        result = explain(FIG2)
        assert result.metrics is None

    def test_default_matches_instrumented_output(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        plain = explain(FIG2)
        traced = explain(FIG2, tracer=tracer, metrics=registry)
        assert plain.ok == traced.ok
        assert plain.oracle_calls == traced.oracle_calls
        assert plain.render() == traced.render()


class TestCppTelemetry:
    def test_cpp_registry_matches_checker_calls(self):
        registry = MetricsRegistry()
        result = explain_cpp(CPP_BAD, metrics=registry)
        assert not result.ok
        assert registry.value("cpp.checker_calls") == result.checker_calls

    def test_cpp_trace_has_phases_and_closes(self):
        tracer = Tracer()
        result = explain_cpp(CPP_BAD, tracer=tracer)
        assert not result.ok
        names = {e["name"] for e in tracer.spans()}
        assert {"cpp.parse", "cpp.search", "cpp.localize",
                "cpp.enumerate", "cpp.test"} <= names
        assert tracer.open_spans == 0
        json.loads(tracer.to_json())

    def test_cpp_per_rule_accounting(self):
        registry = MetricsRegistry()
        explain_cpp(CPP_BAD, metrics=registry)
        assert registry.value("cpp.enum.success.wrap-ptr-fun") >= 1
        tested = registry.counters("cpp.enum.tested.")
        assert sum(tested.values()) == registry.value("cpp.checker_calls") - 1
