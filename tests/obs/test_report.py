"""Tests for ``python -m repro report`` — aggregation and regression diff."""

import json

import pytest

from repro.obs import SCHEMA_VERSION, MetricsRegistry, RunReport
from repro.obs.report import (
    EXIT_INPUT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    RunAggregate,
    aggregate_files,
    aggregate_to_report,
    diff_against,
    load_any,
    main,
    render_aggregate,
    render_diff,
)


def event_line(seq, type, **fields):
    record = {"v": SCHEMA_VERSION, "seq": seq, "t": 0.1 * seq, "type": type}
    record.update(fields)
    return json.dumps(record)


def write_event_log(path, events):
    path.write_text("\n".join(events) + "\n")


def sample_event_log(path):
    write_event_log(
        path,
        [
            event_line(0, "log_started", pid=1, wall_time=0.0),
            event_line(1, "search_started", label="a.ml", decls=5, jobs=2),
            event_line(2, "oracle_crash", error="Boom in infer"),
            event_line(3, "phase_shed", phase="triage"),
            event_line(
                4,
                "degradation",
                reasons=["deadline"],
                phases_shed={"triage": 3},
                worker_crashes=0,
                crash_samples=["Boom in infer"],
            ),
            event_line(
                5,
                "suggestions",
                label="a.ml",
                ranks=[
                    {"rank": 1, "kind": "replace", "rule": "swap-args"},
                    {"rank": 2, "kind": "delete", "rule": ""},
                ],
            ),
            event_line(
                6,
                "search_finished",
                label="a.ml",
                ok=False,
                suggestions=2,
                oracle_calls=34,
                degraded=True,
                elapsed_seconds=0.5,
            ),
            event_line(
                7,
                "metrics",
                counters={
                    "oracle.calls": 34,
                    "oracle.full_checks": 5,
                    "oracle.prefix.reused": 29,
                    "search.removal_tests": 12,
                },
            ),
            event_line(8, "log_closed", events=8),
        ],
    )


def sample_run_report(counters=None, **kwargs):
    reg = MetricsRegistry()
    for name, value in (counters or {"oracle.calls": 10}).items():
        reg.incr(name, value)
    reg.observe("span.explain.file.seconds", 0.25)
    kwargs.setdefault("label", "b.ml")
    return RunReport.from_run(reg, **kwargs)


class TestAggregation:
    def test_event_log_aggregates(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sample_event_log(path)
        agg = load_any(str(path))
        assert agg.value("oracle.calls") == 34
        assert agg.value("search.removal_tests") == 12
        assert len(agg.searches) == 1
        assert agg.degraded_runs == 1
        assert agg.rank_counts == {1: 1, 2: 1}
        assert agg.phases_shed == {"triage": 3}
        assert agg.crash_samples  # from oracle_crash + degradation events

    def test_run_report_aggregates(self, tmp_path):
        path = tmp_path / "r.json"
        sample_run_report({"oracle.calls": 7}).write(path)
        agg = load_any(str(path))
        assert agg.value("oracle.calls") == 7
        assert agg.span_seconds["explain.file"] == pytest.approx(0.25)

    def test_multiple_files_sum(self, tmp_path):
        e = tmp_path / "e.jsonl"
        r = tmp_path / "r.json"
        sample_event_log(e)
        sample_run_report({"oracle.calls": 6}).write(r)
        agg = aggregate_files([str(e), str(r)])
        assert agg.value("oracle.calls") == 40
        assert len(agg.sources) == 2

    def test_render_mentions_key_tables(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sample_event_log(path)
        text = render_aggregate(load_any(str(path)))
        assert "oracle breakdown" in text
        assert "prefix-reuse rate" in text
        assert "rank 1" in text
        assert "phases shed" in text

    def test_render_store_section_only_when_present(self):
        agg = RunAggregate()
        agg.add_counters({"oracle.calls": 5})
        assert "persistent store" not in render_aggregate(agg)
        agg.add_counters(
            {"oracle.store.hits": 30, "oracle.store.misses": 10,
             "oracle.store.writes": 10, "oracle.store.invalidated": 2}
        )
        text = render_aggregate(agg)
        assert "persistent store:" in text
        assert "30 / 10" in text
        assert "75.0%" in text
        assert "invalidated" in text

    def test_supervision_incidents_not_double_counted(self, tmp_path):
        """A supervised run logs each incident twice — per-occurrence
        events as they happen, plus the end-of-run degradation summary
        (and the metrics counters carry them a third time).  The
        aggregate must reconcile the three views, not sum them."""
        path = tmp_path / "sup.jsonl"
        write_event_log(
            path,
            [
                event_line(0, "log_started", pid=1, wall_time=0.0),
                event_line(1, "worker_crash", error="boom"),
                event_line(2, "worker_restart", worker=0),
                event_line(3, "worker_crash", error="boom"),
                event_line(4, "worker_restart", worker=1),
                event_line(5, "quarantine", digest="abc"),
                event_line(
                    6,
                    "degradation",
                    reasons=[],
                    worker_crashes=2,
                    worker_restarts=2,
                    quarantined=1,
                    watchdog_kills=0,
                ),
                event_line(
                    7,
                    "metrics",
                    counters={
                        "parallel.worker_crashes": 2,
                        "parallel.restarts": 2,
                        "parallel.quarantined": 1,
                    },
                ),
                event_line(8, "log_closed", events=8),
            ],
        )
        agg = load_any(str(path))
        text = render_aggregate(agg)
        assert "worker restarts           2" in text
        assert "worker crashes" in text and "quarantined candidates    1" in text
        report = aggregate_to_report(agg)
        assert report.degradation["worker_crashes"] == 2
        assert report.degradation["worker_restarts"] == 2
        assert report.degradation["quarantined"] == 1

    def test_unknown_event_schema_propagates(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 99, "seq": 0, "t": 0, "type": "x"}\n')
        from repro.obs import EventSchemaError

        with pytest.raises(EventSchemaError):
            load_any(str(path))


class TestDiff:
    def base_agg(self, calls=10, reused=5):
        agg = RunAggregate()
        agg.add_counters({"oracle.calls": calls, "oracle.prefix.reused": reused})
        return agg

    def test_identical_no_changes(self):
        regressions, changes = diff_against(self.base_agg(), self.base_agg())
        assert regressions == []
        assert changes == []

    def test_cost_counter_growth_regresses(self):
        regressions, changes = diff_against(self.base_agg(calls=12), self.base_agg())
        assert [d.name for d in regressions] == ["oracle.calls"]
        assert regressions[0].relative == pytest.approx(0.2)

    def test_cost_counter_shrink_is_not_regression(self):
        regressions, changes = diff_against(self.base_agg(calls=8), self.base_agg())
        assert regressions == []
        assert len(changes) == 1

    def test_non_cost_counter_growth_is_not_regression(self):
        regressions, _ = diff_against(
            self.base_agg(reused=50), self.base_agg(reused=5)
        )
        assert regressions == []

    def test_store_counters_are_never_cost(self):
        # A warm run's store hits growing (and misses shrinking) must not
        # fail a --diff gate against a cold baseline.
        warm, cold = self.base_agg(), self.base_agg()
        cold.add_counters({"oracle.store.misses": 40, "oracle.store.writes": 40})
        warm.add_counters({"oracle.store.hits": 40, "oracle.store.misses": 1})
        regressions, _ = diff_against(warm, cold)
        assert regressions == []

    def test_threshold_tolerates_growth(self):
        regressions, _ = diff_against(
            self.base_agg(calls=12), self.base_agg(), threshold=0.5
        )
        assert regressions == []

    def test_threshold_exceeded_still_fails(self):
        regressions, _ = diff_against(
            self.base_agg(calls=20), self.base_agg(), threshold=0.5
        )
        assert [d.name for d in regressions] == ["oracle.calls"]

    def test_counter_missing_from_baseline_never_regresses(self):
        current = self.base_agg()
        current.add_counters({"search.brand_new": 100})
        regressions, changes = diff_against(current, self.base_agg())
        assert regressions == []
        assert changes == []  # only baseline counters are compared

    def test_render_diff_marks_regressions(self):
        regressions, changes = diff_against(self.base_agg(calls=12), self.base_agg())
        text = render_diff(regressions, changes, "base.json", 0.0)
        assert "oracle.calls: 10 -> 12" in text
        assert "REGRESSION" in text
        assert "1 regression(s)" in text


class TestMain:
    def test_ok_run(self, tmp_path, capsys):
        path = tmp_path / "e.jsonl"
        sample_event_log(path)
        assert main([str(path)]) == EXIT_OK
        assert "flight recorder" in capsys.readouterr().out

    def test_save_then_diff_identical_is_ok(self, tmp_path, capsys):
        path = tmp_path / "e.jsonl"
        base = tmp_path / "base.json"
        sample_event_log(path)
        assert main([str(path), "--save", str(base)]) == EXIT_OK
        assert main([str(path), "--diff", str(base)]) == EXIT_OK

    def test_diff_regression_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "e.jsonl"
        base = tmp_path / "base.json"
        sample_event_log(path)
        assert main([str(path), "--save", str(base)]) == EXIT_OK
        # Lower the baseline's oracle.calls: current run now "regresses".
        doc = json.loads(base.read_text())
        doc["counters"]["oracle.calls"] -= 5
        base.write_text(json.dumps(doc))
        assert main([str(path), "--diff", str(base)]) == EXIT_REGRESSION
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_regression_within_threshold_is_ok(self, tmp_path, capsys):
        path = tmp_path / "e.jsonl"
        base = tmp_path / "base.json"
        sample_event_log(path)
        main([str(path), "--save", str(base)])
        doc = json.loads(base.read_text())
        doc["counters"]["oracle.calls"] -= 5
        base.write_text(json.dumps(doc))
        assert main([str(path), "--diff", str(base), "--threshold", "0.5"]) == EXIT_OK

    def test_unknown_schema_is_input_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 99, "seq": 0, "t": 0, "type": "x"}\n')
        assert main([str(path)]) == EXIT_INPUT_ERROR
        assert "unknown event schema version" in capsys.readouterr().err

    def test_unknown_report_schema_is_input_error(self, tmp_path, capsys):
        path = tmp_path / "future.json"
        doc = sample_run_report().to_dict()
        doc["schema"] = 99
        path.write_text(json.dumps(doc))
        assert main([str(path)]) == EXIT_INPUT_ERROR
        assert "unknown RunReport schema" in capsys.readouterr().err

    def test_missing_file_is_input_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == EXIT_INPUT_ERROR


class TestAggregateToReport:
    def test_save_roundtrip_preserves_counters(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sample_event_log(path)
        agg = load_any(str(path))
        report = aggregate_to_report(agg)
        out = tmp_path / "agg.json"
        report.write(out)
        reloaded = load_any(str(out))
        assert reloaded.counters == agg.counters
        assert reloaded.rank_counts == agg.rank_counts
