"""Tests for the exporters: Prometheus exposition and the RunReport doc."""

import json
from pathlib import Path

import pytest

from repro.core.resilience import DegradationReport
from repro.obs import (
    RUN_REPORT_SCHEMA,
    MetricsRegistry,
    ReportSchemaError,
    RunReport,
    degradation_as_dict,
    render_prometheus,
    summarize_histogram,
)

GOLDEN = Path(__file__).parent / "golden"


def _golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.incr("oracle.calls", 34)
    reg.incr("oracle.prefix.reused", 29)
    reg.incr("search.removal_tests", 7)
    for v in (0.003, 0.02, 1.5):
        reg.observe("span.explain.file.seconds", v)
    return reg


class TestPrometheus:
    def test_matches_golden_file(self):
        expected = (GOLDEN / "prometheus.txt").read_text()
        assert render_prometheus(_golden_registry()) == expected

    def test_output_is_deterministic(self):
        assert render_prometheus(_golden_registry()) == render_prometheus(
            _golden_registry()
        )

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_counter_series_shape(self):
        reg = MetricsRegistry()
        reg.incr("oracle.calls", 3)
        text = render_prometheus(reg)
        assert "# TYPE repro_oracle_calls counter" in text
        assert "repro_oracle_calls 3" in text

    def test_histogram_buckets_cumulative_and_inf_terminated(self):
        reg = MetricsRegistry()
        reg.observe("t", 0.003)
        reg.observe("t", 999.0)
        text = render_prometheus(reg)
        assert 'repro_t_bucket{le="+Inf"} 2' in text
        assert "repro_t_count 2" in text
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_t_bucket")
        ]
        assert counts == sorted(counts)

    def test_custom_namespace(self):
        reg = MetricsRegistry()
        reg.incr("a")
        assert "myns_a 1" in render_prometheus(reg, namespace="myns")


class TestSummarizeHistogram:
    def test_summary_fields(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("t", v)
        summary = summarize_histogram(reg.histogram("t"))
        assert summary["count"] == 3
        assert summary["total"] == 6.0
        assert summary["mean"] == 2.0
        assert summary["p50"] == 2.0
        assert set(summary) >= {"count", "total", "mean", "min", "max", "p50", "p90", "p99"}


class TestRunReport:
    def test_roundtrip_through_disk(self, tmp_path):
        reg = _golden_registry()
        degradation = DegradationReport(reasons=["deadline"], oracle_crashes=2)
        report = RunReport.from_run(
            reg,
            label="fig2.ml",
            jobs=4,
            elapsed_seconds=1.25,
            degradation=degradation,
            suggestions=[{"rank": 1, "kind": "replace", "rule": "swap-args"}],
        )
        path = tmp_path / "r.json"
        report.write(path)
        loaded = RunReport.load(path)
        assert loaded == report
        assert loaded.counters["oracle.calls"] == 34
        assert loaded.degradation["reasons"] == ["deadline"]
        assert loaded.suggestions[0]["rank"] == 1

    def test_document_is_stable_json(self, tmp_path):
        report = RunReport.from_run(_golden_registry(), label="x")
        assert report.to_json() == report.to_json()
        data = json.loads(report.to_json())
        assert data["schema"] == RUN_REPORT_SCHEMA

    def test_schema_version_bump_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        doc = RunReport.from_run(_golden_registry()).to_dict()
        doc["schema"] = RUN_REPORT_SCHEMA + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ReportSchemaError, match="unknown RunReport schema"):
            RunReport.load(path)

    def test_missing_schema_rejected(self):
        with pytest.raises(ReportSchemaError, match="unknown RunReport schema"):
            RunReport.from_dict({"label": "no version"})

    def test_non_object_rejected(self):
        with pytest.raises(ReportSchemaError, match="not a JSON object"):
            RunReport.from_dict([1, 2])

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ReportSchemaError, match="not valid JSON"):
            RunReport.load(path)


class TestDegradationAsDict:
    def test_plain_data(self):
        report = DegradationReport(
            reasons=["crash"],
            oracle_crashes=1,
            phases_shed={"triage": 2},
            crash_samples=["Boom"],
        )
        data = degradation_as_dict(report)
        assert data["reasons"] == ["crash"]
        assert data["phases_shed"] == {"triage": 2}
        assert json.loads(json.dumps(data)) == data
