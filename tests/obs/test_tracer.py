"""Tests for the structured tracer (spans, events, Chrome/Perfetto JSON)."""

import json

import pytest

from repro.obs import NULL_TRACER, MetricsRegistry, NullTracer, Tracer, format_path


class TestSpans:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", path="decls[0]"):
            pass
        [event] = tracer.events
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"]["path"] == "decls[0]"

    def test_spans_nest_and_close_in_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            assert tracer.open_spans == 1
            with tracer.span("inner"):
                assert tracer.open_spans == 2
            assert tracer.open_spans == 1
        assert tracer.open_spans == 0
        # Events are emitted at close: inner first.
        assert [e["name"] for e in tracer.events] == ["inner", "outer"]
        inner, outer = tracer.events
        # The inner span's interval sits within the outer's.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_span_set_attaches_args_mid_span(self):
        tracer = Tracer()
        with tracer.span("work") as sp:
            sp.set("oracle_calls", 42)
        assert tracer.events[0]["args"]["oracle_calls"] == 42

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.open_spans == 0
        names = {e["name"]: e for e in tracer.events}
        assert names["inner"]["args"]["aborted"] == "ValueError"
        assert names["outer"]["args"]["aborted"] == "ValueError"

    def test_instant_event(self):
        tracer = Tracer()
        tracer.event("marker", reason="test")
        [event] = tracer.events
        assert event["ph"] == "i"
        assert event["args"]["reason"] == "test"

    def test_spans_filter_by_name(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [e["name"] for e in tracer.spans("a")] == ["a"]
        assert len(tracer.spans()) == 2

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.events == []
        assert tracer.open_spans == 0


class TestSerialization:
    def test_trace_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("search", decls=2):
            with tracer.span("descend", path="decls[0]", size=7):
                pass
        parsed = json.loads(tracer.to_json())
        assert isinstance(parsed["traceEvents"], list)
        assert len(parsed["traceEvents"]) == 2
        for event in parsed["traceEvents"]:
            # The keys Perfetto's Chrome-format importer requires.
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)

    def test_write_produces_loadable_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        out = tmp_path / "trace.json"
        tracer.write(out)
        data = json.loads(out.read_text())
        assert data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"

    def test_non_json_args_are_stringified(self):
        tracer = Tracer()
        with tracer.span("work", obj=object()):
            pass
        json.loads(tracer.to_json())  # must not raise


class TestMetricsBridge:
    def test_closed_spans_observe_duration_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with tracer.span("descend"):
            pass
        values = registry.values_of("span.descend.seconds")
        assert len(values) == 1
        assert values[0] >= 0

    def test_keep_events_false_still_feeds_metrics(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry, keep_events=False)
        with tracer.span("descend"):
            pass
        assert tracer.events == []
        assert registry.histogram("span.descend.seconds").count == 1
        # Metrics-only tracers advertise that span labels are not worth
        # computing.
        assert tracer.enabled is False


class TestNullTracer:
    def test_singleton_span_is_reused(self):
        a = NULL_TRACER.span("x", arg=1)
        b = NULL_TRACER.span("y")
        assert a is b  # one shared object: no allocation per span

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("work") as sp:
            sp.set("k", "v")
        NULL_TRACER.event("marker")
        assert NULL_TRACER.events == []
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.open_spans == 0
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_null_span_swallows_nothing(self):
        # The null span must not suppress exceptions.
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("work"):
                raise RuntimeError("boom")


class TestFormatPath:
    def test_mixed_steps(self):
        assert format_path((("decls", 0), ("bindings", 1), "expr")) == \
            "decls[0].bindings[1].expr"

    def test_root(self):
        assert format_path(()) == "<root>"
