"""The empirical study of Section 3: run three tools over the corpus.

For each analyzed (representative) file, the study obtains

1. the conventional checker's message,
2. SEMINAL's top suggestion,
3. SEMINAL's top suggestion with triage disabled,

grades each against the file's ground-truth mutation, and assigns the file a
Section 3.2 category.  Aggregations by programmer and by assignment feed
Figures 5(a) and 5(b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.seminal import ExplainResult, explain
from repro.corpus.generator import Corpus, CorpusFile
from repro.corpus.grading import FileGrades, grade_checker, grade_seminal
from repro.miniml.infer import typecheck_program

from .categories import Category, CategoryCounts, categorize, categorize_location_only


@dataclass(eq=False)
class FileOutcome:
    """Everything the study records for one analyzed file."""

    file: CorpusFile
    grades: FileGrades
    category: Category
    #: Wall-clock seconds for the full-tool run (feeds Figure 7).
    seconds_full: float
    seconds_no_triage: float
    oracle_calls: int

    @property
    def both_unhelpful(self) -> bool:
        """The "ties where no approach was very helpful" slice (paper: 9%)."""
        return (
            self.category in (Category.TIE_NO_TRIAGE, Category.TIE_TRIAGE_NEEDED)
            and self.grades.seminal.score == 0
        )


@dataclass
class StudyResult:
    """All per-file outcomes plus aggregate views."""

    outcomes: List[FileOutcome] = field(default_factory=list)

    @property
    def counts(self) -> CategoryCounts:
        return CategoryCounts.tally(o.category for o in self.outcomes)

    @property
    def counts_location_only(self) -> CategoryCounts:
        """Categories recomputed on location quality alone.

        Section 3.1: "Considering only location strictly increases the
        number of good results for each of the three error messages" — the
        paper reports the stricter location+accuracy measure; this view
        checks the same monotonicity on our data.
        """
        return CategoryCounts.tally(
            categorize_location_only(o.grades) for o in self.outcomes
        )

    def counts_by(self, key) -> Dict[str, CategoryCounts]:
        groups: Dict[str, List[Category]] = {}
        for outcome in self.outcomes:
            groups.setdefault(key(outcome), []).append(outcome.category)
        return {name: CategoryCounts.tally(cats) for name, cats in sorted(groups.items())}

    @property
    def by_programmer(self) -> Dict[str, CategoryCounts]:
        return self.counts_by(lambda o: o.file.programmer)

    @property
    def by_assignment(self) -> Dict[str, CategoryCounts]:
        return self.counts_by(lambda o: o.file.assignment)

    @property
    def unhelpful_tie_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.both_unhelpful) / len(self.outcomes)

    @property
    def times_full(self) -> List[float]:
        return sorted(o.seconds_full for o in self.outcomes)

    @property
    def times_no_triage(self) -> List[float]:
        return sorted(o.seconds_no_triage for o in self.outcomes)


def analyze_file(
    corpus_file: CorpusFile,
    max_oracle_calls: Optional[int] = 20000,
    disabled_rules: Sequence[str] = (),
) -> FileOutcome:
    """Run the three tools on one representative file and grade them."""
    program = corpus_file.program
    checker_result = typecheck_program(program)
    assert checker_result.error is not None, "corpus files must be ill-typed"

    start = time.perf_counter()
    with_triage = explain(
        program, enable_triage=True, max_oracle_calls=max_oracle_calls,
        disabled_rules=disabled_rules,
    )
    seconds_full = time.perf_counter() - start

    start = time.perf_counter()
    without_triage = explain(
        program, enable_triage=False, max_oracle_calls=max_oracle_calls,
        disabled_rules=disabled_rules,
    )
    seconds_no_triage = time.perf_counter() - start

    grades = FileGrades(
        checker=grade_checker(corpus_file.mutated, checker_result.error),
        seminal=grade_seminal(corpus_file.mutated, with_triage),
        seminal_no_triage=grade_seminal(corpus_file.mutated, without_triage),
    )
    return FileOutcome(
        file=corpus_file,
        grades=grades,
        category=categorize(grades),
        seconds_full=seconds_full,
        seconds_no_triage=seconds_no_triage,
        oracle_calls=with_triage.oracle_calls,
    )


def run_study(
    corpus: Corpus,
    max_files: Optional[int] = None,
    max_oracle_calls: Optional[int] = 20000,
    disabled_rules: Sequence[str] = (),
) -> StudyResult:
    """Analyze every representative file (optionally capped for smoke runs)."""
    result = StudyResult()
    files = corpus.representatives
    if max_files is not None:
        files = files[:max_files]
    for corpus_file in files:
        result.outcomes.append(
            analyze_file(
                corpus_file,
                max_oracle_calls=max_oracle_calls,
                disabled_rules=disabled_rules,
            )
        )
    return result
