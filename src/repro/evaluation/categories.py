"""The five outcome categories of the paper's Section 3.2.

For each analyzed file the study compares three messages — the type-checker's,
SEMINAL's, and SEMINAL's with triage disabled — and places the file in:

1. tie, triage unnecessary;
2. tie, triage necessary;
3. SEMINAL better, triage unnecessary;
4. SEMINAL better, triage necessary;
5. the type-checker better.

"Triage necessary" means the no-triage configuration would have produced a
worse message than the full system did.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Iterable, List

from repro.corpus.grading import FileGrades


class Category(IntEnum):
    TIE_NO_TRIAGE = 1
    TIE_TRIAGE_NEEDED = 2
    BETTER_NO_TRIAGE = 3
    BETTER_TRIAGE_NEEDED = 4
    CHECKER_BETTER = 5

    @property
    def label(self) -> str:
        return _LABELS[self]


_LABELS = {
    Category.TIE_NO_TRIAGE: "tie (triage unnecessary)",
    Category.TIE_TRIAGE_NEEDED: "tie (triage necessary)",
    Category.BETTER_NO_TRIAGE: "ours better (triage unnecessary)",
    Category.BETTER_TRIAGE_NEEDED: "ours better (triage necessary)",
    Category.CHECKER_BETTER: "type-checker better",
}


def categorize_location_only(grades: FileGrades) -> Category:
    """Categorize on message *location* alone (the paper's laxer metric)."""
    ours = 1 if grades.seminal.location else 0
    theirs = 1 if grades.checker.location else 0
    without = 1 if grades.seminal_no_triage.location else 0
    triage_needed = without < ours
    if ours > theirs:
        return Category.BETTER_TRIAGE_NEEDED if triage_needed else Category.BETTER_NO_TRIAGE
    if ours == theirs:
        return Category.TIE_TRIAGE_NEEDED if triage_needed else Category.TIE_NO_TRIAGE
    return Category.CHECKER_BETTER


def categorize(grades: FileGrades) -> Category:
    """Assign one analyzed file to its Section 3.2 category."""
    ours = grades.seminal.score
    theirs = grades.checker.score
    without = grades.seminal_no_triage.score
    triage_needed = without < ours
    if ours > theirs:
        return Category.BETTER_TRIAGE_NEEDED if triage_needed else Category.BETTER_NO_TRIAGE
    if ours == theirs:
        return Category.TIE_TRIAGE_NEEDED if triage_needed else Category.TIE_NO_TRIAGE
    return Category.CHECKER_BETTER


@dataclass
class CategoryCounts:
    """Aggregated category tallies with the paper's headline ratios."""

    counts: Dict[Category, int]

    @classmethod
    def tally(cls, categories: Iterable[Category]) -> "CategoryCounts":
        counts = {c: 0 for c in Category}
        for category in categories:
            counts[category] += 1
        return cls(counts)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, *categories: Category) -> float:
        if self.total == 0:
            return 0.0
        return sum(self.counts[c] for c in categories) / self.total

    # -- the paper's headline numbers (Section 3.2) ----------------------

    @property
    def ours_better(self) -> float:
        """Paper: 19%."""
        return self.fraction(Category.BETTER_NO_TRIAGE, Category.BETTER_TRIAGE_NEEDED)

    @property
    def checker_better(self) -> float:
        """Paper: 17%."""
        return self.fraction(Category.CHECKER_BETTER)

    @property
    def no_worse(self) -> float:
        """Paper: 83% (categories 1-4)."""
        return self.fraction(
            Category.TIE_NO_TRIAGE,
            Category.TIE_TRIAGE_NEEDED,
            Category.BETTER_NO_TRIAGE,
            Category.BETTER_TRIAGE_NEEDED,
        )

    @property
    def triage_win_boost(self) -> float:
        """Category 4 / category 3 (paper: +44%)."""
        c3 = self.counts[Category.BETTER_NO_TRIAGE]
        c4 = self.counts[Category.BETTER_TRIAGE_NEEDED]
        return c4 / c3 if c3 else float("inf") if c4 else 0.0

    @property
    def triage_tie_boost(self) -> float:
        """Category 2 / category 1 (paper: +19%)."""
        c1 = self.counts[Category.TIE_NO_TRIAGE]
        c2 = self.counts[Category.TIE_TRIAGE_NEEDED]
        return c2 / c1 if c1 else float("inf") if c2 else 0.0

    @property
    def triage_helped(self) -> float:
        """Categories 2 + 4 (paper: 16% of files)."""
        return self.fraction(Category.TIE_TRIAGE_NEEDED, Category.BETTER_TRIAGE_NEEDED)

    def as_row(self) -> List[int]:
        return [self.counts[c] for c in Category]
