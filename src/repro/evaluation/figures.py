"""Rendering the paper's evaluation figures as text.

* Figure 5(a)/(b): stacked category bars by programmer / by assignment.
* Figure 6: histogram of same-problem equivalence-class sizes (log-scale
  in the paper; we print the raw distribution with a log-bucketed view).
* Section 3.2 headline numbers.

The renderers return plain strings so benchmarks can ``print`` them and
EXPERIMENTS.md can embed them.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .categories import Category, CategoryCounts

#: One glyph per category for the stacked bars, in category order.
_GLYPHS = {
    Category.TIE_NO_TRIAGE: "=",
    Category.TIE_TRIAGE_NEEDED: "t",
    Category.BETTER_NO_TRIAGE: "#",
    Category.BETTER_TRIAGE_NEEDED: "T",
    Category.CHECKER_BETTER: "x",
}

_LEGEND = (
    "legend: '=' tie  't' tie(triage needed)  '#' ours better  "
    "'T' ours better(triage needed)  'x' checker better"
)


def render_figure5(
    groups: Dict[str, CategoryCounts], title: str, width: int = 50
) -> str:
    """A Figure 5-style stacked bar chart, one row per group."""
    lines = [title, _LEGEND]
    total_max = max((c.total for c in groups.values()), default=1)
    for name, counts in groups.items():
        bar = ""
        for category in Category:
            n = counts.counts[category]
            segment = max(0, round(n / total_max * width)) if total_max else 0
            bar += _GLYPHS[category] * segment
        row = f"{name:>6} |{bar:<{width}}| n={counts.total:3d}  " + " ".join(
            f"c{c.value}={counts.counts[c]}" for c in Category
        )
        lines.append(row)
    return "\n".join(lines)


def render_headline(counts: CategoryCounts, unhelpful_ties: float) -> str:
    """The Section 3.2 headline paragraph, paper value in parentheses."""
    return "\n".join(
        [
            f"analyzed files:            {counts.total}",
            f"ours better (cat 3+4):     {counts.ours_better:6.1%}   (paper: 19%)",
            f"checker better (cat 5):    {counts.checker_better:6.1%}   (paper: 17%)",
            f"no worse (cat 1-4):        {counts.no_worse:6.1%}   (paper: 83%)",
            f"triage helped (cat 2+4):   {counts.triage_helped:6.1%}   (paper: 16%)",
            f"cat4/cat3 (win boost):     {counts.triage_win_boost:6.2f}    (paper: 0.44)",
            f"cat2/cat1 (tie boost):     {counts.triage_tie_boost:6.2f}    (paper: 0.19)",
            f"ties where neither helped: {unhelpful_ties:6.1%}   (paper: 9%)",
        ]
    )


# ---------------------------------------------------------------------------
# Figure 6: equivalence-class size histogram
# ---------------------------------------------------------------------------


def class_size_histogram(sizes: Sequence[int]) -> Dict[int, int]:
    """size -> number of classes with that size."""
    histogram: Dict[int, int] = {}
    for size in sizes:
        histogram[size] = histogram.get(size, 0) + 1
    return dict(sorted(histogram.items()))


def render_figure6(sizes: Sequence[int], width: int = 40) -> str:
    """Figure 6: class-size distribution, bar length on a log scale."""
    histogram = class_size_histogram(sizes)
    if not histogram:
        return "Figure 6: (empty corpus)"
    max_log = max(math.log10(n + 1) for n in histogram.values())
    lines = [
        "Figure 6: sizes of same-problem file groups "
        "(one representative per group is analyzed; log-scale bars)"
    ]
    for size, count in histogram.items():
        bar = "#" * max(1, round(math.log10(count + 1) / max_log * width))
        lines.append(f"size {size:3d} | {bar} {count}")
    total_files = sum(s * n for s, n in histogram.items())
    lines.append(f"total files: {total_files}, groups (analyzed): {len(sizes)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CDFs (shared by Figure 7)
# ---------------------------------------------------------------------------


def cdf_points(times: Sequence[float]) -> List[Tuple[float, float]]:
    """Sorted (t, fraction of runs completing within t) pairs."""
    ordered = sorted(times)
    n = len(ordered)
    return [(t, (i + 1) / n) for i, t in enumerate(ordered)]


def fraction_within(times: Sequence[float], budget: float) -> float:
    """Fraction of runs completing within ``budget`` seconds."""
    if not times:
        return 0.0
    return sum(1 for t in times if t <= budget) / len(times)


def percentile(times: Sequence[float], q: float) -> float:
    """The q-th percentile (0..1) of run times."""
    ordered = sorted(times)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(math.ceil(q * len(ordered))) - 1))
    return ordered[index]


def render_figure7(
    curves: Dict[str, Sequence[float]], budgets: Sequence[float]
) -> str:
    """Figure 7: cumulative distribution of tool running time.

    ``curves`` maps configuration name (full tool / slow change disabled /
    triage disabled) to its per-file times.  ``budgets`` are the thresholds
    to report (the paper highlights 4s and 30s on its hardware; ours are
    relative to our substrate's speed).
    """
    lines = ["Figure 7: cumulative distribution of running time per analyzed file"]
    for name, times in curves.items():
        median = percentile(times, 0.5)
        p90 = percentile(times, 0.9)
        fractions = "  ".join(
            f"<= {b * 1000:.0f}ms: {fraction_within(times, b):4.0%}" for b in budgets
        )
        lines.append(
            f"{name:<24} median={median * 1000:6.1f}ms  p90={p90 * 1000:6.1f}ms  {fractions}"
        )
    return "\n".join(lines)
