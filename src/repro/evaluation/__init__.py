"""The Section 3 empirical study: categories, study runner, figures, timing."""

from .categories import (  # noqa: F401
    Category,
    CategoryCounts,
    categorize,
    categorize_location_only,
)
from .figures import (  # noqa: F401
    cdf_points,
    class_size_histogram,
    fraction_within,
    percentile,
    render_figure5,
    render_figure6,
    render_figure7,
    render_headline,
)
from .report import collect, generate_report  # noqa: F401
from .study import FileOutcome, StudyResult, analyze_file, run_study  # noqa: F401
from .timing import (  # noqa: F401
    CONFIGURATIONS,
    ParallelComparison,
    TimingResult,
    run_parallel_comparison,
    run_timing_study,
)
