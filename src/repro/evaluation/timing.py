"""The Figure 7 timing study: running-time CDFs under three configurations.

The paper's three curves:

* bottom — the full tool;
* middle — one constructive change with a performance bug disabled (the
  nested-match reparenthesizer; our enumerator tags it ``reparen-match``);
* top — triage disabled ("not a single file takes longer than 4 seconds").

Absolute numbers depend on hardware and substrate speed (a 2007 laptop
running OCaml vs a Python MiniML checker), so the *claims* we reproduce are
relative: the full CDF has a long tail, disabling the one slow change trims
roughly a third of the tail, and disabling triage collapses it.

Measurement goes through :mod:`repro.obs` rather than raw timers: each
configuration gets a :class:`~repro.obs.MetricsRegistry` and a
metrics-only :class:`~repro.obs.Tracer` (``keep_events=False``, built on
the monotonic ``time.perf_counter_ns`` clock), so every curve comes with a
per-phase breakdown — oracle calls by phase and seconds by span — instead
of a single opaque wall-clock number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.parallel import resolve_jobs
from repro.core.seminal import explain
from repro.corpus.generator import Corpus
from repro.obs import MetricsRegistry, Tracer

#: Configuration name -> explain() keyword arguments.
CONFIGURATIONS: Dict[str, dict] = {
    "full tool": {},
    "no reparen-match change": {"disabled_rules": ("reparen-match",)},
    "no triage": {"enable_triage": False},
}

#: The per-file wall-clock histogram each curve is read from.
_FILE_SPAN = "explain.file"

#: The oracle-call phase counters reported in breakdowns.
_PHASE_COUNTERS = (
    "search.prefix_tests",
    "search.removal_tests",
    "search.constructive_tests",
    "search.adaptation_tests",
    "search.triage_tests",
)

#: Prefix-reuse accounting (how many oracle calls rode the incremental
#: fast path vs paid a full from-scratch inference), plus the resilience
#: counters (crashes isolated, self-healing fallbacks, depth rejections).
_ORACLE_COUNTERS = (
    "oracle.full_checks",
    "oracle.prefix.reused",
    "oracle.prefix.invalidated",
    "oracle.crashes",
    "oracle.prefix.fallbacks",
    "oracle.depth_rejected",
)


@dataclass
class TimingResult:
    """Per-configuration sorted run times (seconds) plus phase telemetry."""

    curves: Dict[str, List[float]] = field(default_factory=dict)
    oracle_calls: Dict[str, List[int]] = field(default_factory=dict)
    #: Configuration name -> how many files returned degraded (best-effort)
    #: results — nonzero when the study runs with a deadline or tight budget.
    degraded_runs: Dict[str, int] = field(default_factory=dict)
    #: Configuration name -> the aggregate registry of the whole run
    #: (oracle calls by outcome/phase, per-rule counts, span durations).
    metrics: Dict[str, MetricsRegistry] = field(default_factory=dict)

    def curve(self, name: str) -> List[float]:
        return self.curves[name]

    def phase_breakdown(self, name: str) -> Dict[str, int]:
        """Oracle calls by search phase for one configuration."""
        registry = self.metrics[name]
        return {counter: registry.value(counter) for counter in _PHASE_COUNTERS}

    def oracle_breakdown(self, name: str) -> Dict[str, int]:
        """Incremental-vs-full oracle accounting for one configuration."""
        registry = self.metrics[name]
        return {counter: registry.value(counter) for counter in _ORACLE_COUNTERS}

    def phase_seconds(self, name: str) -> Dict[str, float]:
        """Total seconds by span name for one configuration."""
        registry = self.metrics[name]
        out: Dict[str, float] = {}
        for hist_name in registry.histogram_names("span."):
            if not hist_name.endswith(".seconds"):
                continue
            phase = hist_name[len("span."):-len(".seconds")]
            if phase != _FILE_SPAN:
                out[phase] = registry.histogram(hist_name).total
        return out

    def to_run_report(self, name: str, jobs: int = 1) -> "RunReport":
        """One configuration's registry as a :class:`~repro.obs.RunReport`.

        The resulting document is what ``repro report --diff`` consumes, so
        a timing-study configuration can serve as a checked-in regression
        baseline: counters are the deterministic diff surface, histogram
        summaries carry the (machine-dependent) timing.
        """
        from repro.obs import RunReport

        registry = self.metrics[name]
        return RunReport.from_run(
            registry,
            label=name,
            jobs=jobs,
            elapsed_seconds=sum(self.curves.get(name, ())),
        )

    def render_breakdown(self, name: str) -> str:
        """One-configuration per-phase summary (calls and seconds)."""
        calls = self.phase_breakdown(name)
        seconds = self.phase_seconds(name)
        lines = [f"{name}:"]
        lines.append(
            "  oracle calls by phase: "
            + " ".join(f"{k.split('.')[-1]}={v}" for k, v in calls.items())
        )
        reuse = self.oracle_breakdown(name)
        if any(reuse.values()):
            lines.append(
                "  prefix reuse: "
                + " ".join(f"{k.split('.')[-1]}={v}" for k, v in reuse.items())
            )
        degraded = self.degraded_runs.get(name, 0)
        if degraded:
            lines.append(f"  degraded runs: {degraded}")
        if seconds:
            lines.append(
                "  seconds by span: "
                + " ".join(f"{k}={v:.3f}" for k, v in sorted(seconds.items()))
            )
        return "\n".join(lines)


def run_timing_study(
    corpus: Corpus,
    max_files: Optional[int] = None,
    configurations: Optional[Dict[str, dict]] = None,
    max_oracle_calls: Optional[int] = 20000,
    deadline_seconds: Optional[float] = None,
    jobs: Union[int, str, None] = 1,
) -> TimingResult:
    """Time :func:`explain` on every representative under each configuration.

    Wall clock per file is the ``explain.file`` span duration observed into
    the configuration's registry (monotonic ``perf_counter_ns`` under the
    hood); the same registry simultaneously collects the per-phase oracle
    -call and span-duration breakdowns.

    ``deadline_seconds`` puts a per-file wall-clock cap on each search;
    files that hit it (or the oracle budget) still contribute a time and a
    best-effort outcome, and are counted in ``TimingResult.degraded_runs``
    — the CDF's tail is then the deadline by construction.

    ``jobs`` turns on per-candidate parallel checking inside each search
    (``"auto"`` = one worker per CPU).  Answers and oracle-call counts are
    byte-identical either way (see :mod:`repro.core.parallel`), so curves
    measured at different ``jobs`` are directly comparable — which is what
    :func:`run_parallel_comparison` does.
    """
    configurations = configurations if configurations is not None else CONFIGURATIONS
    files = corpus.representatives
    if max_files is not None:
        files = files[:max_files]
    result = TimingResult()
    for name, kwargs in configurations.items():
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry, keep_events=False)
        calls: List[int] = []
        degraded = 0
        for corpus_file in files:
            with tracer.span(_FILE_SPAN):
                outcome = explain(
                    corpus_file.program,
                    max_oracle_calls=max_oracle_calls,
                    deadline_seconds=deadline_seconds,
                    jobs=jobs,
                    tracer=tracer,
                    metrics=registry,
                    **kwargs,
                )
            calls.append(outcome.oracle_calls)
            if outcome.degraded:
                degraded += 1
        result.curves[name] = sorted(registry.values_of(f"span.{_FILE_SPAN}.seconds"))
        result.oracle_calls[name] = calls
        result.degraded_runs[name] = degraded
        result.metrics[name] = registry
    return result


@dataclass
class ParallelComparison:
    """Serial-vs-parallel wall time over one corpus slice.

    ``serial_seconds``/``parallel_seconds`` are per-file, in corpus order;
    the oracle-call lists are recorded for both runs and must be identical
    (determinism — asserted by the benchmark, reported here for the
    empirical study's tables).
    """

    jobs: int = 1
    serial_seconds: List[float] = field(default_factory=list)
    parallel_seconds: List[float] = field(default_factory=list)
    serial_calls: List[int] = field(default_factory=list)
    parallel_calls: List[int] = field(default_factory=list)

    @property
    def serial_total(self) -> float:
        return sum(self.serial_seconds)

    @property
    def parallel_total(self) -> float:
        return sum(self.parallel_seconds)

    @property
    def speedup(self) -> float:
        """Serial / parallel wall time (>1 means parallel won)."""
        if self.parallel_total <= 0:
            return float("inf") if self.serial_total > 0 else 1.0
        return self.serial_total / self.parallel_total

    @property
    def calls_match(self) -> bool:
        return self.serial_calls == self.parallel_calls

    def render(self) -> str:
        return (
            f"serial {self.serial_total:.3f}s vs parallel(jobs={self.jobs}) "
            f"{self.parallel_total:.3f}s over {len(self.serial_seconds)} files "
            f"-> {self.speedup:.2f}x "
            f"(oracle calls {'identical' if self.calls_match else 'DIVERGED'})"
        )


def run_parallel_comparison(
    corpus: Corpus,
    max_files: Optional[int] = None,
    jobs: Union[int, str, None] = "auto",
    max_oracle_calls: Optional[int] = 20000,
    **explain_kwargs,
) -> ParallelComparison:
    """Time every representative serially and again with ``jobs`` workers.

    The serial pass always runs first (so worker warm-up never pollutes
    it), each file is measured with the monotonic clock, and oracle-call
    counts are recorded from both passes — equal counts are the cheap
    proxy for the byte-identical-answers guarantee the benchmark asserts
    in full.
    """
    files = corpus.representatives
    if max_files is not None:
        files = files[:max_files]
    comparison = ParallelComparison(jobs=resolve_jobs(jobs))
    for pass_jobs, seconds, calls in (
        (1, comparison.serial_seconds, comparison.serial_calls),
        (jobs, comparison.parallel_seconds, comparison.parallel_calls),
    ):
        for corpus_file in files:
            start = time.perf_counter()
            outcome = explain(
                corpus_file.program,
                max_oracle_calls=max_oracle_calls,
                jobs=pass_jobs,
                **explain_kwargs,
            )
            seconds.append(time.perf_counter() - start)
            calls.append(outcome.oracle_calls)
    return comparison
