"""The Figure 7 timing study: running-time CDFs under three configurations.

The paper's three curves:

* bottom — the full tool;
* middle — one constructive change with a performance bug disabled (the
  nested-match reparenthesizer; our enumerator tags it ``reparen-match``);
* top — triage disabled ("not a single file takes longer than 4 seconds").

Absolute numbers depend on hardware and substrate speed (a 2007 laptop
running OCaml vs. a Python MiniML checker), so the *claims* we reproduce are
relative: the full CDF has a long tail, disabling the one slow change trims
roughly a third of the tail, and disabling triage collapses it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.seminal import explain
from repro.corpus.generator import Corpus

#: Configuration name -> explain() keyword arguments.
CONFIGURATIONS: Dict[str, dict] = {
    "full tool": {},
    "no reparen-match change": {"disabled_rules": ("reparen-match",)},
    "no triage": {"enable_triage": False},
}


@dataclass
class TimingResult:
    """Per-configuration sorted run times (seconds)."""

    curves: Dict[str, List[float]] = field(default_factory=dict)
    oracle_calls: Dict[str, List[int]] = field(default_factory=dict)

    def curve(self, name: str) -> List[float]:
        return self.curves[name]


def run_timing_study(
    corpus: Corpus,
    max_files: Optional[int] = None,
    configurations: Optional[Dict[str, dict]] = None,
    max_oracle_calls: Optional[int] = 20000,
) -> TimingResult:
    """Time :func:`explain` on every representative under each configuration."""
    configurations = configurations if configurations is not None else CONFIGURATIONS
    files = corpus.representatives
    if max_files is not None:
        files = files[:max_files]
    result = TimingResult()
    for name, kwargs in configurations.items():
        times: List[float] = []
        calls: List[int] = []
        for corpus_file in files:
            start = time.perf_counter()
            outcome = explain(
                corpus_file.program, max_oracle_calls=max_oracle_calls, **kwargs
            )
            times.append(time.perf_counter() - start)
            calls.append(outcome.oracle_calls)
        result.curves[name] = sorted(times)
        result.oracle_calls[name] = calls
    return result
