"""Machine-generated paper-vs-measured report (backs EXPERIMENTS.md).

:func:`generate_report` runs the full study and timing sweep and renders a
markdown document comparing every headline metric against the paper's
published value, so the numbers in EXPERIMENTS.md can be refreshed with::

    python -m repro.evaluation.report [scale] > report.md
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional

from repro.corpus.generator import Corpus, generate_corpus

from .categories import CategoryCounts
from .figures import (
    percentile,
    render_figure5,
    render_figure6,
    render_figure7,
)
from .study import StudyResult, run_study
from .timing import TimingResult, run_timing_study

#: The paper's Section 3.2 values, for side-by-side comparison.
PAPER_VALUES = {
    "ours_better": 0.19,
    "checker_better": 0.17,
    "no_worse": 0.83,
    "triage_helped": 0.16,
    "triage_win_boost": 0.44,
    "triage_tie_boost": 0.19,
    "unhelpful_ties": 0.09,
}


@dataclass
class ReportData:
    corpus: Corpus
    study: StudyResult
    timing: TimingResult


def collect(scale: float = 1.0, seed: int = 2007, timing_files: int = 60) -> ReportData:
    corpus = generate_corpus(scale=scale, seed=seed)
    study = run_study(corpus)
    timing = run_timing_study(corpus, max_files=timing_files)
    return ReportData(corpus=corpus, study=study, timing=timing)


def _row(name: str, paper: float, measured: float, as_ratio: bool = False) -> str:
    if as_ratio:
        return f"| {name} | {paper:.2f} | {measured:.2f} |"
    return f"| {name} | {paper:.0%} | {measured:.1%} |"


def headline_table(study: StudyResult) -> str:
    counts: CategoryCounts = study.counts
    lines = [
        "| metric | paper | measured |",
        "|---|---|---|",
        _row("ours better (cat 3+4)", PAPER_VALUES["ours_better"], counts.ours_better),
        _row("checker better (cat 5)", PAPER_VALUES["checker_better"], counts.checker_better),
        _row("no worse (cat 1-4)", PAPER_VALUES["no_worse"], counts.no_worse),
        _row("triage helped (cat 2+4)", PAPER_VALUES["triage_helped"], counts.triage_helped),
        _row("cat4/cat3", PAPER_VALUES["triage_win_boost"], counts.triage_win_boost, as_ratio=True),
        _row("cat2/cat1", PAPER_VALUES["triage_tie_boost"], counts.triage_tie_boost, as_ratio=True),
        _row("unhelpful ties", PAPER_VALUES["unhelpful_ties"], study.unhelpful_tie_fraction),
    ]
    return "\n".join(lines)


def timing_table(timing: TimingResult) -> str:
    lines = ["| configuration | median | p90 |", "|---|---|---|"]
    for name, times in timing.curves.items():
        lines.append(
            f"| {name} | {percentile(times, 0.5) * 1000:.1f} ms "
            f"| {percentile(times, 0.9) * 1000:.1f} ms |"
        )
    return "\n".join(lines)


def generate_report(data: Optional[ReportData] = None, scale: float = 1.0) -> str:
    if data is None:
        data = collect(scale=scale)
    corpus, study, timing = data.corpus, data.study, data.timing
    parts: List[str] = [
        "# Measured results (auto-generated)",
        "",
        f"Corpus: {len(corpus.files)} files collected, "
        f"{len(corpus.representatives)} analyzed after quotienting "
        "(paper: 2122 / 1075).",
        "",
        "## Section 3.2 headline numbers",
        "",
        headline_table(study),
        "",
        "## Figure 7 timings",
        "",
        timing_table(timing),
        "",
        "## Figures (text renderings)",
        "",
        "```",
        render_figure5(study.by_programmer, "Figure 5(a): results by programmer"),
        "",
        render_figure5(study.by_assignment, "Figure 5(b): results by assignment"),
        "",
        render_figure6(corpus.class_sizes),
        "",
        render_figure7(timing.curves, budgets=[0.02, 0.05, 0.25]),
        "```",
        "",
    ]
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin CLI
    argv = sys.argv[1:] if argv is None else argv
    scale = float(argv[0]) if argv else 1.0
    print(generate_report(scale=scale))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
