"""A call-by-value interpreter for MiniML.

The substrate's runtime half: the corpus seeds are homework *programs*, and
the study's credibility improves if they do not merely type-check but run
and compute sensible answers.  The interpreter also powers the runtime
type-soundness property tests (a well-typed program never raises
:class:`RuntimeTypeError`, only MiniML-level exceptions).

Semantics follow OCaml's core: strict evaluation, left-to-right application,
mutable refs and record fields, structural equality for ``=``, physical-ish
equality degraded to structural for ``==`` (sufficient for the corpus),
exceptions as first-class ``exn`` values with ``raise``/``try``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .ast_nodes import (
    Binding,
    DException,
    DExpr,
    DLet,
    DType,
    EAnnot,
    EApp,
    EBinop,
    ECons,
    EConst,
    EConstructor,
    EFieldGet,
    EFieldSet,
    EFun,
    EFunction,
    EIf,
    EList,
    ELet,
    EMatch,
    ERaise,
    ERecord,
    ESeq,
    ETry,
    ETuple,
    EUnop,
    EVar,
    Expr,
    MatchCase,
    Pattern,
    PConst,
    PCons,
    PConstructor,
    PList,
    PTuple,
    PVar,
    PWild,
    Program,
)


class RuntimeTypeError(Exception):
    """An operation applied to a value of the wrong shape.

    For *well-typed* programs this is unreachable — the soundness property
    the test suite checks.  It exists so the interpreter stays total on
    ill-typed ASTs (the searcher never runs programs, but users might).
    """


class MatchFailure(Exception):
    """No pattern matched the scrutinee (OCaml's Match_failure)."""


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Value:
    """Base class of runtime values."""


@dataclass(eq=False)
class VConst(Value):
    """int, float, bool, string, or unit (value=None)."""

    value: object
    kind: str


UNIT = VConst(None, "unit")


@dataclass(eq=False)
class VTuple(Value):
    items: List[Value]


@dataclass(eq=False)
class VList(Value):
    items: List[Value]


@dataclass(eq=False)
class VClosure(Value):
    params: List[Pattern]
    body: Expr
    env: "Env"

    def __repr__(self) -> str:  # pragma: no cover
        return "<fun>"


@dataclass(eq=False)
class VCases(Value):
    """A ``function |...`` closure (single pattern-matched argument)."""

    cases: List[MatchCase]
    env: "Env"


@dataclass(eq=False)
class VBuiltin(Value):
    name: str
    arity: int
    fn: Callable[..., Value]
    applied: Tuple[Value, ...] = ()


@dataclass(eq=False)
class VConstructor(Value):
    name: str
    arg: Optional[Value] = None


@dataclass(eq=False)
class VRecord(Value):
    fields: Dict[str, Value]


@dataclass(eq=False)
class VRef(Value):
    contents: Value


class MiniMLException(Exception):
    """A raised MiniML exception carrying its ``exn`` value."""

    def __init__(self, value: Value):
        super().__init__(render_value(value))
        self.value = value


# ---------------------------------------------------------------------------
# Environments
# ---------------------------------------------------------------------------


class Env:
    """Persistent environment: chained frames, functional extension."""

    __slots__ = ("frame", "parent")

    def __init__(self, frame: Optional[Dict[str, Value]] = None, parent: Optional["Env"] = None):
        self.frame: Dict[str, Value] = frame if frame is not None else {}
        self.parent = parent

    def child(self, frame: Optional[Dict[str, Value]] = None) -> "Env":
        return Env(frame or {}, self)

    def lookup(self, name: str) -> Value:
        env: Optional[Env] = self
        while env is not None:
            if name in env.frame:
                return env.frame[name]
            env = env.parent
        raise RuntimeTypeError(f"unbound variable {name} at runtime")

    def bind(self, name: str, value: Value) -> None:
        self.frame[name] = value


# ---------------------------------------------------------------------------
# Structural equality and rendering
# ---------------------------------------------------------------------------


def values_equal(a: Value, b: Value) -> bool:
    if isinstance(a, VConst) and isinstance(b, VConst):
        return a.value == b.value
    if isinstance(a, VTuple) and isinstance(b, VTuple):
        return len(a.items) == len(b.items) and all(
            values_equal(x, y) for x, y in zip(a.items, b.items)
        )
    if isinstance(a, VList) and isinstance(b, VList):
        return len(a.items) == len(b.items) and all(
            values_equal(x, y) for x, y in zip(a.items, b.items)
        )
    if isinstance(a, VConstructor) and isinstance(b, VConstructor):
        if a.name != b.name:
            return False
        if a.arg is None or b.arg is None:
            return a.arg is b.arg
        return values_equal(a.arg, b.arg)
    if isinstance(a, VRecord) and isinstance(b, VRecord):
        return set(a.fields) == set(b.fields) and all(
            values_equal(a.fields[k], b.fields[k]) for k in a.fields
        )
    if isinstance(a, VRef) and isinstance(b, VRef):
        return a is b
    if isinstance(a, (VClosure, VBuiltin, VCases)) or isinstance(b, (VClosure, VBuiltin, VCases)):
        raise RuntimeTypeError("cannot compare functional values")
    return False


def _compare_values(a: Value, b: Value) -> int:
    """OCaml-ish structural compare for ``compare``/``<``/``max``..."""
    if isinstance(a, VConst) and isinstance(b, VConst):
        if a.value == b.value:
            return 0
        return -1 if (a.value is not None and b.value is not None and a.value < b.value) else 1
    if isinstance(a, VTuple) and isinstance(b, VTuple):
        for x, y in zip(a.items, b.items):
            c = _compare_values(x, y)
            if c != 0:
                return c
        return 0
    if isinstance(a, VList) and isinstance(b, VList):
        for x, y in zip(a.items, b.items):
            c = _compare_values(x, y)
            if c != 0:
                return c
        return (len(a.items) > len(b.items)) - (len(a.items) < len(b.items))
    if isinstance(a, VConstructor) and isinstance(b, VConstructor):
        if a.name != b.name:
            return -1 if a.name < b.name else 1
        if a.arg is None or b.arg is None:
            return 0
        return _compare_values(a.arg, b.arg)
    raise RuntimeTypeError("cannot compare these values")


def render_value(v: Value) -> str:
    """Display form of a value (toplevel-printer style)."""
    if isinstance(v, VConst):
        if v.kind == "unit":
            return "()"
        if v.kind == "string":
            return f'"{v.value}"'
        if v.kind == "bool":
            return "true" if v.value else "false"
        return str(v.value)
    if isinstance(v, VTuple):
        return "(" + ", ".join(render_value(i) for i in v.items) + ")"
    if isinstance(v, VList):
        return "[" + "; ".join(render_value(i) for i in v.items) + "]"
    if isinstance(v, VConstructor):
        if v.arg is None:
            return v.name
        return f"{v.name} {render_value(v.arg)}"
    if isinstance(v, VRecord):
        inner = "; ".join(f"{k} = {render_value(val)}" for k, val in v.fields.items())
        return "{" + inner + "}"
    if isinstance(v, VRef):
        return "{contents = " + render_value(v.contents) + "}"
    if isinstance(v, (VClosure, VBuiltin, VCases)):
        return "<fun>"
    raise RuntimeTypeError(f"unprintable value {v!r}")


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class Interpreter:
    """Evaluates programs; ``output`` collects what print_* wrote."""

    def __init__(self, max_steps: int = 1_000_000):
        self.output: List[str] = []
        self.max_steps = max_steps
        self._steps = 0

    # -- fuel ------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise RuntimeTypeError("evaluation step budget exceeded (likely divergence)")

    # -- entry points ------------------------------------------------------

    def run_program(self, program: Program) -> Env:
        env = self._base_env()
        try:
            for decl in program.decls:
                if isinstance(decl, DLet):
                    self._eval_bindings(env, decl.rec, decl.bindings, toplevel=True)
                elif isinstance(decl, DExpr):
                    self.eval(env, decl.expr)
                elif isinstance(decl, (DType, DException)):
                    continue  # types erased at runtime
        except RecursionError:
            # Deep (often accidental infinite) recursion exhausts Python's
            # stack before our step budget; report it as divergence.
            raise RuntimeTypeError("evaluation step budget exceeded (deep recursion)")
        return env

    def printed(self) -> str:
        return "".join(self.output)

    # -- bindings -----------------------------------------------------------

    def _eval_bindings(self, env: Env, rec: bool, bindings: List[Binding], toplevel: bool = False) -> Env:
        target = env if toplevel else env.child()
        if rec:
            # Back-patch closures so mutual recursion works.
            placeholders: Dict[str, VClosure] = {}
            for b in bindings:
                if not isinstance(b.pattern, PVar):
                    raise RuntimeTypeError("let rec requires variable patterns")
            rec_env = target if toplevel else target
            for b in bindings:
                value = self.eval(rec_env, b.expr)
                rec_env.bind(b.pattern.name, value)  # type: ignore[union-attr]
                if isinstance(value, (VClosure, VCases)):
                    placeholders[b.pattern.name] = value  # type: ignore[union-attr,assignment]
            # Closures capture rec_env itself, so late bindings are visible.
            return rec_env
        for b in bindings:
            value = self.eval(env, b.expr)
            bound = self._match(b.pattern, value)
            if bound is None:
                raise MatchFailure(f"binding pattern did not match {render_value(value)}")
            for name, v in bound.items():
                target.bind(name, v)
        return target

    # -- pattern matching ---------------------------------------------------

    def _match(self, p: Pattern, v: Value) -> Optional[Dict[str, Value]]:
        if isinstance(p, PWild):
            return {}
        if isinstance(p, PVar):
            return {p.name: v}
        if isinstance(p, PConst):
            if isinstance(v, VConst) and v.value == p.value:
                return {}
            return None
        if isinstance(p, PTuple):
            if not isinstance(v, VTuple) or len(v.items) != len(p.items):
                return None
            out: Dict[str, Value] = {}
            for sub, item in zip(p.items, v.items):
                bound = self._match(sub, item)
                if bound is None:
                    return None
                out.update(bound)
            return out
        if isinstance(p, PCons):
            if not isinstance(v, VList) or not v.items:
                return None
            head = self._match(p.head, v.items[0])
            if head is None:
                return None
            tail = self._match(p.tail, VList(v.items[1:]))
            if tail is None:
                return None
            head.update(tail)
            return head
        if isinstance(p, PList):
            if not isinstance(v, VList) or len(v.items) != len(p.items):
                return None
            out = {}
            for sub, item in zip(p.items, v.items):
                bound = self._match(sub, item)
                if bound is None:
                    return None
                out.update(bound)
            return out
        if isinstance(p, PConstructor):
            if not isinstance(v, VConstructor) or v.name != p.name:
                return None
            if p.arg is None:
                return {} if v.arg is None else None
            if v.arg is None:
                return None
            return self._match(p.arg, v.arg)
        raise RuntimeTypeError(f"unknown pattern {type(p).__name__}")

    def _match_cases(self, env: Env, cases: List[MatchCase], value: Value) -> Value:
        for case in cases:
            bound = self._match(case.pattern, value)
            if bound is not None:
                return self.eval(env.child(bound), case.body)
        raise MatchFailure(render_value(value))

    # -- expressions ---------------------------------------------------------

    def eval(self, env: Env, e: Expr) -> Value:
        self._tick()
        if isinstance(e, EConst):
            return UNIT if e.kind == "unit" else VConst(e.value, e.kind)
        if isinstance(e, EVar):
            return env.lookup(e.name)
        if isinstance(e, EConstructor):
            arg = self.eval(env, e.arg) if e.arg is not None else None
            return VConstructor(e.name, arg)
        if isinstance(e, ETuple):
            return VTuple([self.eval(env, i) for i in e.items])
        if isinstance(e, EList):
            return VList([self.eval(env, i) for i in e.items])
        if isinstance(e, ECons):
            head = self.eval(env, e.head)
            tail = self.eval(env, e.tail)
            if not isinstance(tail, VList):
                raise RuntimeTypeError(":: onto a non-list")
            return VList([head] + tail.items)
        if isinstance(e, EApp):
            fn = self.eval(env, e.func)
            for arg_expr in e.args:
                fn = self.apply(fn, self.eval(env, arg_expr))
            return fn
        if isinstance(e, EFun):
            return VClosure(list(e.params), e.body, env)
        if isinstance(e, EFunction):
            return VCases(list(e.cases), env)
        if isinstance(e, ELet):
            child = self._eval_bindings(env, e.rec, e.bindings)
            return self.eval(child, e.body)
        if isinstance(e, EIf):
            cond = self.eval(env, e.cond)
            if not isinstance(cond, VConst) or cond.kind != "bool":
                raise RuntimeTypeError("if condition is not a bool")
            if cond.value:
                return self.eval(env, e.then_branch)
            if e.else_branch is None:
                return UNIT
            return self.eval(env, e.else_branch)
        if isinstance(e, EMatch):
            return self._match_cases(env, e.cases, self.eval(env, e.scrutinee))
        if isinstance(e, EBinop):
            return self._binop(env, e)
        if isinstance(e, EUnop):
            return self._unop(env, e)
        if isinstance(e, ESeq):
            self.eval(env, e.first)
            return self.eval(env, e.second)
        if isinstance(e, ERaise):
            raise MiniMLException(self.eval(env, e.exn))
        if isinstance(e, ETry):
            try:
                return self.eval(env, e.body)
            except MiniMLException as exc:
                for case in e.cases:
                    bound = self._match(case.pattern, exc.value)
                    if bound is not None:
                        return self.eval(env.child(bound), case.body)
                raise
        if isinstance(e, EAnnot):
            return self.eval(env, e.expr)
        if isinstance(e, ERecord):
            return VRecord({f.name: self.eval(env, f.expr) for f in e.fields})
        if isinstance(e, EFieldGet):
            record = self.eval(env, e.record)
            if not isinstance(record, VRecord) or e.field_name not in record.fields:
                raise RuntimeTypeError(f"no field {e.field_name}")
            return record.fields[e.field_name]
        if isinstance(e, EFieldSet):
            record = self.eval(env, e.record)
            if not isinstance(record, VRecord) or e.field_name not in record.fields:
                raise RuntimeTypeError(f"no field {e.field_name}")
            record.fields[e.field_name] = self.eval(env, e.value)
            return UNIT
        raise RuntimeTypeError(f"unknown expression {type(e).__name__}")

    # -- application --------------------------------------------------------

    def apply(self, fn: Value, arg: Value) -> Value:
        self._tick()
        if isinstance(fn, VClosure):
            bound = self._match(fn.params[0], arg)
            if bound is None:
                raise MatchFailure("function argument pattern")
            env = fn.env.child(bound)
            if len(fn.params) == 1:
                return self.eval(env, fn.body)
            return VClosure(fn.params[1:], fn.body, env)
        if isinstance(fn, VCases):
            return self._match_cases(fn.env, fn.cases, arg)
        if isinstance(fn, VBuiltin):
            applied = fn.applied + (arg,)
            if len(applied) == fn.arity:
                return fn.fn(*applied)
            return VBuiltin(fn.name, fn.arity, fn.fn, applied)
        raise RuntimeTypeError(f"applying a non-function ({render_value(fn)})")

    # -- operators -----------------------------------------------------------

    def _num(self, v: Value, kind: str) -> object:
        if isinstance(v, VConst) and v.kind == kind:
            return v.value
        raise RuntimeTypeError(f"expected {kind}")

    def _binop(self, env: Env, e: EBinop) -> Value:
        op = e.op
        if op == "&&":
            left = self.eval(env, e.left)
            if not self._truth(left):
                return VConst(False, "bool")
            return VConst(self._truth(self.eval(env, e.right)), "bool")
        if op == "||":
            left = self.eval(env, e.left)
            if self._truth(left):
                return VConst(True, "bool")
            return VConst(self._truth(self.eval(env, e.right)), "bool")
        a = self.eval(env, e.left)
        b = self.eval(env, e.right)
        if op in ("+", "-", "*", "/", "mod"):
            x, y = self._num(a, "int"), self._num(b, "int")
            if op == "/":
                if y == 0:
                    raise MiniMLException(VConstructor("Division_by_zero"))
                return VConst(int(x / y) if (x < 0) != (y < 0) and x % y != 0 else x // y, "int")
            if op == "mod":
                if y == 0:
                    raise MiniMLException(VConstructor("Division_by_zero"))
                result = abs(x) % abs(y) * (1 if x >= 0 else -1)
                return VConst(result, "int")
            return VConst({"+": x + y, "-": x - y, "*": x * y}[op], "int")
        if op in ("+.", "-.", "*.", "/."):
            x, y = self._num(a, "float"), self._num(b, "float")
            return VConst({"+.": x + y, "-.": x - y, "*.": x * y, "/.": x / y if y else float("inf")}[op], "float")
        if op == "^":
            return VConst(str(self._num(a, "string")) + str(self._num(b, "string")), "string")
        if op == "@":
            if not isinstance(a, VList) or not isinstance(b, VList):
                raise RuntimeTypeError("@ on non-lists")
            return VList(a.items + b.items)
        if op in ("=", "=="):
            return VConst(values_equal(a, b), "bool")
        if op in ("<>", "!="):
            return VConst(not values_equal(a, b), "bool")
        if op in ("<", ">", "<=", ">="):
            c = _compare_values(a, b)
            return VConst({"<": c < 0, ">": c > 0, "<=": c <= 0, ">=": c >= 0}[op], "bool")
        if op == ":=":
            if not isinstance(a, VRef):
                raise RuntimeTypeError(":= on a non-ref")
            a.contents = b
            return UNIT
        raise RuntimeTypeError(f"unknown operator {op}")

    def _truth(self, v: Value) -> bool:
        if isinstance(v, VConst) and v.kind == "bool":
            return bool(v.value)
        raise RuntimeTypeError("expected bool")

    def _unop(self, env: Env, e: EUnop) -> Value:
        v = self.eval(env, e.operand)
        if e.op == "!":
            if not isinstance(v, VRef):
                raise RuntimeTypeError("! on a non-ref")
            return v.contents
        if e.op == "-":
            if isinstance(v, VConst) and v.kind == "int":
                return VConst(-v.value, "int")
            if isinstance(v, VConst) and v.kind == "float":
                return VConst(-v.value, "float")
        raise RuntimeTypeError(f"unknown unary {e.op}")

    # -- builtins ------------------------------------------------------------

    def _base_env(self) -> Env:
        env = Env()
        b = env.bind

        def builtin(name: str, arity: int):
            def register(fn: Callable[..., Value]):
                b(name, VBuiltin(name, arity, fn))
                return fn

            return register

        def ints(v):
            return self._num(v, "int")

        def strings(v):
            return self._num(v, "string")

        def want_list(v):
            if not isinstance(v, VList):
                raise RuntimeTypeError("expected a list")
            return v

        def want_fn(v):
            return v

        def call(fn, *args):
            out = fn
            for a in args:
                out = self.apply(out, a)
            return out

        @builtin("not", 1)
        def _not(v):
            return VConst(not self._truth(v), "bool")

        @builtin("abs", 1)
        def _abs(v):
            return VConst(abs(ints(v)), "int")

        @builtin("succ", 1)
        def _succ(v):
            return VConst(ints(v) + 1, "int")

        @builtin("pred", 1)
        def _pred(v):
            return VConst(ints(v) - 1, "int")

        @builtin("max", 2)
        def _max(a, x):
            return a if _compare_values(a, x) >= 0 else x

        @builtin("min", 2)
        def _min(a, x):
            return a if _compare_values(a, x) <= 0 else x

        @builtin("compare", 2)
        def _compare(a, x):
            return VConst(_compare_values(a, x), "int")

        @builtin("fst", 1)
        def _fst(v):
            if isinstance(v, VTuple) and len(v.items) == 2:
                return v.items[0]
            raise RuntimeTypeError("fst on a non-pair")

        @builtin("snd", 1)
        def _snd(v):
            if isinstance(v, VTuple) and len(v.items) == 2:
                return v.items[1]
            raise RuntimeTypeError("snd on a non-pair")

        @builtin("ignore", 1)
        def _ignore(v):
            return UNIT

        @builtin("ref", 1)
        def _ref(v):
            return VRef(v)

        @builtin("incr", 1)
        def _incr(v):
            if isinstance(v, VRef):
                v.contents = VConst(ints(v.contents) + 1, "int")
                return UNIT
            raise RuntimeTypeError("incr on a non-ref")

        @builtin("decr", 1)
        def _decr(v):
            if isinstance(v, VRef):
                v.contents = VConst(ints(v.contents) - 1, "int")
                return UNIT
            raise RuntimeTypeError("decr on a non-ref")

        @builtin("string_of_int", 1)
        def _soi(v):
            return VConst(str(ints(v)), "string")

        @builtin("int_of_string", 1)
        def _ios(v):
            try:
                return VConst(int(strings(v)), "int")
            except ValueError:
                raise MiniMLException(VConstructor("Failure", VConst("int_of_string", "string")))

        @builtin("string_of_float", 1)
        def _sof(v):
            return VConst(str(self._num(v, "float")), "string")

        @builtin("string_of_bool", 1)
        def _sob(v):
            return VConst("true" if self._truth(v) else "false", "string")

        @builtin("float_of_int", 1)
        def _foi(v):
            return VConst(float(ints(v)), "float")

        @builtin("int_of_float", 1)
        def _iof(v):
            return VConst(int(self._num(v, "float")), "int")

        @builtin("print_string", 1)
        def _ps(v):
            self.output.append(str(strings(v)))
            return UNIT

        @builtin("print_int", 1)
        def _pi(v):
            self.output.append(str(ints(v)))
            return UNIT

        @builtin("print_endline", 1)
        def _pe(v):
            self.output.append(str(strings(v)) + "\n")
            return UNIT

        @builtin("print_newline", 1)
        def _pn(v):
            self.output.append("\n")
            return UNIT

        @builtin("failwith", 1)
        def _failwith(v):
            raise MiniMLException(VConstructor("Failure", v))

        @builtin("invalid_arg", 1)
        def _invalid(v):
            raise MiniMLException(VConstructor("Invalid_argument", v))

        @builtin("exit", 1)
        def _exit(v):
            raise MiniMLException(VConstructor("Exit"))

        # -- List ----------------------------------------------------------
        @builtin("List.length", 1)
        def _length(v):
            return VConst(len(want_list(v).items), "int")

        @builtin("List.hd", 1)
        def _hd(v):
            items = want_list(v).items
            if not items:
                raise MiniMLException(VConstructor("Failure", VConst("hd", "string")))
            return items[0]

        @builtin("List.tl", 1)
        def _tl(v):
            items = want_list(v).items
            if not items:
                raise MiniMLException(VConstructor("Failure", VConst("tl", "string")))
            return VList(items[1:])

        @builtin("List.nth", 2)
        def _nth(v, n):
            items = want_list(v).items
            index = ints(n)
            if index < 0 or index >= len(items):
                raise MiniMLException(VConstructor("Failure", VConst("nth", "string")))
            return items[index]

        @builtin("List.rev", 1)
        def _rev(v):
            return VList(list(reversed(want_list(v).items)))

        @builtin("List.append", 2)
        def _append(a, c):
            return VList(want_list(a).items + want_list(c).items)

        @builtin("List.rev_append", 2)
        def _rev_append(a, c):
            return VList(list(reversed(want_list(a).items)) + want_list(c).items)

        @builtin("List.concat", 1)
        def _concat(v):
            out = []
            for sub in want_list(v).items:
                out.extend(want_list(sub).items)
            return VList(out)

        b("List.flatten", env.lookup("List.concat"))

        @builtin("List.map", 2)
        def _map(f, lst):
            return VList([call(f, x) for x in want_list(lst).items])

        @builtin("List.mapi", 2)
        def _mapi(f, lst):
            return VList(
                [call(f, VConst(i, "int"), x) for i, x in enumerate(want_list(lst).items)]
            )

        @builtin("List.iter", 2)
        def _iter(f, lst):
            for x in want_list(lst).items:
                call(f, x)
            return UNIT

        @builtin("List.fold_left", 3)
        def _fold_left(f, acc, lst):
            for x in want_list(lst).items:
                acc = call(f, acc, x)
            return acc

        @builtin("List.fold_right", 3)
        def _fold_right(f, lst, acc):
            for x in reversed(want_list(lst).items):
                acc = call(f, x, acc)
            return acc

        @builtin("List.mem", 2)
        def _mem(x, lst):
            return VConst(any(values_equal(x, y) for y in want_list(lst).items), "bool")

        @builtin("List.filter", 2)
        def _filter(p, lst):
            return VList([x for x in want_list(lst).items if self._truth(call(p, x))])

        @builtin("List.partition", 2)
        def _partition(p, lst):
            yes, no = [], []
            for x in want_list(lst).items:
                (yes if self._truth(call(p, x)) else no).append(x)
            return VTuple([VList(yes), VList(no)])

        @builtin("List.exists", 2)
        def _exists(p, lst):
            return VConst(any(self._truth(call(p, x)) for x in want_list(lst).items), "bool")

        @builtin("List.for_all", 2)
        def _for_all(p, lst):
            return VConst(all(self._truth(call(p, x)) for x in want_list(lst).items), "bool")

        @builtin("List.find", 2)
        def _find(p, lst):
            for x in want_list(lst).items:
                if self._truth(call(p, x)):
                    return x
            raise MiniMLException(VConstructor("Not_found"))

        @builtin("List.combine", 2)
        def _combine(a, c):
            xs, ys = want_list(a).items, want_list(c).items
            if len(xs) != len(ys):
                raise MiniMLException(
                    VConstructor("Invalid_argument", VConst("List.combine", "string"))
                )
            return VList([VTuple([x, y]) for x, y in zip(xs, ys)])

        @builtin("List.split", 1)
        def _split(v):
            xs, ys = [], []
            for pair in want_list(v).items:
                if not isinstance(pair, VTuple) or len(pair.items) != 2:
                    raise RuntimeTypeError("List.split on non-pairs")
                xs.append(pair.items[0])
                ys.append(pair.items[1])
            return VTuple([VList(xs), VList(ys)])

        @builtin("List.assoc", 2)
        def _assoc(key, lst):
            for pair in want_list(lst).items:
                if isinstance(pair, VTuple) and len(pair.items) == 2 and values_equal(pair.items[0], key):
                    return pair.items[1]
            raise MiniMLException(VConstructor("Not_found"))

        @builtin("List.mem_assoc", 2)
        def _mem_assoc(key, lst):
            for pair in want_list(lst).items:
                if isinstance(pair, VTuple) and len(pair.items) == 2 and values_equal(pair.items[0], key):
                    return VConst(True, "bool")
            return VConst(False, "bool")

        @builtin("List.sort", 2)
        def _sort(cmp, lst):
            import functools

            items = list(want_list(lst).items)
            items.sort(key=functools.cmp_to_key(lambda x, y: ints(call(cmp, x, y))))
            return VList(items)

        @builtin("List.init", 2)
        def _init(n, f):
            return VList([call(f, VConst(i, "int")) for i in range(ints(n))])

        # -- String --------------------------------------------------------
        @builtin("String.length", 1)
        def _slen(v):
            return VConst(len(str(strings(v))), "string" if False else "int")

        @builtin("String.sub", 3)
        def _ssub(v, start, length):
            text = str(strings(v))
            i, n = ints(start), ints(length)
            if i < 0 or n < 0 or i + n > len(text):
                raise MiniMLException(
                    VConstructor("Invalid_argument", VConst("String.sub", "string"))
                )
            return VConst(text[i : i + n], "string")

        @builtin("String.concat", 2)
        def _sconcat(sep, parts):
            return VConst(
                str(strings(sep)).join(str(strings(p)) for p in want_list(parts).items),
                "string",
            )

        @builtin("String.uppercase", 1)
        def _supper(v):
            return VConst(str(strings(v)).upper(), "string")

        @builtin("String.lowercase", 1)
        def _slower(v):
            return VConst(str(strings(v)).lower(), "string")

        @builtin("String.make", 2)
        def _smake(n, s):
            return VConst(str(strings(s)) * ints(n), "string")

        return env


def run_source(source: str, max_steps: int = 1_000_000) -> Tuple[Env, str]:
    """Parse, evaluate, and return (final environment, captured output)."""
    from .parser import parse_program

    interpreter = Interpreter(max_steps=max_steps)
    env = interpreter.run_program(parse_program(source))
    return env, interpreter.printed()


def eval_expr_source(source: str, max_steps: int = 1_000_000) -> Value:
    """Evaluate a single expression in the base environment."""
    from .parser import parse_expr

    interpreter = Interpreter(max_steps=max_steps)
    try:
        return interpreter.eval(interpreter._base_env(), parse_expr(source))
    except RecursionError:
        raise RuntimeTypeError("evaluation step budget exceeded (deep recursion)")
