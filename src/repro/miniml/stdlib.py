"""The MiniML standard environment.

Covers every library value the paper's examples and the synthetic student
corpus use: ``List`` combinators (``List.map``, ``List.combine``,
``List.filter``, ``List.mem``, ``List.nth`` ...), string/int conversions,
printing, references, options, and the built-in exceptions (including the
paper's ``Foo``, which the searcher uses as its always-well-typed wildcard
``raise Foo``).

Operators live here too: to the type-checker ``:=`` or ``+`` is just another
function looked up by name — exactly the property Section 2.2 exploits
("to the type-checker, ``:=`` is just another function ... but it can be
misused in ways worthy of special cases").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .types import (
    BOOL,
    EXN,
    FLOAT,
    INT,
    STRING,
    UNIT,
    Scheme,
    TArrow,
    TCon,
    TTuple,
    TVar,
    Type,
    arrows,
    monotype,
    t_list,
    t_option,
    t_ref,
)


class CtorInfo:
    """Everything the checker needs about one variant/exception constructor."""

    __slots__ = ("name", "vars", "arg", "result")

    def __init__(self, name: str, vars: List[TVar], arg: Optional[Type], result: Type):
        self.name = name
        self.vars = vars
        self.arg = arg
        self.result = result


class FieldInfo:
    """Everything the checker needs about one record field."""

    __slots__ = ("name", "record_name", "vars", "field_type", "record_type", "mutable", "all_fields")

    def __init__(
        self,
        name: str,
        record_name: str,
        vars: List[TVar],
        field_type: Type,
        record_type: Type,
        mutable: bool,
        all_fields: List[str],
    ):
        self.name = name
        self.record_name = record_name
        self.vars = vars
        self.field_type = field_type
        self.record_type = record_type
        self.mutable = mutable
        self.all_fields = all_fields


class TypeEnv:
    """Immutable-by-convention environment; ``child()`` makes cheap extensions."""

    def __init__(
        self,
        values: Optional[Dict[str, Scheme]] = None,
        parent: Optional["TypeEnv"] = None,
    ):
        self.values: Dict[str, Scheme] = values if values is not None else {}
        self.parent = parent
        # Constructor/field/type tables are only ever extended at top level,
        # so they live on the root environment and are shared via the chain.
        if parent is None:
            self.constructors: Dict[str, CtorInfo] = {}
            self.fields: Dict[str, FieldInfo] = {}
            self.type_arities: Dict[str, int] = {}
        else:
            self.constructors = parent.constructors
            self.fields = parent.fields
            self.type_arities = parent.type_arities

    def child(self) -> "TypeEnv":
        return TypeEnv({}, parent=self)

    def fork(self) -> "TypeEnv":
        """A child whose constructor/field/type tables are *copies*.

        Each inference pass forks the shared base environment so that
        ``type``/``exception`` declarations in one oracle call can never
        leak into the next — the searcher makes thousands of independent
        calls on mutated copies of one program.
        """
        env = TypeEnv({}, parent=self)
        env.constructors = dict(self.constructors)
        env.fields = dict(self.fields)
        env.type_arities = dict(self.type_arities)
        return env

    def bind(self, name: str, scheme: Scheme) -> None:
        self.values[name] = scheme

    def lookup(self, name: str) -> Optional[Scheme]:
        env: Optional[TypeEnv] = self
        while env is not None:
            scheme = env.values.get(name)
            if scheme is not None:
                return scheme
            env = env.parent
        return None

    def lookup_ctor(self, name: str) -> Optional[CtorInfo]:
        return self.constructors.get(name)

    def lookup_field(self, name: str) -> Optional[FieldInfo]:
        return self.fields.get(name)


def _forall(n: int, build: Callable[..., Tuple[Optional[Type], Type]]) -> Scheme:
    """Helper for polymorphic signatures: ``_forall(2, lambda a, b: ...)``."""
    vars = [TVar(level=1) for _ in range(n)]
    body = build(*vars)
    return Scheme(vars, body)


def _poly(n: int, build: Callable[..., Type]) -> Scheme:
    vars = [TVar(level=1) for _ in range(n)]
    return Scheme(vars, build(*vars))


def _ctor(name: str, n_vars: int, build: Callable[..., Tuple[Optional[Type], Type]]) -> CtorInfo:
    vars = [TVar(level=1) for _ in range(n_vars)]
    arg, result = build(*vars)
    return CtorInfo(name, vars, arg, result)


#: Operator signatures.  ``=``/comparisons are polymorphic like OCaml's
#: structural operators; arithmetic is monomorphic on int (with ``+.`` etc.
#: on float), which is precisely what produces the paper's Figure 2 message.
OPERATOR_SCHEMES: Dict[str, Callable[[], Scheme]] = {
    "+": lambda: monotype(arrows(INT, INT, INT)),
    "-": lambda: monotype(arrows(INT, INT, INT)),
    "*": lambda: monotype(arrows(INT, INT, INT)),
    "/": lambda: monotype(arrows(INT, INT, INT)),
    "mod": lambda: monotype(arrows(INT, INT, INT)),
    "+.": lambda: monotype(arrows(FLOAT, FLOAT, FLOAT)),
    "-.": lambda: monotype(arrows(FLOAT, FLOAT, FLOAT)),
    "*.": lambda: monotype(arrows(FLOAT, FLOAT, FLOAT)),
    "/.": lambda: monotype(arrows(FLOAT, FLOAT, FLOAT)),
    "^": lambda: monotype(arrows(STRING, STRING, STRING)),
    "@": lambda: _poly(1, lambda a: arrows(t_list(a), t_list(a), t_list(a))),
    "=": lambda: _poly(1, lambda a: arrows(a, a, BOOL)),
    "==": lambda: _poly(1, lambda a: arrows(a, a, BOOL)),
    "!=": lambda: _poly(1, lambda a: arrows(a, a, BOOL)),
    "<>": lambda: _poly(1, lambda a: arrows(a, a, BOOL)),
    "<": lambda: _poly(1, lambda a: arrows(a, a, BOOL)),
    ">": lambda: _poly(1, lambda a: arrows(a, a, BOOL)),
    "<=": lambda: _poly(1, lambda a: arrows(a, a, BOOL)),
    ">=": lambda: _poly(1, lambda a: arrows(a, a, BOOL)),
    "&&": lambda: monotype(arrows(BOOL, BOOL, BOOL)),
    "||": lambda: monotype(arrows(BOOL, BOOL, BOOL)),
    ":=": lambda: _poly(1, lambda a: arrows(t_ref(a), a, UNIT)),
}


def operator_scheme(op: str) -> Optional[Scheme]:
    """A *fresh* scheme for an infix operator (fresh so instantiation of
    polymorphic operators never shares variables across uses)."""
    build = OPERATOR_SCHEMES.get(op)
    return build() if build is not None else None


def default_env() -> TypeEnv:
    """Build the standard top-level environment (fresh tables each call)."""
    env = TypeEnv()
    bind = env.bind

    # -- core values ------------------------------------------------------
    bind("not", monotype(arrows(BOOL, BOOL)))
    bind("abs", monotype(arrows(INT, INT)))
    bind("succ", monotype(arrows(INT, INT)))
    bind("pred", monotype(arrows(INT, INT)))
    bind("max", _poly(1, lambda a: arrows(a, a, a)))
    bind("min", _poly(1, lambda a: arrows(a, a, a)))
    bind("fst", _poly(2, lambda a, b: arrows(TTuple([a, b]), a)))
    bind("snd", _poly(2, lambda a, b: arrows(TTuple([a, b]), b)))
    bind("ignore", _poly(1, lambda a: arrows(a, UNIT)))
    bind("ref", _poly(1, lambda a: arrows(a, t_ref(a))))
    bind("incr", monotype(arrows(t_ref(INT), UNIT)))
    bind("decr", monotype(arrows(t_ref(INT), UNIT)))
    bind("float_of_int", monotype(arrows(INT, FLOAT)))
    bind("int_of_float", monotype(arrows(FLOAT, INT)))
    bind("string_of_int", monotype(arrows(INT, STRING)))
    bind("int_of_string", monotype(arrows(STRING, INT)))
    bind("string_of_float", monotype(arrows(FLOAT, STRING)))
    bind("string_of_bool", monotype(arrows(BOOL, STRING)))
    bind("print_string", monotype(arrows(STRING, UNIT)))
    bind("print_int", monotype(arrows(INT, UNIT)))
    bind("print_endline", monotype(arrows(STRING, UNIT)))
    bind("print_newline", monotype(arrows(UNIT, UNIT)))
    bind("failwith", _poly(1, lambda a: arrows(STRING, a)))
    bind("invalid_arg", _poly(1, lambda a: arrows(STRING, a)))
    bind("compare", _poly(1, lambda a: arrows(a, a, INT)))
    bind("exit", _poly(1, lambda a: arrows(INT, a)))

    # -- List -------------------------------------------------------------
    bind("List.length", _poly(1, lambda a: arrows(t_list(a), INT)))
    bind("List.hd", _poly(1, lambda a: arrows(t_list(a), a)))
    bind("List.tl", _poly(1, lambda a: arrows(t_list(a), t_list(a))))
    bind("List.nth", _poly(1, lambda a: arrows(t_list(a), INT, a)))
    bind("List.rev", _poly(1, lambda a: arrows(t_list(a), t_list(a))))
    bind("List.append", _poly(1, lambda a: arrows(t_list(a), t_list(a), t_list(a))))
    bind("List.concat", _poly(1, lambda a: arrows(t_list(t_list(a)), t_list(a))))
    bind("List.flatten", _poly(1, lambda a: arrows(t_list(t_list(a)), t_list(a))))
    bind("List.map", _poly(2, lambda a, b: arrows(TArrow(a, b), t_list(a), t_list(b))))
    bind("List.mapi", _poly(2, lambda a, b: arrows(arrows(INT, a, b), t_list(a), t_list(b))))
    bind("List.iter", _poly(1, lambda a: arrows(TArrow(a, UNIT), t_list(a), UNIT)))
    bind(
        "List.fold_left",
        _poly(2, lambda a, b: arrows(arrows(a, b, a), a, t_list(b), a)),
    )
    bind(
        "List.fold_right",
        _poly(2, lambda a, b: arrows(arrows(a, b, b), t_list(a), b, b)),
    )
    bind("List.mem", _poly(1, lambda a: arrows(a, t_list(a), BOOL)))
    bind("List.filter", _poly(1, lambda a: arrows(TArrow(a, BOOL), t_list(a), t_list(a))))
    bind("List.exists", _poly(1, lambda a: arrows(TArrow(a, BOOL), t_list(a), BOOL)))
    bind("List.for_all", _poly(1, lambda a: arrows(TArrow(a, BOOL), t_list(a), BOOL)))
    bind("List.find", _poly(1, lambda a: arrows(TArrow(a, BOOL), t_list(a), a)))
    bind(
        "List.combine",
        _poly(2, lambda a, b: arrows(t_list(a), t_list(b), t_list(TTuple([a, b])))),
    )
    bind(
        "List.split",
        _poly(2, lambda a, b: arrows(t_list(TTuple([a, b])), TTuple([t_list(a), t_list(b)]))),
    )
    bind("List.assoc", _poly(2, lambda a, b: arrows(a, t_list(TTuple([a, b])), b)))
    bind("List.mem_assoc", _poly(2, lambda a, b: arrows(a, t_list(TTuple([a, b])), BOOL)))
    bind("List.sort", _poly(1, lambda a: arrows(arrows(a, a, INT), t_list(a), t_list(a))))
    bind("List.rev_append", _poly(1, lambda a: arrows(t_list(a), t_list(a), t_list(a))))
    bind("List.init", _poly(1, lambda a: arrows(INT, TArrow(INT, a), t_list(a))))
    bind("List.partition", _poly(1, lambda a: arrows(TArrow(a, BOOL), t_list(a), TTuple([t_list(a), t_list(a)]))))

    # -- String -------------------------------------------------------------
    bind("String.length", monotype(arrows(STRING, INT)))
    bind("String.sub", monotype(arrows(STRING, INT, INT, STRING)))
    bind("String.concat", monotype(arrows(STRING, t_list(STRING), STRING)))
    bind("String.uppercase", monotype(arrows(STRING, STRING)))
    bind("String.lowercase", monotype(arrows(STRING, STRING)))
    bind("String.make", monotype(arrows(INT, STRING, STRING)))

    # -- Hashtbl (small slice, enough for corpus realism) -------------------
    bind("Hashtbl.create", _poly(2, lambda a, b: arrows(INT, TCon("hashtbl", [a, b]))))
    bind(
        "Hashtbl.add",
        _poly(2, lambda a, b: arrows(TCon("hashtbl", [a, b]), a, b, UNIT)),
    )
    bind(
        "Hashtbl.find",
        _poly(2, lambda a, b: arrows(TCon("hashtbl", [a, b]), a, b)),
    )
    bind(
        "Hashtbl.mem",
        _poly(2, lambda a, b: arrows(TCon("hashtbl", [a, b]), a, BOOL)),
    )

    # -- the searcher's adaptation helper (Section 2.3) --------------------
    # ``let adapt x = raise Foo`` has type 'a -> 'b; registering it in the
    # stdlib (under a name no student program uses) lets the searcher wrap
    # expressions without touching the checker.
    bind("__seminal_adapt", _poly(2, lambda a, b: arrows(a, b)))

    # -- constructors -------------------------------------------------------
    env.constructors["None"] = _ctor("None", 1, lambda a: (None, t_option(a)))
    env.constructors["Some"] = _ctor("Some", 1, lambda a: (a, t_option(a)))
    env.constructors["Foo"] = CtorInfo("Foo", [], None, EXN)
    env.constructors["Not_found"] = CtorInfo("Not_found", [], None, EXN)
    env.constructors["Exit"] = CtorInfo("Exit", [], None, EXN)
    env.constructors["Failure"] = CtorInfo("Failure", [], STRING, EXN)
    env.constructors["Invalid_argument"] = CtorInfo("Invalid_argument", [], STRING, EXN)

    # -- builtin type arities (for validating type declarations) ------------
    env.type_arities.update(
        {
            "int": 0,
            "float": 0,
            "bool": 0,
            "string": 0,
            "unit": 0,
            "exn": 0,
            "list": 1,
            "option": 1,
            "ref": 1,
            "hashtbl": 2,
        }
    )
    return env
