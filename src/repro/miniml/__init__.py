"""MiniML: the Caml-subset substrate (lexer, parser, HM type inference).

This package replaces the OCaml compiler the paper used.  The public
surface is:

* :func:`parse_program` / :func:`parse_expr` — source text to AST,
* :func:`typecheck_program` / :func:`typecheck_source` — the oracle,
* :func:`pretty` and friends — AST back to concrete syntax,
* the AST node classes in :mod:`repro.miniml.ast_nodes`.
"""

from .ast_nodes import *  # noqa: F401,F403 - the AST is the public vocabulary
from .errors import (  # noqa: F401
    ConstructorArityError,
    DuplicateBindingError,
    MiniMLTypeError,
    NestingTooDeepError,
    NotAFunctionError,
    PatternMismatchError,
    RecordFieldError,
    TypeMismatchError,
    UnboundConstructorError,
    UnboundFieldError,
    UnboundVariableError,
    UnknownTypeError,
)
from .exhaustiveness import (  # noqa: F401
    MatchWarning,
    match_warnings,
    match_warnings_source,
)
from .eval import (  # noqa: F401
    Interpreter,
    MatchFailure,
    MiniMLException,
    RuntimeTypeError,
    eval_expr_source,
    render_value,
    run_source,
)
from .infer import CheckResult, Inferencer, is_syntactic_value, typecheck_program, typecheck_source  # noqa: F401
from .lexer import LexError, tokenize  # noqa: F401
from .parser import ParseError, parse_expr, parse_program  # noqa: F401
from .pretty import pretty, pretty_decl, pretty_expr, pretty_pattern, pretty_program  # noqa: F401
from .stdlib import TypeEnv, default_env  # noqa: F401
from .types import Scheme, type_to_string  # noqa: F401
