"""Per-declaration def/use extraction for dependency-pruned re-checking.

SEMINAL's search tests thousands of near-copies of one program, and full
Hindley-Milner inference re-checks every declaration of every copy.  The
declaration dependency engine (:mod:`repro.core.depgraph`) needs to know,
for each top-level declaration, *which names it provides* and *which names
it consumes* — so that a candidate mutating declaration ``i`` only
re-infers ``i`` and the declarations that can observe the change.

Names live in four independent namespaces, mirroring how
:class:`repro.miniml.stdlib.TypeEnv` resolves them:

``value``
    let-bound values (``env.values`` chain lookups).
``ctor``
    variant constructors and exception constructors (``env.constructors``).
``field``
    record field labels (``env.fields``).
``type``
    type constructor names and their arities (``env.type_arities``).

A *use* or *def* is a ``(namespace, name)`` pair, so the consumer can run
one dirty-name propagation over all four namespaces at once.  Extraction is
shadowing-aware: a name bound locally (a ``fun`` parameter, a ``let`` in an
expression, a match-case pattern) is not a use of the global binding, and
``let rec`` removes the recursive names from their own defining
expressions' uses.  Binary/unary operators are deliberately *not* uses:
their schemes come from :data:`repro.miniml.stdlib.OPERATOR_SCHEMES`, which
no declaration can shadow, so they can never carry a dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Set, Tuple

from . import ast_nodes as A

#: Namespace tags for the (namespace, name) pairs below.
NS_VALUE = "value"
NS_CTOR = "ctor"
NS_FIELD = "field"
NS_TYPE = "type"

Name = Tuple[str, str]


@dataclass(frozen=True)
class DeclUseDef:
    """What one top-level declaration consumes and provides.

    ``uses`` are resolved against the environment the declaration is
    checked in; ``defs`` are the bindings it introduces for every later
    declaration.  Both are sets of ``(namespace, name)`` pairs.
    """

    uses: FrozenSet[Name] = field(default_factory=frozenset)
    defs: FrozenSet[Name] = field(default_factory=frozenset)


def pattern_names(pattern: A.Pattern) -> List[str]:
    """Value names bound by a pattern, in binding order."""
    names: List[str] = []
    _collect_pattern_names(pattern, names)
    return names


def _collect_pattern_names(pattern: A.Pattern, out: List[str]) -> None:
    if isinstance(pattern, A.PVar):
        out.append(pattern.name)
    elif isinstance(pattern, A.PTuple):
        for item in pattern.items:
            _collect_pattern_names(item, out)
    elif isinstance(pattern, A.PCons):
        _collect_pattern_names(pattern.head, out)
        _collect_pattern_names(pattern.tail, out)
    elif isinstance(pattern, A.PList):
        for item in pattern.items:
            _collect_pattern_names(item, out)
    elif isinstance(pattern, A.PConstructor):
        if pattern.arg is not None:
            _collect_pattern_names(pattern.arg, out)
    # PWild / PConst bind nothing.


def _pattern_uses(pattern: A.Pattern, uses: Set[Name]) -> None:
    """Constructor uses inside a pattern (``Some x`` consumes ctor Some)."""
    if isinstance(pattern, A.PConstructor):
        uses.add((NS_CTOR, pattern.name))
        if pattern.arg is not None:
            _pattern_uses(pattern.arg, uses)
    elif isinstance(pattern, A.PTuple):
        for item in pattern.items:
            _pattern_uses(item, uses)
    elif isinstance(pattern, A.PCons):
        _pattern_uses(pattern.head, uses)
        _pattern_uses(pattern.tail, uses)
    elif isinstance(pattern, A.PList):
        for item in pattern.items:
            _pattern_uses(item, uses)


def _type_expr_uses(texpr: A.TypeExpr, uses: Set[Name]) -> None:
    """Type-constructor names referenced by a type expression."""
    if isinstance(texpr, A.TEName):
        uses.add((NS_TYPE, texpr.name))
        for arg in texpr.args:
            _type_expr_uses(arg, uses)
    elif isinstance(texpr, A.TEArrow):
        _type_expr_uses(texpr.param, uses)
        _type_expr_uses(texpr.result, uses)
    elif isinstance(texpr, A.TETuple):
        for item in texpr.items:
            _type_expr_uses(item, uses)
    # TEVar is a type *variable* — never a dependency on a declaration.


def _expr_uses(expr: A.Expr, bound: FrozenSet[str], uses: Set[Name]) -> None:
    """Free value/ctor/field/type references of ``expr``.

    ``bound`` is the set of locally bound value names in scope; a
    reference to a bound name is not a use of the top-level binding.
    """
    if isinstance(expr, A.EVar):
        if expr.name not in bound:
            uses.add((NS_VALUE, expr.name))
    elif isinstance(expr, A.EConstructor):
        uses.add((NS_CTOR, expr.name))
        if expr.arg is not None:
            _expr_uses(expr.arg, bound, uses)
    elif isinstance(expr, A.EConst):
        pass
    elif isinstance(expr, A.ETuple):
        for item in expr.items:
            _expr_uses(item, bound, uses)
    elif isinstance(expr, A.EList):
        for item in expr.items:
            _expr_uses(item, bound, uses)
    elif isinstance(expr, A.ECons):
        _expr_uses(expr.head, bound, uses)
        _expr_uses(expr.tail, bound, uses)
    elif isinstance(expr, A.EApp):
        _expr_uses(expr.func, bound, uses)
        for arg in expr.args:
            _expr_uses(arg, bound, uses)
    elif isinstance(expr, A.EFun):
        param_names: List[str] = []
        for param in expr.params:
            _collect_pattern_names(param, param_names)
            _pattern_uses(param, uses)
        _expr_uses(expr.body, bound.union(param_names), uses)
    elif isinstance(expr, A.EFunction):
        _case_uses(expr.cases, bound, uses)
    elif isinstance(expr, A.ELet):
        let_names: List[str] = []
        for binding in expr.bindings:
            let_names.extend(pattern_names(binding.pattern))
        body_bound = bound.union(let_names)
        expr_bound = body_bound if expr.rec else bound
        for binding in expr.bindings:
            _pattern_uses(binding.pattern, uses)
            _expr_uses(binding.expr, expr_bound, uses)
        _expr_uses(expr.body, body_bound, uses)
    elif isinstance(expr, A.EIf):
        _expr_uses(expr.cond, bound, uses)
        _expr_uses(expr.then_branch, bound, uses)
        if expr.else_branch is not None:
            _expr_uses(expr.else_branch, bound, uses)
    elif isinstance(expr, A.EMatch):
        _expr_uses(expr.scrutinee, bound, uses)
        _case_uses(expr.cases, bound, uses)
    elif isinstance(expr, A.EBinop):
        # Operator schemes live in OPERATOR_SCHEMES, not the env chain —
        # no declaration can shadow them, so the op itself is not a use.
        _expr_uses(expr.left, bound, uses)
        _expr_uses(expr.right, bound, uses)
    elif isinstance(expr, A.EUnop):
        _expr_uses(expr.operand, bound, uses)
    elif isinstance(expr, A.ESeq):
        _expr_uses(expr.first, bound, uses)
        _expr_uses(expr.second, bound, uses)
    elif isinstance(expr, A.ERaise):
        _expr_uses(expr.exn, bound, uses)
    elif isinstance(expr, A.ETry):
        _expr_uses(expr.body, bound, uses)
        _case_uses(expr.cases, bound, uses)
    elif isinstance(expr, A.EAnnot):
        _expr_uses(expr.expr, bound, uses)
        _type_expr_uses(expr.type_expr, uses)
    elif isinstance(expr, A.ERecord):
        for f in expr.fields:
            uses.add((NS_FIELD, f.name))
            _expr_uses(f.expr, bound, uses)
    elif isinstance(expr, A.EFieldGet):
        uses.add((NS_FIELD, expr.field_name))
        _expr_uses(expr.record, bound, uses)
    elif isinstance(expr, A.EFieldSet):
        uses.add((NS_FIELD, expr.field_name))
        _expr_uses(expr.record, bound, uses)
        _expr_uses(expr.value, bound, uses)


def _case_uses(
    cases: Iterable[A.MatchCase], bound: FrozenSet[str], uses: Set[Name]
) -> None:
    for case in cases:
        _pattern_uses(case.pattern, uses)
        inner = bound.union(pattern_names(case.pattern))
        _expr_uses(case.body, inner, uses)


def decl_use_def(decl: A.Decl) -> DeclUseDef:
    """The def/use summary of one top-level declaration."""
    uses: Set[Name] = set()
    defs: Set[Name] = set()
    if isinstance(decl, A.DLet):
        names: List[str] = []
        for binding in decl.bindings:
            names.extend(pattern_names(binding.pattern))
        expr_bound = frozenset(names) if decl.rec else frozenset()
        for binding in decl.bindings:
            _pattern_uses(binding.pattern, uses)
            _expr_uses(binding.expr, expr_bound, uses)
        defs.update((NS_VALUE, name) for name in names)
    elif isinstance(decl, A.DType):
        defs.add((NS_TYPE, decl.name))
        own = {decl.name}
        for variant in decl.variants:
            defs.add((NS_CTOR, variant.name))
            if variant.arg is not None:
                _type_expr_uses(variant.arg, uses)
        for fdecl in decl.record_fields:
            defs.add((NS_FIELD, fdecl.name))
            _type_expr_uses(fdecl.type_expr, uses)
        # Recursive references to the declared type are not dependencies.
        uses = {u for u in uses if not (u[0] == NS_TYPE and u[1] in own)}
    elif isinstance(decl, A.DException):
        defs.add((NS_CTOR, decl.name))
        if decl.arg is not None:
            _type_expr_uses(decl.arg, uses)
    elif isinstance(decl, A.DExpr):
        _expr_uses(decl.expr, frozenset(), uses)
    return DeclUseDef(uses=frozenset(uses), defs=frozenset(defs))


def program_use_defs(program: A.Program) -> List[DeclUseDef]:
    """Def/use summaries for every declaration of a program, in order."""
    return [decl_use_def(decl) for decl in program.decls]
