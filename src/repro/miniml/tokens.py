"""Token definitions for the MiniML lexer.

MiniML is the Caml subset used throughout the paper's examples: core ML with
let-polymorphism, curried functions, tuples, lists, variants, records,
references, and pattern matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Any

from repro.tree import Span


class TokenKind(Enum):
    INT = auto()
    FLOAT = auto()
    STRING = auto()
    CHAR = auto()
    LIDENT = auto()  # lowercase identifier, possibly with module path: List.map
    UIDENT = auto()  # capitalized identifier (constructors, modules)
    KEYWORD = auto()
    OP = auto()  # operators and punctuation
    EOF = auto()


KEYWORDS = frozenset(
    {
        "let",
        "rec",
        "in",
        "fun",
        "function",
        "match",
        "with",
        "if",
        "then",
        "else",
        "true",
        "false",
        "type",
        "of",
        "mutable",
        "raise",
        "begin",
        "end",
        "and",
        "exception",
        "mod",
        "when",
        "try",
    }
)

# Multi-character operators, longest first so the lexer can use greedy match.
OPERATORS = [
    "->",
    "<-",
    ":=",
    "::",
    ";;",
    "==",
    "!=",
    "<>",
    "<=",
    ">=",
    "&&",
    "||",
    "+.",
    "-.",
    "*.",
    "/.",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ";",
    ":",
    "|",
    "_",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "^",
    "@",
    "!",
    ".",
    "'",
]


@dataclass(eq=False)
class Token:
    """One lexical token with its source span."""

    kind: TokenKind
    text: str
    value: Any
    span: Span

    def is_op(self, text: str) -> bool:
        return self.kind is TokenKind.OP and self.text == text

    def is_kw(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r})"
