"""Hand-rolled lexer for MiniML.

Produces a flat token list with accurate spans; supports nested ``(* ... *)``
comments, string escapes, int/float literals, type variables (``'a``), and
module-qualified lowercase identifiers (``List.map`` lexes as one LIDENT so
the parser treats stdlib functions as atomic names, matching how the paper's
examples read).
"""

from __future__ import annotations

from typing import List

from repro.tree import Span

from .tokens import KEYWORDS, OPERATORS, Token, TokenKind


class LexError(Exception):
    """Raised on malformed input (unterminated string/comment, bad char)."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{line}:{col}: {message}")
        self.message = message
        self.line = line
        self.col = col


class _Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: List[Token] = []

    # -- low-level helpers -------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _mark(self) -> tuple[int, int, int]:
        return self.line, self.col, self.pos

    def _span_from(self, mark: tuple[int, int, int]) -> Span:
        line, col, offset = mark
        return Span(line, col, self.line, self.col, offset, self.pos)

    def _emit(self, kind: TokenKind, text: str, value, mark) -> None:
        self.tokens.append(Token(kind, text, value, self._span_from(mark)))

    # -- token scanners ----------------------------------------------------

    def _skip_comment(self) -> None:
        mark = self._mark()
        depth = 0
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated comment", mark[0], mark[1])
            if self._peek() == "(" and self._peek(1) == "*":
                depth += 1
                self._advance(2)
            elif self._peek() == "*" and self._peek(1) == ")":
                depth -= 1
                self._advance(2)
                if depth == 0:
                    return
            else:
                self._advance()

    def _scan_string(self) -> None:
        mark = self._mark()
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", mark[0], mark[1])
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                mapping = {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "r": "\r"}
                if esc not in mapping:
                    raise LexError(f"bad escape \\{esc}", self.line, self.col)
                chars.append(mapping[esc])
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        text = "".join(chars)
        self._emit(TokenKind.STRING, text, text, mark)

    def _scan_number(self) -> None:
        mark = self._mark()
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        # A float needs a '.' followed by a digit or end-of-number position;
        # careful not to eat the '.' of ``1 .fld`` (not valid MiniML anyway).
        is_float = False
        if self._peek() == "." and (self._peek(1).isdigit() or not self._peek(1).isalpha()):
            # "1." and "1.5" are floats; "1..." can't occur.
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        if is_float:
            self._emit(TokenKind.FLOAT, text, float(text), mark)
        else:
            self._emit(TokenKind.INT, text, int(text), mark)

    def _scan_ident(self) -> None:
        mark = self._mark()
        start = self.pos
        while self._peek().isalnum() or self._peek() in ("_", "'"):
            self._advance()
        text = self.source[start : self.pos]
        if text in KEYWORDS:
            self._emit(TokenKind.KEYWORD, text, text, mark)
        elif text[0].isupper():
            # Module-qualified lowercase name: List.map, String.length ...
            if self._peek() == "." and (self._peek(1).islower() or self._peek(1) == "_"):
                self._advance()  # the dot
                sub_start = self.pos
                while self._peek().isalnum() or self._peek() in ("_", "'"):
                    self._advance()
                qualified = text + "." + self.source[sub_start : self.pos]
                self._emit(TokenKind.LIDENT, qualified, qualified, mark)
            else:
                self._emit(TokenKind.UIDENT, text, text, mark)
        else:
            self._emit(TokenKind.LIDENT, text, text, mark)

    def _scan_tyvar_or_quote(self) -> None:
        # 'a style type variables (we do not support char literals to keep
        # the grammar unambiguous; none of the paper's examples use them).
        mark = self._mark()
        self._advance()
        if self._peek().isalpha():
            start = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = "'" + self.source[start : self.pos]
            self._emit(TokenKind.CHAR, text, text, mark)  # CHAR kind reused for tyvars
        else:
            raise LexError("stray quote", mark[0], mark[1])

    def run(self) -> List[Token]:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "(" and self._peek(1) == "*":
                self._skip_comment()
            elif ch == '"':
                self._scan_string()
            elif ch.isdigit():
                self._scan_number()
            elif ch.isalpha() or ch == "_" and (self._peek(1).isalnum() or self._peek(1) == "_"):
                self._scan_ident()
            elif ch == "'":
                self._scan_tyvar_or_quote()
            else:
                mark = self._mark()
                for op in OPERATORS:
                    if self.source.startswith(op, self.pos):
                        self._advance(len(op))
                        self._emit(TokenKind.OP, op, op, mark)
                        break
                else:
                    raise LexError(f"unexpected character {ch!r}", self.line, self.col)
        self.tokens.append(
            Token(TokenKind.EOF, "", None, Span(self.line, self.col, self.line, self.col, self.pos, self.pos))
        )
        return self.tokens


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into a token list ending with an EOF token."""
    return _Lexer(source).run()
