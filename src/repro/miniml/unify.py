"""Unification for MiniML types.

Standard destructive unification with occurs check and level adjustment.
Because the SEMINAL searcher calls the type-checker thousands of times on
slightly different programs, each check runs in a fresh inference pass over a
shared immutable AST — so unification state never needs undoing across calls.
Under the speculative fast path the state *is* shared across calls: every
destructive write here is then recorded on the active
:class:`~repro.miniml.types.Trail` so the oracle can roll it back.
"""

from __future__ import annotations

from . import types as _types
from .types import TArrow, TCon, TTuple, TVar, Type, resolve, types_to_strings


class UnifyError(Exception):
    """Two types failed to unify; carries both for message rendering.

    Rendering is *lazy*: most unification failures happen on candidate
    programs whose error text is never shown to anyone, so the expensive
    ``types_to_strings`` call is deferred until someone actually asks
    (``str()``, pickling).  Callers that keep the error past the end of
    the inference pass that produced it must force the text first (the
    mutable union-find links it renders from may be rolled back later).
    """

    def __init__(self, t1: Type, t2: Type, reason: str = "incompatible"):
        super().__init__()
        self.t1 = t1
        self.t2 = t2
        self.reason = reason
        self._message: str = ""

    def __str__(self) -> str:
        if not self._message:
            s1, s2 = types_to_strings([self.t1, self.t2])
            self._message = f"cannot unify {s1} with {s2} ({self.reason})"
        return self._message

    def __reduce__(self):
        # Force the text before crossing a process boundary: the linked
        # type graphs are heavy and meaningless in another process.
        return (_rebuild_unify_error, (str(self), self.reason))


def _rebuild_unify_error(message: str, reason: str) -> "UnifyError":
    err = UnifyError.__new__(UnifyError)
    Exception.__init__(err)
    err.t1 = err.t2 = None  # type: ignore[assignment]
    err.reason = reason
    err._message = message
    return err


def occurs_in(var: TVar, t: Type) -> bool:
    """Whether ``var`` occurs inside ``t`` (after link resolution)."""
    t = resolve(t)
    if t is var:
        return True
    if isinstance(t, TCon):
        return any(occurs_in(var, a) for a in t.args)
    if isinstance(t, TArrow):
        return occurs_in(var, t.param) or occurs_in(var, t.result)
    if isinstance(t, TTuple):
        return any(occurs_in(var, i) for i in t.items)
    return False


def _adjust_levels(var: TVar, t: Type) -> None:
    """Lower levels inside ``t`` to ``var.level`` so generalization stays sound."""
    t = resolve(t)
    if isinstance(t, TVar):
        if t.level > var.level:
            trail = _types._trail
            if trail is not None:
                trail.record_var(t)
            t.level = var.level
    elif isinstance(t, TCon):
        for a in t.args:
            _adjust_levels(var, a)
    elif isinstance(t, TArrow):
        _adjust_levels(var, t.param)
        _adjust_levels(var, t.result)
    elif isinstance(t, TTuple):
        for i in t.items:
            _adjust_levels(var, i)


def _occurs_collect(var: TVar, t: Type, pending: list) -> bool:
    """One walk doing the occurs check while gathering the type variables
    whose level needs lowering; short-circuits the moment ``var`` is found."""
    t = resolve(t)
    if t is var:
        return True
    if isinstance(t, TVar):
        if t.level > var.level:
            pending.append(t)
        return False
    if isinstance(t, TCon):
        return any(_occurs_collect(var, a, pending) for a in t.args)
    if isinstance(t, TArrow):
        return _occurs_collect(var, t.param, pending) or _occurs_collect(
            var, t.result, pending
        )
    if isinstance(t, TTuple):
        return any(_occurs_collect(var, i, pending) for i in t.items)
    return False


def _occurs_check_and_adjust(var: TVar, t: Type) -> bool:
    """Fused :func:`occurs_in` + :func:`_adjust_levels` in a single pass.

    Collect-then-commit: level adjustments are only applied after the
    occurs check passes.  That matches the old two-traversal behaviour
    exactly — a failed occurs check must leave every level untouched,
    because ``unifiable`` callers catch the error and continue the pass,
    where a half-lowered level would be observable through later
    generalization.
    """
    pending: list = []
    if _occurs_collect(var, t, pending):
        return True
    level = var.level
    trail = _types._trail
    if trail is not None:
        for tv in pending:
            trail.record_var(tv)
    for tv in pending:
        tv.level = level
    return False


def unify(t1: Type, t2: Type) -> None:
    """Make ``t1`` and ``t2`` equal, or raise :class:`UnifyError`."""
    t1 = resolve(t1)
    t2 = resolve(t2)
    if t1 is t2:
        return
    if isinstance(t1, TVar):
        if _occurs_check_and_adjust(t1, t2):
            raise UnifyError(t1, t2, "occurs check: the type would be cyclic")
        trail = _types._trail
        if trail is not None:
            trail.record_var(t1)
        t1.link = t2
        return
    if isinstance(t2, TVar):
        unify(t2, t1)
        return
    if isinstance(t1, TCon) and isinstance(t2, TCon):
        if t1.name != t2.name or len(t1.args) != len(t2.args):
            raise UnifyError(t1, t2)
        for a, b in zip(t1.args, t2.args):
            _unify_child(a, b, t1, t2)
        return
    if isinstance(t1, TArrow) and isinstance(t2, TArrow):
        _unify_child(t1.param, t2.param, t1, t2)
        _unify_child(t1.result, t2.result, t1, t2)
        return
    if isinstance(t1, TTuple) and isinstance(t2, TTuple):
        if len(t1.items) != len(t2.items):
            raise UnifyError(t1, t2, f"tuple arity {len(t1.items)} vs {len(t2.items)}")
        for a, b in zip(t1.items, t2.items):
            _unify_child(a, b, t1, t2)
        return
    raise UnifyError(t1, t2)


def _unify_child(a: Type, b: Type, parent1: Type, parent2: Type) -> None:
    """Unify children but report the outermost mismatching pair, OCaml-style."""
    try:
        unify(a, b)
    except UnifyError as err:
        # Keep the original innermost pair available, but present the
        # outer types: OCaml reports "int list vs string list", not
        # "int vs string", and so do we.
        raise UnifyError(parent1, parent2, err.reason) from err


def unifiable(t1: Type, t2: Type) -> bool:
    """Non-destructive-looking convenience: try to unify, report success.

    Note: a *successful* unification does mutate links; callers use this only
    on freshly instantiated types inside one checking pass.
    """
    try:
        unify(t1, t2)
        return True
    except UnifyError:
        return False
