"""Abstract syntax for MiniML.

The node inventory mirrors the Caml fragment used by every example in the
paper: curried functions and application, tuples vs. curried arguments
(Fig. 2), lists with ``;`` vs. tuples with ``,`` (the ``[1,2,3]`` pitfall),
pattern matching (Fig. 4), references and ``:=`` vs. record-field update
``<-`` (Fig. 3), and user variant types (Fig. 9's ``move``).

All expression/pattern/declaration classes derive from :class:`repro.tree.Node`
so the generic searcher can traverse and rebuild them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.tree import Node

# ---------------------------------------------------------------------------
# Type expressions (surface syntax inside ``type`` declarations)
# ---------------------------------------------------------------------------


class TypeExpr(Node):
    """Surface-syntax type (as written in declarations), not a semantic type."""


@dataclass(eq=False)
class TEVar(TypeExpr):
    """A type variable, e.g. ``'a``."""

    name: str


@dataclass(eq=False)
class TEName(TypeExpr):
    """A (possibly parameterized) named type, e.g. ``int`` or ``move list``."""

    name: str
    args: List[TypeExpr] = field(default_factory=list)


@dataclass(eq=False)
class TEArrow(TypeExpr):
    """Function type ``t1 -> t2``."""

    param: TypeExpr
    result: TypeExpr


@dataclass(eq=False)
class TETuple(TypeExpr):
    """Tuple type ``t1 * t2 * ...``."""

    items: List[TypeExpr]


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


class Pattern(Node):
    """Base class of match/binding patterns."""


@dataclass(eq=False)
class PWild(Pattern):
    """The wildcard pattern ``_``."""


@dataclass(eq=False)
class PVar(Pattern):
    """A variable binding pattern."""

    name: str


@dataclass(eq=False)
class PConst(Pattern):
    """A literal pattern: int, string, bool, float, or unit.

    ``kind`` is one of ``int float string bool unit``.
    """

    value: object
    kind: str


@dataclass(eq=False)
class PTuple(Pattern):
    """Tuple pattern ``p1, p2, ...``."""

    items: List[Pattern]


@dataclass(eq=False)
class PCons(Pattern):
    """List cons pattern ``p1 :: p2``."""

    head: Pattern
    tail: Pattern


@dataclass(eq=False)
class PList(Pattern):
    """List literal pattern ``[p1; p2; ...]`` (``[]`` when empty)."""

    items: List[Pattern]


@dataclass(eq=False)
class PConstructor(Pattern):
    """Variant constructor pattern, e.g. ``Some x`` or ``For (n, lst)``."""

    name: str
    arg: Optional[Pattern] = None


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class of expressions."""


@dataclass(eq=False)
class EConst(Expr):
    """Literal constant. ``kind`` is one of ``int float string bool unit``."""

    value: object
    kind: str


@dataclass(eq=False)
class EVar(Expr):
    """Variable reference; may be module-qualified, e.g. ``List.map``."""

    name: str


@dataclass(eq=False)
class EConstructor(Expr):
    """Variant constructor application, e.g. ``Some e``, ``None``, ``Foo``."""

    name: str
    arg: Optional[Expr] = None


@dataclass(eq=False)
class ETuple(Expr):
    """Tuple expression ``(e1, e2, ...)``."""

    items: List[Expr]


@dataclass(eq=False)
class EList(Expr):
    """List literal ``[e1; e2; ...]``."""

    items: List[Expr]


@dataclass(eq=False)
class ECons(Expr):
    """Cons cell ``e1 :: e2``."""

    head: Expr
    tail: Expr


@dataclass(eq=False)
class EApp(Expr):
    """N-ary curried application ``f a1 a2 ... an`` (args flattened).

    Keeping applications flat matches the paper's treatment of
    ``e1 e2 e3 e4`` as one node with four children, which is what triage
    (Section 2.4) iterates over.
    """

    func: Expr
    args: List[Expr]


@dataclass(eq=False)
class EFun(Expr):
    """Anonymous function ``fun p1 p2 ... -> body``."""

    params: List[Pattern]
    body: Expr


@dataclass(eq=False)
class MatchCase(Node):
    """One ``pattern -> expr`` arm of a match/function expression."""

    pattern: Pattern
    body: Expr


@dataclass(eq=False)
class EFunction(Expr):
    """``function | p1 -> e1 | ...`` (single-argument pattern lambda)."""

    cases: List[MatchCase]


@dataclass(eq=False)
class Binding(Node):
    """One ``pattern = expr`` binding inside a let.

    Function sugar ``let f x y = e`` is desugared by the parser into
    ``pattern = PVar f, expr = EFun [x; y] e`` but we remember ``params`` so
    the pretty-printer can restore the sugar.
    """

    pattern: Pattern
    expr: Expr
    fun_name: Optional[str] = None
    n_sugar_params: int = 0


@dataclass(eq=False)
class ELet(Expr):
    """``let [rec] b1 and b2 ... in body``."""

    rec: bool
    bindings: List[Binding]
    body: Expr


@dataclass(eq=False)
class EIf(Expr):
    """``if cond then then_branch [else else_branch]``."""

    cond: Expr
    then_branch: Expr
    else_branch: Optional[Expr] = None


@dataclass(eq=False)
class EMatch(Expr):
    """``match scrutinee with | p1 -> e1 | ...``."""

    scrutinee: Expr
    cases: List[MatchCase]


@dataclass(eq=False)
class EBinop(Expr):
    """Infix binary operator application (``+``, ``^``, ``:=``, ``=``, ...)."""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=False)
class EUnop(Expr):
    """Prefix unary operator: ``!e`` (deref) or ``-e`` (negation)."""

    op: str
    operand: Expr


@dataclass(eq=False)
class ESeq(Expr):
    """Sequencing ``e1; e2``."""

    first: Expr
    second: Expr


@dataclass(eq=False)
class ERaise(Expr):
    """``raise e`` — has any type, which makes it the search wildcard."""

    exn: Expr


@dataclass(eq=False)
class ETry(Expr):
    """``try body with | p1 -> e1 | ...`` (patterns match exceptions)."""

    body: Expr
    cases: List["MatchCase"]


@dataclass(eq=False)
class EAnnot(Expr):
    """Type-ascribed expression ``(e : t)``."""

    expr: Expr
    type_expr: "TypeExpr"


@dataclass(eq=False)
class RecordField(Node):
    """One ``name = expr`` field of a record literal."""

    name: str
    expr: Expr


@dataclass(eq=False)
class ERecord(Expr):
    """Record literal ``{ f1 = e1; f2 = e2 }``."""

    fields: List[RecordField]


@dataclass(eq=False)
class EFieldGet(Expr):
    """Record field access ``e.fld``."""

    record: Expr
    field_name: str


@dataclass(eq=False)
class EFieldSet(Expr):
    """Mutable record field update ``e.fld <- e2``."""

    record: Expr
    field_name: str
    value: Expr


# ---------------------------------------------------------------------------
# Declarations / programs
# ---------------------------------------------------------------------------


class Decl(Node):
    """Base class of top-level declarations."""


@dataclass(eq=False)
class DLet(Decl):
    """Top-level ``let [rec] b1 and b2 ...``."""

    rec: bool
    bindings: List[Binding]


@dataclass(eq=False)
class VariantCase(Node):
    """One constructor of a variant declaration: name + optional argument."""

    name: str
    arg: Optional[TypeExpr] = None


@dataclass(eq=False)
class FieldDecl(Node):
    """One field of a record type declaration."""

    name: str
    type_expr: TypeExpr
    mutable: bool = False


@dataclass(eq=False)
class DType(Decl):
    """``type ['a ...] name = <variants or record>``.

    Exactly one of ``variants``/``record_fields`` is non-empty.
    """

    name: str
    params: List[str]
    variants: List[VariantCase] = field(default_factory=list)
    record_fields: List[FieldDecl] = field(default_factory=list)


@dataclass(eq=False)
class DException(Decl):
    """``exception Name [of type]``."""

    name: str
    arg: Optional[TypeExpr] = None


@dataclass(eq=False)
class DExpr(Decl):
    """A top-level expression statement (sugar for ``let _ = e``)."""

    expr: Expr


@dataclass(eq=False)
class Program(Node):
    """A whole source file: an ordered list of declarations."""

    decls: List[Decl]


# Convenience groupings used by the enumerator and tests.
LEAF_EXPRS: Tuple[type, ...] = (EConst, EVar)
BINDING_EXPRS: Tuple[type, ...] = (ELet, EFun, EFunction, EMatch)
