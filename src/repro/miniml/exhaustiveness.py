"""Pattern-match exhaustiveness and redundancy warnings for MiniML.

OCaml's compiler emits warning 8 ("this pattern-matching is not exhaustive")
and warning 11 ("this match case is unused"); a Caml substrate is not
complete without them — and they matter to the reproduction because several
constructive changes (``drop-case``, triage's wildcarding of arms) interact
with match arms, and the corpus seeds should be warning-clean programs.

The analysis is the classic *usefulness* algorithm over pattern matrices
(Maranget, "Warnings for pattern matching", JFP 2007 — pleasingly, the same
year as the paper):

* a match is **non-exhaustive** iff a wildcard row is useful after all its
  arms;
* arm *i* is **redundant** iff its row is not useful after arms ``0..i-1``.

Constructor completeness uses the same tables the type-checker builds
(variant siblings, ``true``/``false``, ``()``, list ``[]``/``::``); integer
and string literals form infinite signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tree import Node, Span, walk

from .ast_nodes import (
    EFunction,
    EMatch,
    ETry,
    MatchCase,
    Pattern,
    PConst,
    PCons,
    PConstructor,
    PList,
    PTuple,
    PVar,
    PWild,
    Program,
)
from .stdlib import TypeEnv, default_env

# ---------------------------------------------------------------------------
# Head constructors
# ---------------------------------------------------------------------------
#
# Each pattern head is abstracted as (tag, arity).  Tags:
#   ("tuple", n)        — the sole constructor of n-tuples
#   ("nil", 0)/("cons", 2) — lists
#   ("ctor", name)      — variant constructor
#   ("const", value)    — a literal (int/string/bool/unit)


@dataclass(frozen=True)
class Head:
    kind: str
    name: object
    arity: int


def _head_of(p: Pattern) -> Optional[Head]:
    """Head constructor of a pattern; None for wildcards/variables."""
    if isinstance(p, (PWild, PVar)):
        return None
    if isinstance(p, PTuple):
        return Head("tuple", len(p.items), len(p.items))
    if isinstance(p, PList):
        if not p.items:
            return Head("nil", None, 0)
        # [p1; p2] ==  p1 :: [p2]  — normalize during specialization.
        return Head("cons", None, 2)
    if isinstance(p, PCons):
        return Head("cons", None, 2)
    if isinstance(p, PConstructor):
        return Head("ctor", p.name, 0 if p.arg is None else 1)
    if isinstance(p, PConst):
        return Head("const", (p.kind, p.value), 0)
    raise TypeError(f"unknown pattern {type(p).__name__}")


def _sub_patterns(p: Pattern, head: Head) -> List[Pattern]:
    """Arguments of ``p`` under ``head`` (for specialized rows)."""
    if isinstance(p, PTuple):
        return list(p.items)
    if isinstance(p, PCons):
        return [p.head, p.tail]
    if isinstance(p, PList) and p.items:
        return [p.items[0], PList(p.items[1:])]
    if isinstance(p, PConstructor) and p.arg is not None:
        return [p.arg]
    return []


def _wildcards(n: int) -> List[Pattern]:
    return [PWild() for _ in range(n)]


class _Usefulness:
    def __init__(self, env: TypeEnv):
        self.env = env

    # -- signature completeness ------------------------------------------

    def _complete_signature(self, heads: Sequence[Head]) -> Optional[List[Head]]:
        """If the observed heads can form a complete signature, return the
        full signature; None when the signature is open (ints, strings)."""
        kinds = {h.kind for h in heads}
        if not heads:
            return None
        if kinds == {"tuple"}:
            return [heads[0]]  # tuples have a single constructor
        if kinds <= {"nil", "cons"}:
            return [Head("nil", None, 0), Head("cons", None, 2)]
        if kinds == {"ctor"}:
            info = self.env.lookup_ctor(str(heads[0].name))
            if info is None:
                return None
            type_name = getattr(info.result, "name", None)
            siblings = [
                Head("ctor", name, 0 if sibling.arg is None else 1)
                for name, sibling in self.env.constructors.items()
                if getattr(sibling.result, "name", None) == type_name
            ]
            return siblings or None
        if kinds == {"const"}:
            sample_kind = heads[0].name[0]  # type: ignore[index]
            if sample_kind == "bool":
                return [Head("const", ("bool", True), 0), Head("const", ("bool", False), 0)]
            if sample_kind == "unit":
                return [Head("const", ("unit", None), 0)]
            return None  # int/string/float literals: open signature
        return None  # mixed garbage (ill-typed match): treat as open

    # -- matrix operations -------------------------------------------------

    def _specialize(self, matrix: List[List[Pattern]], head: Head) -> List[List[Pattern]]:
        out = []
        for row in matrix:
            first, rest = row[0], row[1:]
            row_head = _head_of(first)
            if row_head is None:
                out.append(_wildcards(head.arity) + rest)
            elif row_head == head:
                out.append(_sub_patterns(first, head) + rest)
        return out

    def _default(self, matrix: List[List[Pattern]]) -> List[List[Pattern]]:
        return [row[1:] for row in matrix if _head_of(row[0]) is None]

    def useful(self, matrix: List[List[Pattern]], vector: List[Pattern]) -> bool:
        """Is there a value matching ``vector`` but no row of ``matrix``?"""
        if not vector:
            return not matrix
        head = _head_of(vector[0])
        if head is not None:
            return self.useful(
                self._specialize(matrix, head),
                _sub_patterns(vector[0], head) + vector[1:],
            )
        # Wildcard at the front: split on the observed signature.
        observed = [h for h in (_head_of(row[0]) for row in matrix) if h is not None]
        signature = self._complete_signature(observed)
        if signature is not None and observed:
            seen = {h for h in observed}
            for candidate in signature:
                sub = self._specialize(matrix, candidate)
                if self.useful(sub, _wildcards(candidate.arity) + vector[1:]):
                    return True
            return False
        return self.useful(self._default(matrix), vector[1:])


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class MatchWarning:
    """One warning: ``kind`` is ``non-exhaustive`` or ``unused-case``."""

    kind: str
    node: Node
    message: str

    @property
    def span(self) -> Optional[Span]:
        return self.node.span

    def render(self) -> str:
        location = ""
        if self.span is not None:
            location = f"Line {self.span.start_line}: "
        return f"{location}Warning: {self.message}"


def _declare_types(program: Program, env: TypeEnv) -> TypeEnv:
    """Register the program's variant/exception constructors (arity only —
    the analysis never needs full types)."""
    from .ast_nodes import DException, DType
    from .stdlib import CtorInfo
    from .types import EXN, TCon

    env = env.fork()
    for decl in program.decls:
        if isinstance(decl, DType) and decl.variants:
            result = TCon(decl.name, [])
            for v in decl.variants:
                env.constructors[v.name] = CtorInfo(
                    v.name, [], object() if v.arg is not None else None, result  # type: ignore[arg-type]
                )
        elif isinstance(decl, DException):
            env.constructors[decl.name] = CtorInfo(
                decl.name, [], object() if decl.arg is not None else None, EXN  # type: ignore[arg-type]
            )
    return env


def check_cases(cases: List[MatchCase], env: TypeEnv, node: Node,
                exhaustive_required: bool = True) -> List[MatchWarning]:
    """Warnings for one arm list."""
    checker = _Usefulness(env)
    warnings: List[MatchWarning] = []
    rows: List[List[Pattern]] = []
    for case in cases:
        if not checker.useful(rows, [case.pattern]):
            warnings.append(
                MatchWarning("unused-case", case, "this match case is unused")
            )
        rows.append([case.pattern])
    if exhaustive_required and checker.useful(rows, [PWild()]):
        warnings.append(
            MatchWarning("non-exhaustive", node, "this pattern-matching is not exhaustive")
        )
    return warnings


def match_warnings(program: Program, env: Optional[TypeEnv] = None) -> List[MatchWarning]:
    """All exhaustiveness/redundancy warnings in a program.

    ``try`` handlers are exempt from the exhaustiveness requirement (an
    unhandled exception re-raises; OCaml does not warn there either), but
    their arms can still be flagged unused.
    """
    base = env if env is not None else default_env()
    env = _declare_types(program, base)
    warnings: List[MatchWarning] = []
    for _, node in walk(program):
        if isinstance(node, (EMatch, EFunction)):
            warnings.extend(check_cases(list(node.cases), env, node))
        elif isinstance(node, ETry):
            warnings.extend(
                check_cases(list(node.cases), env, node, exhaustive_required=False)
            )
    return warnings


def match_warnings_source(source: str) -> List[MatchWarning]:
    from .parser import parse_program

    return match_warnings(parse_program(source))
