"""Type-error objects produced by the MiniML checker.

These model the *conventional* compiler messages the paper compares against
(Figures 2, 8, 9 left-hand sides): OCaml-style "This expression has type X
but is here used with type Y", "Unbound value x", and friends.  Each error
carries the offending AST node so the evaluation harness can judge message
*location* quality against ground truth.

The expensive messages (the ones that pretty-print semantic types and
expressions) are rendered *lazily*: the searcher produces thousands of
failing candidate checks whose text nobody ever reads, so formatting is
deferred to the first ``message``/``str()``/``render()`` access and then
cached.  Because semantic types are mutable union-find structures, any
holder that needs the text to outlive the inference state that produced it
(persistence, cross-process shipping, the speculative path's rollback)
must call :meth:`MiniMLTypeError.freeze` first — pickling does this
automatically.
"""

from __future__ import annotations

from typing import Optional

from repro.tree import Node, Span

from .types import Type, types_to_strings


def _rebuild_error(cls, args, state):
    """Unpickle helper: rebuild an error without re-running its
    ``__init__`` (see :meth:`MiniMLTypeError.__reduce__`)."""
    err = cls.__new__(cls)
    Exception.__init__(err, *args)
    err.__dict__.update(state)
    return err


#: Sentinel for the ``quoted`` parameter: pretty-print the error's own AST
#: node into the message, lazily, at first render.
QUOTE_NODE = "\x00quote-node\x00"


class MiniMLTypeError(Exception):
    """Base class: any failure of the MiniML type-checker.

    ``kind`` is a stable machine-readable tag (used by tests and by the
    evaluation grader); ``node`` is the AST node the message points at.
    """

    kind = "type-error"

    #: Instance attributes holding raw semantic types (heavy, mutable,
    #: meaningless once the producing pass is gone) — dropped at pickle
    #: time after the text has been forced.
    _heavy: tuple = ()

    def __init__(self, message: Optional[str], node: Optional[Node] = None):
        super().__init__()
        self._message = message
        self.node = node

    @property
    def message(self) -> str:
        """The message text (rendered on first access, then cached)."""
        text = self._message
        if text is None:
            text = self._render_message()
            self._message = text
        return text

    def _render_message(self) -> str:  # pragma: no cover - lazy subclasses
        return ""

    def __str__(self) -> str:
        return self.message

    def freeze(self) -> "MiniMLTypeError":
        """Force the text while the producing type state is still live."""
        _ = self.message
        return self

    def __reduce__(self):
        # The default exception reduce re-invokes ``cls(*self.args)``,
        # which breaks for subclasses whose __init__ takes other
        # parameters (e.g. TypeMismatchError's raw Type objects).  Force
        # the lazy text, drop the raw type references, and rebuild from
        # the final state instead, so errors survive pickling across the
        # parallel layer's process boundary.
        self.freeze()
        state = {
            key: value
            for key, value in self.__dict__.items()
            if key not in self._heavy
        }
        return (_rebuild_error, (type(self), self.args, state))

    @property
    def span(self) -> Optional[Span]:
        return self.node.span if self.node is not None else None

    def render(self, quote: str = "") -> str:
        """Full display message, optionally quoting the offending expression."""
        location = ""
        if self.span is not None:
            location = f"Line {self.span.start_line}, characters {self.span.start_col}-{self.span.end_col}:\n"
        return location + self.message


def _quoted_subject(error: MiniMLTypeError, quoted: Optional[str]) -> str:
    if quoted == QUOTE_NODE:
        from .pretty import pretty_expr

        quoted = pretty_expr(error.node) if error.node is not None else ""
    return f"The expression {quoted}" if quoted else "This expression"


class TypeMismatchError(MiniMLTypeError):
    """``This expression has type X but is here used with type Y``."""

    kind = "mismatch"
    _heavy = ("_actual", "_expected", "_quoted")

    def __init__(self, node: Node, actual: Type, expected: Type, quoted: str = ""):
        super().__init__(None, node)
        self._actual = actual
        self._expected = expected
        self._quoted = quoted
        self._actual_str: Optional[str] = None
        self._expected_str: Optional[str] = None

    def _render_message(self) -> str:
        self._actual_str, self._expected_str = types_to_strings(
            [self._actual, self._expected]
        )
        return (
            f"{_quoted_subject(self, self._quoted)} has type {self._actual_str} "
            f"but is here used with type {self._expected_str}"
        )

    @property
    def actual_str(self) -> str:
        if self._actual_str is None:
            self.freeze()
        return self._actual_str

    @property
    def expected_str(self) -> str:
        if self._expected_str is None:
            self.freeze()
        return self._expected_str


class PatternMismatchError(MiniMLTypeError):
    """``This pattern matches values of type X but ... type Y``."""

    kind = "pattern-mismatch"
    _heavy = ("_actual", "_expected")

    def __init__(self, node: Node, actual: Type, expected: Type):
        super().__init__(None, node)
        self._actual = actual
        self._expected = expected
        self._actual_str: Optional[str] = None
        self._expected_str: Optional[str] = None

    def _render_message(self) -> str:
        self._actual_str, self._expected_str = types_to_strings(
            [self._actual, self._expected]
        )
        return (
            f"This pattern matches values of type {self._actual_str} "
            f"but is here used to match values of type {self._expected_str}"
        )

    @property
    def actual_str(self) -> str:
        if self._actual_str is None:
            self.freeze()
        return self._actual_str

    @property
    def expected_str(self) -> str:
        if self._expected_str is None:
            self.freeze()
        return self._expected_str


class UnboundVariableError(MiniMLTypeError):
    """``Unbound value x`` — what OCaml says for ``print`` vs ``print_string``."""

    kind = "unbound"

    def __init__(self, node: Node, name: str):
        self.name = name
        super().__init__(f"Unbound value {name}", node)


class UnboundConstructorError(MiniMLTypeError):
    kind = "unbound-constructor"

    def __init__(self, node: Node, name: str):
        self.name = name
        super().__init__(f"Unbound constructor {name}", node)


class NestingTooDeepError(MiniMLTypeError):
    """The program is nested too deeply for recursive inference.

    Produced when the checker's recursion would exceed the interpreter's
    limit: the pass rejects the program gracefully (as a failing
    :class:`~repro.miniml.infer.CheckResult`) instead of leaking a
    :class:`RecursionError` through the oracle.
    """

    kind = "too-deep"

    def __init__(self, node: Optional[Node] = None):
        super().__init__(
            "This program is nested too deeply to type-check", node
        )


class UnboundFieldError(MiniMLTypeError):
    kind = "unbound-field"

    def __init__(self, node: Node, name: str):
        self.name = name
        super().__init__(f"Unbound record field {name}", node)


class NotAFunctionError(MiniMLTypeError):
    """``This expression is not a function; it cannot be applied`` /
    over-application of a known function."""

    kind = "not-a-function"
    _heavy = ("_actual", "_quoted")

    def __init__(self, node: Node, actual: Type, quoted: str = ""):
        super().__init__(None, node)
        self._actual = actual
        self._quoted = quoted
        self._actual_str: Optional[str] = None

    def _render_message(self) -> str:
        (self._actual_str,) = types_to_strings([self._actual])
        return (
            f"{_quoted_subject(self, self._quoted)} has type {self._actual_str}. "
            "It is not a function; it cannot be applied"
        )

    @property
    def actual_str(self) -> str:
        if self._actual_str is None:
            self.freeze()
        return self._actual_str


class ConstructorArityError(MiniMLTypeError):
    kind = "constructor-arity"

    def __init__(self, node: Node, name: str, expected: int, got: int):
        self.name = name
        message = (
            f"The constructor {name} expects {expected} argument(s), "
            f"but is applied here to {got} argument(s)"
        )
        super().__init__(message, node)


class RecordFieldError(MiniMLTypeError):
    """Missing/duplicate fields in a record literal, or immutable update."""

    kind = "record-field"

    def __init__(self, node: Node, message: str):
        super().__init__(message, node)


class DuplicateBindingError(MiniMLTypeError):
    kind = "duplicate-binding"

    def __init__(self, node: Node, name: str):
        self.name = name
        super().__init__(f"Variable {name} is bound several times in this matching", node)


class UnknownTypeError(MiniMLTypeError):
    """A ``type`` declaration refers to an unknown or wrong-arity type name."""

    kind = "unknown-type"

    def __init__(self, node: Optional[Node], message: str):
        super().__init__(message, node)


class RecursionError_(MiniMLTypeError):
    """``let rec`` with a non-variable pattern or non-function-ish binding."""

    kind = "bad-recursion"

    def __init__(self, node: Node, message: str):
        super().__init__(message, node)
