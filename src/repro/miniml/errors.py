"""Type-error objects produced by the MiniML checker.

These model the *conventional* compiler messages the paper compares against
(Figures 2, 8, 9 left-hand sides): OCaml-style "This expression has type X
but is here used with type Y", "Unbound value x", and friends.  Each error
carries the offending AST node so the evaluation harness can judge message
*location* quality against ground truth.

Messages are rendered eagerly because semantic types are mutable union-find
structures whose links may be garbage after the inference pass unwinds.
"""

from __future__ import annotations

from typing import Optional

from repro.tree import Node, Span

from .types import Type, types_to_strings


def _rebuild_error(cls, args, state):
    """Unpickle helper: rebuild an error without re-running its
    ``__init__`` (see :meth:`MiniMLTypeError.__reduce__`)."""
    err = cls.__new__(cls)
    Exception.__init__(err, *args)
    err.__dict__.update(state)
    return err


class MiniMLTypeError(Exception):
    """Base class: any failure of the MiniML type-checker.

    ``kind`` is a stable machine-readable tag (used by tests and by the
    evaluation grader); ``node`` is the AST node the message points at.
    """

    kind = "type-error"

    def __init__(self, message: str, node: Optional[Node] = None):
        super().__init__(message)
        self.message = message
        self.node = node

    def __reduce__(self):
        # The default exception reduce re-invokes ``cls(*self.args)``,
        # which breaks for subclasses whose __init__ takes other
        # parameters (e.g. TypeMismatchError's raw Type objects — already
        # rendered to strings by construction time).  Rebuild from the
        # final state instead, so errors survive pickling across the
        # parallel layer's process boundary.
        return (_rebuild_error, (type(self), self.args, self.__dict__))

    @property
    def span(self) -> Optional[Span]:
        return self.node.span if self.node is not None else None

    def render(self, quote: str = "") -> str:
        """Full display message, optionally quoting the offending expression."""
        location = ""
        if self.span is not None:
            location = f"Line {self.span.start_line}, characters {self.span.start_col}-{self.span.end_col}:\n"
        return location + self.message


class TypeMismatchError(MiniMLTypeError):
    """``This expression has type X but is here used with type Y``."""

    kind = "mismatch"

    def __init__(self, node: Node, actual: Type, expected: Type, quoted: str = ""):
        self.actual_str, self.expected_str = types_to_strings([actual, expected])
        subject = f"The expression {quoted}" if quoted else "This expression"
        message = (
            f"{subject} has type {self.actual_str} "
            f"but is here used with type {self.expected_str}"
        )
        super().__init__(message, node)


class PatternMismatchError(MiniMLTypeError):
    """``This pattern matches values of type X but ... type Y``."""

    kind = "pattern-mismatch"

    def __init__(self, node: Node, actual: Type, expected: Type):
        self.actual_str, self.expected_str = types_to_strings([actual, expected])
        message = (
            f"This pattern matches values of type {self.actual_str} "
            f"but is here used to match values of type {self.expected_str}"
        )
        super().__init__(message, node)


class UnboundVariableError(MiniMLTypeError):
    """``Unbound value x`` — what OCaml says for ``print`` vs ``print_string``."""

    kind = "unbound"

    def __init__(self, node: Node, name: str):
        self.name = name
        super().__init__(f"Unbound value {name}", node)


class UnboundConstructorError(MiniMLTypeError):
    kind = "unbound-constructor"

    def __init__(self, node: Node, name: str):
        self.name = name
        super().__init__(f"Unbound constructor {name}", node)


class NestingTooDeepError(MiniMLTypeError):
    """The program is nested too deeply for recursive inference.

    Produced when the checker's recursion would exceed the interpreter's
    limit: the pass rejects the program gracefully (as a failing
    :class:`~repro.miniml.infer.CheckResult`) instead of leaking a
    :class:`RecursionError` through the oracle.
    """

    kind = "too-deep"

    def __init__(self, node: Optional[Node] = None):
        super().__init__(
            "This program is nested too deeply to type-check", node
        )


class UnboundFieldError(MiniMLTypeError):
    kind = "unbound-field"

    def __init__(self, node: Node, name: str):
        self.name = name
        super().__init__(f"Unbound record field {name}", node)


class NotAFunctionError(MiniMLTypeError):
    """``This expression is not a function; it cannot be applied`` /
    over-application of a known function."""

    kind = "not-a-function"

    def __init__(self, node: Node, actual: Type, quoted: str = ""):
        (self.actual_str,) = types_to_strings([actual])
        subject = f"The expression {quoted}" if quoted else "This expression"
        message = (
            f"{subject} has type {self.actual_str}. "
            "It is not a function; it cannot be applied"
        )
        super().__init__(message, node)


class ConstructorArityError(MiniMLTypeError):
    kind = "constructor-arity"

    def __init__(self, node: Node, name: str, expected: int, got: int):
        self.name = name
        message = (
            f"The constructor {name} expects {expected} argument(s), "
            f"but is applied here to {got} argument(s)"
        )
        super().__init__(message, node)


class RecordFieldError(MiniMLTypeError):
    """Missing/duplicate fields in a record literal, or immutable update."""

    kind = "record-field"

    def __init__(self, node: Node, message: str):
        super().__init__(message, node)


class DuplicateBindingError(MiniMLTypeError):
    kind = "duplicate-binding"

    def __init__(self, node: Node, name: str):
        self.name = name
        super().__init__(f"Variable {name} is bound several times in this matching", node)


class UnknownTypeError(MiniMLTypeError):
    """A ``type`` declaration refers to an unknown or wrong-arity type name."""

    kind = "unknown-type"

    def __init__(self, node: Optional[Node], message: str):
        super().__init__(message, node)


class RecursionError_(MiniMLTypeError):
    """``let rec`` with a non-variable pattern or non-function-ish binding."""

    kind = "bad-recursion"

    def __init__(self, node: Node, message: str):
        super().__init__(message, node)
