"""Hindley–Milner type inference for MiniML with OCaml-style error reporting.

This module is the *oracle substrate*: the paper uses Caml's mature
type-checker unchanged; we rebuild the relevant behaviour from scratch.
Two properties matter for the reproduction:

1. **Boolean oracle** — ``typecheck_program`` says yes/no for whole programs;
   the SEMINAL searcher never looks deeper than that.
2. **Conventional-message baseline** — when a program is ill-typed the first
   error must *look and point like OCaml's*: unification-driven, reported at
   the expression where constraint solving failed, which is often far from
   the actual mistake.  We reproduce that via bidirectional expected-type
   propagation (the analogue of OCaml's ``type_expect``): structural
   expressions are checked against the type their context demands, so a deep
   mismatch (Fig. 2's ``x + y``) is reported at the deep position.

The checker knows nothing about SEMINAL: the search wildcard is a plain
``raise Foo`` expression and adaptation is a stdlib function of type
``'a -> 'b``, exactly as in the paper (Sections 2.1 and 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ast_nodes import (
    Binding,
    EAnnot,
    ETry,
    DException,
    DExpr,
    DLet,
    DType,
    EApp,
    EBinop,
    ECons,
    EConst,
    EConstructor,
    EFieldGet,
    EFieldSet,
    EFun,
    EFunction,
    EIf,
    EList,
    ELet,
    EMatch,
    ERaise,
    ERecord,
    ESeq,
    ETuple,
    EUnop,
    EVar,
    Expr,
    MatchCase,
    Pattern,
    PConst,
    PCons,
    PConstructor,
    PList,
    PTuple,
    PVar,
    PWild,
    Program,
    TEArrow,
    TEName,
    TETuple,
    TEVar,
    TypeExpr,
)
from .errors import (
    ConstructorArityError,
    DuplicateBindingError,
    MiniMLTypeError,
    NestingTooDeepError,
    NotAFunctionError,
    QUOTE_NODE,
    PatternMismatchError,
    RecordFieldError,
    RecursionError_,
    TypeMismatchError,
    UnboundConstructorError,
    UnboundFieldError,
    UnboundVariableError,
    UnknownTypeError,
)

from .stdlib import CtorInfo, FieldInfo, TypeEnv, default_env, operator_scheme
from .types import (
    BOOL,
    EXN,
    FLOAT,
    INT,
    STRING,
    UNIT,
    Scheme,
    TArrow,
    TCon,
    TTuple,
    TVar,
    Trail,
    Type,
    _substitute,
    free_type_vars,
    generalize,
    instantiate,
    monotype,
    resolve,
    set_trail,
    t_list,
    t_ref,
    trail_map_set,
)
from .unify import UnifyError, unify

_CONST_TYPES = {"int": INT, "float": FLOAT, "string": STRING, "bool": BOOL, "unit": UNIT}

_BASE_ENV: Optional[TypeEnv] = None


def _default_base() -> TypeEnv:
    """Shared immutable base environment (schemes are never mutated by
    instantiation, and each pass forks the mutable tables)."""
    global _BASE_ENV
    if _BASE_ENV is None:
        _BASE_ENV = default_env()
    return _BASE_ENV


@dataclass
class CheckResult:
    """Outcome of typechecking a whole program."""

    ok: bool
    error: Optional[MiniMLTypeError] = None
    #: Schemes of top-level value bindings (only when ``ok``).
    top_level: Dict[str, Scheme] = field(default_factory=dict)
    #: ``id(expr) -> Type`` when the pass ran with ``record_types``.
    node_types: Dict[int, object] = field(default_factory=dict)
    #: Declaration accounting for the oracle's reuse telemetry: how many
    #: top-level declarations this pass really inferred, how many it
    #: replayed from a recorded outcome table, how many it skipped via a
    #: prefix snapshot, and how many planned replays degraded to checks.
    decls_checked: int = 0
    decls_replayed: int = 0
    decls_skipped: int = 0
    decls_degraded: int = 0

    def __bool__(self) -> bool:
        return self.ok

    def type_str_of(self, node) -> Optional[str]:
        """Rendered type of ``node`` if the pass recorded one."""
        from .types import type_to_string

        t = self.node_types.get(id(node))
        return type_to_string(t) if t is not None else None


def is_syntactic_value(e: Expr) -> bool:
    """OCaml's value restriction: only generalize non-expansive expressions."""
    if isinstance(e, (EConst, EVar, EFun, EFunction)):
        return True
    if isinstance(e, ETuple):
        return all(is_syntactic_value(i) for i in e.items)
    if isinstance(e, EList):
        return all(is_syntactic_value(i) for i in e.items)
    if isinstance(e, ECons):
        return is_syntactic_value(e.head) and is_syntactic_value(e.tail)
    if isinstance(e, EConstructor):
        return e.arg is None or is_syntactic_value(e.arg)
    if isinstance(e, EAnnot):
        return is_syntactic_value(e.expr)
    return False


class Inferencer:
    """One complete inference pass over one program.

    A fresh instance per :func:`typecheck_program` call keeps unification
    state disposable — important because the searcher makes thousands of
    independent oracle calls.
    """

    def __init__(self, env: Optional[TypeEnv] = None, record_types: bool = False):
        base = env if env is not None else _default_base()
        self.root_env = base.fork()
        self.level = 0
        #: When ``record_types`` is set, maps ``id(expr)`` to its inferred
        #: type — the analogue of OCaml's ``-annot`` output.  Message
        #: rendering uses this; type-*checking* never reads it, so the
        #: oracle's behaviour is unchanged.
        self.record_types = record_types
        self.node_types: Dict[int, Type] = {}
        #: Top-level declarations actually inferred by this pass (the
        #: denominator of the dependency-pruning win).
        self.decls_checked = 0

    # ------------------------------------------------------------------
    # Fresh variables and scoping
    # ------------------------------------------------------------------

    def fresh(self) -> TVar:
        return TVar(self.level)

    # ------------------------------------------------------------------
    # Programs and declarations
    # ------------------------------------------------------------------

    def check_program(self, program: Program) -> Dict[str, Scheme]:
        env = self.root_env.child()
        top_level: Dict[str, Scheme] = {}
        for decl in program.decls:
            self.check_decl(env, decl, top_level)
        return top_level

    def check_decl(self, env: TypeEnv, decl, top_level: Dict[str, Scheme]) -> None:
        """Check one top-level declaration, extending ``env``/``top_level``."""
        self.decls_checked += 1
        if isinstance(decl, DType):
            self._declare_type(decl)
        elif isinstance(decl, DException):
            self._declare_exception(decl)
        elif isinstance(decl, DLet):
            bound = self._check_bindings(env, decl.rec, decl.bindings)
            top_level.update(bound)
        elif isinstance(decl, DExpr):
            self.infer_expr(env, decl.expr)
        else:  # pragma: no cover - parser produces nothing else
            raise TypeError(f"unknown declaration {type(decl).__name__}")

    def _declare_type(self, decl: DType) -> None:
        params = {name: TVar(level=1) for name in decl.params}
        # Register arity first so recursive types (Fig. 9's ``move``) work.
        # Table writes go through ``trail_map_set``: under the speculative
        # fast path the tables are shared across checks and must be undone.
        trail_map_set(self.root_env.type_arities, decl.name, len(decl.params))
        result = TCon(decl.name, [params[p] for p in decl.params])
        vars = list(params.values())
        if decl.record_fields:
            names = [f.name for f in decl.record_fields]
            if len(set(names)) != len(names):
                raise RecordFieldError(decl, f"Two fields are named identically in type {decl.name}")
            for f in decl.record_fields:
                ftype = self._eval_type_expr(f.type_expr, params)
                trail_map_set(
                    self.root_env.fields,
                    f.name,
                    FieldInfo(f.name, decl.name, vars, ftype, result, f.mutable, names),
                )
        else:
            for v in decl.variants:
                arg = self._eval_type_expr(v.arg, params) if v.arg is not None else None
                trail_map_set(
                    self.root_env.constructors, v.name, CtorInfo(v.name, vars, arg, result)
                )

    def _declare_exception(self, decl: DException) -> None:
        arg = self._eval_type_expr(decl.arg, {}) if decl.arg is not None else None
        trail_map_set(self.root_env.constructors, decl.name, CtorInfo(decl.name, [], arg, EXN))

    def _eval_type_expr(self, te: TypeExpr, params: Dict[str, TVar]) -> Type:
        if isinstance(te, TEVar):
            if te.name not in params:
                raise UnknownTypeError(te, f"Unbound type parameter '{te.name}")
            return params[te.name]
        if isinstance(te, TEName):
            arity = self.root_env.type_arities.get(te.name)
            if arity is None:
                raise UnknownTypeError(te, f"Unbound type constructor {te.name}")
            if arity != len(te.args):
                raise UnknownTypeError(
                    te,
                    f"The type constructor {te.name} expects {arity} argument(s), "
                    f"but is here applied to {len(te.args)} argument(s)",
                )
            return TCon(te.name, [self._eval_type_expr(a, params) for a in te.args])
        if isinstance(te, TEArrow):
            return TArrow(
                self._eval_type_expr(te.param, params), self._eval_type_expr(te.result, params)
            )
        if isinstance(te, TETuple):
            return TTuple([self._eval_type_expr(i, params) for i in te.items])
        raise TypeError(f"unknown type expression {type(te).__name__}")

    # ------------------------------------------------------------------
    # Let bindings
    # ------------------------------------------------------------------

    def _check_bindings(self, env: TypeEnv, rec: bool, bindings: List[Binding]) -> Dict[str, Scheme]:
        """Check a binding group, bind names into ``env``, return the schemes."""
        bound: Dict[str, Scheme] = {}
        if rec:
            # Pre-bind each name to a fresh monomorphic variable.
            self.level += 1
            try:
                pre: List[TVar] = []
                for b in bindings:
                    if not isinstance(b.pattern, PVar):
                        raise RecursionError_(
                            b.pattern, "Only variables are allowed as left-hand side of let rec"
                        )
                    var = self.fresh()
                    pre.append(var)
                    env.bind(b.pattern.name, monotype(var))
                for b, var in zip(bindings, pre):
                    # Check (not infer-then-unify) against the pre-bound
                    # variable: this shares the recursive occurrence's type
                    # with the parameter types, matching OCaml.  It is what
                    # makes Fig. 9 report at the recursive call argument.
                    self.check_expr(env, b.expr, var)
            finally:
                self.level -= 1
            for b, var in zip(bindings, pre):
                name = b.pattern.name  # type: ignore[union-attr]
                scheme = (
                    generalize(var, self.level)
                    if is_syntactic_value(b.expr)
                    else monotype(var)
                )
                env.bind(name, scheme)
                bound[name] = scheme
            return bound

        for b in bindings:
            self.level += 1
            try:
                rhs_type = self.infer_expr(env, b.expr)
            finally:
                self.level -= 1
            names: Dict[str, Type] = {}
            self._check_pattern(b.pattern, rhs_type, names)
            generalizable = is_syntactic_value(b.expr)
            for name, t in names.items():
                scheme = generalize(t, self.level) if generalizable else monotype(t)
                env.bind(name, scheme)
                bound[name] = scheme
        return bound

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------

    def _check_pattern(self, p: Pattern, expected: Type, names: Dict[str, Type]) -> None:
        """Match pattern ``p`` against ``expected``, collecting bindings."""
        if isinstance(p, PWild):
            return
        if isinstance(p, PVar):
            if p.name in names:
                raise DuplicateBindingError(p, p.name)
            names[p.name] = expected
            return
        if isinstance(p, PConst):
            self._unify_pattern(p, _CONST_TYPES[p.kind], expected)
            return
        if isinstance(p, PTuple):
            expected_r = resolve(expected)
            if isinstance(expected_r, TTuple) and len(expected_r.items) == len(p.items):
                item_types = expected_r.items
            else:
                item_types = [self.fresh() for _ in p.items]
                self._unify_pattern(p, TTuple(list(item_types)), expected)
            for item, t in zip(p.items, item_types):
                self._check_pattern(item, t, names)
            return
        if isinstance(p, PCons):
            elem = self.fresh()
            self._unify_pattern(p, t_list(elem), expected)
            self._check_pattern(p.head, elem, names)
            self._check_pattern(p.tail, t_list(elem), names)
            return
        if isinstance(p, PList):
            elem = self.fresh()
            self._unify_pattern(p, t_list(elem), expected)
            for item in p.items:
                self._check_pattern(item, elem, names)
            return
        if isinstance(p, PConstructor):
            info = self.root_env.lookup_ctor(p.name)
            if info is None:
                raise UnboundConstructorError(p, p.name)
            arg_t, result_t = self._instantiate_ctor(info)
            self._unify_pattern(p, result_t, expected)
            if info.arg is None and p.arg is not None:
                raise ConstructorArityError(p, p.name, 0, 1)
            if info.arg is not None and p.arg is None:
                raise ConstructorArityError(p, p.name, 1, 0)
            if p.arg is not None and arg_t is not None:
                self._check_pattern(p.arg, arg_t, names)
            return
        raise TypeError(f"unknown pattern {type(p).__name__}")

    def _unify_pattern(self, p: Pattern, actual: Type, expected: Type) -> None:
        try:
            unify(actual, expected)
        except UnifyError as err:
            raise PatternMismatchError(p, err.t1, err.t2) from err

    def _instantiate_ctor(self, info: CtorInfo) -> tuple[Optional[Type], Type]:
        scheme_body = TTuple([info.arg or UNIT, info.result])
        inst = instantiate(Scheme(info.vars, scheme_body), self.level)
        assert isinstance(inst, TTuple)
        arg = inst.items[0] if info.arg is not None else None
        return arg, inst.items[1]

    # ------------------------------------------------------------------
    # Expressions: inference (synthesis) mode
    # ------------------------------------------------------------------

    def infer_expr(self, env: TypeEnv, e: Expr) -> Type:
        t = self._infer_expr(env, e)
        if self.record_types:
            self.node_types[id(e)] = t
        return t

    def _infer_expr(self, env: TypeEnv, e: Expr) -> Type:
        if isinstance(e, EConst):
            return _CONST_TYPES[e.kind]
        if isinstance(e, EVar):
            scheme = env.lookup(e.name)
            if scheme is None:
                raise UnboundVariableError(e, e.name)
            return instantiate(scheme, self.level)
        if isinstance(e, EConstructor):
            return self._infer_constructor(env, e)
        if isinstance(e, ETuple):
            return TTuple([self.infer_expr(env, item) for item in e.items])
        if isinstance(e, EList):
            elem: Type = self.fresh()
            for item in e.items:
                self.check_expr(env, item, elem)
            return t_list(elem)
        if isinstance(e, ECons):
            elem = self.infer_expr(env, e.head)
            self.check_expr(env, e.tail, t_list(elem))
            return t_list(elem)
        if isinstance(e, EApp):
            return self._infer_app(env, e)
        if isinstance(e, EFun):
            child = env.child()
            param_types = []
            for p in e.params:
                pt = self.fresh()
                names: Dict[str, Type] = {}
                self._check_pattern(p, pt, names)
                for name, t in names.items():
                    child.bind(name, monotype(t))
                param_types.append(pt)
            result = self.infer_expr(child, e.body)
            for pt in reversed(param_types):
                result = TArrow(pt, result)
            return result
        if isinstance(e, EFunction):
            param = self.fresh()
            result = self._infer_cases(env, e.cases, param, expected=None)
            return TArrow(param, result)
        if isinstance(e, ELet):
            child = env.child()
            self._check_bindings(child, e.rec, e.bindings)
            return self.infer_expr(child, e.body)
        if isinstance(e, EIf):
            self.check_expr(env, e.cond, BOOL)
            if e.else_branch is None:
                self.check_expr(env, e.then_branch, UNIT)
                return UNIT
            then_t = self.infer_expr(env, e.then_branch)
            self.check_expr(env, e.else_branch, then_t)
            return then_t
        if isinstance(e, EMatch):
            scrutinee_t = self.infer_expr(env, e.scrutinee)
            return self._infer_cases(env, e.cases, scrutinee_t, expected=None)
        if isinstance(e, EBinop):
            return self._infer_binop(env, e)
        if isinstance(e, EUnop):
            if e.op == "!":
                elem = self.fresh()
                self.check_expr(env, e.operand, t_ref(elem))
                return elem
            self.check_expr(env, e.operand, INT)
            return INT
        if isinstance(e, ESeq):
            self.infer_expr(env, e.first)
            return self.infer_expr(env, e.second)
        if isinstance(e, ERaise):
            self.check_expr(env, e.exn, EXN)
            return self.fresh()
        if isinstance(e, ERecord):
            return self._infer_record(env, e)
        if isinstance(e, EFieldGet):
            info = self.root_env.lookup_field(e.field_name)
            if info is None:
                raise UnboundFieldError(e, e.field_name)
            record_t, field_t, _mutable = self._instantiate_field(info)
            self.check_expr(env, e.record, record_t)
            return field_t
        if isinstance(e, EFieldSet):
            info = self.root_env.lookup_field(e.field_name)
            if info is None:
                raise UnboundFieldError(e, e.field_name)
            record_t, field_t, mutable = self._instantiate_field(info)
            if not mutable:
                raise RecordFieldError(e, f"The record field {e.field_name} is not mutable")
            self.check_expr(env, e.record, record_t)
            self.check_expr(env, e.value, field_t)
            return UNIT
        if isinstance(e, ETry):
            body_t = self.infer_expr(env, e.body)
            self._infer_cases(env, e.cases, EXN, expected=body_t)
            return body_t
        if isinstance(e, EAnnot):
            declared = self._eval_annot_type(e.type_expr)
            self.check_expr(env, e.expr, declared)
            return declared
        raise TypeError(f"unknown expression {type(e).__name__}")

    def _eval_annot_type(self, te: TypeExpr) -> Type:
        """Evaluate an annotation's type; unseen type variables become
        fresh unification variables scoped to the annotation (OCaml-like)."""

        class _AutoVars(dict):
            def __init__(self, inferencer):
                super().__init__()
                self._inferencer = inferencer

            def __contains__(self, key):
                return True

            def __getitem__(self, key):
                if key not in self.keys():
                    super().__setitem__(key, self._inferencer.fresh())
                return super().get(key)

        return self._eval_type_expr(te, _AutoVars(self))

    def _instantiate_field(self, info: FieldInfo) -> tuple[Type, Type, bool]:
        inst = instantiate(Scheme(info.vars, TTuple([info.record_type, info.field_type])), self.level)
        assert isinstance(inst, TTuple)
        return inst.items[0], inst.items[1], info.mutable

    def _infer_constructor(self, env: TypeEnv, e: EConstructor) -> Type:
        info = self.root_env.lookup_ctor(e.name)
        if info is None:
            raise UnboundConstructorError(e, e.name)
        arg_t, result_t = self._instantiate_ctor(info)
        if info.arg is None and e.arg is not None:
            raise ConstructorArityError(e, e.name, 0, 1)
        if info.arg is not None and e.arg is None:
            raise ConstructorArityError(e, e.name, 1, 0)
        if e.arg is not None and arg_t is not None:
            self.check_expr(env, e.arg, arg_t)
        return result_t

    def _infer_record(self, env: TypeEnv, e: ERecord) -> Type:
        if not e.fields:
            raise RecordFieldError(e, "Empty record literal")
        first = self.root_env.lookup_field(e.fields[0].name)
        if first is None:
            raise UnboundFieldError(e.fields[0], e.fields[0].name)
        record_t, _ft, _m = self._instantiate_field(first)
        given = [f.name for f in e.fields]
        if len(set(given)) != len(given):
            raise RecordFieldError(e, "A record field is defined several times")
        missing = [n for n in first.all_fields if n not in given]
        if missing:
            raise RecordFieldError(e, f"Some record fields are undefined: {' '.join(missing)}")
        for f in e.fields:
            info = self.root_env.lookup_field(f.name)
            if info is None or info.record_name != first.record_name:
                raise UnboundFieldError(
                    f, f.name if info is None else f"{f.name} (belongs to type {info.record_name})"
                )
            # Re-instantiate sharing the same record instance: unify record types.
            f_record_t, f_field_t, _ = self._instantiate_field(info)
            unify(f_record_t, record_t)
            self.check_expr(env, f.expr, f_field_t)
        return record_t

    def _infer_app(self, env: TypeEnv, e: EApp) -> Type:
        func_t = self.infer_expr(env, e.func)
        result = func_t
        for i, arg in enumerate(e.args):
            result = resolve(result)
            if isinstance(result, TArrow):
                self.check_expr(env, arg, result.param)
                result = result.result
            elif isinstance(result, TVar):
                param, ret = self.fresh(), self.fresh()
                unify(result, TArrow(param, ret))
                self.check_expr(env, arg, param)
                result = ret
            else:
                # Over-application / applying a non-function.  OCaml reports
                # this at the function expression with its full type.
                raise NotAFunctionError(e.func, func_t, QUOTE_NODE)
        return result

    def _infer_binop(self, env: TypeEnv, e: EBinop) -> Type:
        scheme = operator_scheme(e.op)
        if scheme is None:
            raise UnboundVariableError(e, f"( {e.op} )")
        op_t = resolve(instantiate(scheme, self.level))
        assert isinstance(op_t, TArrow)
        rest = resolve(op_t.result)
        assert isinstance(rest, TArrow)
        self.check_expr(env, e.left, op_t.param)
        self.check_expr(env, e.right, rest.param)
        return rest.result

    def _infer_cases(
        self,
        env: TypeEnv,
        cases: List[MatchCase],
        scrutinee_t: Type,
        expected: Optional[Type],
    ) -> Type:
        """Check match arms; bodies unify with ``expected`` (or the first arm)."""
        result: Optional[Type] = expected
        for case in cases:
            names: Dict[str, Type] = {}
            self._check_pattern(case.pattern, scrutinee_t, names)
            child = env.child()
            for name, t in names.items():
                child.bind(name, monotype(t))
            if result is None:
                result = self.infer_expr(child, case.body)
            else:
                self.check_expr(child, case.body, result)
        assert result is not None
        return result

    # ------------------------------------------------------------------
    # Expressions: checking (analysis) mode — OCaml's ``type_expect``
    # ------------------------------------------------------------------

    def check_expr(self, env: TypeEnv, e: Expr, expected: Type) -> None:
        """Check ``e`` against ``expected``, descending structurally so that
        mismatches are reported at the deepest responsible expression."""
        self._check_expr(env, e, expected)
        if self.record_types:
            self.node_types[id(e)] = expected

    def _check_expr(self, env: TypeEnv, e: Expr, expected: Type) -> None:
        if isinstance(e, EFun):
            self._check_fun(env, e, expected)
            return
        if isinstance(e, EFunction):
            expected_r = resolve(expected)
            if isinstance(expected_r, TVar):
                param, result = self.fresh(), self.fresh()
                unify(expected_r, TArrow(param, result))
                self._infer_cases(env, e.cases, param, expected=result)
                return
            if isinstance(expected_r, TArrow):
                self._infer_cases(env, e.cases, expected_r.param, expected=expected_r.result)
                return
            self._fail_mismatch(e, TArrow(self.fresh(), self.fresh()), expected_r)
        if isinstance(e, EIf):
            self.check_expr(env, e.cond, BOOL)
            if e.else_branch is None:
                self._unify_expr(e, UNIT, expected)
                self.check_expr(env, e.then_branch, UNIT)
                return
            self.check_expr(env, e.then_branch, expected)
            self.check_expr(env, e.else_branch, expected)
            return
        if isinstance(e, EMatch):
            scrutinee_t = self.infer_expr(env, e.scrutinee)
            self._infer_cases(env, e.cases, scrutinee_t, expected=expected)
            return
        if isinstance(e, ETry):
            self.check_expr(env, e.body, expected)
            self._infer_cases(env, e.cases, EXN, expected=expected)
            return
        if isinstance(e, EAnnot):
            declared = self._eval_annot_type(e.type_expr)
            self._unify_expr(e, declared, expected)
            self.check_expr(env, e.expr, declared)
            return
        if isinstance(e, ELet):
            child = env.child()
            self._check_bindings(child, e.rec, e.bindings)
            self.check_expr(child, e.body, expected)
            return
        if isinstance(e, ESeq):
            self.infer_expr(env, e.first)
            self.check_expr(env, e.second, expected)
            return
        if isinstance(e, ERaise):
            self.check_expr(env, e.exn, EXN)
            return  # raise fits any context
        if isinstance(e, ETuple):
            expected_r = resolve(expected)
            if isinstance(expected_r, TTuple) and len(expected_r.items) == len(e.items):
                for item, t in zip(e.items, expected_r.items):
                    self.check_expr(env, item, t)
                return
            if isinstance(expected_r, TVar):
                items = [self.fresh() for _ in e.items]
                unify(expected_r, TTuple(list(items)))
                for item, t in zip(e.items, items):
                    self.check_expr(env, item, t)
                return
            # Arity mismatch or non-tuple context: report at the tuple.
            actual = TTuple([self.infer_expr(env, item) for item in e.items])
            self._unify_expr(e, actual, expected_r)
            return
        if isinstance(e, EList):
            expected_r = resolve(expected)
            elem: Type
            if isinstance(expected_r, TCon) and expected_r.name == "list":
                elem = expected_r.args[0]
            elif isinstance(expected_r, TVar):
                elem = self.fresh()
                unify(expected_r, t_list(elem))
            else:
                actual = self.infer_expr(env, e)
                self._unify_expr(e, actual, expected_r)
                return
            for item in e.items:
                self.check_expr(env, item, elem)
            return
        if isinstance(e, ECons):
            expected_r = resolve(expected)
            if isinstance(expected_r, TCon) and expected_r.name == "list":
                elem = expected_r.args[0]
                self.check_expr(env, e.head, elem)
                self.check_expr(env, e.tail, t_list(elem))
                return
            actual = self.infer_expr(env, e)
            self._unify_expr(e, actual, expected)
            return
        # Default: synthesize then unify; the error points at ``e``.
        actual = self.infer_expr(env, e)
        self._unify_expr(e, actual, expected)

    def _check_fun(self, env: TypeEnv, e: EFun, expected: Type) -> None:
        child = env.child()
        remaining = expected
        for index, p in enumerate(e.params):
            remaining = resolve(remaining)
            if isinstance(remaining, TVar):
                param, result = self.fresh(), self.fresh()
                unify(remaining, TArrow(param, result))
                remaining = TArrow(param, result)
            if isinstance(remaining, TArrow):
                names: Dict[str, Type] = {}
                self._check_pattern(p, remaining.param, names)
                for name, t in names.items():
                    child.bind(name, monotype(t))
                remaining = remaining.result
            else:
                # The context supplies fewer arrows than the function has
                # parameters; report the leftover function shape vs context.
                leftover = self.fresh()
                actual: Type = leftover
                for _ in e.params[index:]:
                    actual = TArrow(self.fresh(), actual)
                self._fail_mismatch(e, actual, remaining)
        self.check_expr(child, e.body, remaining)

    # ------------------------------------------------------------------
    # Error helpers
    # ------------------------------------------------------------------

    def _unify_expr(self, e: Expr, actual: Type, expected: Type) -> None:
        try:
            unify(actual, expected)
        except UnifyError as err:
            raise TypeMismatchError(e, err.t1, err.t2, quoted=QUOTE_NODE) from err

    def _fail_mismatch(self, e: Expr, actual: Type, expected: Type) -> None:
        raise TypeMismatchError(e, actual, expected, quoted=QUOTE_NODE)


class PrefixSnapshot:
    """The generalized typing state after the first ``n_decls`` declarations.

    The SEMINAL searcher, once it has localized the first failing top-level
    declaration, only ever mutates *that* declaration: every candidate it
    tests shares the passing prefix ``decls[:k]`` by object identity (the
    functional :func:`repro.tree.replace_at` rebuilds only the spine).  The
    typing environment those declarations produce is therefore identical
    across thousands of oracle calls, and re-inferring it each time is pure
    waste.  A snapshot captures that environment once so each call checks
    only ``decls[k:]`` on top of it.

    Soundness relies on two properties:

    * **Identity matching** — :meth:`matches` accepts a program only when
      its first ``n_decls`` declarations *are* (``is``) the snapshotted
      ones, so a candidate that edits the prefix can never be checked
      against a stale environment.
    * **Free-variable isolation** — the value restriction can leave
      un-generalized unification variables in top-level schemes (e.g.
      ``let r = ref []`` gives ``r : '_a list ref``).  Checking a suffix
      may *link* those variables, and the mutation would otherwise leak
      into the next oracle call through the shared snapshot.  When any
      such variable exists, :meth:`instantiate_values` hands each check a
      fresh isomorphic copy (one fresh variable per free variable, sharing
      preserved) — exactly what re-inferring the prefix from scratch would
      produce.  In the common all-generalized case the copy is skipped.
    """

    __slots__ = (
        "decls",
        "base",
        "constructors",
        "fields",
        "type_arities",
        "values",
        "top_level",
        "free_vars",
    )

    def __init__(
        self,
        decls,
        base: TypeEnv,
        constructors,
        fields,
        type_arities,
        values: Dict[str, Scheme],
        top_level: Dict[str, Scheme],
        free_vars,
    ):
        self.decls = tuple(decls)
        self.base = base
        self.constructors = constructors
        self.fields = fields
        self.type_arities = type_arities
        self.values = values
        self.top_level = top_level
        self.free_vars = tuple(free_vars)

    @property
    def n_decls(self) -> int:
        return len(self.decls)

    def matches(self, program: Program) -> bool:
        """Whether ``program`` starts with exactly the snapshotted prefix
        (by object identity — the searcher shares unchanged declarations)."""
        decls = program.decls
        if len(decls) < len(self.decls):
            return False
        for mine, theirs in zip(self.decls, decls):
            if mine is not theirs:
                return False
        return True

    def instantiate_values(self) -> tuple[Dict[str, Scheme], Dict[str, Scheme]]:
        """``(values, top_level)`` dicts safe to hand to one inference pass."""
        if not self.free_vars:
            return dict(self.values), dict(self.top_level)
        mapping: Dict[TVar, TVar] = {v: TVar(v.level) for v in self.free_vars}
        values = {
            name: Scheme(s.vars, _substitute(s.body, mapping))
            for name, s in self.values.items()
        }
        top_level = {name: values.get(name, s) for name, s in self.top_level.items()}
        return values, top_level


def snapshot_prefix(
    program: Program, upto: int, env: Optional[TypeEnv] = None
) -> Optional[PrefixSnapshot]:
    """Type-check ``program.decls[:upto]`` and snapshot the resulting state.

    Returns ``None`` when the prefix is ill-typed (a snapshot of a failing
    prefix would be meaningless) or empty.  The snapshot can then be passed
    to :func:`typecheck_program` via ``prefix=`` to check candidate programs
    that share the prefix without re-inferring it.
    """
    if upto <= 0:
        return None
    base = env if env is not None else _default_base()
    inferencer = Inferencer(base)
    child = inferencer.root_env.child()
    top_level: Dict[str, Scheme] = {}
    try:
        for decl in program.decls[:upto]:
            inferencer.check_decl(child, decl, top_level)
    except (MiniMLTypeError, RecursionError):
        return None
    values = dict(child.values)
    free_vars: List[TVar] = []
    seen: set = set()
    for scheme in values.values():
        quantified = {id(v) for v in scheme.vars}
        for v in free_type_vars(scheme.body):
            if id(v) not in quantified and id(v) not in seen:
                seen.add(id(v))
                free_vars.append(v)
    return PrefixSnapshot(
        program.decls[:upto],
        base,
        inferencer.root_env.constructors,
        inferencer.root_env.fields,
        inferencer.root_env.type_arities,
        values,
        top_level,
        free_vars,
    )


def _typecheck_from_prefix(
    program: Program, prefix: PrefixSnapshot, record_types: bool = False
) -> CheckResult:
    """Check ``program.decls[prefix.n_decls:]`` on top of the snapshot."""
    inferencer = Inferencer(prefix.base, record_types=record_types)
    root = inferencer.root_env
    # The snapshot owns its table dicts; fork-style copies keep suffix
    # ``type``/``exception`` declarations from polluting later calls.
    root.constructors = dict(prefix.constructors)
    root.fields = dict(prefix.fields)
    root.type_arities = dict(prefix.type_arities)
    env = root.child()
    values, top_level = prefix.instantiate_values()
    env.values.update(values)
    skipped = prefix.n_decls
    try:
        for decl in program.decls[prefix.n_decls :]:
            inferencer.check_decl(env, decl, top_level)
    except MiniMLTypeError as err:
        return CheckResult(
            ok=False,
            error=err,
            node_types=inferencer.node_types,
            decls_checked=inferencer.decls_checked,
            decls_skipped=skipped,
        )
    except RecursionError:
        return CheckResult(
            ok=False,
            error=NestingTooDeepError(),
            decls_checked=inferencer.decls_checked,
            decls_skipped=skipped,
        )
    return CheckResult(
        ok=True,
        top_level=top_level,
        node_types=inferencer.node_types,
        decls_checked=inferencer.decls_checked,
        decls_skipped=skipped,
    )


class TrailIntegrityError(RuntimeError):
    """The speculative undo could not restore the armed state exactly.

    Raised when rolling the trail back fails (or the trail was tampered
    with mid-check).  The armed :class:`SpeculativeState` must be
    considered corrupt: the oracle discards both it and its snapshot and
    degrades to the copying path.
    """


def _speculative_inferencer(root: TypeEnv) -> Inferencer:
    """A per-check :class:`Inferencer` over an existing root environment.

    Bypasses ``__init__`` so the armed tables are *not* re-copied — that
    copy is exactly the constant factor the speculative path removes.
    """
    inferencer = Inferencer.__new__(Inferencer)
    inferencer.root_env = root
    inferencer.level = 0
    inferencer.record_types = False
    inferencer.node_types = {}
    inferencer.decls_checked = 0
    return inferencer


class SpeculativeState:
    """Live armed typing state for trail-based speculative suffix checks.

    The copying fast path (:func:`_typecheck_from_prefix`) still pays a
    per-check constant factor: three table ``dict()`` copies, a values
    copy, and — whenever the value restriction left weak variables — a
    full substitution walk over every prefix scheme.  This class pays all
    of that **once**, at arm time, and then checks each candidate's suffix
    directly against the live state: every destructive write during the
    check is recorded on a :class:`~repro.miniml.types.Trail` and rolled
    back afterwards, SMT push/pop style, leaving the armed state
    bit-identical for the next candidate.

    Weak (un-generalized) variables need no special casing here: a suffix
    check may link them, and :meth:`check` undoes the link — the same
    observable behaviour as the copying path's fresh-copy-per-check.
    """

    __slots__ = ("snapshot", "root", "values_env", "trail", "checks", "rolled_back")

    def __init__(self, snapshot: PrefixSnapshot):
        self.snapshot = snapshot
        root = snapshot.base.fork()
        # The snapshot owns its table dicts; copy once (not per check).
        root.constructors = dict(snapshot.constructors)
        root.fields = dict(snapshot.fields)
        root.type_arities = dict(snapshot.type_arities)
        self.root = root
        # Prefix value bindings, bound once and *live* (no instantiation):
        # suffix unifications against weak variables are undone by the trail.
        values_env = TypeEnv(dict(snapshot.values), parent=root)
        self.values_env = values_env
        self.trail = Trail()
        #: Telemetry mirrors of the oracle's ``oracle.trail.*`` counters.
        self.checks = 0
        self.rolled_back = 0

    def check(self, program: Program, freeze_errors: bool = False) -> CheckResult:
        """Check ``program``'s suffix against the live armed state.

        The caller must have verified ``snapshot.matches(program)``.  When
        ``freeze_errors`` is set, a failing result's message is rendered
        *before* rollback (required whenever the error outlives this call —
        persistence, cross-checking — because the types it would render
        from are about to be un-unified).

        Raises :class:`TrailIntegrityError` when the armed state could not
        be restored; any other exception escapes *after* a successful
        rollback, so the state stays reusable.
        """
        snapshot = self.snapshot
        trail = self.trail
        mark = trail.mark()
        inferencer = _speculative_inferencer(self.root)
        env = self.values_env.child()
        top_level: Dict[str, Scheme] = dict(snapshot.top_level)
        skipped = snapshot.n_decls
        previous = set_trail(trail)
        try:
            try:
                for decl in program.decls[skipped:]:
                    inferencer.check_decl(env, decl, top_level)
            except MiniMLTypeError as err:
                if freeze_errors:
                    err.freeze()
                result = CheckResult(
                    ok=False,
                    error=err,
                    decls_checked=inferencer.decls_checked,
                    decls_skipped=skipped,
                )
            except RecursionError:
                result = CheckResult(
                    ok=False,
                    error=NestingTooDeepError(),
                    decls_checked=inferencer.decls_checked,
                    decls_skipped=skipped,
                )
            else:
                result = CheckResult(
                    ok=True,
                    top_level=top_level,
                    decls_checked=inferencer.decls_checked,
                    decls_skipped=skipped,
                )
        except BaseException as unexpected:
            # Not a type error: chaos injection, a checker bug, a poisoned
            # snapshot.  Restore the armed state before letting it escape;
            # if even that fails the state is corrupt.
            set_trail(previous)
            try:
                self.rolled_back += trail.undo(mark)
            except BaseException as undo_err:
                raise TrailIntegrityError(
                    "speculative rollback failed; armed state corrupt"
                ) from undo_err
            raise unexpected
        set_trail(previous)
        if trail.mark() < mark:
            raise TrailIntegrityError(
                "trail shrank below the pre-check mark; armed state corrupt"
            )
        try:
            self.rolled_back += trail.undo(mark)
        except BaseException as undo_err:
            raise TrailIntegrityError(
                "speculative rollback failed; armed state corrupt"
            ) from undo_err
        self.checks += 1
        return result


def typecheck_speculative(
    program: Program, state: SpeculativeState, freeze_errors: bool = False
) -> CheckResult:
    """Module-level convenience wrapper around :meth:`SpeculativeState.check`."""
    return state.check(program, freeze_errors=freeze_errors)


def typecheck_program(
    program: Program,
    env: Optional[TypeEnv] = None,
    record_types: bool = False,
    prefix: Optional[PrefixSnapshot] = None,
) -> CheckResult:
    """Type-check a whole program; never raises, returns a :class:`CheckResult`.

    This is the function the SEMINAL oracle wraps.  A fresh environment is
    built per call (cheap relative to inference) so repeated oracle calls on
    mutated ASTs cannot interfere through shared unification state.

    When ``prefix`` is a :class:`PrefixSnapshot` whose declarations lead
    ``program`` (by identity), only the declarations after the snapshot
    point are inferred — the incremental fast path.  A non-matching prefix
    falls back to the full from-scratch check, so the answer is the same
    either way.
    """
    if prefix is not None and prefix.matches(program):
        return _typecheck_from_prefix(program, prefix, record_types=record_types)
    inferencer = Inferencer(env, record_types=record_types)
    try:
        top_level = inferencer.check_program(program)
    except MiniMLTypeError as err:
        return CheckResult(
            ok=False,
            error=err,
            node_types=inferencer.node_types,
            decls_checked=inferencer.decls_checked,
        )
    except RecursionError:
        # Graceful rejection: a program nested past the interpreter's
        # recursion headroom is reported as ill-typed (with a dedicated
        # error) instead of crashing the caller mid-inference.
        return CheckResult(
            ok=False,
            error=NestingTooDeepError(),
            decls_checked=inferencer.decls_checked,
        )
    return CheckResult(
        ok=True,
        top_level=top_level,
        node_types=inferencer.node_types,
        decls_checked=inferencer.decls_checked,
    )


# ---------------------------------------------------------------------------
# Declaration outcome tables: the record/replay passes behind the oracle's
# second reuse tier (dependency-pruned re-checking).  Planning lives in
# :mod:`repro.core.depgraph`; def/use extraction in :mod:`repro.miniml.deps`.
# ---------------------------------------------------------------------------


def _scheme_fingerprint(scheme: Scheme) -> str:
    """A canonical rendering of a scheme, stable under free-variable copying.

    Variables are named by first appearance — quantified ones as ``q<n>``,
    free (value-restriction weak) ones as ``w<n>`` — so two alpha-equivalent
    schemes print identically regardless of the underlying ``TVar`` ids.
    Two closed schemes with equal fingerprints are interchangeable for
    inference, which is what replay-time verification relies on.
    """
    quantified = {id(v) for v in scheme.vars}
    names: Dict[int, str] = {}
    parts: List[str] = []

    def walk(t: Type) -> None:
        t = resolve(t)
        if isinstance(t, TVar):
            key = id(t)
            name = names.get(key)
            if name is None:
                prefix = "q" if key in quantified else "w"
                name = names[key] = f"{prefix}{len(names)}"
            parts.append(name)
        elif isinstance(t, TCon):
            parts.append(t.name)
            if t.args:
                parts.append("(")
                for arg in t.args:
                    walk(arg)
                    parts.append(",")
                parts.append(")")
        elif isinstance(t, TArrow):
            parts.append("(")
            walk(t.param)
            parts.append("->")
            walk(t.result)
            parts.append(")")
        elif isinstance(t, TTuple):
            parts.append("{")
            for item in t.items:
                walk(item)
                parts.append("*")
            parts.append("}")
        else:  # pragma: no cover - no other Type constructors exist
            parts.append(repr(t))

    walk(scheme.body)
    return "".join(parts)


def _scheme_weak_vars(scheme: Scheme) -> List[TVar]:
    """Free (un-generalized) type variables of a scheme's body."""
    quantified = {id(v) for v in scheme.vars}
    return [v for v in free_type_vars(scheme.body) if id(v) not in quantified]


def record_decl_table(program: Program, env: Optional[TypeEnv] = None, key_fn=None):
    """Fully infer ``program`` once, recording per-declaration outcomes.

    Returns ``(table, result)``: the :class:`repro.core.depgraph.DeclTable`
    for later :func:`replay_decl_table` calls, and the pass's
    :class:`CheckResult` (this *is* a complete check — the caller should
    use it instead of running a second pass).  ``table`` is ``None`` when
    no meaningful table could be built (e.g. the pass blew the recursion
    guard mid-inference).

    The table covers every declaration up to and including the first
    failing one; for a well-typed program it covers them all.  Schemes are
    recorded by reference and fingerprinted *after* the pass completes, so
    value-restriction weak variables carry their end-of-pass constraints —
    the same state a from-scratch check of the identical program reaches.
    """
    from repro.core.depgraph import DeclOutcome, DeclTable
    from .deps import NS_VALUE, decl_use_def

    if key_fn is None:
        from repro.tree import structural_key as key_fn  # type: ignore[no-redef]

    base = env if env is not None else _default_base()
    inferencer = Inferencer(base)
    child = inferencer.root_env.child()
    top_level: Dict[str, Scheme] = {}
    entries: List[DeclOutcome] = []
    used_slices: List[Dict[str, Scheme]] = []
    bound_so_far: set = set()
    result: Optional[CheckResult] = None

    for decl in program.decls:
        use_def = decl_use_def(decl)
        # The env slice this declaration sees: schemes of used names bound
        # by *earlier declarations of this program* (base-env bindings are
        # identical for every candidate and need no verification).
        used: Dict[str, Scheme] = {}
        for ns, name in use_def.uses:
            if ns == NS_VALUE and name in bound_so_far:
                scheme = child.lookup(name)
                if scheme is not None:
                    used[name] = scheme
        entry = DeclOutcome(skey=key_fn(decl), uses=use_def.uses, defs=use_def.defs)
        entries.append(entry)
        used_slices.append(used)
        try:
            if isinstance(decl, DLet):
                inferencer.decls_checked += 1
                bound = inferencer._check_bindings(child, decl.rec, decl.bindings)
                top_level.update(bound)
                entry.bindings = dict(bound)
                bound_so_far.update(bound)
            else:
                inferencer.check_decl(child, decl, top_level)
        except MiniMLTypeError as err:
            entry.error = err
            result = CheckResult(
                ok=False,
                error=err,
                node_types=inferencer.node_types,
                decls_checked=inferencer.decls_checked,
            )
            break
        except RecursionError:
            # No sound table: inference state is unknown mid-blowup.
            return None, CheckResult(
                ok=False,
                error=NestingTooDeepError(),
                decls_checked=inferencer.decls_checked,
            )
    if result is None:
        result = CheckResult(
            ok=True,
            top_level=top_level,
            node_types=inferencer.node_types,
            decls_checked=inferencer.decls_checked,
        )

    # Fingerprint everything at end-of-pass, when unification has settled.
    free_vars: List[TVar] = []
    seen_vars: set = set()
    for entry, used in zip(entries, used_slices):
        entry.env_fp = {name: _scheme_fingerprint(s) for name, s in used.items()}
        weak: List[str] = []
        for name, scheme in entry.bindings.items():
            entry.scheme_fp[name] = _scheme_fingerprint(scheme)
            weak_vars = _scheme_weak_vars(scheme)
            if weak_vars:
                weak.append(name)
                for v in weak_vars:
                    if id(v) not in seen_vars:
                        seen_vars.add(id(v))
                        free_vars.append(v)
        entry.weak_names = frozenset(weak)
    return DeclTable(entries=entries, free_vars=tuple(free_vars)), result


def replay_decl_table(
    program: Program,
    table,
    env: Optional[TypeEnv] = None,
    key_fn=None,
    weak_copy: bool = True,
) -> CheckResult:
    """Check ``program`` against a recorded outcome table.

    Declarations the planner proves unaffected by the candidate's changes
    replay their recorded schemes (value-restriction weak variables are
    copied consistently across the whole pass, the ``instantiate_values``
    discipline); changed declarations and their dependents are really
    re-inferred.  A replayed declaration whose used-names environment
    slice no longer matches the recorded fingerprints — which a sound plan
    never produces, but a stale or corrupted table can — degrades itself
    and everything after it to real checks, so the answer is never wrong.

    ``weak_copy=False`` skips the per-pass substitution of the table's
    weak variables and binds the recorded schemes *live*.  Only sound when
    the caller brackets the pass with an active :class:`~.types.Trail`
    mark/undo (the oracle's speculative replay tier): any link a check
    applies to a recorded weak variable is rolled back before the next
    pass sees the table.
    """
    from repro.core.depgraph import PLAN_REPLAY, plan_replay
    from .deps import decl_use_def

    if key_fn is None:
        from repro.tree import structural_key as key_fn  # type: ignore[no-redef]

    decls = program.decls
    entries = table.entries
    skeys = [key_fn(decl) for decl in decls]

    if (
        not table.stale
        and len(decls) <= len(entries)
        and not (weak_copy and table.free_vars)
        and table.self_consistent
        and all(skeys[i] == entries[i].skey for i in range(len(decls)))
    ):
        # Pure-prefix fast path: the candidate is an unchanged prefix of
        # the recorded baseline (the localization scan's bread and
        # butter), so the plan is trivially all-replay and the verdict is
        # already in the table — no environment, no inferencer, and the
        # per-entry fingerprint verification collapses to the table's
        # (cached) internal consistency.  Skipped when the pass must copy
        # weak schemes: the slow loop owns that substitution discipline.
        fast_top: Dict[str, Scheme] = {}
        fast_replayed = 0
        for i in range(len(decls)):
            entry = entries[i]
            fast_replayed += 1
            if entry.error is not None:
                return CheckResult(
                    ok=False, error=entry.error, decls_replayed=fast_replayed
                )
            fast_top.update(entry.bindings)
        return CheckResult(ok=True, top_level=fast_top, decls_replayed=fast_replayed)

    use_defs = []
    for i, decl in enumerate(decls):
        if i < len(entries) and skeys[i] == entries[i].skey:
            use_defs.append((entries[i].uses, entries[i].defs))
        else:
            use_def = decl_use_def(decl)
            use_defs.append((use_def.uses, use_def.defs))
    plan = plan_replay(table, skeys, use_defs)

    base = env if env is not None else _default_base()
    inferencer = Inferencer(base)
    child = inferencer.root_env.child()
    top_level: Dict[str, Scheme] = {}
    mapping: Optional[Dict[TVar, TVar]] = (
        {v: TVar(v.level) for v in table.free_vars}
        if (weak_copy and table.free_vars)
        else None
    )
    #: Canonical schemes of program-bound names as of the current position.
    current_fp: Dict[str, str] = {}
    replayed = degraded = 0
    degrade_rest = bool(table.stale)

    def counts() -> Dict[str, int]:
        return {
            "decls_checked": inferencer.decls_checked,
            "decls_replayed": replayed,
            "decls_degraded": degraded,
        }

    for i, decl in enumerate(decls):
        entry = entries[i] if i < len(entries) else None
        do_replay = plan[i] == PLAN_REPLAY and entry is not None and not degrade_rest
        if do_replay:
            for name, fp in entry.env_fp.items():
                if current_fp.get(name) != fp:
                    do_replay = False
                    break
        if do_replay:
            replayed += 1
            if entry.error is not None:
                # The recorded first failure: inference stops here, so
                # later declarations are irrelevant to the verdict.
                return CheckResult(ok=False, error=entry.error, **counts())
            if isinstance(decl, DLet):
                for name, scheme in entry.bindings.items():
                    if mapping is not None:
                        scheme = Scheme(scheme.vars, _substitute(scheme.body, mapping))
                    child.bind(name, scheme)
                    top_level[name] = scheme
                    current_fp[name] = entry.scheme_fp[name]
            elif isinstance(decl, (DType, DException)):
                # Re-executing a declaration header is deterministic and
                # cheap (no unification) — it *is* the replay.
                inferencer.check_decl(child, decl, top_level)
                inferencer.decls_checked -= 1
            # A replayed DExpr has no bindings to restore; its only
            # effects (weak-variable links, or the recorded error) are
            # already baked into the end-of-pass schemes.
            continue
        if plan[i] == PLAN_REPLAY:
            # Planned replay refused by fingerprint verification (stale or
            # corrupted table): degrade this and every later declaration.
            degraded += 1
            degrade_rest = True
        try:
            if isinstance(decl, DLet):
                inferencer.decls_checked += 1
                bound = inferencer._check_bindings(child, decl.rec, decl.bindings)
                top_level.update(bound)
                for name, scheme in bound.items():
                    current_fp[name] = _scheme_fingerprint(scheme)
            else:
                inferencer.check_decl(child, decl, top_level)
        except MiniMLTypeError as err:
            return CheckResult(ok=False, error=err, **counts())
        except RecursionError:
            return CheckResult(ok=False, error=NestingTooDeepError(), **counts())
    return CheckResult(ok=True, top_level=top_level, **counts())


def typecheck_source(source: str, env: Optional[TypeEnv] = None) -> CheckResult:
    """Parse then type-check MiniML source text."""
    from .parser import parse_program

    return typecheck_program(parse_program(source), env)
