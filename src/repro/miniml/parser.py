"""Recursive-descent parser for MiniML.

The grammar is the Caml fragment the paper's programs use.  Operator
precedence (loosest to tightest) follows OCaml closely enough that every
example in the paper parses with the intended shape:

``;`` < ``let/fun/function/match/if/raise`` < ``,`` < ``:=``/``<-`` <
``||`` < ``&&`` < comparisons < ``@``/``^`` < ``::`` < additive <
multiplicative < unary < application < field access < atoms.

Curried applications are flattened into one :class:`EApp` node (``f a b c``
has three argument children), which is the shape the triage algorithm of
Section 2.4 iterates over.
"""

from __future__ import annotations

from typing import List, Optional

from repro.tree import Span

from .ast_nodes import (
    Binding,
    EAnnot,
    ETry,
    DException,
    DExpr,
    DLet,
    DType,
    EApp,
    EBinop,
    ECons,
    EConst,
    EConstructor,
    EFieldGet,
    EFieldSet,
    EFun,
    EFunction,
    EIf,
    EList,
    ELet,
    EMatch,
    ERaise,
    ERecord,
    ESeq,
    ETuple,
    EUnop,
    EVar,
    Expr,
    FieldDecl,
    MatchCase,
    Pattern,
    PConst,
    PCons,
    PConstructor,
    PList,
    PTuple,
    PVar,
    PWild,
    Program,
    RecordField,
    TEArrow,
    TEName,
    TETuple,
    TEVar,
    TypeExpr,
    VariantCase,
)
from .lexer import tokenize
from .tokens import Token, TokenKind


class ParseError(Exception):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token: Token):
        span = token.span
        super().__init__(f"{span.start_line}:{span.start_col}: {message} (at {token.text!r})")
        self.message = message
        self.token = token


# Tokens that can begin an atomic expression; used to detect application.
_ATOM_STARTERS_OP = {"(", "[", "{", "!"}


def _is_atom_start(tok: Token) -> bool:
    if tok.kind in (TokenKind.INT, TokenKind.FLOAT, TokenKind.STRING, TokenKind.LIDENT, TokenKind.UIDENT):
        return True
    if tok.kind is TokenKind.KEYWORD and tok.text in ("true", "false", "begin"):
        return True
    return tok.kind is TokenKind.OP and tok.text in _ATOM_STARTERS_OP


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.index = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        tok = self.tok
        if tok.kind is not TokenKind.EOF:
            self.index += 1
        return tok

    def _expect_op(self, text: str) -> Token:
        if not self.tok.is_op(text):
            raise ParseError(f"expected {text!r}", self.tok)
        return self._next()

    def _expect_kw(self, text: str) -> Token:
        if not self.tok.is_kw(text):
            raise ParseError(f"expected keyword {text!r}", self.tok)
        return self._next()

    def _eat_op(self, text: str) -> bool:
        if self.tok.is_op(text):
            self._next()
            return True
        return False

    def _eat_kw(self, text: str) -> bool:
        if self.tok.is_kw(text):
            self._next()
            return True
        return False

    def _span_from(self, start: Token) -> Span:
        end = self.tokens[max(self.index - 1, 0)].span
        s = start.span
        return Span(s.start_line, s.start_col, end.end_line, end.end_col, s.start_offset, end.end_offset)

    def _finish(self, node, start: Token):
        node.span = self._span_from(start)
        return node

    # ------------------------------------------------------------------
    # Programs and declarations
    # ------------------------------------------------------------------

    def parse_program(self) -> Program:
        start = self.tok
        decls = []
        while self.tok.kind is not TokenKind.EOF:
            while self._eat_op(";;"):
                pass
            if self.tok.kind is TokenKind.EOF:
                break
            decls.append(self.parse_decl())
        return self._finish(Program(decls), start)

    def parse_decl(self):
        start = self.tok
        if self.tok.is_kw("let"):
            self._next()
            rec = self._eat_kw("rec")
            bindings = self._parse_bindings()
            if self._eat_kw("in"):
                # A top-level ``let ... in e`` is an expression statement.
                body = self.parse_expr()
                let_expr = self._finish(ELet(rec, bindings, body), start)
                return self._finish(DExpr(let_expr), start)
            return self._finish(DLet(rec, bindings), start)
        if self.tok.is_kw("type"):
            return self._parse_type_decl()
        if self.tok.is_kw("exception"):
            self._next()
            if self.tok.kind is not TokenKind.UIDENT:
                raise ParseError("expected exception name", self.tok)
            name = self._next().text
            arg = self.parse_type_expr() if self._eat_kw("of") else None
            return self._finish(DException(name, arg), start)
        expr = self.parse_expr()
        return self._finish(DExpr(expr), start)

    def _parse_type_decl(self) -> DType:
        start = self._expect_kw("type")
        params: List[str] = []
        if self.tok.kind is TokenKind.CHAR:  # a type variable like 'a
            params.append(self._next().text.lstrip("'"))
        elif self.tok.is_op("("):
            self._next()
            while True:
                if self.tok.kind is not TokenKind.CHAR:
                    raise ParseError("expected type variable", self.tok)
                params.append(self._next().text.lstrip("'"))
                if not self._eat_op(","):
                    break
            self._expect_op(")")
        if self.tok.kind is not TokenKind.LIDENT:
            raise ParseError("expected type name", self.tok)
        name = self._next().text
        self._expect_op("=")
        if self.tok.is_op("{"):
            return self._finish(DType(name, params, record_fields=self._parse_record_decl()), start)
        variants = self._parse_variants()
        return self._finish(DType(name, params, variants=variants), start)

    def _parse_record_decl(self) -> List[FieldDecl]:
        self._expect_op("{")
        fields = []
        while True:
            fstart = self.tok
            mutable = self._eat_kw("mutable")
            if self.tok.kind is not TokenKind.LIDENT:
                raise ParseError("expected field name", self.tok)
            fname = self._next().text
            self._expect_op(":")
            ftype = self.parse_type_expr()
            fields.append(self._finish(FieldDecl(fname, ftype, mutable), fstart))
            if not self._eat_op(";"):
                break
            if self.tok.is_op("}"):
                break
        self._expect_op("}")
        return fields

    def _parse_variants(self) -> List[VariantCase]:
        self._eat_op("|")
        variants = []
        while True:
            vstart = self.tok
            if self.tok.kind is not TokenKind.UIDENT:
                raise ParseError("expected constructor name", self.tok)
            cname = self._next().text
            arg = self.parse_type_expr() if self._eat_kw("of") else None
            variants.append(self._finish(VariantCase(cname, arg), vstart))
            if not self._eat_op("|"):
                break
        return variants

    def _parse_bindings(self) -> List[Binding]:
        bindings = [self._parse_binding()]
        while self._eat_kw("and"):
            bindings.append(self._parse_binding())
        return bindings

    def _parse_binding(self) -> Binding:
        start = self.tok
        # Collect pattern atoms until '='.  One atom: plain binding.
        # Several atoms whose first is a variable: function-definition sugar.
        atoms = [self.parse_pattern_atom()]
        while not self.tok.is_op("=") and _is_pattern_atom_start(self.tok):
            atoms.append(self.parse_pattern_atom())
        self._expect_op("=")
        expr = self.parse_expr()
        if len(atoms) == 1:
            # ``let (x, y) = e`` or ``let x = e``; allow full tuple patterns.
            return self._finish(Binding(atoms[0], expr), start)
        head = atoms[0]
        if not isinstance(head, PVar):
            raise ParseError("function definition must be named by a variable", start)
        fun = EFun(atoms[1:], expr)
        fun.span = expr.span
        return self._finish(
            Binding(head, fun, fun_name=head.name, n_sugar_params=len(atoms) - 1), start
        )

    # ------------------------------------------------------------------
    # Expressions (precedence climbing, loosest first)
    # ------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_seq()

    def _parse_seq(self) -> Expr:
        start = self.tok
        expr = self._parse_control()
        if self.tok.is_op(";"):
            self._next()
            rest = self._parse_seq()  # right-associative, like OCaml
            return self._finish(ESeq(expr, rest), start)
        return expr

    def _parse_control(self) -> Expr:
        tok = self.tok
        if tok.is_kw("let"):
            return self._parse_let_expr()
        if tok.is_kw("fun"):
            return self._parse_fun()
        if tok.is_kw("function"):
            return self._parse_function()
        if tok.is_kw("match"):
            return self._parse_match()
        if tok.is_kw("try"):
            return self._parse_try()
        if tok.is_kw("if"):
            return self._parse_if()
        return self._parse_tuple_level()

    def _parse_let_expr(self) -> ELet:
        start = self._expect_kw("let")
        rec = self._eat_kw("rec")
        bindings = self._parse_bindings()
        self._expect_kw("in")
        body = self.parse_expr()
        return self._finish(ELet(rec, bindings, body), start)

    def _parse_fun(self) -> EFun:
        start = self._expect_kw("fun")
        params = [self.parse_pattern_atom()]
        while _is_pattern_atom_start(self.tok) and not self.tok.is_op("->"):
            params.append(self.parse_pattern_atom())
        self._expect_op("->")
        body = self.parse_expr()
        return self._finish(EFun(params, body), start)

    def _parse_function(self) -> EFunction:
        start = self._expect_kw("function")
        return self._finish(EFunction(self._parse_cases()), start)

    def _parse_match(self) -> EMatch:
        start = self._expect_kw("match")
        scrutinee = self.parse_expr()
        self._expect_kw("with")
        return self._finish(EMatch(scrutinee, self._parse_cases()), start)

    def _parse_try(self) -> ETry:
        start = self._expect_kw("try")
        body = self.parse_expr()
        self._expect_kw("with")
        return self._finish(ETry(body, self._parse_cases()), start)

    def _parse_cases(self) -> List[MatchCase]:
        self._eat_op("|")
        cases = []
        while True:
            cstart = self.tok
            pattern = self.parse_pattern()
            if self.tok.is_kw("when"):
                raise ParseError("pattern guards ('when') are not supported in MiniML", self.tok)
            self._expect_op("->")
            body = self.parse_expr()
            cases.append(self._finish(MatchCase(pattern, body), cstart))
            if not self._eat_op("|"):
                break
        return cases

    def _parse_if(self) -> EIf:
        start = self._expect_kw("if")
        cond = self.parse_expr()
        self._expect_kw("then")
        then_branch = self._parse_control()
        else_branch = self._parse_control() if self._eat_kw("else") else None
        return self._finish(EIf(cond, then_branch, else_branch), start)

    def _parse_tuple_level(self) -> Expr:
        start = self.tok
        first = self._parse_assign_level()
        if not self.tok.is_op(","):
            return first
        items = [first]
        while self._eat_op(","):
            items.append(self._parse_assign_level())
        return self._finish(ETuple(items), start)

    def _parse_assign_level(self) -> Expr:
        start = self.tok
        lhs = self._parse_or_level()
        if self.tok.is_op(":="):
            self._next()
            rhs = self._parse_assign_level()
            return self._finish(EBinop(":=", lhs, rhs), start)
        if self.tok.is_op("<-"):
            self._next()
            rhs = self._parse_assign_level()
            if isinstance(lhs, EFieldGet):
                return self._finish(EFieldSet(lhs.record, lhs.field_name, rhs), start)
            raise ParseError("'<-' requires a record field on the left", start)
        return lhs

    def _binary_left(self, ops: List[str], next_level) -> Expr:
        start = self.tok
        expr = next_level()
        while self.tok.kind is TokenKind.OP and self.tok.text in ops or (
            "mod" in ops and self.tok.is_kw("mod")
        ):
            op = self._next().text
            right = next_level()
            expr = self._finish(EBinop(op, expr, right), start)
        return expr

    def _binary_right(self, ops: List[str], next_level, this_level) -> Expr:
        start = self.tok
        left = next_level()
        if self.tok.kind is TokenKind.OP and self.tok.text in ops:
            op = self._next().text
            right = this_level()
            return self._finish(EBinop(op, left, right), start)
        return left

    def _parse_or_level(self) -> Expr:
        return self._binary_right(["||"], self._parse_and_level, self._parse_or_level)

    def _parse_and_level(self) -> Expr:
        return self._binary_right(["&&"], self._parse_cmp_level, self._parse_and_level)

    def _parse_cmp_level(self) -> Expr:
        return self._binary_left(
            ["=", "==", "!=", "<>", "<", ">", "<=", ">="], self._parse_concat_level
        )

    def _parse_concat_level(self) -> Expr:
        return self._binary_right(["@", "^"], self._parse_cons_level, self._parse_concat_level)

    def _parse_cons_level(self) -> Expr:
        start = self.tok
        head = self._parse_add_level()
        if self.tok.is_op("::"):
            self._next()
            tail = self._parse_cons_level()
            return self._finish(ECons(head, tail), start)
        return head

    def _parse_add_level(self) -> Expr:
        return self._binary_left(["+", "-", "+.", "-."], self._parse_mul_level)

    def _parse_mul_level(self) -> Expr:
        return self._binary_left(["*", "/", "*.", "/.", "mod"], self._parse_unary)

    def _parse_unary(self) -> Expr:
        tok = self.tok
        if tok.is_op("-"):
            self._next()
            operand = self._parse_unary()
            # Fold negation into integer/float literals for natural printing.
            if isinstance(operand, EConst) and operand.kind in ("int", "float"):
                node = EConst(-operand.value, operand.kind)  # type: ignore[operator]
                return self._finish(node, tok)
            return self._finish(EUnop("-", operand), tok)
        return self._parse_app()

    def _parse_app(self) -> Expr:
        start = self.tok
        func = self._parse_postfix()
        args: List[Expr] = []
        while _is_atom_start(self.tok):
            args.append(self._parse_postfix())
        if not args:
            return func
        if isinstance(func, EConstructor) and func.arg is None and len(args) == 1:
            # Constructor application: ``Some x`` / ``For (a, b)``.
            return self._finish(EConstructor(func.name, args[0]), start)
        return self._finish(EApp(func, args), start)

    def _parse_postfix(self) -> Expr:
        start = self.tok
        expr = self._parse_atom()
        while self.tok.is_op(".") and self._peek().kind is TokenKind.LIDENT:
            self._next()
            field_name = self._next().text
            expr = self._finish(EFieldGet(expr, field_name), start)
        return expr

    def _parse_atom(self) -> Expr:
        tok = self.tok
        if tok.kind is TokenKind.INT:
            self._next()
            return self._finish(EConst(tok.value, "int"), tok)
        if tok.kind is TokenKind.FLOAT:
            self._next()
            return self._finish(EConst(tok.value, "float"), tok)
        if tok.kind is TokenKind.STRING:
            self._next()
            return self._finish(EConst(tok.value, "string"), tok)
        if tok.is_kw("true") or tok.is_kw("false"):
            self._next()
            return self._finish(EConst(tok.text == "true", "bool"), tok)
        if tok.kind is TokenKind.LIDENT:
            self._next()
            return self._finish(EVar(tok.text), tok)
        if tok.kind is TokenKind.UIDENT:
            self._next()
            return self._finish(EConstructor(tok.text), tok)
        if tok.is_kw("raise"):
            # ``raise`` behaves like the ordinary function exn -> 'a it is in
            # OCaml, so it must be usable inside operator expressions
            # (``1 + raise Foo``) — the search wildcard depends on this.
            self._next()
            exn = self._parse_app()
            return self._finish(ERaise(exn), tok)
        if tok.is_op("!"):
            self._next()
            operand = self._parse_postfix()
            return self._finish(EUnop("!", operand), tok)
        if tok.is_op("("):
            self._next()
            if self._eat_op(")"):
                return self._finish(EConst(None, "unit"), tok)
            inner = self.parse_expr()
            if self._eat_op(":"):
                annot_type = self.parse_type_expr()
                self._expect_op(")")
                return self._finish(EAnnot(inner, annot_type), tok)
            self._expect_op(")")
            inner.span = self._span_from(tok)
            return inner
        if tok.is_kw("begin"):
            self._next()
            inner = self.parse_expr()
            self._expect_kw("end")
            return inner
        if tok.is_op("["):
            self._next()
            if self._eat_op("]"):
                return self._finish(EList([]), tok)
            items = [self._parse_tuple_level()]
            while self._eat_op(";"):
                if self.tok.is_op("]"):
                    break
                items.append(self._parse_tuple_level())
            self._expect_op("]")
            return self._finish(EList(items), tok)
        if tok.is_op("{"):
            self._next()
            fields = []
            while True:
                fstart = self.tok
                if self.tok.kind is not TokenKind.LIDENT:
                    raise ParseError("expected record field name", self.tok)
                fname = self._next().text
                self._expect_op("=")
                fexpr = self._parse_tuple_level()
                fields.append(self._finish(RecordField(fname, fexpr), fstart))
                if not self._eat_op(";"):
                    break
                if self.tok.is_op("}"):
                    break
            self._expect_op("}")
            return self._finish(ERecord(fields), tok)
        raise ParseError("expected an expression", tok)

    # ------------------------------------------------------------------
    # Patterns
    # ------------------------------------------------------------------

    def parse_pattern(self) -> Pattern:
        start = self.tok
        first = self._parse_pattern_cons()
        if not self.tok.is_op(","):
            return first
        items = [first]
        while self._eat_op(","):
            items.append(self._parse_pattern_cons())
        return self._finish(PTuple(items), start)

    def _parse_pattern_cons(self) -> Pattern:
        start = self.tok
        head = self._parse_pattern_app()
        if self.tok.is_op("::"):
            self._next()
            tail = self._parse_pattern_cons()
            return self._finish(PCons(head, tail), start)
        return head

    def _parse_pattern_app(self) -> Pattern:
        tok = self.tok
        if tok.kind is TokenKind.UIDENT:
            self._next()
            arg = None
            if _is_pattern_atom_start(self.tok):
                arg = self.parse_pattern_atom()
            return self._finish(PConstructor(tok.text, arg), tok)
        return self.parse_pattern_atom()

    def parse_pattern_atom(self) -> Pattern:
        tok = self.tok
        if tok.is_op("_"):
            self._next()
            return self._finish(PWild(), tok)
        if tok.kind is TokenKind.LIDENT:
            self._next()
            return self._finish(PVar(tok.text), tok)
        if tok.kind is TokenKind.INT:
            self._next()
            return self._finish(PConst(tok.value, "int"), tok)
        if tok.kind is TokenKind.FLOAT:
            self._next()
            return self._finish(PConst(tok.value, "float"), tok)
        if tok.kind is TokenKind.STRING:
            self._next()
            return self._finish(PConst(tok.value, "string"), tok)
        if tok.is_kw("true") or tok.is_kw("false"):
            self._next()
            return self._finish(PConst(tok.text == "true", "bool"), tok)
        if tok.kind is TokenKind.UIDENT:
            self._next()
            return self._finish(PConstructor(tok.text), tok)
        if tok.is_op("-") and self._peek().kind in (TokenKind.INT, TokenKind.FLOAT):
            self._next()
            num = self._next()
            kind = "int" if num.kind is TokenKind.INT else "float"
            return self._finish(PConst(-num.value, kind), tok)
        if tok.is_op("("):
            self._next()
            if self._eat_op(")"):
                return self._finish(PConst(None, "unit"), tok)
            inner = self.parse_pattern()
            self._expect_op(")")
            inner.span = self._span_from(tok)
            return inner
        if tok.is_op("["):
            self._next()
            if self._eat_op("]"):
                return self._finish(PList([]), tok)
            items = [self.parse_pattern()]
            while self._eat_op(";"):
                if self.tok.is_op("]"):
                    break
                items.append(self.parse_pattern())
            self._expect_op("]")
            return self._finish(PList(items), tok)
        raise ParseError("expected a pattern", tok)

    # ------------------------------------------------------------------
    # Type expressions
    # ------------------------------------------------------------------

    def parse_type_expr(self) -> TypeExpr:
        start = self.tok
        left = self._parse_type_tuple()
        if self._eat_op("->"):
            right = self.parse_type_expr()
            return self._finish(TEArrow(left, right), start)
        return left

    def _parse_type_tuple(self) -> TypeExpr:
        start = self.tok
        first = self._parse_type_app()
        if not self.tok.is_op("*"):
            return first
        items = [first]
        while self._eat_op("*"):
            items.append(self._parse_type_app())
        return self._finish(TETuple(items), start)

    def _parse_type_app(self) -> TypeExpr:
        start = self.tok
        base = self._parse_type_atom()
        # Postfix constructors: ``int list``, ``move list list`` ...
        while self.tok.kind is TokenKind.LIDENT:
            name = self._next().text
            base = self._finish(TEName(name, [base]), start)
        return base

    def _parse_type_atom(self) -> TypeExpr:
        tok = self.tok
        if tok.kind is TokenKind.CHAR:  # a 'a-style type variable
            self._next()
            return self._finish(TEVar(tok.text.lstrip("'")), tok)
        if tok.kind is TokenKind.LIDENT:
            self._next()
            return self._finish(TEName(tok.text, []), tok)
        if tok.is_op("("):
            self._next()
            first = self.parse_type_expr()
            if self.tok.is_op(","):
                args = [first]
                while self._eat_op(","):
                    args.append(self.parse_type_expr())
                self._expect_op(")")
                if self.tok.kind is not TokenKind.LIDENT:
                    raise ParseError("expected type constructor after argument list", self.tok)
                name = self._next().text
                return self._finish(TEName(name, args), tok)
            self._expect_op(")")
            # Allow ``(move list) list`` style postfix application.
            while self.tok.kind is TokenKind.LIDENT:
                name = self._next().text
                first = self._finish(TEName(name, [first]), tok)
            return first
        raise ParseError("expected a type", tok)


def _is_pattern_atom_start(tok: Token) -> bool:
    if tok.kind in (TokenKind.INT, TokenKind.FLOAT, TokenKind.STRING, TokenKind.LIDENT, TokenKind.UIDENT):
        return True
    if tok.kind is TokenKind.KEYWORD and tok.text in ("true", "false"):
        return True
    return tok.kind is TokenKind.OP and tok.text in ("(", "[", "_")


def parse_program(source: str) -> Program:
    """Parse a whole MiniML source file into a :class:`Program`.

    Programs nested deeper than the recursive-descent parser's stack
    headroom are rejected with a :class:`ParseError` rather than leaking
    the interpreter's :class:`RecursionError`.
    """
    parser = Parser(source)
    try:
        return parser.parse_program()
    except RecursionError:
        raise ParseError(
            "program is nested too deeply to parse", parser.tok
        ) from None


def parse_expr(source: str) -> Expr:
    """Parse a single MiniML expression (convenience for tests/examples)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    if parser.tok.kind is not TokenKind.EOF:
        raise ParseError("trailing input after expression", parser.tok)
    return expr
