"""Precedence-aware pretty-printer for MiniML.

Error messages in this system quote *programs*, not line numbers (see the
paper's Figures 2, 8, 9), so round-tripping ASTs back to readable concrete
syntax is core functionality rather than a debugging nicety.

Two special cases support the search engine:

* nodes flagged ``synthetic`` print as the paper's wildcard ``[[...]]``
  (regardless of their real shape, which is ``raise Foo``), and
* applications of the internal ``__seminal_adapt`` function print their
  argument only (the adaptation is described in the message text instead).
"""

from __future__ import annotations

from typing import List

from .ast_nodes import (
    Binding,
    EAnnot,
    ETry,
    DException,
    DExpr,
    DLet,
    DType,
    EApp,
    EBinop,
    ECons,
    EConst,
    EConstructor,
    EFieldGet,
    EFieldSet,
    EFun,
    EFunction,
    EIf,
    EList,
    ELet,
    EMatch,
    ERaise,
    ERecord,
    ESeq,
    ETuple,
    EUnop,
    EVar,
    Expr,
    MatchCase,
    Pattern,
    PConst,
    PCons,
    PConstructor,
    PList,
    PTuple,
    PVar,
    PWild,
    Program,
    TEArrow,
    TEName,
    TETuple,
    TEVar,
    TypeExpr,
)

WILDCARD_TEXT = "[[...]]"
ADAPT_NAME = "__seminal_adapt"

# Precedence levels, loosest (0) to tightest; parenthesize a child whenever
# its level is strictly lower than the context demands.
_LEVEL_SEQ = 0
_LEVEL_CONTROL = 1
_LEVEL_TUPLE = 2
_LEVEL_ASSIGN = 3
_LEVEL_OR = 4
_LEVEL_AND = 5
_LEVEL_CMP = 6
_LEVEL_CONCAT = 7
_LEVEL_CONS = 8
_LEVEL_ADD = 9
_LEVEL_MUL = 10
_LEVEL_UNARY = 11
_LEVEL_APP = 12
_LEVEL_ATOM = 13

_BINOP_LEVEL = {
    ":=": _LEVEL_ASSIGN,
    "||": _LEVEL_OR,
    "&&": _LEVEL_AND,
    "=": _LEVEL_CMP,
    "==": _LEVEL_CMP,
    "!=": _LEVEL_CMP,
    "<>": _LEVEL_CMP,
    "<": _LEVEL_CMP,
    ">": _LEVEL_CMP,
    "<=": _LEVEL_CMP,
    ">=": _LEVEL_CMP,
    "@": _LEVEL_CONCAT,
    "^": _LEVEL_CONCAT,
    "+": _LEVEL_ADD,
    "-": _LEVEL_ADD,
    "+.": _LEVEL_ADD,
    "-.": _LEVEL_ADD,
    "*": _LEVEL_MUL,
    "/": _LEVEL_MUL,
    "*.": _LEVEL_MUL,
    "/.": _LEVEL_MUL,
    "mod": _LEVEL_MUL,
}

# Right-associative operator families print their right child at own level.
_RIGHT_ASSOC = {":=", "||", "&&", "@", "^"}


def _escape_string(value: str) -> str:
    out = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t")
    return f'"{out}"'


def pretty_expr(expr: Expr, level: int = _LEVEL_SEQ) -> str:
    """Render an expression, parenthesizing as needed for context ``level``."""
    text, own = _expr(expr)
    if own < level:
        return f"({text})"
    return text


def _paren_if(text: str, own: int, need: int) -> str:
    return f"({text})" if own < need else text


def _expr(e: Expr) -> tuple[str, int]:
    """Return (text, precedence level of the produced syntax)."""
    if e.synthetic:
        return WILDCARD_TEXT, _LEVEL_ATOM
    if isinstance(e, EConst):
        if e.kind == "unit":
            return "()", _LEVEL_ATOM
        if e.kind == "string":
            return _escape_string(str(e.value)), _LEVEL_ATOM
        if e.kind == "bool":
            return ("true" if e.value else "false"), _LEVEL_ATOM
        if e.kind == "float":
            text = repr(float(e.value))
            if "." not in text and "e" not in text:
                text += "."
            return text, _LEVEL_ATOM if float(e.value) >= 0 else _LEVEL_UNARY
        return str(e.value), _LEVEL_ATOM if int(e.value) >= 0 else _LEVEL_UNARY
    if isinstance(e, EVar):
        return e.name, _LEVEL_ATOM
    if isinstance(e, EConstructor):
        if e.arg is None:
            return e.name, _LEVEL_ATOM
        return f"{e.name} {pretty_expr(e.arg, _LEVEL_ATOM)}", _LEVEL_APP
    if isinstance(e, ETuple):
        inner = ", ".join(pretty_expr(item, _LEVEL_ASSIGN) for item in e.items)
        return inner, _LEVEL_TUPLE
    if isinstance(e, EList):
        inner = "; ".join(pretty_expr(item, _LEVEL_TUPLE) for item in e.items)
        return f"[{inner}]", _LEVEL_ATOM
    if isinstance(e, ECons):
        head = pretty_expr(e.head, _LEVEL_ADD)
        tail = pretty_expr(e.tail, _LEVEL_CONS)
        return f"{head} :: {tail}", _LEVEL_CONS
    if isinstance(e, EApp):
        if isinstance(e.func, EVar) and e.func.name == ADAPT_NAME and len(e.args) == 1:
            return _expr(e.args[0])
        func = pretty_expr(e.func, _LEVEL_APP)
        args = " ".join(pretty_expr(a, _LEVEL_ATOM) for a in e.args)
        return f"{func} {args}", _LEVEL_APP
    if isinstance(e, EFun):
        params = " ".join(pretty_pattern(p, atom=True) for p in e.params)
        return f"fun {params} -> {pretty_expr(e.body, _LEVEL_CONTROL)}", _LEVEL_CONTROL
    if isinstance(e, EFunction):
        return f"function {_cases(e.cases)}", _LEVEL_CONTROL
    if isinstance(e, ELet):
        kw = "let rec" if e.rec else "let"
        binds = " and ".join(_binding(b) for b in e.bindings)
        return f"{kw} {binds} in {pretty_expr(e.body, _LEVEL_CONTROL)}", _LEVEL_CONTROL
    if isinstance(e, EIf):
        cond = pretty_expr(e.cond, _LEVEL_TUPLE)
        then_branch = pretty_expr(e.then_branch, _LEVEL_CONTROL)
        if e.else_branch is None:
            return f"if {cond} then {then_branch}", _LEVEL_CONTROL
        else_branch = pretty_expr(e.else_branch, _LEVEL_CONTROL)
        return f"if {cond} then {then_branch} else {else_branch}", _LEVEL_CONTROL
    if isinstance(e, EMatch):
        scrutinee = pretty_expr(e.scrutinee, _LEVEL_TUPLE)
        return f"match {scrutinee} with {_cases(e.cases)}", _LEVEL_CONTROL
    if isinstance(e, EBinop):
        own = _BINOP_LEVEL.get(e.op, _LEVEL_CMP)
        if e.op in _RIGHT_ASSOC:
            left = pretty_expr(e.left, own + 1)
            right = pretty_expr(e.right, own)
        else:
            left = pretty_expr(e.left, own)
            right = pretty_expr(e.right, own + 1)
        return f"{left} {e.op} {right}", own
    if isinstance(e, EUnop):
        if e.op == "!":
            return f"!{pretty_expr(e.operand, _LEVEL_ATOM)}", _LEVEL_UNARY
        return f"-{pretty_expr(e.operand, _LEVEL_UNARY)}", _LEVEL_UNARY
    if isinstance(e, ESeq):
        first = pretty_expr(e.first, _LEVEL_CONTROL)
        second = pretty_expr(e.second, _LEVEL_SEQ)
        return f"{first}; {second}", _LEVEL_SEQ
    if isinstance(e, ERaise):
        return f"raise {pretty_expr(e.exn, _LEVEL_ATOM)}", _LEVEL_CONTROL
    if isinstance(e, ETry):
        body = pretty_expr(e.body, _LEVEL_TUPLE)
        return f"try {body} with {_cases(e.cases)}", _LEVEL_CONTROL
    if isinstance(e, EAnnot):
        return f"({pretty_expr(e.expr, _LEVEL_TUPLE)} : {pretty_type_expr(e.type_expr)})", _LEVEL_ATOM
    if isinstance(e, ERecord):
        inner = "; ".join(f"{f.name} = {pretty_expr(f.expr, _LEVEL_TUPLE)}" for f in e.fields)
        return f"{{{inner}}}", _LEVEL_ATOM
    if isinstance(e, EFieldGet):
        return f"{pretty_expr(e.record, _LEVEL_ATOM)}.{e.field_name}", _LEVEL_ATOM
    if isinstance(e, EFieldSet):
        record = pretty_expr(e.record, _LEVEL_ATOM)
        value = pretty_expr(e.value, _LEVEL_ASSIGN)
        return f"{record}.{e.field_name} <- {value}", _LEVEL_ASSIGN
    raise TypeError(f"unknown expression node: {type(e).__name__}")


def _cases(cases: List[MatchCase]) -> str:
    return " | ".join(
        f"{pretty_pattern(c.pattern)} -> {pretty_expr(c.body, _LEVEL_CONTROL)}" for c in cases
    )


def _binding(b: Binding) -> str:
    if b.fun_name is not None and isinstance(b.expr, EFun) and not b.expr.synthetic:
        fun = b.expr
        if len(fun.params) >= b.n_sugar_params > 0:
            params = " ".join(pretty_pattern(p, atom=True) for p in fun.params)
            return f"{b.fun_name} {params} = {pretty_expr(fun.body, _LEVEL_CONTROL)}"
    return f"{pretty_pattern(b.pattern, atom=True)} = {pretty_expr(b.expr, _LEVEL_CONTROL)}"


def pretty_pattern(p: Pattern, atom: bool = False) -> str:
    """Render a pattern; ``atom=True`` parenthesizes anything compound."""
    if p.synthetic:
        return "_"
    if isinstance(p, PWild):
        return "_"
    if isinstance(p, PVar):
        return p.name
    if isinstance(p, PConst):
        if p.kind == "unit":
            return "()"
        if p.kind == "string":
            return _escape_string(str(p.value))
        if p.kind == "bool":
            return "true" if p.value else "false"
        return str(p.value)
    if isinstance(p, PTuple):
        inner = ", ".join(pretty_pattern(i, atom=True) for i in p.items)
        return f"({inner})" if atom else inner
    if isinstance(p, PCons):
        text = f"{pretty_pattern(p.head, atom=True)} :: {pretty_pattern(p.tail)}"
        return f"({text})" if atom else text
    if isinstance(p, PList):
        inner = "; ".join(pretty_pattern(i) for i in p.items)
        return f"[{inner}]"
    if isinstance(p, PConstructor):
        if p.arg is None:
            return p.name
        text = f"{p.name} {pretty_pattern(p.arg, atom=True)}"
        return f"({text})" if atom else text
    raise TypeError(f"unknown pattern node: {type(p).__name__}")


def pretty_type_expr(t: TypeExpr, atom: bool = False) -> str:
    """Render a surface type expression."""
    if isinstance(t, TEVar):
        return f"'{t.name}"
    if isinstance(t, TEName):
        if not t.args:
            return t.name
        if len(t.args) == 1:
            return f"{pretty_type_expr(t.args[0], atom=True)} {t.name}"
        inner = ", ".join(pretty_type_expr(a) for a in t.args)
        return f"({inner}) {t.name}"
    if isinstance(t, TEArrow):
        text = f"{pretty_type_expr(t.param, atom=True)} -> {pretty_type_expr(t.result)}"
        return f"({text})" if atom else text
    if isinstance(t, TETuple):
        text = " * ".join(pretty_type_expr(i, atom=True) for i in t.items)
        return f"({text})" if atom else text
    raise TypeError(f"unknown type expression: {type(t).__name__}")


def pretty_decl(d) -> str:
    """Render a top-level declaration."""
    if isinstance(d, DLet):
        kw = "let rec" if d.rec else "let"
        return f"{kw} " + " and ".join(_binding(b) for b in d.bindings)
    if isinstance(d, DType):
        if d.params:
            if len(d.params) == 1:
                header = f"type '{d.params[0]} {d.name}"
            else:
                params = ", ".join(f"'{p}" for p in d.params)
                header = f"type ({params}) {d.name}"
        else:
            header = f"type {d.name}"
        if d.record_fields:
            fields = "; ".join(
                ("mutable " if f.mutable else "") + f"{f.name} : {pretty_type_expr(f.type_expr)}"
                for f in d.record_fields
            )
            return f"{header} = {{{fields}}}"
        variants = " | ".join(
            v.name + (f" of {pretty_type_expr(v.arg)}" if v.arg is not None else "")
            for v in d.variants
        )
        return f"{header} = {variants}"
    if isinstance(d, DException):
        suffix = f" of {pretty_type_expr(d.arg)}" if d.arg is not None else ""
        return f"exception {d.name}{suffix}"
    if isinstance(d, DExpr):
        return pretty_expr(d.expr)
    raise TypeError(f"unknown declaration node: {type(d).__name__}")


def pretty_program(program: Program) -> str:
    """Render a full program, one declaration per line."""
    return "\n".join(pretty_decl(d) for d in program.decls) + ("\n" if program.decls else "")


def pretty(node) -> str:
    """Render any MiniML AST node (dispatch helper for messages/tests)."""
    if isinstance(node, Program):
        return pretty_program(node)
    if isinstance(node, Expr):
        return pretty_expr(node)
    if isinstance(node, Pattern):
        return pretty_pattern(node)
    if isinstance(node, TypeExpr):
        return pretty_type_expr(node)
    if isinstance(node, Binding):
        return _binding(node)
    if isinstance(node, MatchCase):
        return f"{pretty_pattern(node.pattern)} -> {pretty_expr(node.body, _LEVEL_CONTROL)}"
    return pretty_decl(node)
