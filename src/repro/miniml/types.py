"""Semantic types for the MiniML Hindley-Milner inference engine.

Types use the classic mutable-link representation: a :class:`TVar` either
links to another type (after unification) or is free, carrying a *level* for
efficient let-generalization (Rémy-style).  :func:`resolve` follows links one
step; :func:`prune` path-compresses.

Printing names free variables ``'a, 'b, ...`` in first-appearance order, the
way OCaml error messages do.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

_var_counter = itertools.count()


class Type:
    """Base class of semantic types."""

    # Empty slots so the concrete nodes' own ``__slots__`` actually take
    # effect: a slotted subclass of a dict-carrying base still allocates
    # the per-instance ``__dict__``, and fresh TVar/TCon/TArrow/TTuple
    # objects are the hottest allocations in the whole search.
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type_to_string(self)}>"


class TVar(Type):
    """A unification variable with a binding level for generalization."""

    __slots__ = ("id", "level", "link")

    def __init__(self, level: int):
        self.id = next(_var_counter)
        self.level = level
        self.link: Optional[Type] = None


class TCon(Type):
    """A (possibly parameterized) type constructor: ``int``, ``'a list``,
    ``move``, ``exn``, ``ref`` ... Arrow and tuple get their own classes."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Optional[List[Type]] = None):
        self.name = name
        self.args = args or []


class TArrow(Type):
    """Function type ``param -> result``."""

    __slots__ = ("param", "result")

    def __init__(self, param: Type, result: Type):
        self.param = param
        self.result = result


class TTuple(Type):
    """Tuple type ``t1 * t2 * ...`` (arity >= 2)."""

    __slots__ = ("items",)

    def __init__(self, items: List[Type]):
        self.items = items


# Shared nullary constructors.
INT = TCon("int")
FLOAT = TCon("float")
BOOL = TCon("bool")
STRING = TCon("string")
UNIT = TCon("unit")
EXN = TCon("exn")


def t_list(elem: Type) -> TCon:
    return TCon("list", [elem])


def t_ref(elem: Type) -> TCon:
    return TCon("ref", [elem])


def t_option(elem: Type) -> TCon:
    return TCon("option", [elem])


def arrows(*types: Type) -> Type:
    """Build a right-nested curried arrow: ``arrows(a, b, c) = a -> b -> c``."""
    result = types[-1]
    for param in reversed(types[:-1]):
        result = TArrow(param, result)
    return result


def resolve(t: Type) -> Type:
    """Follow variable links until reaching a non-linked representative."""
    while isinstance(t, TVar) and t.link is not None:
        t = t.link
    return t


def prune(t: Type) -> Type:
    """Like :func:`resolve` but with path compression."""
    if isinstance(t, TVar) and t.link is not None:
        compressed = prune(t.link)
        if compressed is not t.link:
            if _trail is not None:
                _trail.record_var(t)
            t.link = compressed
        return compressed
    return t


# ---------------------------------------------------------------------------
# The undo trail (SMT-style push/pop for destructive type state)
# ---------------------------------------------------------------------------


class Trail:
    """An undo log for every destructive write the checker performs.

    The mutable union-find representation is what makes Hindley-Milner
    inference fast, and what makes re-checking thousands of candidate
    programs expensive: each check has historically needed its own copy of
    the armed environment so its unifications cannot leak into the next.
    The trail removes the copy: while a trail is installed
    (:func:`set_trail`), every ``TVar`` link/level write and every trailed
    table write records the previous state, and :meth:`undo` restores it
    exactly — the same push/pop discipline incremental SMT solvers use to
    make thousands of near-identical queries affordable.

    Entries are ``(var, old_link, old_level)`` triples for variable writes
    and ``(mapping, key, had_key, old_value)`` 4-tuples for dict writes;
    :meth:`undo` replays them newest-first back to a :meth:`mark`.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list = []

    def mark(self) -> int:
        """The current trail position (pass to :meth:`undo`)."""
        return len(self.entries)

    def record_var(self, var: "TVar") -> None:
        """Record a variable's link+level before a destructive write."""
        self.entries.append((var, var.link, var.level))

    def record_map(self, mapping: dict, key: object) -> None:
        """Record a dict slot before it is written (or first created)."""
        if key in mapping:
            self.entries.append((mapping, key, True, mapping[key]))
        else:
            self.entries.append((mapping, key, False, None))

    def undo(self, mark: int) -> int:
        """Restore every write since ``mark``; returns entries undone."""
        entries = self.entries
        undone = 0
        while len(entries) > mark:
            entry = entries.pop()
            if len(entry) == 3:
                var, old_link, old_level = entry
                var.link = old_link
                var.level = old_level
            else:
                mapping, key, had_key, old_value = entry
                if had_key:
                    mapping[key] = old_value
                else:
                    mapping.pop(key, None)
            undone += 1
        return undone

    def clear(self) -> None:
        self.entries.clear()


#: The currently installed trail (None = destructive writes are permanent,
#: the classic behaviour).  Installed only around speculative checks.
_trail: Optional[Trail] = None


def set_trail(trail: Optional[Trail]) -> Optional[Trail]:
    """Install ``trail`` as the active undo log; returns the previous one."""
    global _trail
    previous = _trail
    _trail = trail
    return previous


def active_trail() -> Optional[Trail]:
    return _trail


def trail_map_set(mapping: dict, key: object, value: object) -> None:
    """A dict write that participates in the active trail (if any)."""
    if _trail is not None:
        _trail.record_map(mapping, key)
    mapping[key] = value


class Scheme:
    """A type scheme ``forall vars. body`` (vars are unlinked TVars)."""

    __slots__ = ("vars", "body")

    def __init__(self, vars: List[TVar], body: Type):
        self.vars = vars
        self.body = body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<forall {[v.id for v in self.vars]}. {type_to_string(self.body)}>"


def monotype(t: Type) -> Scheme:
    """A scheme with no quantified variables."""
    return Scheme([], t)


def free_type_vars(t: Type, acc: Optional[List[TVar]] = None) -> List[TVar]:
    """Collect free (unlinked) variables in first-appearance order."""
    if acc is None:
        acc = []
    t = resolve(t)
    if isinstance(t, TVar):
        if t not in acc:
            acc.append(t)
    elif isinstance(t, TCon):
        for arg in t.args:
            free_type_vars(arg, acc)
    elif isinstance(t, TArrow):
        free_type_vars(t.param, acc)
        free_type_vars(t.result, acc)
    elif isinstance(t, TTuple):
        for item in t.items:
            free_type_vars(item, acc)
    return acc


def instantiate(scheme: Scheme, level: int) -> Type:
    """Replace quantified variables with fresh variables at ``level``."""
    if not scheme.vars:
        return scheme.body
    mapping: Dict[TVar, TVar] = {v: TVar(level) for v in scheme.vars}
    return _substitute(scheme.body, mapping)


def _substitute(t: Type, mapping: Dict[TVar, TVar]) -> Type:
    t = resolve(t)
    if isinstance(t, TVar):
        return mapping.get(t, t)
    if isinstance(t, TCon):
        if not t.args:
            return t
        return TCon(t.name, [_substitute(a, mapping) for a in t.args])
    if isinstance(t, TArrow):
        return TArrow(_substitute(t.param, mapping), _substitute(t.result, mapping))
    if isinstance(t, TTuple):
        return TTuple([_substitute(i, mapping) for i in t.items])
    return t


def generalize(t: Type, level: int) -> Scheme:
    """Quantify every free variable bound deeper than ``level``."""
    quantified = [v for v in free_type_vars(t) if v.level > level]
    return Scheme(quantified, t)


# ---------------------------------------------------------------------------
# Printing
# ---------------------------------------------------------------------------

_GREEK = "abcdefghijklmnopqrstuvwxyz"


class TypePrinter:
    """Stateful printer so several types in one message share variable names."""

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}

    def _var_name(self, v: TVar) -> str:
        if v.id not in self._names:
            index = len(self._names)
            suffix = index // 26
            name = _GREEK[index % 26] + (str(suffix) if suffix else "")
            self._names[v.id] = "'" + name
        return self._names[v.id]

    def to_string(self, t: Type, atom: bool = False) -> str:
        t = resolve(t)
        if isinstance(t, TVar):
            return self._var_name(t)
        if isinstance(t, TCon):
            if not t.args:
                return t.name
            if len(t.args) == 1:
                return f"{self.to_string(t.args[0], atom=True)} {t.name}"
            inner = ", ".join(self.to_string(a) for a in t.args)
            return f"({inner}) {t.name}"
        if isinstance(t, TArrow):
            text = f"{self.to_string(t.param, atom=True)} -> {self.to_string(t.result)}"
            return f"({text})" if atom else text
        if isinstance(t, TTuple):
            text = " * ".join(self.to_string(i, atom=True) for i in t.items)
            return f"({text})" if atom else text
        raise TypeError(f"unknown type: {t!r}")


def type_to_string(t: Type) -> str:
    """Render one type with fresh variable naming."""
    return TypePrinter().to_string(t)


def types_to_strings(types: Iterable[Type]) -> List[str]:
    """Render several types sharing one variable-naming scope."""
    printer = TypePrinter()
    return [printer.to_string(t) for t in types]
