"""The flight recorder's event log: one JSON line per lifecycle event.

Where the tracer answers *when* (span timelines) and the metrics registry
answers *how much* (counters/histograms), the event log answers *what
happened*: a search started, a phase was shed, the oracle crashed (with a
traceback sample), a deadline fired, a worker died, the final suggestions
came out ranked 1..n.  The record is append-only JSONL with a stable
schema version, so a run can be reconstructed — and regression-compared
via ``python -m repro report`` — long after the process is gone.

Schema (version :data:`SCHEMA_VERSION`): every line is a JSON object with

* ``v`` — the schema version (readers reject unknown versions);
* ``seq`` — a per-log monotonic sequence number starting at 0;
* ``t`` — seconds since the log was opened (monotonic clock, so event
  ordering survives wall-clock adjustments);
* ``type`` — the event name (``search_started``, ``phase_shed``,
  ``oracle_crash``, ``degraded``, ``worker_crash``, ``degradation``,
  ``suggestions``, ``search_finished``, ``metrics``, and the supervision
  family: ``worker_hang``, ``worker_restart``, ``breaker_open``,
  ``breaker_half_open``, ``breaker_closed``, ``quarantine``,
  ``watchdog_kill``, ``store_io_error``, ...);
* any event-specific fields.

The first line is always a ``log_started`` header carrying the producing
pid and a wall-clock timestamp for human correlation.

As with the tracer and registry, a shared :data:`NULL_EVENTS` null object
is the default everywhere: instrumented code never branches on "is the
recorder on?".
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

#: Bump on any backwards-incompatible change to the line format; readers
#: reject lines whose ``v`` they do not understand (no silent misparses).
SCHEMA_VERSION = 1


class EventSchemaError(ValueError):
    """An event line (or file) does not match a schema this reader knows."""


class EventLog:
    """Append-only JSONL lifecycle recorder.

    Parameters
    ----------
    sink:
        A path (opened for writing, closed by :meth:`close`) or any
        file-like object with ``write`` (left open — the caller owns it).
    clock:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(
        self,
        sink: Union[str, os.PathLike, io.TextIOBase, Any],
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if hasattr(sink, "write"):
            self._handle = sink
            self._owns_handle = False
        else:
            self._handle = open(sink, "w")
            self._owns_handle = True
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self._closed = False
        self.emit("log_started", pid=os.getpid(), wall_time=time.time())

    #: Instrumented code may consult this before building expensive fields.
    enabled = True

    def emit(self, type: str, **fields: Any) -> None:
        """Write one event line (no-op after :meth:`close`)."""
        if self._closed:
            return
        record: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "t": round(self._clock() - self._epoch, 6),
            "type": type,
        }
        record.update(fields)
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._seq += 1

    def close(self) -> None:
        if self._closed:
            return
        self.emit("log_closed", events=self._seq)
        self._closed = True
        try:
            self._handle.flush()
        except Exception:  # pragma: no cover - sink teardown best-effort
            pass
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class NullEventLog:
    """The do-nothing recorder instrumented code holds by default."""

    __slots__ = ()
    enabled = False

    def emit(self, type: str, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullEventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared null instance — identity-comparable (``events is NULL_EVENTS``).
NULL_EVENTS = NullEventLog()


def read_events(source: Union[str, os.PathLike, Iterable[str]]) -> List[Dict[str, Any]]:
    """Parse an event-log file (or iterable of lines) back into dicts.

    Validates the schema version of every line and raises
    :class:`EventSchemaError` on an unknown version or a malformed line —
    a truncated or future-format log must fail loudly, not aggregate
    half a run silently.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            raise EventSchemaError(f"line {lineno}: not valid JSON ({err})")
        if not isinstance(record, dict) or "type" not in record:
            raise EventSchemaError(f"line {lineno}: not an event object")
        version = record.get("v")
        if version != SCHEMA_VERSION:
            raise EventSchemaError(
                f"line {lineno}: unknown event schema version {version!r} "
                f"(this reader understands {SCHEMA_VERSION})"
            )
        events.append(record)
    return events


def events_of(events: Iterable[Dict[str, Any]], type: str) -> List[Dict[str, Any]]:
    """Filter a parsed event list by ``type``."""
    return [e for e in events if e.get("type") == type]
