"""Structured tracing: where the seconds (and oracle calls) go.

:class:`Tracer` records *spans* — named, nested, timed regions such as one
recursive descent into a subtree or one triage round — and *instant events*.
The in-memory record serializes to the Chrome Trace Event Format (the JSON
understood by ``chrome://tracing`` and https://ui.perfetto.dev), so a search
run can be inspected as a flame graph: localization, descent per AST path,
enumerator rule firing, adaptation, and triage rounds, each annotated with
the node size and the oracle calls it consumed.

Timing uses :func:`time.perf_counter_ns` (monotonic, nanosecond
resolution).  When the tracer is constructed with a
:class:`~repro.obs.metrics.MetricsRegistry`, every closed span also
observes ``span.<name>.seconds`` there, so per-phase duration histograms
exist even when event recording is off (``keep_events=False`` — the mode
the timing study uses).

The default tracer everywhere is :data:`NULL_TRACER`, whose ``span()``
returns a shared, stateless context manager: instrumenting a hot path costs
one method call and no allocation when tracing is off.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry

#: Trace-event category; Perfetto groups by this.
_CATEGORY = "seminal"


class Span:
    """One open region; use via ``with tracer.span(...) as sp:``.

    ``sp.set(key, value)`` attaches arguments discovered mid-span (e.g. the
    oracle calls a descent consumed).  The span closes — and its event is
    emitted — even when the body raises (notably ``BudgetExceeded``, which
    the searcher uses for non-local exit).
    """

    __slots__ = ("_tracer", "name", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0

    def set(self, key: str, value: Any) -> None:
        self.args[key] = value

    @property
    def start_ts_us(self) -> float:
        """Start time in the owning tracer's timebase (µs since its epoch).

        The rebase anchor for :meth:`Tracer.merge_events`: a worker's
        events, whose timestamps are relative to the *worker's* epoch, are
        shifted by this amount to nest under the parent span that awaited
        them.
        """
        return (self._start_ns - self._tracer._epoch_ns) / 1000.0

    def __enter__(self) -> "Span":
        self._tracer._depth += 1
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.args["aborted"] = exc_type.__name__
        self._tracer._close(self, end_ns)
        return False


class Tracer:
    """Collects spans/events; serializes to Chrome/Perfetto trace JSON.

    Parameters
    ----------
    metrics:
        Optional registry; closed spans observe ``span.<name>.seconds``.
    keep_events:
        When False, no event objects are retained (duration histograms via
        ``metrics`` still work) — the timing study's low-overhead mode.
        Hot paths consult :attr:`enabled` before computing expensive span
        arguments (pretty-printed paths, subtree sizes), so metrics-only
        tracers skip that work too.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        keep_events: bool = True,
    ):
        self._metrics = metrics
        self._keep_events = keep_events
        #: Span *arguments* are only worth building when events are kept.
        self.enabled = keep_events
        self._events: List[Dict[str, Any]] = []
        self._epoch_ns = time.perf_counter_ns()
        self._depth = 0

    # -- recording -------------------------------------------------------

    def span(self, name: str, **args: Any) -> Span:
        """Open a nested timed region (context manager)."""
        return Span(self, name, args)

    def event(self, name: str, **args: Any) -> None:
        """Record an instant (zero-duration) event."""
        if self._keep_events:
            self._events.append(
                {
                    "name": name,
                    "cat": _CATEGORY,
                    "ph": "i",
                    "s": "t",
                    "ts": (time.perf_counter_ns() - self._epoch_ns) / 1000.0,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )

    def _close(self, span: Span, end_ns: int) -> None:
        self._depth -= 1
        duration_ns = end_ns - span._start_ns
        if self._metrics is not None:
            self._metrics.observe(f"span.{span.name}.seconds", duration_ns / 1e9)
        if self._keep_events:
            self._events.append(
                {
                    "name": span.name,
                    "cat": _CATEGORY,
                    "ph": "X",
                    "ts": (span._start_ns - self._epoch_ns) / 1000.0,
                    "dur": duration_ns / 1000.0,
                    "pid": 1,
                    "tid": 1,
                    "args": span.args,
                }
            )

    # -- reading / serialization ----------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Recorded events (complete spans ``ph=X`` and instants ``ph=i``)."""
        return self._events

    @property
    def open_spans(self) -> int:
        """Currently open (entered, not yet exited) spans — 0 when idle."""
        return self._depth

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Closed span events, optionally filtered by name."""
        return [
            e for e in self._events
            if e["ph"] == "X" and (name is None or e["name"] == name)
        ]

    def merge_events(
        self,
        events: List[Dict[str, Any]],
        *,
        base_ts_us: float = 0.0,
        tid: Optional[int] = None,
        extra_args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Absorb events recorded by another tracer (typically a worker's).

        Each event is copied with its timestamp rebased into this tracer's
        timebase (``ts += base_ts_us`` — pass the awaiting span's
        :attr:`Span.start_ts_us` so the foreign events nest under it),
        optionally re-tracked onto ``tid`` (the worker pid makes each
        worker its own Perfetto lane), and annotated with ``extra_args``
        (batch id, worker pid) so re-parented spans stay attributable
        after the merge.  No-op when event recording is off.
        """
        if not self._keep_events or not events:
            return
        for event in events:
            merged = dict(event)
            merged["ts"] = merged.get("ts", 0.0) + base_ts_us
            if tid is not None:
                merged["tid"] = tid
            if extra_args:
                args = dict(merged.get("args") or {})
                args.update(extra_args)
                merged["args"] = args
            self._events.append(merged)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome Trace Event Format object Perfetto loads directly."""
        return {
            "traceEvents": self._events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs (SEMINAL reproduction)"},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_chrome_trace(), default=str)

    def write(self, path) -> None:
        """Write the trace JSON to ``path`` (open in ui.perfetto.dev)."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def reset(self) -> None:
        self._events = []
        self._epoch_ns = time.perf_counter_ns()
        self._depth = 0


class _NullSpan:
    """Shared, stateless stand-in for :class:`Span` — nothing to enter,
    nothing to time, nothing to free."""

    __slots__ = ()
    name = ""
    args: Dict[str, Any] = {}
    start_ts_us = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    ``span()`` returns a process-wide singleton context manager, so the
    instrumented hot path allocates nothing when tracing is off.  Hot paths
    that would compute span arguments (pretty-printed AST paths, subtree
    sizes) check :attr:`enabled` first and skip the work entirely.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **args: Any) -> None:
        pass

    @property
    def events(self) -> List[Dict[str, Any]]:
        return []

    @property
    def open_spans(self) -> int:
        return 0

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return []

    def merge_events(self, events, *, base_ts_us=0.0, tid=None, extra_args=None) -> None:
        pass

    def reset(self) -> None:
        pass


#: Shared null instance — identity-comparable (``tracer is NULL_TRACER``).
NULL_TRACER = NullTracer()


def format_path(path) -> str:
    """Human/Perfetto-friendly rendering of a :data:`repro.tree.Path`.

    ``(("decls", 0), ("bindings", 0), "expr")`` -> ``decls[0].bindings[0].expr``.
    """
    parts: List[str] = []
    for step in path:
        if isinstance(step, tuple):
            parts.append(f"{step[0]}[{step[1]}]")
        else:
            parts.append(str(step))
    return ".".join(parts) if parts else "<root>"
