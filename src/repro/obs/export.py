"""Exporters: Prometheus text exposition and the RunReport JSON document.

Two ways a run's telemetry leaves the process:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE``/``# HELP`` headers, counters as gauges-of-monotonic-counts,
  histograms as cumulative ``_bucket{le=...}``/``_sum``/``_count`` series
  over the fixed :data:`~repro.obs.metrics.DEFAULT_BUCKETS` boundaries).
  Deterministic output (names sorted, stable float formatting) so golden
  -file tests and scrape diffs are meaningful.
* :class:`RunReport` — one JSON document unifying everything the flight
  recorder knows about a run: the metrics snapshot (counters + histogram
  summaries), the degradation report, wall-clock timing, and (for batch
  runs) the per-program entries.  Versioned with
  :data:`RUN_REPORT_SCHEMA`; :meth:`RunReport.load` rejects unknown
  versions — ``python -m repro report`` consumes these files (and event
  logs) and diffs them against checked-in baselines.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from .metrics import Histogram, MetricsRegistry

#: Bump on any backwards-incompatible change to the document layout.
RUN_REPORT_SCHEMA = 1

#: Quantiles summarised per histogram in a RunReport (and printed by
#: ``repro report``'s time tables).
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


class ReportSchemaError(ValueError):
    """A RunReport document does not match a schema this reader knows."""


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_name(name: str, namespace: str) -> str:
    """``oracle.prefix.reused`` -> ``repro_oracle_prefix_reused``."""
    sanitized = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    return f"{namespace}_{sanitized}" if namespace else sanitized


def _prom_float(value: float) -> str:
    """Stable float rendering (no exponent churn, no trailing zeros)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters become ``counter`` series (already monotonic within a run);
    histograms become classic cumulative-bucket histogram series over
    their fixed boundaries, ending with the implicit ``+Inf`` bucket, a
    ``_sum`` and a ``_count``.  Output order is sorted by metric name, so
    the text is byte-stable for a given registry state.
    """
    lines: List[str] = []
    for name, value in sorted(registry.counters().items()):
        prom = _prom_name(name, namespace)
        lines.append(f"# HELP {prom} repro counter {name}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name in registry.histogram_names():
        hist = registry.histogram(name)
        prom = _prom_name(name, namespace)
        lines.append(f"# HELP {prom} repro histogram {name}")
        lines.append(f"# TYPE {prom} histogram")
        counts = hist.bucket_counts()
        for bound, count in zip(hist.buckets, counts):
            lines.append(f'{prom}_bucket{{le="{_prom_float(bound)}"}} {count}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {counts[-1]}')
        lines.append(f"{prom}_sum {_prom_float(hist.total)}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# RunReport
# ---------------------------------------------------------------------------


def summarize_histogram(hist: Histogram) -> Dict[str, float]:
    """The compact per-histogram summary a RunReport stores."""
    summary = {
        "count": hist.count,
        "total": hist.total,
        "mean": hist.mean,
        "min": hist.min,
        "max": hist.max,
    }
    for q in SUMMARY_QUANTILES:
        summary[f"p{int(q * 100)}"] = hist.quantile(q)
    return summary


@dataclass
class RunReport:
    """The run-summary document: metrics + degradation + timing + entries.

    ``counters`` is the full flat counter dict (the deterministic part a
    ``--diff`` baseline compares); ``histograms`` maps names to the
    summary statistics of :func:`summarize_histogram` (timing — never
    diffed, machines differ); ``degradation`` is the
    :class:`~repro.core.resilience.DegradationReport` as a dict;
    ``entries`` carries per-program rows for batch runs.
    """

    schema: int = RUN_REPORT_SCHEMA
    label: str = ""
    jobs: int = 1
    elapsed_seconds: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    degradation: Dict[str, Any] = field(default_factory=dict)
    entries: List[Dict[str, Any]] = field(default_factory=list)
    #: Final suggestion ranks: list of {"rank", "kind", "rule"} rows.
    suggestions: List[Dict[str, Any]] = field(default_factory=list)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_run(
        cls,
        metrics: Optional[MetricsRegistry] = None,
        *,
        label: str = "",
        jobs: int = 1,
        elapsed_seconds: float = 0.0,
        degradation=None,
        entries: Optional[List[Dict[str, Any]]] = None,
        suggestions: Optional[List[Dict[str, Any]]] = None,
    ) -> "RunReport":
        report = cls(label=label, jobs=jobs, elapsed_seconds=elapsed_seconds)
        if metrics is not None:
            report.counters = dict(metrics.counters())
            for name in metrics.histogram_names():
                report.histograms[name] = summarize_histogram(
                    metrics.histogram(name)
                )
        if degradation is not None:
            report.degradation = degradation_as_dict(degradation)
        if entries:
            report.entries = list(entries)
        if suggestions:
            report.suggestions = list(suggestions)
        return report

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "label": self.label,
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
            "counters": self.counters,
            "histograms": self.histograms,
            "degradation": self.degradation,
            "entries": self.entries,
            "suggestions": self.suggestions,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: Union[str, os.PathLike]) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        if not isinstance(data, dict):
            raise ReportSchemaError("RunReport document is not a JSON object")
        version = data.get("schema")
        if version != RUN_REPORT_SCHEMA:
            raise ReportSchemaError(
                f"unknown RunReport schema version {version!r} "
                f"(this reader understands {RUN_REPORT_SCHEMA})"
            )
        return cls(
            schema=version,
            label=data.get("label", ""),
            jobs=data.get("jobs", 1),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            counters=dict(data.get("counters", {})),
            histograms=dict(data.get("histograms", {})),
            degradation=dict(data.get("degradation", {})),
            entries=list(data.get("entries", [])),
            suggestions=list(data.get("suggestions", [])),
        )

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "RunReport":
        try:
            with open(path) as handle:
                data = json.load(handle)
        except json.JSONDecodeError as err:
            raise ReportSchemaError(f"{path}: not valid JSON ({err})")
        return cls.from_dict(data)


def degradation_as_dict(report) -> Dict[str, Any]:
    """A :class:`~repro.core.resilience.DegradationReport` as plain data."""
    return {
        "reasons": list(report.reasons),
        "oracle_crashes": report.oracle_crashes,
        "prefix_fallbacks": report.prefix_fallbacks,
        "depth_rejections": report.depth_rejections,
        "worker_crashes": report.worker_crashes,
        "worker_restarts": getattr(report, "worker_restarts", 0),
        "quarantined": getattr(report, "quarantined", 0),
        "watchdog_kills": getattr(report, "watchdog_kills", 0),
        "phases_shed": dict(report.phases_shed),
        "elapsed_seconds": report.elapsed_seconds,
        "deadline_seconds": report.deadline_seconds,
        "budget": report.budget,
        "crash_samples": list(report.crash_samples),
    }


def suggestion_rows(suggestions) -> List[Dict[str, Any]]:
    """Rank/kind/rule rows for a ranked suggestion list (rank is 1-based)."""
    return [
        {
            "rank": rank,
            "kind": suggestion.kind,
            "rule": suggestion.change.rule or "",
        }
        for rank, suggestion in enumerate(suggestions, start=1)
    ]
