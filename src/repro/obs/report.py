"""``python -m repro report`` — aggregate flight-recorder output.

Reads one or more RunReport JSON documents and/or JSONL event logs (the
``--report``/``--events`` outputs of an ``explain`` run), normalizes them
into one aggregate, and prints the tables the paper's efficiency story is
told in: per-phase oracle-call and time shares, the incremental-oracle
breakdown (prefix reuse, cache rates), resilience counts (crashes, sheds,
worker deaths), and the rank distribution of the final suggestions.

``--diff BASELINE`` compares the aggregate against a checked-in baseline
(itself a RunReport, e.g. ``benchmarks/results/report_baseline.json``) and
exits non-zero when any *cost* counter — oracle calls, full checks,
crashes, per-phase tests — grew beyond ``--threshold`` (relative, default
exact).  Counters are deterministic for a given corpus program (parallel
runs merge to byte-identical totals — see :mod:`repro.core.parallel`), so
the diff is a real regression gate, not a noise filter; timings are
summarised but never diffed.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .events import EventSchemaError, read_events
from .export import ReportSchemaError, RunReport

#: Counters where "bigger" means "worse" — the regression surface of
#: ``--diff``.  Prefix match; everything else is reported but never fails
#: the gate (e.g. ``oracle.prefix.reused`` growing is an improvement).
COST_COUNTER_PREFIXES: Tuple[str, ...] = (
    "oracle.calls",
    "oracle.full_checks",
    "oracle.crashes",
    "oracle.depth_rejected",
    "oracle.prefix.fallbacks",
    "oracle.prefix.invalidated",
    "oracle.trail.fallbacks",
    "oracle.budget_exceeded",
    "oracle.cache.misses",
    "oracle.decl.checked",
    "search.prefix_tests",
    "search.removal_tests",
    "search.constructive_tests",
    "search.adaptation_tests",
    "search.triage_tests",
    "search.shed.",
    "search.degraded",
    "parallel.worker_crashes",
    "parallel.fallback_checks",
    "enum.tested.",
)

#: The per-phase oracle-call counters (and their display names).
PHASE_COUNTERS = (
    ("search.prefix_tests", "prefix"),
    ("search.removal_tests", "removal"),
    ("search.constructive_tests", "constructive"),
    ("search.adaptation_tests", "adaptation"),
    ("search.triage_tests", "triage"),
)

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INPUT_ERROR = 2


@dataclass
class RunAggregate:
    """One or more runs, folded into a single comparable summary."""

    sources: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    #: Histogram name -> summed ``total`` seconds (from RunReport files).
    span_seconds: Dict[str, float] = field(default_factory=dict)
    #: Per-search rows: label, ok, suggestions, oracle_calls, degraded,
    #: elapsed_seconds (from entries / search_finished events).
    searches: List[Dict[str, Any]] = field(default_factory=list)
    #: Suggestion rank -> count across all searches.
    rank_counts: Dict[int, int] = field(default_factory=dict)
    #: Phase -> shed count (from degradation reports / events).
    phases_shed: Dict[str, int] = field(default_factory=dict)
    crash_samples: List[str] = field(default_factory=list)
    #: Totals from ``degradation`` summaries (events or RunReport files).
    worker_crashes: int = 0
    worker_restarts: int = 0
    quarantined: int = 0
    watchdog_kills: int = 0
    #: Tallies of the *per-occurrence* events.  A supervised run records
    #: each incident twice — once as it happens, once in the end-of-run
    #: degradation summary — so these are kept apart from the summary
    #: totals above and reconciled with ``max`` at render time.
    crash_events: int = 0
    restart_events: int = 0
    quarantine_events: int = 0
    watchdog_events: int = 0
    degraded_runs: int = 0
    elapsed_seconds: float = 0.0
    #: Function -> summed profile row (``--profile`` events), keyed by the
    #: ``file:line(name)`` string so multi-run profiles fold together.
    profile_rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # -- folding ---------------------------------------------------------

    def add_counters(self, counters: Dict[str, int]) -> None:
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def add_search(self, row: Dict[str, Any]) -> None:
        self.searches.append(row)
        if row.get("degraded"):
            self.degraded_runs += 1

    def add_ranks(self, rows: Sequence[Dict[str, Any]]) -> None:
        for row in rows:
            rank = int(row.get("rank", 0))
            self.rank_counts[rank] = self.rank_counts.get(rank, 0) + 1

    def add_profile(self, rows: Sequence[Dict[str, Any]]) -> None:
        for row in rows:
            func = row.get("func")
            if not func:
                continue
            slot = self.profile_rows.setdefault(
                func, {"calls": 0, "tottime": 0.0, "cumtime": 0.0}
            )
            slot["calls"] += int(row.get("calls", 0) or 0)
            slot["tottime"] += float(row.get("tottime", 0.0) or 0.0)
            slot["cumtime"] += float(row.get("cumtime", 0.0) or 0.0)

    def add_degradation(self, deg: Dict[str, Any]) -> None:
        for phase, count in (deg.get("phases_shed") or {}).items():
            self.phases_shed[phase] = self.phases_shed.get(phase, 0) + count
        self.worker_crashes += deg.get("worker_crashes", 0) or 0
        self.worker_restarts += deg.get("worker_restarts", 0) or 0
        self.quarantined += deg.get("quarantined", 0) or 0
        self.watchdog_kills += deg.get("watchdog_kills", 0) or 0
        self.crash_samples.extend(deg.get("crash_samples") or [])

    def add_report(self, report: RunReport, source: str) -> None:
        self.sources.append(source)
        self.add_counters(report.counters)
        for name, summary in report.histograms.items():
            if name.startswith("span.") and name.endswith(".seconds"):
                span = name[len("span."):-len(".seconds")]
                self.span_seconds[span] = (
                    self.span_seconds.get(span, 0.0) + summary.get("total", 0.0)
                )
        if report.entries:
            for entry in report.entries:
                self.add_search(dict(entry))
        elif report.label:
            self.add_search(
                {
                    "label": report.label,
                    "ok": not report.suggestions
                    and not report.counters.get("search.suggestions"),
                    "suggestions": len(report.suggestions),
                    "oracle_calls": report.counters.get("oracle.calls", 0),
                    "degraded": bool((report.degradation or {}).get("reasons")),
                    "elapsed_seconds": report.elapsed_seconds,
                }
            )
        if report.degradation:
            self.add_degradation(report.degradation)
        self.add_ranks(report.suggestions)
        self.elapsed_seconds += report.elapsed_seconds

    def add_events(self, events: List[Dict[str, Any]], source: str) -> None:
        self.sources.append(source)
        for event in events:
            kind = event.get("type")
            if kind == "metrics":
                self.add_counters(event.get("counters") or {})
            elif kind == "search_finished":
                self.add_search(
                    {
                        "label": event.get("label", ""),
                        "ok": event.get("ok", False),
                        "suggestions": event.get("suggestions", 0),
                        "oracle_calls": event.get("oracle_calls", 0),
                        "degraded": event.get("degraded", False),
                        "elapsed_seconds": event.get("elapsed_seconds", 0.0),
                    }
                )
                self.elapsed_seconds += event.get("elapsed_seconds", 0.0) or 0.0
            elif kind == "suggestions":
                self.add_ranks(event.get("ranks") or [])
            elif kind == "degradation":
                self.add_degradation(event)
            elif kind == "profile":
                self.add_profile(event.get("hotspots") or [])
            elif kind in ("worker_crash", "worker_hang"):
                self.crash_events += 1
            elif kind == "worker_restart":
                self.restart_events += 1
            elif kind == "quarantine":
                self.quarantine_events += 1
            elif kind == "watchdog_kill":
                self.watchdog_events += int(event.get("count", 1) or 1)
            elif kind == "oracle_crash":
                sample = event.get("error")
                if sample:
                    self.crash_samples.append(sample)

    # -- derived ---------------------------------------------------------

    def value(self, name: str) -> int:
        return self.counters.get(name, 0)

    def rate(self, numerator: str, denominator_names: Sequence[str]) -> Optional[float]:
        total = sum(self.value(n) for n in denominator_names)
        if total == 0:
            return None
        return self.value(numerator) / total


def load_any(path: str) -> RunAggregate:
    """Load one file — RunReport JSON or JSONL event log — by sniffing.

    A file whose first non-blank character is ``{`` *and* that parses as
    a single JSON object is a RunReport; otherwise it is treated as an
    event log.  Schema errors from either reader propagate.
    """
    aggregate = RunAggregate()
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    as_report = None
    if stripped.startswith("{"):
        try:
            as_report = json.loads(text)
        except json.JSONDecodeError:
            as_report = None  # JSONL: line 2+ breaks the single-object parse
    if isinstance(as_report, dict) and "type" not in as_report:
        aggregate.add_report(RunReport.from_dict(as_report), path)
    else:
        aggregate.add_events(read_events(text.splitlines()), path)
    return aggregate


def aggregate_files(paths: Sequence[str]) -> RunAggregate:
    total = RunAggregate()
    for path in paths:
        part = load_any(path)
        total.sources.extend(part.sources)
        total.add_counters(part.counters)
        for span, seconds in part.span_seconds.items():
            total.span_seconds[span] = total.span_seconds.get(span, 0.0) + seconds
        for row in part.searches:
            total.add_search(dict(row))
        for rank, count in part.rank_counts.items():
            total.rank_counts[rank] = total.rank_counts.get(rank, 0) + count
        for phase, count in part.phases_shed.items():
            total.phases_shed[phase] = total.phases_shed.get(phase, 0) + count
        total.crash_samples.extend(part.crash_samples)
        total.worker_crashes += part.worker_crashes
        total.worker_restarts += part.worker_restarts
        total.quarantined += part.quarantined
        total.watchdog_kills += part.watchdog_kills
        total.crash_events += part.crash_events
        total.restart_events += part.restart_events
        total.quarantine_events += part.quarantine_events
        total.watchdog_events += part.watchdog_events
        total.elapsed_seconds += part.elapsed_seconds
        for func, row in part.profile_rows.items():
            total.add_profile([dict(row, func=func)])
    return total


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _table(rows: List[Tuple[str, str]], indent: str = "  ") -> List[str]:
    if not rows:
        return []
    width = max(len(label) for label, _ in rows)
    return [f"{indent}{label.ljust(width)}  {value}" for label, value in rows]


def _pct(part: float, whole: float) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole else "    -"


#: Hotspot rows kept when extracting / printing a profile (``--profile``).
PROFILE_TOP_N = 15


def profile_hotspots(stats: Any, top: int = PROFILE_TOP_N) -> List[Dict[str, Any]]:
    """The top-``top`` hotspots of a ``pstats.Stats`` as plain dicts.

    Rows are sorted by exclusive time (``tottime``) and keyed the way
    cProfile prints them — ``file:line(name)`` — with the path trimmed to
    its last two components so event logs stay readable and comparable
    across machines.
    """
    rows: List[Dict[str, Any]] = []
    for (filename, line, name), (_cc, nc, tt, ct, _callers) in stats.stats.items():
        if filename == "~":
            func = name  # builtins: pstats prints them as ~:0(<...>)
        else:
            parts = filename.replace("\\", "/").split("/")
            func = f"{'/'.join(parts[-2:])}:{line}({name})"
        rows.append(
            {
                "func": func,
                "calls": int(nc),
                "tottime": round(float(tt), 6),
                "cumtime": round(float(ct), 6),
            }
        )
    rows.sort(key=lambda r: (-r["tottime"], r["func"]))
    return rows[:top]


def render_profile_rows(
    rows: Sequence[Dict[str, Any]], top: int = PROFILE_TOP_N
) -> List[str]:
    """Aligned ``func  calls  tottime  cumtime`` lines for hotspot rows."""
    ordered = sorted(
        rows,
        key=lambda r: (-float(r.get("tottime", 0.0) or 0.0), str(r.get("func"))),
    )[:top]
    body = [
        (
            str(row.get("func", "?")),
            f"{int(row.get('calls', 0) or 0):>9}  "
            f"{float(row.get('tottime', 0.0) or 0.0):9.4f}s  "
            f"{float(row.get('cumtime', 0.0) or 0.0):9.4f}s",
        )
        for row in ordered
    ]
    return _table([("function", "    calls    tottime    cumtime")] + body)


def render_aggregate(agg: RunAggregate) -> str:
    """The human-readable aggregate tables."""
    lines: List[str] = []
    n_searches = len(agg.searches)
    n_ok = sum(1 for s in agg.searches if s.get("ok"))
    lines.append(
        f"flight recorder: {len(agg.sources)} file(s), "
        f"{n_searches} search(es), {n_ok} ok, "
        f"{n_searches - n_ok} ill-typed, {agg.degraded_runs} degraded"
    )
    if agg.elapsed_seconds:
        lines[-1] += f", {agg.elapsed_seconds:.2f}s total"

    phase_rows = [
        (label, agg.value(counter))
        for counter, label in PHASE_COUNTERS
    ]
    phase_total = sum(v for _, v in phase_rows)
    if phase_total:
        lines.append("")
        lines.append("oracle calls by phase:")
        lines.extend(
            _table(
                [
                    (label, f"{value:>8}  {_pct(value, phase_total)}")
                    for label, value in phase_rows
                ]
            )
        )

    if agg.value("oracle.calls"):
        lines.append("")
        lines.append("oracle breakdown:")
        rows = [
            ("calls", str(agg.value("oracle.calls"))),
            ("  ok / fail",
             f"{agg.value('oracle.calls.ok')} / {agg.value('oracle.calls.fail')}"),
            ("full checks", str(agg.value("oracle.full_checks"))),
            ("prefix reused", str(agg.value("oracle.prefix.reused"))),
        ]
        reuse = agg.rate(
            "oracle.prefix.reused", ("oracle.prefix.reused", "oracle.full_checks")
        )
        if reuse is not None:
            rows.append(("prefix-reuse rate", f"{100.0 * reuse:.1f}%"))
        t_spec = agg.value("oracle.trail.speculated")
        t_fallbacks = agg.value("oracle.trail.fallbacks")
        if t_spec or t_fallbacks:
            rows.append(("trail speculated", str(t_spec)))
            rows.append(
                ("trail rolled back", str(agg.value("oracle.trail.rolled_back")))
            )
            if t_fallbacks:
                rows.append(("trail fallbacks", str(t_fallbacks)))
        hits, misses = agg.value("oracle.cache.hits"), agg.value("oracle.cache.misses")
        if hits or misses:
            rows.append(("cache hits / misses", f"{hits} / {misses}"))
            rows.append(
                ("cache hit rate", f"{100.0 * hits / (hits + misses):.1f}%")
            )
        d_replayed = agg.value("oracle.decl.replayed")
        d_checked = agg.value("oracle.decl.checked")
        d_degraded = agg.value("oracle.decl.degraded")
        if d_replayed or d_degraded:
            rows.append(("decls replayed / checked", f"{d_replayed} / {d_checked}"))
            total = d_replayed + d_checked
            if total:
                rows.append(
                    ("decl-replay rate", f"{100.0 * d_replayed / total:.1f}%")
                )
            if d_degraded:
                rows.append(("decls degraded", str(d_degraded)))
        dedup = agg.value("search.dedup_skipped")
        if dedup:
            rows.append(("dedup skipped", str(dedup)))
        lines.extend(_table(rows))

    s_hits = agg.value("oracle.store.hits")
    s_misses = agg.value("oracle.store.misses")
    s_writes = agg.value("oracle.store.writes")
    s_invalidated = agg.value("oracle.store.invalidated")
    if s_hits or s_misses or s_writes or s_invalidated:
        lines.append("")
        lines.append("persistent store:")
        rows = [
            ("hits / misses", f"{s_hits} / {s_misses}"),
            ("writes", str(s_writes)),
        ]
        if s_hits or s_misses:
            rows.insert(
                1,
                ("hit rate", f"{100.0 * s_hits / (s_hits + s_misses):.1f}%"),
            )
        if s_invalidated:
            rows.append(("invalidated", str(s_invalidated)))
        lines.extend(_table(rows))

    crash_rows = [
        ("oracle crashes", agg.value("oracle.crashes")),
        ("depth rejections", agg.value("oracle.depth_rejected")),
        ("prefix fallbacks", agg.value("oracle.prefix.fallbacks")),
        ("worker crashes",
         max(agg.worker_crashes, agg.crash_events,
             agg.value("parallel.worker_crashes"))),
    ]
    shed_total = sum(agg.phases_shed.values())
    if any(v for _, v in crash_rows) or shed_total:
        lines.append("")
        lines.append("resilience:")
        lines.extend(
            _table([(label, str(v)) for label, v in crash_rows if v])
        )
        if shed_total:
            shed = ", ".join(
                f"{phase}x{count}"
                for phase, count in sorted(agg.phases_shed.items())
            )
            lines.extend(_table([("phases shed", shed)]))

    restarts = max(agg.worker_restarts, agg.restart_events,
                   agg.value("parallel.restarts"))
    quarantined = max(agg.quarantined, agg.quarantine_events,
                      agg.value("parallel.quarantined"))
    watchdog = max(
        agg.watchdog_kills,
        agg.watchdog_events,
        agg.value("parallel.watchdog.timeouts") + agg.value("parallel.watchdog.rss"),
    )
    hangs = agg.value("parallel.worker_hangs")
    breaker_opens = agg.value("parallel.breaker.open")
    breaker_half = agg.value("parallel.breaker.half_open")
    breaker_closed = agg.value("parallel.breaker.closed")
    q_hits = agg.value("parallel.quarantine.hits")
    q_probes = agg.value("parallel.quarantine.probes")
    io_retries = agg.value("oracle.store.retries")
    io_errors = agg.value("oracle.store.io_errors")
    if any(
        (restarts, quarantined, watchdog, hangs,
         breaker_opens, breaker_half, breaker_closed,
         q_hits, q_probes, io_retries, io_errors)
    ):
        lines.append("")
        lines.append("supervision:")
        rows = []
        if restarts:
            rows.append(("worker restarts", str(restarts)))
        if hangs:
            rows.append(("worker hangs", str(hangs)))
        if breaker_opens or breaker_half or breaker_closed:
            rows.append(
                ("breaker open/half/closed",
                 f"{breaker_opens} / {breaker_half} / {breaker_closed}")
            )
        if quarantined or q_hits or q_probes:
            rows.append(("quarantined candidates", str(quarantined)))
            rows.append(
                ("quarantine hits / probes", f"{q_hits} / {q_probes}")
            )
        if watchdog:
            rows.append(
                ("watchdog kills",
                 f"{watchdog} (timeout={agg.value('parallel.watchdog.timeouts')}"
                 f" rss={agg.value('parallel.watchdog.rss')})")
            )
        if io_retries or io_errors:
            rows.append(
                ("store io retries / errors", f"{io_retries} / {io_errors}")
            )
        lines.extend(_table(rows))

    if agg.span_seconds:
        span_total = sum(agg.span_seconds.values())
        lines.append("")
        lines.append("time share by span:")
        lines.extend(
            _table(
                [
                    (span, f"{seconds:8.3f}s  {_pct(seconds, span_total)}")
                    for span, seconds in sorted(
                        agg.span_seconds.items(), key=lambda kv: -kv[1]
                    )[:12]
                ]
            )
        )

    if agg.profile_rows:
        lines.append("")
        lines.append("profile hotspots (by tottime):")
        lines.extend(
            render_profile_rows(
                [dict(row, func=func) for func, row in agg.profile_rows.items()]
            )
        )

    if agg.rank_counts:
        lines.append("")
        lines.append("suggestion rank distribution:")
        lines.extend(
            _table(
                [
                    (f"rank {rank}", str(count))
                    for rank, count in sorted(agg.rank_counts.items())
                ]
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


@dataclass
class CounterDelta:
    name: str
    baseline: int
    current: int
    #: Relative change ((current - baseline) / baseline; inf for 0 -> n).
    relative: float
    is_cost: bool

    @property
    def regressed(self) -> bool:
        return self.is_cost and self.current > self.baseline


def _is_cost(name: str) -> bool:
    return name.startswith(COST_COUNTER_PREFIXES)


def diff_against(
    agg: RunAggregate, baseline: RunAggregate, threshold: float = 0.0
) -> Tuple[List[CounterDelta], List[CounterDelta]]:
    """Compare aggregate counters to a baseline.

    Returns ``(regressions, changes)``: *regressions* are cost counters
    that grew beyond ``threshold`` (relative — 0.05 tolerates 5% growth);
    *changes* are all compared counters whose value moved at all (for the
    report).  Counters absent from the baseline are never regressions —
    new telemetry must not fail old baselines.
    """
    regressions: List[CounterDelta] = []
    changes: List[CounterDelta] = []
    for name in sorted(baseline.counters):
        base = baseline.counters[name]
        cur = agg.counters.get(name, 0)
        if cur == base:
            continue
        relative = (cur - base) / base if base else float("inf")
        delta = CounterDelta(name, base, cur, relative, _is_cost(name))
        changes.append(delta)
        if delta.regressed and (
            base == 0 or (cur - base) / base > threshold
        ):
            regressions.append(delta)
    return regressions, changes


def render_diff(
    regressions: List[CounterDelta],
    changes: List[CounterDelta],
    baseline_path: str,
    threshold: float,
) -> str:
    lines = [f"diff vs {baseline_path} (threshold {threshold:g}):"]
    if not changes:
        lines.append("  no counter changes")
        return "\n".join(lines)
    for delta in changes:
        rel = (
            f"{100.0 * delta.relative:+.1f}%"
            if delta.relative != float("inf")
            else "new"
        )
        marker = "  REGRESSION" if delta in regressions else ""
        lines.append(
            f"  {delta.name}: {delta.baseline} -> {delta.current} "
            f"({rel}){marker}"
        )
    lines.append(
        f"{len(regressions)} regression(s), {len(changes)} changed counter(s)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Aggregate flight-recorder output (RunReport JSON and "
                    "JSONL event logs) into summary tables; optionally "
                    "regression-diff against a baseline report.",
        epilog="exit codes: 0 ok; 1 at least one counter regressed beyond "
               "--threshold; 2 unreadable input or unknown schema version",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="RunReport .json and/or event-log .jsonl files")
    parser.add_argument("--diff", metavar="BASELINE", default=None,
                        help="baseline RunReport (or event log) to compare "
                             "cost counters against")
    parser.add_argument("--threshold", type=float, default=0.0, metavar="FRAC",
                        help="relative growth a cost counter may show before "
                             "--diff fails (default 0 = exact)")
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="write the aggregate back out as a RunReport "
                             "JSON (the way baselines are produced)")
    return parser


def aggregate_to_report(agg: RunAggregate) -> RunReport:
    """The aggregate as a RunReport document (for ``--save`` baselines)."""
    report = RunReport(
        label=",".join(agg.sources),
        elapsed_seconds=agg.elapsed_seconds,
        counters=dict(sorted(agg.counters.items())),
        entries=list(agg.searches),
    )
    report.suggestions = [
        {"rank": rank, "kind": "", "rule": ""}
        for rank, count in sorted(agg.rank_counts.items())
        for _ in range(count)
    ]
    crashes = max(agg.worker_crashes, agg.crash_events,
                  agg.value("parallel.worker_crashes"))
    restarts = max(agg.worker_restarts, agg.restart_events,
                   agg.value("parallel.restarts"))
    quarantined = max(agg.quarantined, agg.quarantine_events,
                      agg.value("parallel.quarantined"))
    watchdog = max(
        agg.watchdog_kills,
        agg.watchdog_events,
        agg.value("parallel.watchdog.timeouts") + agg.value("parallel.watchdog.rss"),
    )
    if (
        agg.phases_shed or crashes or agg.crash_samples
        or restarts or quarantined or watchdog
    ):
        report.degradation = {
            "reasons": [],
            "oracle_crashes": agg.value("oracle.crashes"),
            "prefix_fallbacks": agg.value("oracle.prefix.fallbacks"),
            "depth_rejections": agg.value("oracle.depth_rejected"),
            "worker_crashes": crashes,
            "worker_restarts": restarts,
            "quarantined": quarantined,
            "watchdog_kills": watchdog,
            "phases_shed": dict(agg.phases_shed),
            "elapsed_seconds": agg.elapsed_seconds,
            "deadline_seconds": None,
            "budget": None,
            "crash_samples": list(agg.crash_samples),
        }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_report_parser().parse_args(argv)
    try:
        aggregate = aggregate_files(args.files)
        baseline = load_any(args.diff) if args.diff else None
    except (OSError, EventSchemaError, ReportSchemaError) as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_INPUT_ERROR
    print(render_aggregate(aggregate))
    if args.save:
        aggregate_to_report(aggregate).write(args.save)
        print(f"[aggregate report written to {args.save}]", file=sys.stderr)
    if baseline is None:
        return EXIT_OK
    regressions, changes = diff_against(
        aggregate, baseline, threshold=args.threshold
    )
    print()
    print(render_diff(regressions, changes, args.diff, args.threshold))
    return EXIT_REGRESSION if regressions else EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
