"""The metrics registry: named counters and histograms for the pipeline.

The paper's efficiency story (Section 3.2, Figures 5-7) is told in *counts*
— oracle calls, changes tested, triage rounds — and *distributions* — per
-file run times.  :class:`MetricsRegistry` is the one place those numbers
accumulate: any component holding a registry can ``incr`` a counter or
``observe`` a histogram sample by name, and the registry renders the whole
collection as a flat dict (machine use) or an aligned text table (CLI
``--metrics``).

Zero dependencies, and a :data:`NULL_METRICS` null object so instrumented
code never branches on "is telemetry on?": the default registry accepts
every call and records nothing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically growing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A named sample distribution (all observations kept, in order).

    Keeping raw samples (rather than fixed buckets) is deliberate: the
    evaluation layer builds the paper's CDF curves straight from
    :attr:`values`, and corpora are small enough (hundreds of files) that
    memory is a non-issue.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: Number) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 1]."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, max(0, int(round(p * (len(ordered) - 1)))))
        return ordered[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named counters and histograms, created on first touch.

    >>> reg = MetricsRegistry()
    >>> reg.incr("oracle.calls")
    >>> reg.incr("oracle.calls", 2)
    >>> reg.value("oracle.calls")
    3
    >>> reg.observe("search.seconds", 0.25)
    >>> reg.as_dict()["search.seconds.count"]
    1
    """

    #: Instrumented code may consult this to skip expensive label building.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def incr(self, name: str, n: int = 1) -> None:
        self.counter(name).incr(n)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    # -- reading ---------------------------------------------------------

    def value(self, name: str) -> int:
        """Current count for ``name`` (0 if never incremented)."""
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def values_of(self, name: str) -> List[float]:
        """Raw observations for histogram ``name`` (empty if absent)."""
        found = self._histograms.get(name)
        return list(found.values) if found is not None else []

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """All counter values, optionally filtered by name prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def histogram_names(self, prefix: str = "") -> List[str]:
        """Names of all histograms, optionally filtered by prefix."""
        return [name for name in sorted(self._histograms) if name.startswith(prefix)]

    def as_dict(self) -> Dict[str, Number]:
        """Flatten everything to one ``name -> number`` dict.

        Histograms contribute ``<name>.count/.total/.mean/.min/.max``.
        """
        out: Dict[str, Number] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, hist in sorted(self._histograms.items()):
            out[f"{name}.count"] = hist.count
            out[f"{name}.total"] = hist.total
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.min"] = hist.min
            out[f"{name}.max"] = hist.max
        return out

    def render_table(self, title: str = "metrics") -> str:
        """Aligned two-column text table of :meth:`as_dict`."""
        flat = self.as_dict()
        if not flat:
            return f"{title}: (empty)"
        width = max(len(name) for name in flat)
        lines = [f"{title}:"]
        for name, value in flat.items():
            shown = f"{value:.6f}".rstrip("0").rstrip(".") if isinstance(value, float) else str(value)
            lines.append(f"  {name.ljust(width)}  {shown}")
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's numbers into this one."""
        for name, counter in other._counters.items():
            self.incr(name, counter.value)
        for name, hist in other._histograms.items():
            self.histogram(name).values.extend(hist.values)


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0

    def incr(self, n: int = 1) -> None:
        pass


_NULL_COUNTER = _NullCounter()


class NullMetrics:
    """The do-nothing registry instrumented code holds by default.

    Every method is a no-op; :attr:`enabled` lets hot paths skip building
    expensive metric labels altogether.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str) -> _NullCounter:  # same no-op shape
        return _NULL_COUNTER

    def incr(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def value(self, name: str) -> int:
        return 0

    def values_of(self, name: str) -> List[float]:
        return []

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {}

    def histogram_names(self, prefix: str = "") -> List[str]:
        return []

    def as_dict(self) -> Dict[str, Number]:
        return {}

    def render_table(self, title: str = "metrics") -> str:
        return f"{title}: (disabled)"

    def reset(self) -> None:
        pass


#: Shared null instance — identity-comparable (``metrics is NULL_METRICS``).
NULL_METRICS = NullMetrics()
