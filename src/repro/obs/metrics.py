"""The metrics registry: named counters and histograms for the pipeline.

The paper's efficiency story (Section 3.2, Figures 5-7) is told in *counts*
— oracle calls, changes tested, triage rounds — and *distributions* — per
-file run times.  :class:`MetricsRegistry` is the one place those numbers
accumulate: any component holding a registry can ``incr`` a counter or
``observe`` a histogram sample by name, and the registry renders the whole
collection as a flat dict (machine use) or an aligned text table (CLI
``--metrics``).

Zero dependencies, and a :data:`NULL_METRICS` null object so instrumented
code never branches on "is telemetry on?": the default registry accepts
every call and records nothing.

Counter names are dotted families, minted where the count happens: the
oracle's ``oracle.*`` (calls, cache, prefix reuse, ``oracle.store.*`` for
retried store I/O), the enumerator/searcher's ``changes.*``/``search.*``,
and the worker pool's ``parallel.*`` — including the supervision family
(``parallel.restarts``, ``parallel.worker_hangs``, ``parallel.breaker.*``,
``parallel.quarantine.*``, ``parallel.watchdog.*``) that
``repro report``'s supervision table reads back.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]

#: Fixed histogram bucket boundaries (seconds-flavoured, Prometheus style).
#: Shared by every process so bucket counts merge exactly: a worker's
#: histogram snapshot and the parent's registry bucket identically, and the
#: Prometheus exposition (:func:`repro.obs.export.render_prometheus`) is
#: stable across hosts.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically growing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


#: How many raw samples a histogram retains (oldest kept).  ``count``,
#: ``sum``, ``min``, ``max``, and ``bucket_counts`` stay exact forever;
#: only quantile estimates become approximate past the cap.
SAMPLE_CAP = 2048


class Histogram:
    """A named sample distribution with bounded raw-sample retention.

    The scalar statistics — :attr:`count`, :attr:`total`, :attr:`mean`,
    :attr:`min`, :attr:`max` — and the fixed-boundary
    :meth:`bucket_counts` are maintained incrementally and stay **exact**
    no matter how many samples arrive, so a long-lived served process
    never grows without bound.  Raw samples are additionally retained
    (in arrival order) up to ``sample_cap``: below the cap, quantiles and
    the evaluation layer's CDF curves are exact, as before; past it they
    are computed from the first ``sample_cap`` observations — a bounded
    deterministic reservoir, documented as approximate.  First-K
    retention (rather than random sampling) keeps every operation
    reproducible and :meth:`merge` associative: concatenate-then-truncate
    groups the same way regardless of merge order.

    :data:`DEFAULT_BUCKETS` supplies the bucket boundaries every process
    shares, so :meth:`bucket_counts` (the Prometheus view) and
    :meth:`merge` agree no matter which side of a process boundary the
    samples were observed on.
    """

    __slots__ = (
        "name", "buckets", "sample_cap",
        "_samples", "_count", "_sum", "_min", "_max", "_raw_buckets",
    )

    def __init__(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        sample_cap: int = SAMPLE_CAP,
    ):
        self.name = name
        self.buckets: Tuple[float, ...] = (
            tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        )
        self.sample_cap = max(1, int(sample_cap))
        self._samples: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0
        #: Per-bucket (non-cumulative) counts, plus the implicit ``+Inf``.
        self._raw_buckets: List[int] = [0] * (len(self.buckets) + 1)

    def observe(self, value: Number) -> None:
        v = float(value)
        if self._count == 0:
            self._min = self._max = v
        else:
            if v < self._min:
                self._min = v
            if v > self._max:
                self._max = v
        self._count += 1
        self._sum += v
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                self._raw_buckets[i] += 1
                break
        else:
            self._raw_buckets[-1] += 1
        if len(self._samples) < self.sample_cap:
            self._samples.append(v)

    @property
    def values(self) -> List[float]:
        """The retained raw samples (a copy; first ``sample_cap`` kept)."""
        return list(self._samples)

    @property
    def truncated(self) -> bool:
        """True once observations beyond ``sample_cap`` were dropped."""
        return self._count > len(self._samples)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 1] (over the retained
        samples — approximate past ``sample_cap``)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, int(round(p * (len(ordered) - 1)))))
        return ordered[index]

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile, ``q`` in [0, 1].

        The estimator ``repro report`` prints (p50/p90/p99 columns): with
        no samples the answer is 0.0, with one sample it is that sample,
        otherwise the value is interpolated between the two order
        statistics bracketing rank ``q * (n - 1)``.  Computed over the
        retained samples, so approximate past ``sample_cap``.
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        q = min(1.0, max(0.0, q))
        rank = q * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def bucket_counts(self) -> List[int]:
        """Cumulative sample counts per bucket boundary, plus ``+Inf``.

        ``len(result) == len(self.buckets) + 1``; the last entry equals
        :attr:`count` (the implicit ``+Inf`` bucket), matching Prometheus
        histogram semantics (``le`` is inclusive).  Exact at any volume —
        bucket tallies are maintained per observation, not derived from
        the capped raw samples.
        """
        counts: List[int] = []
        running = 0
        for raw in self._raw_buckets:
            running += raw
            counts.append(running)
        return counts

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's statistics and samples into this one.

        Associative: scalar sums/extremes and per-bucket tallies are
        order-insensitive, and the retained samples concatenate in merge
        order then truncate to the cap — ``((a+b)+c`` and ``a+(b+c)``
        retain the identical list — the determinism the parallel
        aggregation relies on.
        """
        if other._count == 0:
            return
        if self._count == 0:
            self._min, self._max = other._min, other._max
        else:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        self._count += other._count
        self._sum += other._sum
        if len(other._raw_buckets) == len(self._raw_buckets):
            for i, raw in enumerate(other._raw_buckets):
                self._raw_buckets[i] += raw
        else:  # mismatched boundaries: re-bucket the retained samples
            for v in other._samples:
                for i, bound in enumerate(self.buckets):
                    if v <= bound:
                        self._raw_buckets[i] += 1
                        break
                else:
                    self._raw_buckets[-1] += 1
        room = self.sample_cap - len(self._samples)
        if room > 0:
            self._samples.extend(other._samples[:room])

    def merge_snapshot_data(self, data: Any) -> None:
        """Fold one histogram's :meth:`MetricsRegistry.snapshot` entry in.

        Accepts both wire shapes: the compact list of raw samples (the
        only shape emitted below the cap — and by older writers), and the
        dict carrying exact scalar/bucket state for truncated histograms.
        """
        if isinstance(data, dict):
            other = Histogram(self.name, self.buckets, sample_cap=self.sample_cap)
            other._count = int(data.get("count", 0))
            other._sum = float(data.get("sum", 0.0))
            other._min = float(data.get("min", 0.0))
            other._max = float(data.get("max", 0.0))
            other._samples = [float(v) for v in data.get("samples", [])]
            raw = data.get("raw_buckets")
            if raw is not None and len(raw) == len(other._raw_buckets):
                other._raw_buckets = [int(n) for n in raw]
            else:  # unknown boundaries: re-bucket what samples we have
                other._raw_buckets = [0] * (len(other.buckets) + 1)
                for v in other._samples:
                    for i, bound in enumerate(other.buckets):
                        if v <= bound:
                            other._raw_buckets[i] += 1
                            break
                    else:
                        other._raw_buckets[-1] += 1
            self.merge(other)
        else:
            for v in data:
                self.observe(float(v))

    def snapshot_data(self) -> Any:
        """This histogram's wire shape (see :meth:`merge_snapshot_data`)."""
        if not self.truncated:
            return list(self._samples)
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "raw_buckets": list(self._raw_buckets),
            "samples": list(self._samples),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named counters and histograms, created on first touch.

    >>> reg = MetricsRegistry()
    >>> reg.incr("oracle.calls")
    >>> reg.incr("oracle.calls", 2)
    >>> reg.value("oracle.calls")
    3
    >>> reg.observe("search.seconds", 0.25)
    >>> reg.as_dict()["search.seconds.count"]
    1
    """

    #: Instrumented code may consult this to skip expensive label building.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def incr(self, name: str, n: int = 1) -> None:
        self.counter(name).incr(n)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    # -- reading ---------------------------------------------------------

    def value(self, name: str) -> int:
        """Current count for ``name`` (0 if never incremented)."""
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def values_of(self, name: str) -> List[float]:
        """Raw observations for histogram ``name`` (empty if absent)."""
        found = self._histograms.get(name)
        return list(found.values) if found is not None else []

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """All counter values, optionally filtered by name prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def histogram_names(self, prefix: str = "") -> List[str]:
        """Names of all histograms, optionally filtered by prefix."""
        return [name for name in sorted(self._histograms) if name.startswith(prefix)]

    def as_dict(self) -> Dict[str, Number]:
        """Flatten everything to one ``name -> number`` dict.

        Histograms contribute ``<name>.count/.total/.mean/.min/.max``.
        """
        out: Dict[str, Number] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, hist in sorted(self._histograms.items()):
            out[f"{name}.count"] = hist.count
            out[f"{name}.total"] = hist.total
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.min"] = hist.min
            out[f"{name}.max"] = hist.max
        return out

    def render_table(self, title: str = "metrics") -> str:
        """Aligned two-column text table of :meth:`as_dict`."""
        flat = self.as_dict()
        if not flat:
            return f"{title}: (empty)"
        width = max(len(name) for name in flat)
        lines = [f"{title}:"]
        for name, value in flat.items():
            shown = f"{value:.6f}".rstrip("0").rstrip(".") if isinstance(value, float) else str(value)
            lines.append(f"  {name.ljust(width)}  {shown}")
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's numbers into this one."""
        for name, counter in sorted(other._counters.items()):
            self.incr(name, counter.value)
        for name, hist in sorted(other._histograms.items()):
            self.histogram(name).merge(hist)

    # -- cross-process transport ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data copy of the whole registry.

        The wire format worker processes ship back to the pool (and the
        ``metrics`` section of a :class:`~repro.obs.export.RunReport`):
        JSON- and pickle-friendly, no live objects.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "histograms": {
                n: h.snapshot_data() for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(
        self, snapshot: Dict[str, Any], *, skip_counter_prefixes: Iterable[str] = ()
    ) -> None:
        """Fold a :meth:`snapshot` dict into this registry, in name order.

        ``skip_counter_prefixes`` drops counters the receiver re-accounts
        itself — the pool uses it to exclude worker-side ``oracle.*``
        counters, which the parent oracle replays per *applied* verdict so
        that ``jobs=N`` counter totals stay byte-identical to serial (a
        worker may check candidates the search never applies, e.g. past a
        budget-exhaustion point).
        """
        prefixes = tuple(skip_counter_prefixes)
        for name in sorted(snapshot.get("counters", ())):
            if prefixes and name.startswith(prefixes):
                continue
            value = snapshot["counters"][name]
            if value:
                self.incr(name, value)
        for name in sorted(snapshot.get("histograms", ())):
            data = snapshot["histograms"][name]
            if data:
                self.histogram(name).merge_snapshot_data(data)


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0

    def incr(self, n: int = 1) -> None:
        pass


_NULL_COUNTER = _NullCounter()


class NullMetrics:
    """The do-nothing registry instrumented code holds by default.

    Every method is a no-op; :attr:`enabled` lets hot paths skip building
    expensive metric labels altogether.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str) -> _NullCounter:  # same no-op shape
        return _NULL_COUNTER

    def incr(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def value(self, name: str) -> int:
        return 0

    def values_of(self, name: str) -> List[float]:
        return []

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {}

    def histogram_names(self, prefix: str = "") -> List[str]:
        return []

    def as_dict(self) -> Dict[str, Number]:
        return {}

    def render_table(self, title: str = "metrics") -> str:
        return f"{title}: (disabled)"

    def reset(self) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "histograms": {}}

    def merge_snapshot(self, snapshot, *, skip_counter_prefixes=()) -> None:
        pass


#: Shared null instance — identity-comparable (``metrics is NULL_METRICS``).
NULL_METRICS = NullMetrics()
