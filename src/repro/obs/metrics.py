"""The metrics registry: named counters and histograms for the pipeline.

The paper's efficiency story (Section 3.2, Figures 5-7) is told in *counts*
— oracle calls, changes tested, triage rounds — and *distributions* — per
-file run times.  :class:`MetricsRegistry` is the one place those numbers
accumulate: any component holding a registry can ``incr`` a counter or
``observe`` a histogram sample by name, and the registry renders the whole
collection as a flat dict (machine use) or an aligned text table (CLI
``--metrics``).

Zero dependencies, and a :data:`NULL_METRICS` null object so instrumented
code never branches on "is telemetry on?": the default registry accepts
every call and records nothing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]

#: Fixed histogram bucket boundaries (seconds-flavoured, Prometheus style).
#: Shared by every process so bucket counts merge exactly: a worker's
#: histogram snapshot and the parent's registry bucket identically, and the
#: Prometheus exposition (:func:`repro.obs.export.render_prometheus`) is
#: stable across hosts.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically growing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A named sample distribution (all observations kept, in order).

    Keeping raw samples (rather than fixed buckets) is deliberate: the
    evaluation layer builds the paper's CDF curves straight from
    :attr:`values`, and corpora are small enough (hundreds of files) that
    memory is a non-issue.  :data:`DEFAULT_BUCKETS` supplies the fixed
    bucket boundaries every process shares, so :meth:`bucket_counts` (the
    Prometheus view) and :meth:`merge` agree no matter which side of a
    process boundary the samples were observed on.
    """

    __slots__ = ("name", "values", "buckets")

    def __init__(self, name: str, buckets: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.values: List[float] = []
        self.buckets: Tuple[float, ...] = (
            tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        )

    def observe(self, value: Number) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 1]."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, max(0, int(round(p * (len(ordered) - 1)))))
        return ordered[index]

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile, ``q`` in [0, 1].

        The estimator ``repro report`` prints (p50/p90/p99 columns): with
        no samples the answer is 0.0, with one sample it is that sample,
        otherwise the value is interpolated between the two order
        statistics bracketing rank ``q * (n - 1)``.
        """
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        q = min(1.0, max(0.0, q))
        rank = q * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def bucket_counts(self) -> List[int]:
        """Cumulative sample counts per bucket boundary, plus ``+Inf``.

        ``len(result) == len(self.buckets) + 1``; the last entry equals
        :attr:`count` (the implicit ``+Inf`` bucket), matching Prometheus
        histogram semantics (``le`` is inclusive).
        """
        counts = [0] * (len(self.buckets) + 1)
        for value in self.values:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        # Make counts cumulative (Prometheus ``le`` buckets are cumulative).
        for i in range(1, len(counts)):
            counts[i] += counts[i - 1]
        return counts

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one.

        Append-only, so the operation is associative: merging worker
        snapshots ``a, b, c`` groups the same way regardless of arrival
        order ``((a+b)+c == a+(b+c))`` — the determinism the parallel
        aggregation relies on.
        """
        self.values.extend(other.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named counters and histograms, created on first touch.

    >>> reg = MetricsRegistry()
    >>> reg.incr("oracle.calls")
    >>> reg.incr("oracle.calls", 2)
    >>> reg.value("oracle.calls")
    3
    >>> reg.observe("search.seconds", 0.25)
    >>> reg.as_dict()["search.seconds.count"]
    1
    """

    #: Instrumented code may consult this to skip expensive label building.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- recording -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def incr(self, name: str, n: int = 1) -> None:
        self.counter(name).incr(n)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    # -- reading ---------------------------------------------------------

    def value(self, name: str) -> int:
        """Current count for ``name`` (0 if never incremented)."""
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def values_of(self, name: str) -> List[float]:
        """Raw observations for histogram ``name`` (empty if absent)."""
        found = self._histograms.get(name)
        return list(found.values) if found is not None else []

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """All counter values, optionally filtered by name prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def histogram_names(self, prefix: str = "") -> List[str]:
        """Names of all histograms, optionally filtered by prefix."""
        return [name for name in sorted(self._histograms) if name.startswith(prefix)]

    def as_dict(self) -> Dict[str, Number]:
        """Flatten everything to one ``name -> number`` dict.

        Histograms contribute ``<name>.count/.total/.mean/.min/.max``.
        """
        out: Dict[str, Number] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, hist in sorted(self._histograms.items()):
            out[f"{name}.count"] = hist.count
            out[f"{name}.total"] = hist.total
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.min"] = hist.min
            out[f"{name}.max"] = hist.max
        return out

    def render_table(self, title: str = "metrics") -> str:
        """Aligned two-column text table of :meth:`as_dict`."""
        flat = self.as_dict()
        if not flat:
            return f"{title}: (empty)"
        width = max(len(name) for name in flat)
        lines = [f"{title}:"]
        for name, value in flat.items():
            shown = f"{value:.6f}".rstrip("0").rstrip(".") if isinstance(value, float) else str(value)
            lines.append(f"  {name.ljust(width)}  {shown}")
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's numbers into this one."""
        for name, counter in sorted(other._counters.items()):
            self.incr(name, counter.value)
        for name, hist in sorted(other._histograms.items()):
            self.histogram(name).merge(hist)

    # -- cross-process transport ----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-data copy of the whole registry.

        The wire format worker processes ship back to the pool (and the
        ``metrics`` section of a :class:`~repro.obs.export.RunReport`):
        JSON- and pickle-friendly, no live objects.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "histograms": {
                n: list(h.values) for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(
        self, snapshot: Dict[str, Any], *, skip_counter_prefixes: Iterable[str] = ()
    ) -> None:
        """Fold a :meth:`snapshot` dict into this registry, in name order.

        ``skip_counter_prefixes`` drops counters the receiver re-accounts
        itself — the pool uses it to exclude worker-side ``oracle.*``
        counters, which the parent oracle replays per *applied* verdict so
        that ``jobs=N`` counter totals stay byte-identical to serial (a
        worker may check candidates the search never applies, e.g. past a
        budget-exhaustion point).
        """
        prefixes = tuple(skip_counter_prefixes)
        for name in sorted(snapshot.get("counters", ())):
            if prefixes and name.startswith(prefixes):
                continue
            value = snapshot["counters"][name]
            if value:
                self.incr(name, value)
        for name in sorted(snapshot.get("histograms", ())):
            values = snapshot["histograms"][name]
            if values:
                self.histogram(name).values.extend(values)


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0

    def incr(self, n: int = 1) -> None:
        pass


_NULL_COUNTER = _NullCounter()


class NullMetrics:
    """The do-nothing registry instrumented code holds by default.

    Every method is a no-op; :attr:`enabled` lets hot paths skip building
    expensive metric labels altogether.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def histogram(self, name: str) -> _NullCounter:  # same no-op shape
        return _NULL_COUNTER

    def incr(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def value(self, name: str) -> int:
        return 0

    def values_of(self, name: str) -> List[float]:
        return []

    def counters(self, prefix: str = "") -> Dict[str, int]:
        return {}

    def histogram_names(self, prefix: str = "") -> List[str]:
        return []

    def as_dict(self) -> Dict[str, Number]:
        return {}

    def render_table(self, title: str = "metrics") -> str:
        return f"{title}: (disabled)"

    def reset(self) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "histograms": {}}

    def merge_snapshot(self, snapshot, *, skip_counter_prefixes=()) -> None:
        pass


#: Shared null instance — identity-comparable (``metrics is NULL_METRICS``).
NULL_METRICS = NullMetrics()
