"""``repro.obs`` — the observability layer: tracing, metrics, profiling hooks.

The paper's efficiency claims (Section 3.2, Figures 5-7) are about oracle
-call counts and wall-clock tails; this subsystem makes both visible
*inside* a search instead of only at its end:

* :class:`Tracer` — structured span/event records in Chrome Trace Event
  Format (load the ``--trace`` output at https://ui.perfetto.dev) for every
  search phase: prefix localization, recursive descent, enumerator rule
  firing, adaptation, triage rounds.
* :class:`MetricsRegistry` — named counters and histograms (oracle calls by
  outcome, cache hits/misses, prefix-reuse accounting —
  ``oracle.prefix.armed``/``.reused``/``.invalidated`` vs
  ``oracle.full_checks`` — changes generated vs. tested per rule, triage
  depth, suggestions ranked) rendered as a flat dict or a text table.
  The resilience layer (:mod:`repro.core.resilience`) counts through the
  same registry: ``oracle.crashes`` (isolated oracle failures),
  ``oracle.prefix.fallbacks`` (self-healing incremental retries),
  ``oracle.depth_rejected`` (depth-guard rejections), ``search.shed.*``
  (phases shed past the soft deadline) and ``search.degraded``.
* :class:`EventLog` — the flight recorder's JSONL lifecycle log
  (``--events``): one schema-versioned line per event (search started /
  finished, phase shed, oracle crash with traceback sample, deadline hit,
  worker crash, degradation report, final suggestion ranks).
* Exporters (:mod:`repro.obs.export`) — Prometheus text exposition of a
  registry and the :class:`RunReport` run-summary JSON document; both
  deterministic, so golden files and checked-in baselines work.
* ``python -m repro report`` (:mod:`repro.obs.report`) — aggregates
  RunReport/event-log files into summary tables and regression-diffs them
  against a baseline (``--diff``).
* Null objects (:data:`NULL_TRACER`, :data:`NULL_METRICS`,
  :data:`NULL_EVENTS`) — the defaults threaded through the hot paths, so
  instrumentation costs one no-op method call and zero allocation when
  telemetry is off.

Zero dependencies, pure stdlib.
"""

from .metrics import (  # noqa: F401
    Counter,
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from .tracer import (  # noqa: F401
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_path,
)
from .events import (  # noqa: F401
    EventLog,
    EventSchemaError,
    NULL_EVENTS,
    NullEventLog,
    SCHEMA_VERSION,
    events_of,
    read_events,
)
from .export import (  # noqa: F401
    RUN_REPORT_SCHEMA,
    ReportSchemaError,
    RunReport,
    degradation_as_dict,
    render_prometheus,
    suggestion_rows,
    summarize_histogram,
)
