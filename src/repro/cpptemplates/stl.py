"""The mini-STL: the template library the Section 4 case study exercises.

Models the slice of libstdc++ (and the ``__gnu_cxx`` extension) that the
paper's Figure 10 client uses: ``vector``, ``transform``, the functor
classes (``multiplies``, ``binder1st``, ``unary_compose``,
``pointer_to_unary_function``), and their adaptor functions (``bind1st``,
``compose1``, ``ptr_fun``).

Class templates carry *instantiation constraints* whose violations produce
gcc's deep header-located errors — e.g. ``unary_compose`` requires both
arguments to be class types, and instantiating it with a function-pointer
type yields exactly the "is not a class, struct, or union type" chain of
Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .types import (
    BOOL,
    CppType,
    DOUBLE,
    INT,
    LONG,
    VOID,
    TClass,
    TFunc,
    TPtr,
    cpp_type_name,
    is_class_type,
)

#: Pseudo header paths used in error messages, echoing Figure 11.
FUNCTIONAL_EXT_HEADER = "/usr/include/c++/ext/functional"
FUNCTIONAL_HEADER = "/usr/include/c++/bits/stl_function.h"
ALGO_HEADER = "/usr/include/c++/bits/stl_algo.h"
VECTOR_HEADER = "/usr/include/c++/bits/stl_vector.h"


@dataclass
class FunctorSignature:
    """The operator() of a functor instance."""

    params: List[CppType]
    ret: CppType


@dataclass
class ClassTemplateInfo:
    """One mini-STL class template."""

    name: str
    n_params: int
    header: str
    #: Instantiation-constraint checker: returns gcc-style messages.
    validate: Callable[[Sequence[CppType]], List[str]]
    #: operator() signature for an instance, or None (not callable /
    #: broken instance).
    call_signature: Callable[[Sequence[CppType]], Optional[FunctorSignature]]


def _no_validation(args: Sequence[CppType]) -> List[str]:
    return []


def _binary_functor(args: Sequence[CppType]) -> Optional[FunctorSignature]:
    t = args[0]
    return FunctorSignature([t, t], t)


def _unary_functor_same(args: Sequence[CppType]) -> Optional[FunctorSignature]:
    t = args[0]
    return FunctorSignature([t], t)


def _functor_call(t: CppType) -> Optional[FunctorSignature]:
    """operator() of an arbitrary functor type, if it has one."""
    if isinstance(t, TClass):
        info = CLASS_TEMPLATES.get(t.name)
        if info is not None:
            return info.call_signature(t.args)
    if isinstance(t, TFunc):
        return FunctorSignature(list(t.params), t.ret)
    return None


# -- binder1st ---------------------------------------------------------------


def _binder1st_validate(args: Sequence[CppType]) -> List[str]:
    op = args[0]
    if not is_class_type(op):
        return [
            f"{FUNCTIONAL_HEADER}: error: `{cpp_type_name(op)}' is not a class, "
            "struct, or union type"
        ]
    sig = _functor_call(op)
    if sig is None or len(sig.params) != 2:
        return [
            f"{FUNCTIONAL_HEADER}: error: no binary `operator()' in "
            f"`{cpp_type_name(op)}' for binder1st"
        ]
    return []


def _binder1st_call(args: Sequence[CppType]) -> Optional[FunctorSignature]:
    sig = _functor_call(args[0])
    if sig is None or len(sig.params) != 2:
        return None
    return FunctorSignature([sig.params[1]], sig.ret)


def _binder2nd_call(args: Sequence[CppType]) -> Optional[FunctorSignature]:
    sig = _functor_call(args[0])
    if sig is None or len(sig.params) != 2:
        return None
    return FunctorSignature([sig.params[0]], sig.ret)


# -- unary_compose -----------------------------------------------------------


def _unary_compose_validate(args: Sequence[CppType]) -> List[str]:
    """The Figure 11 constraint: both operations must be class types."""
    errors: List[str] = []
    for index, op in enumerate(args):
        if not is_class_type(op):
            name = cpp_type_name(op)
            errors.append(
                f"{FUNCTIONAL_EXT_HEADER}:128: error: `{name}' is not a class, "
                "struct, or union type"
            )
            errors.append(
                f"{FUNCTIONAL_EXT_HEADER}:136: error: `{name}' is not a class, "
                "struct, or union type"
            )
            field_name = "_M_fn1" if index == 0 else "_M_fn2"
            errors.append(
                f"{FUNCTIONAL_EXT_HEADER}:131: error: field "
                f"`__gnu_cxx::unary_compose<{cpp_type_name(args[0])}, "
                f"{cpp_type_name(args[1])}>::{field_name}' invalidly declared "
                "function type"
            )
    return errors


def _unary_compose_call(args: Sequence[CppType]) -> Optional[FunctorSignature]:
    if any(not is_class_type(a) for a in args):
        return None  # broken instance: no usable operator()
    outer = _functor_call(args[0])
    inner = _functor_call(args[1])
    if outer is None or inner is None:
        return None
    if len(outer.params) != 1 or len(inner.params) != 1:
        return None
    return FunctorSignature([inner.params[0]], outer.ret)


# -- pointer_to_unary_function -------------------------------------------------


def _ptr_fun_call(args: Sequence[CppType]) -> Optional[FunctorSignature]:
    arg_type, ret_type = args[0], args[1]
    return FunctorSignature([arg_type], ret_type)


CLASS_TEMPLATES: Dict[str, ClassTemplateInfo] = {
    "multiplies": ClassTemplateInfo(
        "multiplies", 1, FUNCTIONAL_HEADER, _no_validation, _binary_functor
    ),
    "plus": ClassTemplateInfo(
        "plus", 1, FUNCTIONAL_HEADER, _no_validation, _binary_functor
    ),
    "minus": ClassTemplateInfo(
        "minus", 1, FUNCTIONAL_HEADER, _no_validation, _binary_functor
    ),
    "negate": ClassTemplateInfo(
        "negate", 1, FUNCTIONAL_HEADER, _no_validation, _unary_functor_same
    ),
    "binder1st": ClassTemplateInfo(
        "binder1st", 1, FUNCTIONAL_HEADER, _binder1st_validate, _binder1st_call
    ),
    "binder2nd": ClassTemplateInfo(
        "binder2nd", 1, FUNCTIONAL_HEADER, _binder1st_validate, _binder2nd_call
    ),
    "unary_compose": ClassTemplateInfo(
        "unary_compose", 2, FUNCTIONAL_EXT_HEADER, _unary_compose_validate,
        _unary_compose_call,
    ),
    "pointer_to_unary_function": ClassTemplateInfo(
        "pointer_to_unary_function", 2, FUNCTIONAL_HEADER, _no_validation, _ptr_fun_call
    ),
    "vector": ClassTemplateInfo(
        "vector", 1, VECTOR_HEADER, _no_validation, lambda args: None
    ),
}


def functor_call_signature(t: CppType) -> Optional[FunctorSignature]:
    """Public resolver used by the checker for ``obj(args)`` calls."""
    return _functor_call(t)


def validate_instance(t: CppType) -> List[str]:
    """Instantiation-constraint errors for a class-template instance."""
    if isinstance(t, TClass):
        info = CLASS_TEMPLATES.get(t.name)
        if info is not None and len(t.args) == info.n_params:
            return info.validate(t.args)
    return []


#: Members of vector<T>; (params, result) with T filled in by the checker.
VECTOR_MEMBERS: Dict[str, Callable[[CppType], Tuple[List[CppType], CppType]]] = {
    "begin": lambda t: ([], TPtr(t)),
    "end": lambda t: ([], TPtr(t)),
    "size": lambda t: ([], INT),
    "push_back": lambda t: ([t], VOID),
    "front": lambda t: ([], t),
    "back": lambda t: ([], t),
}

#: Plain builtin functions.
BUILTIN_FUNCTIONS: Dict[str, TFunc] = {
    "labs": TFunc(LONG, [LONG]),
    "abs": TFunc(INT, [INT]),
    "fabs": TFunc(DOUBLE, [DOUBLE]),
    "sqrt": TFunc(DOUBLE, [DOUBLE]),
}
