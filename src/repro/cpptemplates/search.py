"""SEMINAL for C++ template functions (Section 4.2).

The Caml algorithm largely carries over, with the paper's four adaptations:

* **Scope** — C++ is explicitly typed, so search is confined to the function
  containing the reported error (identified from the first diagnostic's
  client line), not the whole program.
* **No universal wildcard** — there is no expression of every type, so
  removal means *statement deletion* and *hoisting* (``e0(e1, e2);`` becomes
  ``e0; e1; e2;``), not a ``raise Foo`` substitute.
* **Different constructive changes** — STL-specific rewrites, above all
  wrapping/unwrapping arguments with ``ptr_fun`` (Figure 10's fix), plus
  ``.``/``->`` swaps and the usual call-argument surgery.
* **Success = error-set improvement** — C++ cascades diagnostics, so a
  change succeeds when it "eliminates some errors while introducing no new
  ones" (Section 4.2), judged on message keys; a built-in notion of triage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import NULL_METRICS, NULL_TRACER, format_path
from repro.tree import Node, Path, get_at, node_size, replace_at, walk

from .ast_nodes import (
    Block,
    CCall,
    CExpr,
    CMember,
    CName,
    ExprStmt,
    FunctionDef,
    CStmt,
    TranslationUnit,
)
from .parser import parse_cpp
from .pretty import pretty_cpp, pretty_cpp_expr, pretty_cpp_stmt
from .typecheck import CppCheckResult, typecheck_cpp


@dataclass(eq=False)
class CppChange:
    """One candidate rewrite of the translation unit."""

    path: Path
    original: Node
    replacement: Node
    rule: str
    description: str


@dataclass(eq=False)
class CppSuggestion:
    """A change that eliminated errors without introducing new ones."""

    change: CppChange
    program: TranslationUnit
    errors_before: int
    errors_after: int

    @property
    def fixes_everything(self) -> bool:
        return self.errors_after == 0

    def render(self) -> str:
        original = pretty_cpp(self.change.original)
        replacement = pretty_cpp(self.change.replacement)
        message = f"Try replacing `{original}' with `{replacement}'"
        if self.change.description:
            message += f" ({self.change.description})"
        if not self.fixes_everything:
            remaining = self.errors_after
            message += f"\n({remaining} other error(s) remain elsewhere)"
        return message


@dataclass
class CppExplainResult:
    ok: bool
    program: TranslationUnit
    check: CppCheckResult
    suggestions: List[CppSuggestion] = field(default_factory=list)
    checker_calls: int = 0

    @property
    def best(self) -> Optional[CppSuggestion]:
        return self.suggestions[0] if self.suggestions else None

    def render_best(self) -> str:
        if self.ok:
            return "The program compiles."
        if self.best is None:
            return self.check.render()
        return self.best.render()


class CppSearcher:
    """The C++ changer: enumerate rewrites, judge by error-set improvement.

    ``tracer``/``metrics`` mirror the MiniML searcher's profiling hooks:
    ``cpp.search``/``cpp.localize``/``cpp.enumerate``/``cpp.test`` spans and
    ``cpp.*`` counters, null (free) by default.
    """

    def __init__(self, max_checker_calls: int = 2000, tracer=None, metrics=None):
        self.max_checker_calls = max_checker_calls
        self.checker_calls = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # ------------------------------------------------------------------

    def explain(self, unit: TranslationUnit) -> CppExplainResult:
        with self.tracer.span("cpp.search", functions=len(unit.functions)) as sp:
            result = self._explain(unit)
            sp.set("checker_calls", self.checker_calls)
            sp.set("suggestions", len(result.suggestions))
            return result

    def _explain(self, unit: TranslationUnit) -> CppExplainResult:
        baseline = self._check(unit)
        if baseline.ok:
            return CppExplainResult(True, unit, baseline, checker_calls=self.checker_calls)
        result = CppExplainResult(False, unit, baseline, checker_calls=0)
        with self.tracer.span("cpp.localize", errors=len(baseline.errors)):
            target = self._function_containing(unit, baseline)
        if target is None:
            result.checker_calls = self.checker_calls
            return result
        fn_path = self._path_of_function(unit, target)
        baseline_keys = _key_multiset(baseline)
        with self.tracer.span("cpp.enumerate") as enum_span:
            changes = self._enumerate(unit, fn_path, target)
            enum_span.set("generated", len(changes))
        if self.metrics.enabled:
            for change in changes:
                self.metrics.incr(f"cpp.enum.generated.{change.rule}")
        suggestions: List[CppSuggestion] = []
        for change in changes:
            if self.checker_calls >= self.max_checker_calls:
                self.metrics.incr("cpp.budget_exceeded")
                break
            candidate = replace_at(unit, change.path, change.replacement)
            if self.tracer.enabled:
                span = self.tracer.span(
                    "cpp.test", rule=change.rule, path=format_path(change.path)
                )
            else:
                span = self.tracer.span("cpp.test")
            with span as sp:
                after = self._check(candidate)
                improved = _improves(baseline_keys, _key_multiset(after))
                sp.set("improved", improved)
            self.metrics.incr(f"cpp.enum.tested.{change.rule}")
            if improved:
                self.metrics.incr(f"cpp.enum.success.{change.rule}")
                suggestions.append(
                    CppSuggestion(
                        change=change,
                        program=candidate,
                        errors_before=len(baseline.errors),
                        errors_after=len(after.errors),
                    )
                )
        result.suggestions = _rank(suggestions)
        result.checker_calls = self.checker_calls
        self.metrics.incr("cpp.suggestions", len(result.suggestions))
        return result

    # ------------------------------------------------------------------

    def _check(self, unit: TranslationUnit) -> CppCheckResult:
        self.checker_calls += 1
        result = typecheck_cpp(unit)
        self.metrics.incr("cpp.checker_calls")
        self.metrics.incr(
            "cpp.checker_calls.ok" if result.ok else "cpp.checker_calls.fail"
        )
        return result

    def _function_containing(
        self, unit: TranslationUnit, check: CppCheckResult
    ) -> Optional[FunctionDef]:
        """The non-template function whose lines cover the first error.

        "Simple processing of the error message identifies the location"
        (Section 4.2, footnote 8).
        """
        first = check.errors[0]
        best: Optional[FunctionDef] = None
        for fn in unit.functions:
            if fn.is_template or fn.span is None:
                continue
            if fn.span.start_line <= first.client_line:
                if best is None or fn.span.start_line >= best.span.start_line:
                    best = fn
        return best or next((f for f in unit.functions if not f.is_template), None)

    def _path_of_function(self, unit: TranslationUnit, fn: FunctionDef) -> Path:
        for i, candidate in enumerate(unit.functions):
            if candidate is fn:
                return (("functions", i),)
        raise ValueError("function not in unit")

    # ------------------------------------------------------------------
    # Change enumeration (the C++ enumerator)
    # ------------------------------------------------------------------

    def _enumerate(
        self, unit: TranslationUnit, fn_path: Path, fn: FunctionDef
    ) -> List[CppChange]:
        changes: List[CppChange] = []
        for rel_path, node in walk(fn):
            path = fn_path + rel_path
            if isinstance(node, CCall):
                changes.extend(self._call_changes(path, node))
            if isinstance(node, CMember):
                changes.append(
                    CppChange(
                        path,
                        node,
                        CMember(node.obj, node.member, arrow=not node.arrow),
                        "dot-arrow-swap",
                        f"use `{'.' if node.arrow else '->'}' instead of "
                        f"`{'->' if node.arrow else '.'}'",
                    )
                )
            if isinstance(node, Block):
                changes.extend(self._block_changes(path, node))
        return changes

    def _call_changes(self, path: Path, node: CCall) -> List[CppChange]:
        changes: List[CppChange] = []
        for i, arg in enumerate(node.args):
            # ptr_fun(arg): the Figure 10 fix — function pointer to functor.
            wrapped_args = list(node.args)
            wrapped_args[i] = CCall(CName("ptr_fun"), [arg])
            changes.append(
                CppChange(
                    path + (("args", i),),
                    arg,
                    wrapped_args[i],
                    "wrap-ptr-fun",
                    "wrap the function pointer in ptr_fun to obtain a functor",
                )
            )
            # Unwrap ptr_fun(x) -> x: some APIs want the raw pointer.
            if (
                isinstance(arg, CCall)
                and isinstance(arg.func, CName)
                and arg.func.name == "ptr_fun"
                and len(arg.args) == 1
            ):
                changes.append(
                    CppChange(
                        path + (("args", i),),
                        arg,
                        arg.args[0],
                        "unwrap-ptr-fun",
                        "pass the raw function pointer instead of a ptr_fun functor",
                    )
                )
            # Drop an argument.
            if len(node.args) >= 2:
                rest = node.args[:i] + node.args[i + 1 :]
                changes.append(
                    CppChange(path, node, CCall(node.func, rest), "drop-arg",
                              f"remove argument {i + 1}")
                )
        # Permute (adjacent swaps keep the count linear).
        for i in range(len(node.args) - 1):
            swapped = list(node.args)
            swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
            changes.append(
                CppChange(path, node, CCall(node.func, swapped), "permute-args",
                          f"swap arguments {i + 1} and {i + 2}")
            )
        return changes

    def _block_changes(self, path: Path, block: Block) -> List[CppChange]:
        """Statement removal and call hoisting (the C++ 'wildcard')."""
        changes: List[CppChange] = []
        for i, stmt in enumerate(block.stmts):
            rest = block.stmts[:i] + block.stmts[i + 1 :]
            changes.append(
                CppChange(path, block, Block(rest), "remove-stmt",
                          f"remove the statement `{pretty_cpp_stmt(stmt).strip()}'")
            )
            # Hoist: e0(e1, e2); -> e1; e2;   (drops e0's constraints while
            # keeping the argument expressions checkable on their own).
            if isinstance(stmt, ExprStmt) and isinstance(stmt.expr, CCall):
                hoisted: List[CStmt] = [ExprStmt(arg) for arg in stmt.expr.args]
                changes.append(
                    CppChange(
                        path,
                        block,
                        Block(block.stmts[:i] + hoisted + block.stmts[i + 1 :]),
                        "hoist-call",
                        "check the call's arguments as separate statements",
                    )
                )
        return changes


def _key_multiset(check: CppCheckResult) -> Dict[str, int]:
    keys: Dict[str, int] = {}
    for key in check.error_keys:
        keys[key] = keys.get(key, 0) + 1
    return keys


def _improves(before: Dict[str, int], after: Dict[str, int]) -> bool:
    """Eliminates some errors while introducing no new ones (Section 4.2)."""
    if sum(after.values()) >= sum(before.values()):
        return False
    for key, count in after.items():
        if count > before.get(key, 0):
            return False
    return True


_RULE_ORDER = {
    "wrap-ptr-fun": 0,
    "unwrap-ptr-fun": 0,
    "dot-arrow-swap": 1,
    "permute-args": 1,
    "drop-arg": 2,
    "hoist-call": 3,
    "remove-stmt": 4,
}


def _rank(suggestions: List[CppSuggestion]) -> List[CppSuggestion]:
    """Complete fixes first, then constructive over destructive, then small."""
    return sorted(
        suggestions,
        key=lambda s: (
            0 if s.fixes_everything else 1,
            s.errors_after,
            _RULE_ORDER.get(s.change.rule, 2),
            node_size(s.change.original),
        ),
    )


def explain_cpp(
    source: Union[str, TranslationUnit],
    max_checker_calls: int = 2000,
    tracer=None,
    metrics=None,
) -> CppExplainResult:
    """One call from C++ source text to ranked template-error suggestions.

    ``tracer``/``metrics`` are the :mod:`repro.obs` profiling hooks (null,
    i.e. free, by default).

    >>> result = explain_cpp('void f() { int x = 1; }')
    >>> result.ok
    True
    """
    searcher = CppSearcher(max_checker_calls, tracer=tracer, metrics=metrics)
    if isinstance(source, str):
        with searcher.tracer.span("cpp.parse", chars=len(source)):
            unit = parse_cpp(source)
    else:
        unit = source
    return searcher.explain(unit)
