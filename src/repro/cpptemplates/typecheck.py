"""The MiniCpp type-checker: monomorphic checking + instantiation-time
template checking with gcc-style cascading error chains.

Two properties reproduce Section 4.1's pathology:

* template bodies (user templates *and* the mini-STL's adaptors) are checked
  only when instantiated, so a client mistake surfaces as errors located in
  library headers "several layers deep in template calls", each carrying an
  ``instantiated from here`` note pointing back at the client line;
* checking continues after an error (gcc's cascading behaviour), so one bad
  argument produces the multi-error chains of Figure 11 — which is why the
  C++ searcher judges success as "eliminates some errors while introducing
  no new ones" rather than as a boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .ast_nodes import (
    Block,
    CBinop,
    CCall,
    CExpr,
    CIndex,
    CLit,
    CMember,
    CName,
    CTemplateId,
    CUnop,
    DeclStmt,
    ExprStmt,
    FunctionDef,
    IfStmt,
    Param,
    ReturnStmt,
    TranslationUnit,
)
from .stl import (
    ALGO_HEADER,
    BUILTIN_FUNCTIONS,
    CLASS_TEMPLATES,
    FUNCTIONAL_EXT_HEADER,
    FUNCTIONAL_HEADER,
    VECTOR_MEMBERS,
    functor_call_signature,
    validate_instance,
)
from .types import (
    BOOL,
    CppType,
    DOUBLE,
    DeductionError,
    INT,
    LONG,
    STRING,
    TClass,
    TFunc,
    TParam,
    TPtr,
    TRef,
    TPrim,
    VOID,
    cpp_type_name,
    deduce,
    strip_ref,
    substitute,
)

#: Sentinel type carried by expressions that already failed; operations on
#: it are silently accepted to avoid drowning the user in derived noise
#: (gcc suppresses similarly).
ERROR_TYPE = TPrim("<error>")

_LIT_TYPES = {"int": INT, "long": LONG, "double": DOUBLE, "bool": BOOL, "string": STRING}

_MAX_ERRORS = 40
_MAX_INSTANTIATION_DEPTH = 16


@dataclass(eq=False)
class CppError:
    """One gcc-style diagnostic."""

    client_line: int
    message: str
    notes: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Stable identity for the searcher's error-set comparison."""
        return self.message

    def render(self, filename: str = "client.cpp") -> str:
        lines = []
        for note in self.notes:
            lines.append(note)
        lines.append(self.message)
        lines.append(f"{filename}:{self.client_line}:   instantiated from here"
                     if self.notes else f"{filename}:{self.client_line}: {self.message}")
        # Keep the gcc flavour: header-located message plus client locus.
        if self.notes:
            return "\n".join(self.notes + [self.message,
                                           f"{filename}:{self.client_line}:   instantiated from here"])
        return f"{filename}:{self.client_line}: {self.message}"


@dataclass
class CppCheckResult:
    errors: List[CppError] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def error_keys(self) -> List[str]:
        return [e.key for e in self.errors]

    def render(self, filename: str = "client.cpp") -> str:
        if self.ok:
            return "(no errors)"
        return "\n".join(e.render(filename) for e in self.errors)


def _widens_to(src: CppType, dst: CppType) -> bool:
    order = {"bool": 0, "int": 1, "long": 2, "double": 3}
    if isinstance(src, TPrim) and isinstance(dst, TPrim):
        if src.name in order and dst.name in order:
            return order[src.name] <= order[dst.name]
    return False


def assignable(src: CppType, dst: CppType) -> bool:
    src = strip_ref(src)
    dst = strip_ref(dst)
    if src is ERROR_TYPE or dst is ERROR_TYPE:
        return True
    return src == dst or _widens_to(src, dst)


class CppChecker:
    """One checking pass over a translation unit."""

    def __init__(self, unit: TranslationUnit):
        self.unit = unit
        self.errors: List[CppError] = []
        self.user_functions: Dict[str, FunctionDef] = {f.name: f for f in unit.functions}
        self._instantiation_stack: List[Tuple[str, str]] = []
        self._client_line = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def check(self) -> CppCheckResult:
        for fn in self.unit.functions:
            if fn.is_template:
                continue  # checked per instantiation only
            self._check_function_body(fn, bindings={})
        return CppCheckResult(self.errors)

    # ------------------------------------------------------------------
    # Error plumbing
    # ------------------------------------------------------------------

    def _line_of(self, node) -> int:
        if node is not None and node.span is not None:
            return node.span.start_line
        return self._client_line

    def _error(self, node, message: str, notes: Optional[List[str]] = None) -> None:
        if len(self.errors) >= _MAX_ERRORS:
            return
        line = self._client_line or self._line_of(node)
        if not self._instantiation_stack:
            line = self._line_of(node)
        self.errors.append(CppError(client_line=line, message=message, notes=notes or []))

    def _instantiation_notes(self, header: str, description: str) -> List[str]:
        return [f"{header}: In instantiation of `{description}':"]

    # ------------------------------------------------------------------
    # Functions and statements
    # ------------------------------------------------------------------

    def _check_function_body(self, fn: FunctionDef, bindings: Dict[str, CppType]) -> None:
        scope: Dict[str, CppType] = {}
        for param in fn.params:
            scope[param.name] = substitute(param.param_type, bindings)
        ret = substitute(fn.ret_type, bindings)
        self._check_block(fn.body, [scope], ret, bindings)

    def _check_block(
        self,
        block: Block,
        scopes: List[Dict[str, CppType]],
        ret: CppType,
        bindings: Dict[str, CppType],
    ) -> None:
        scopes = scopes + [{}]
        for stmt in block.stmts:
            if isinstance(stmt, DeclStmt):
                declared = substitute(stmt.decl_type, bindings)
                self._validate_type(stmt, declared)
                if stmt.init is not None:
                    init_t = self.type_of(stmt.init, scopes, bindings)
                    if not assignable(init_t, declared) and not _is_ctor_call(stmt.init):
                        self._error(
                            stmt,
                            f"error: cannot convert `{cpp_type_name(init_t)}' to "
                            f"`{cpp_type_name(declared)}' in initialization",
                        )
                scopes[-1][stmt.name] = declared
            elif isinstance(stmt, ExprStmt):
                self.type_of(stmt.expr, scopes, bindings)
            elif isinstance(stmt, ReturnStmt):
                if stmt.value is None:
                    if strip_ref(ret) != VOID:
                        self._error(stmt, "error: return-statement with no value")
                else:
                    value_t = self.type_of(stmt.value, scopes, bindings)
                    if strip_ref(ret) == VOID:
                        self._error(stmt, "error: return-statement with a value, "
                                          "in function returning 'void'")
                    elif not assignable(value_t, ret):
                        self._error(
                            stmt,
                            f"error: cannot convert `{cpp_type_name(value_t)}' to "
                            f"`{cpp_type_name(ret)}' in return",
                        )
            elif isinstance(stmt, IfStmt):
                cond_t = self.type_of(stmt.cond, scopes, bindings)
                if not assignable(cond_t, BOOL) and not _widens_to(BOOL, strip_ref(cond_t)):
                    # ints are fine as conditions in C++
                    if not isinstance(strip_ref(cond_t), TPrim):
                        self._error(stmt, f"error: could not convert "
                                          f"`{cpp_type_name(cond_t)}' to `bool'")
                self._check_block(stmt.then_block, scopes, ret, bindings)
                if stmt.else_block is not None:
                    self._check_block(stmt.else_block, scopes, ret, bindings)
            else:  # pragma: no cover - parser emits nothing else
                raise TypeError(f"unknown statement {type(stmt).__name__}")

    def _validate_type(self, node, t: CppType) -> None:
        for message in validate_instance(strip_ref(t)):
            self._error(node, message)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def type_of(
        self, e: CExpr, scopes: List[Dict[str, CppType]], bindings: Dict[str, CppType]
    ) -> CppType:
        if isinstance(e, CLit):
            return _LIT_TYPES[e.kind]
        if isinstance(e, CName):
            return self._name_type(e, scopes)
        if isinstance(e, CTemplateId):
            # Bare template-id (functor class used as a value before call).
            return TClass(e.name, [substitute(a, bindings) for a in e.type_args])
        if isinstance(e, CCall):
            return self._call_type(e, scopes, bindings)
        if isinstance(e, CMember):
            return self._member_type(e, scopes, bindings)
        if isinstance(e, CBinop):
            return self._binop_type(e, scopes, bindings)
        if isinstance(e, CUnop):
            return self._unop_type(e, scopes, bindings)
        if isinstance(e, CIndex):
            obj_t = strip_ref(self.type_of(e.obj, scopes, bindings))
            self.type_of(e.index, scopes, bindings)
            if isinstance(obj_t, TClass) and obj_t.name == "vector":
                return obj_t.args[0]
            if isinstance(obj_t, TPtr):
                return obj_t.inner
            if obj_t is not ERROR_TYPE:
                self._error(e, f"error: no match for 'operator[]' on "
                               f"`{cpp_type_name(obj_t)}'")
            return ERROR_TYPE
        raise TypeError(f"unknown expression {type(e).__name__}")

    def _name_type(self, e: CName, scopes: List[Dict[str, CppType]]) -> CppType:
        for scope in reversed(scopes):
            if e.name in scope:
                return scope[e.name]
        if e.name in BUILTIN_FUNCTIONS:
            return BUILTIN_FUNCTIONS[e.name]
        fn = self.user_functions.get(e.name)
        if fn is not None and not fn.is_template:
            return TFunc(fn.ret_type, [p.param_type for p in fn.params])
        self._error(e, f"error: `{e.name}' undeclared (first use this function)")
        return ERROR_TYPE

    def _member_type(
        self, e: CMember, scopes: List[Dict[str, CppType]], bindings: Dict[str, CppType]
    ) -> CppType:
        obj_t = strip_ref(self.type_of(e.obj, scopes, bindings))
        if obj_t is ERROR_TYPE:
            return ERROR_TYPE
        is_pointer = isinstance(obj_t, TPtr)
        if e.arrow and not is_pointer:
            self._error(
                e,
                f"error: base operand of `->' has non-pointer type "
                f"`{cpp_type_name(obj_t)}' (maybe you meant to use `.'?)",
            )
            return ERROR_TYPE
        if not e.arrow and is_pointer:
            self._error(
                e,
                f"error: request for member `{e.member}' in a pointer type "
                f"`{cpp_type_name(obj_t)}' (maybe you meant to use `->'?)",
            )
            return ERROR_TYPE
        target = obj_t.inner if is_pointer else obj_t
        if isinstance(target, TClass) and target.name == "vector":
            member = VECTOR_MEMBERS.get(e.member)
            if member is None:
                self._error(e, f"error: `{e.member}' is not a member of "
                               f"`{cpp_type_name(target)}'")
                return ERROR_TYPE
            params, result = member(target.args[0])
            return TFunc(result, params)
        self._error(e, f"error: `{e.member}' is not a member of "
                       f"`{cpp_type_name(target)}'")
        return ERROR_TYPE

    def _binop_type(
        self, e: CBinop, scopes: List[Dict[str, CppType]], bindings: Dict[str, CppType]
    ) -> CppType:
        left = strip_ref(self.type_of(e.left, scopes, bindings))
        right = strip_ref(self.type_of(e.right, scopes, bindings))
        if left is ERROR_TYPE or right is ERROR_TYPE:
            return ERROR_TYPE
        if e.op in ("==", "!=", "<", ">", "<=", ">="):
            if assignable(left, right) or assignable(right, left):
                return BOOL
        elif e.op in ("&&", "||"):
            return BOOL
        else:
            if assignable(left, right):
                return right
            if assignable(right, left):
                return left
        self._error(
            e,
            f"error: no match for 'operator{e.op}' in "
            f"`{cpp_type_name(left)} {e.op} {cpp_type_name(right)}'",
        )
        return ERROR_TYPE

    def _unop_type(
        self, e: CUnop, scopes: List[Dict[str, CppType]], bindings: Dict[str, CppType]
    ) -> CppType:
        t = strip_ref(self.type_of(e.operand, scopes, bindings))
        if t is ERROR_TYPE:
            return ERROR_TYPE
        if e.op == "*":
            if isinstance(t, TPtr):
                return t.inner
            self._error(e, f"error: invalid type argument of `unary *' "
                           f"(have `{cpp_type_name(t)}')")
            return ERROR_TYPE
        if e.op == "&":
            return TPtr(t)
        if e.op == "!":
            return BOOL
        return t  # unary minus

    # ------------------------------------------------------------------
    # Calls (the heart of Section 4)
    # ------------------------------------------------------------------

    def _call_type(
        self, e: CCall, scopes: List[Dict[str, CppType]], bindings: Dict[str, CppType]
    ) -> CppType:
        arg_types = [strip_ref(self.type_of(a, scopes, bindings)) for a in e.args]
        # Constructor of an explicit template-id: multiplies<long>().
        if isinstance(e.func, CTemplateId):
            instance = TClass(
                e.func.name, [substitute(a, bindings) for a in e.func.type_args]
            )
            self._validate_type(e, instance)
            return instance
        # Named callee: builtin templates, user functions/templates, values.
        if isinstance(e.func, CName):
            name = e.func.name
            handler = _BUILTIN_TEMPLATES.get(name)
            if handler is not None:
                return handler(self, e, arg_types)
            fn = self.user_functions.get(name)
            if fn is not None:
                return self._user_call(e, fn, arg_types)
            if name in BUILTIN_FUNCTIONS:
                return self._plain_call(e, name, BUILTIN_FUNCTIONS[name], arg_types)
        callee_t = strip_ref(self.type_of(e.func, scopes, bindings))
        if callee_t is ERROR_TYPE:
            return ERROR_TYPE
        signature = functor_call_signature(callee_t)
        if signature is None:
            self._error(
                e,
                f"error: no match for call to `({cpp_type_name(callee_t)}) "
                f"({', '.join(cpp_type_name(t) for t in arg_types)}{'&' if arg_types else ''})'",
            )
            return ERROR_TYPE
        return self._apply_signature(e, cpp_type_name(callee_t), signature.params,
                                     signature.ret, arg_types)

    def _plain_call(self, e: CCall, name: str, fn_type: TFunc, arg_types) -> CppType:
        return self._apply_signature(e, name, fn_type.params, fn_type.ret, arg_types)

    def _apply_signature(self, e, name: str, params, ret, arg_types) -> CppType:
        if len(params) != len(arg_types):
            self._error(
                e,
                f"error: wrong number of arguments to `{name}' "
                f"(expected {len(params)}, got {len(arg_types)})",
            )
            return ERROR_TYPE
        for param, arg in zip(params, arg_types):
            if not assignable(arg, param):
                self._error(
                    e,
                    f"error: cannot convert `{cpp_type_name(arg)}' to "
                    f"`{cpp_type_name(param)}' in call to `{name}'",
                )
        return ret

    def _user_call(self, e: CCall, fn: FunctionDef, arg_types) -> CppType:
        if not fn.is_template:
            return self._plain_call(
                e, fn.name, TFunc(fn.ret_type, [p.param_type for p in fn.params]), arg_types
            )
        # Template-function call: deduce, then instantiate and check body.
        if len(fn.params) != len(arg_types):
            self._error(
                e,
                f"error: wrong number of arguments to template function `{fn.name}'",
            )
            return ERROR_TYPE
        bindings: Dict[str, CppType] = {}
        try:
            for param, arg in zip(fn.params, arg_types):
                deduce(param.param_type, arg, bindings)
            for tp in fn.template_params:
                if tp not in bindings:
                    raise DeductionError(f"cannot deduce template parameter {tp}")
        except DeductionError as err:
            self._error(e, f"error: no matching function for call to `{fn.name}' ({err})")
            return ERROR_TYPE
        description = (
            fn.name + "<" + ", ".join(cpp_type_name(bindings[p]) for p in fn.template_params) + ">"
        )
        if len(self._instantiation_stack) >= _MAX_INSTANTIATION_DEPTH:
            return substitute(fn.ret_type, bindings)
        prior_errors = len(self.errors)
        self._instantiation_stack.append((fn.name, description))
        saved_line = self._client_line
        if not saved_line:
            self._client_line = self._line_of(e)
        try:
            self._check_function_body(fn, bindings)
        finally:
            self._instantiation_stack.pop()
            self._client_line = saved_line
        # Annotate any errors raised inside the instantiation with the chain.
        for error in self.errors[prior_errors:]:
            error.notes = [
                f"client.cpp: In instantiation of `{description}':"
            ] + error.notes
        return substitute(fn.ret_type, bindings)


def _is_ctor_call(e: CExpr) -> bool:
    return isinstance(e, CCall) and isinstance(e.func, CTemplateId) and e.func.name == "__ctor"


# ---------------------------------------------------------------------------
# Builtin template functions (the mini-STL's adaptors and algorithms)
# ---------------------------------------------------------------------------


def _bt_transform(checker: CppChecker, e: CCall, arg_types) -> CppType:
    if len(arg_types) != 4:
        checker._error(e, "error: no matching function for call to `transform' "
                          f"(takes 4 arguments, got {len(arg_types)})")
        return ERROR_TYPE
    first, last, out, op = arg_types
    if any(t is ERROR_TYPE for t in arg_types):
        return ERROR_TYPE
    for name, t in (("first", first), ("last", last), ("result", out)):
        if not isinstance(t, TPtr):
            checker._error(
                e,
                f"error: no matching function for call to `transform' "
                f"(`{cpp_type_name(t)}' is not an iterator)",
            )
            return ERROR_TYPE
    elem = first.inner
    signature = functor_call_signature(op)
    description = (
        "_OutputIterator std::transform(_InputIterator, _InputIterator, "
        f"_OutputIterator, _UnaryOperation) [with _UnaryOperation = {cpp_type_name(op)}]"
    )
    if signature is None or len(signature.params) != 1:
        checker._error(
            e,
            f"{ALGO_HEADER}:789: error: no match for call to "
            f"`({cpp_type_name(op)}) ({cpp_type_name(elem)}&)'",
            notes=[f"{ALGO_HEADER}: In function `{description}':"],
        )
        return out
    if not assignable(elem, signature.params[0]):
        checker._error(
            e,
            f"{ALGO_HEADER}:789: error: cannot convert `{cpp_type_name(elem)}' to "
            f"`{cpp_type_name(signature.params[0])}' in call to "
            f"`({cpp_type_name(op)})'",
            notes=[f"{ALGO_HEADER}: In function `{description}':"],
        )
        return out
    if not assignable(signature.ret, out.inner):
        checker._error(
            e,
            f"{ALGO_HEADER}:790: error: cannot convert `{cpp_type_name(signature.ret)}'"
            f" to `{cpp_type_name(out.inner)}' in assignment",
            notes=[f"{ALGO_HEADER}: In function `{description}':"],
        )
    return out


def _bt_for_each(checker: CppChecker, e: CCall, arg_types) -> CppType:
    if len(arg_types) != 3:
        checker._error(e, "error: no matching function for call to `for_each'")
        return ERROR_TYPE
    first, last, op = arg_types
    if any(t is ERROR_TYPE for t in arg_types):
        return ERROR_TYPE
    if not isinstance(first, TPtr):
        checker._error(e, "error: no matching function for call to `for_each' "
                          f"(`{cpp_type_name(first)}' is not an iterator)")
        return ERROR_TYPE
    elem = first.inner
    signature = functor_call_signature(op)
    if signature is None or len(signature.params) != 1 or not assignable(elem, signature.params[0]):
        checker._error(
            e,
            f"{ALGO_HEADER}:158: error: no match for call to "
            f"`({cpp_type_name(op)}) ({cpp_type_name(elem)}&)'",
            notes=[f"{ALGO_HEADER}: In function `std::for_each':"],
        )
    return op


def _bt_compose1(checker: CppChecker, e: CCall, arg_types) -> CppType:
    if len(arg_types) != 2:
        checker._error(e, "error: no matching function for call to `compose1'")
        return ERROR_TYPE
    op1, op2 = arg_types
    if op1 is ERROR_TYPE or op2 is ERROR_TYPE:
        return ERROR_TYPE
    instance = TClass("unary_compose", [op1, op2])
    # compose1's body instantiates unary_compose<Op1, Op2>; constraint
    # violations surface *here*, located in the extension header, with the
    # client call as "instantiated from here" — exactly Figure 11.
    description = (
        f"__gnu_cxx::unary_compose<{cpp_type_name(op1)}, {cpp_type_name(op2)}>"
    )
    for message in validate_instance(instance):
        checker._error(
            e, message,
            notes=[f"{FUNCTIONAL_EXT_HEADER}: In instantiation of `{description}':"],
        )
    return instance


def _bt_bind1st(checker: CppChecker, e: CCall, arg_types) -> CppType:
    if len(arg_types) != 2:
        checker._error(e, "error: no matching function for call to `bind1st'")
        return ERROR_TYPE
    op, value = arg_types
    if op is ERROR_TYPE:
        return ERROR_TYPE
    instance = TClass("binder1st", [op])
    for message in validate_instance(instance):
        checker._error(
            e, message,
            notes=[f"{FUNCTIONAL_HEADER}: In instantiation of "
                   f"`std::binder1st<{cpp_type_name(op)}>':"],
        )
    signature = functor_call_signature(op)
    if signature is not None and len(signature.params) == 2:
        if not assignable(value, signature.params[0]):
            checker._error(
                e,
                f"error: cannot convert `{cpp_type_name(value)}' to "
                f"`{cpp_type_name(signature.params[0])}' in call to `bind1st'",
            )
    return instance


def _bt_bind2nd(checker: CppChecker, e: CCall, arg_types) -> CppType:
    if len(arg_types) != 2:
        checker._error(e, "error: no matching function for call to `bind2nd'")
        return ERROR_TYPE
    op, value = arg_types
    if op is ERROR_TYPE:
        return ERROR_TYPE
    instance = TClass("binder2nd", [op])
    for message in validate_instance(instance):
        checker._error(
            e, message,
            notes=[f"{FUNCTIONAL_HEADER}: In instantiation of "
                   f"`std::binder2nd<{cpp_type_name(op)}>':"],
        )
    signature = functor_call_signature(op)
    if signature is not None and len(signature.params) == 2:
        if not assignable(value, signature.params[1]):
            checker._error(
                e,
                f"error: cannot convert `{cpp_type_name(value)}' to "
                f"`{cpp_type_name(signature.params[1])}' in call to `bind2nd'",
            )
    return instance


def _bt_count_if(checker: CppChecker, e: CCall, arg_types) -> CppType:
    if len(arg_types) != 3:
        checker._error(e, "error: no matching function for call to `count_if'")
        return ERROR_TYPE
    first, last, pred = arg_types
    if any(t is ERROR_TYPE for t in arg_types):
        return ERROR_TYPE
    if not isinstance(first, TPtr):
        checker._error(e, "error: no matching function for call to `count_if' "
                          f"(`{cpp_type_name(first)}' is not an iterator)")
        return ERROR_TYPE
    elem = first.inner
    signature = functor_call_signature(pred)
    if signature is None or len(signature.params) != 1 or not assignable(elem, signature.params[0]):
        checker._error(
            e,
            f"{ALGO_HEADER}:401: error: no match for call to "
            f"`({cpp_type_name(pred)}) ({cpp_type_name(elem)}&)'",
            notes=[f"{ALGO_HEADER}: In function `std::count_if':"],
        )
    return INT


def _bt_accumulate(checker: CppChecker, e: CCall, arg_types) -> CppType:
    if len(arg_types) != 3:
        checker._error(e, "error: no matching function for call to `accumulate'")
        return ERROR_TYPE
    first, last, init = arg_types
    if any(t is ERROR_TYPE for t in arg_types):
        return ERROR_TYPE
    if not isinstance(first, TPtr):
        checker._error(e, "error: no matching function for call to `accumulate' "
                          f"(`{cpp_type_name(first)}' is not an iterator)")
        return ERROR_TYPE
    if not assignable(first.inner, init) and not assignable(init, first.inner):
        checker._error(
            e,
            f"error: no match for 'operator+' in `{cpp_type_name(init)} + "
            f"{cpp_type_name(first.inner)}'",
            notes=[f"{ALGO_HEADER}: In function `std::accumulate':"],
        )
    return init


def _bt_ptr_fun(checker: CppChecker, e: CCall, arg_types) -> CppType:
    if len(arg_types) != 1:
        checker._error(e, "error: no matching function for call to `ptr_fun'")
        return ERROR_TYPE
    fn = arg_types[0]
    if fn is ERROR_TYPE:
        return ERROR_TYPE
    if not isinstance(fn, TFunc) or len(fn.params) != 1:
        checker._error(
            e,
            f"error: no matching function for call to `ptr_fun({cpp_type_name(fn)})'",
        )
        return ERROR_TYPE
    return TClass("pointer_to_unary_function", [fn.params[0], fn.ret])


_BUILTIN_TEMPLATES = {
    "transform": _bt_transform,
    "for_each": _bt_for_each,
    "compose1": _bt_compose1,
    "bind1st": _bt_bind1st,
    "bind2nd": _bt_bind2nd,
    "count_if": _bt_count_if,
    "accumulate": _bt_accumulate,
    "ptr_fun": _bt_ptr_fun,
}


def typecheck_cpp(unit: TranslationUnit) -> CppCheckResult:
    """Check a translation unit; collects (bounded) cascading errors."""
    return CppChecker(unit).check()


def typecheck_cpp_source(source: str) -> CppCheckResult:
    from .parser import parse_cpp

    return typecheck_cpp(parse_cpp(source))
