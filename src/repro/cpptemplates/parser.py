"""Parser for the MiniCpp subset.

Parses exactly enough C++ for the paper's Section 4 workload: includes and
``using`` lines (skipped), template and plain function definitions, blocks,
declarations, and expressions over the mini-STL.  The classic ``<``
ambiguity is resolved with a registry of known template names (how real
front ends do it with symbol tables).
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Set

from repro.tree import Span

from .ast_nodes import (
    Block,
    CBinop,
    CCall,
    CExpr,
    CIndex,
    CLit,
    CMember,
    CName,
    CTemplateId,
    CUnop,
    DeclStmt,
    ExprStmt,
    FunctionDef,
    IfStmt,
    Param,
    ReturnStmt,
    TranslationUnit,
)
from .types import (
    BOOL,
    DOUBLE,
    INT,
    LONG,
    STRING,
    VOID,
    CppType,
    TClass,
    TFunc,
    TParam,
    TPtr,
    TRef,
    TPrim,
)

#: Names the parser treats as templates when followed by ``<``.
TEMPLATE_TYPE_NAMES: Set[str] = {
    "vector",
    "multiplies",
    "plus",
    "minus",
    "negate",
    "binder1st",
    "binder2nd",
    "unary_compose",
    "pointer_to_unary_function",
    "list",
}

_PRIMS = {"void": VOID, "bool": BOOL, "int": INT, "long": LONG, "double": DOUBLE,
          "string": STRING}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<num>\d+\.\d+|\d+)
  | (?P<str>"(?:[^"\\]|\\.)*")
  | (?P<id>[A-Za-z_][A-Za-z0-9_:]*)
  | (?P<op>->|::|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%=<>!&|.,;:(){}\[\]~^?])
    """,
    re.VERBOSE | re.DOTALL,
)


class CppParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class _Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Tok({self.kind},{self.text!r})"


def _lex(source: str) -> List[_Tok]:
    tokens: List[_Tok] = []
    line = 1
    pos = 0
    # Strip preprocessor lines first, preserving line numbers.
    cleaned_lines = []
    for raw in source.split("\n"):
        if raw.lstrip().startswith("#"):
            cleaned_lines.append("")
        else:
            cleaned_lines.append(raw)
    source = "\n".join(cleaned_lines)
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise CppParseError(f"bad character {source[pos]!r}", line)
        pos = match.end()
        text = match.group(0)
        line += text.count("\n")
        if match.lastgroup == "ws":
            continue
        tokens.append(_Tok(match.lastgroup, text, line))
    tokens.append(_Tok("eof", "", line))
    return tokens


class CppParser:
    def __init__(self, source: str, template_names: Optional[Sequence[str]] = None):
        self.tokens = _lex(source)
        self.index = 0
        self.template_names = set(template_names or TEMPLATE_TYPE_NAMES)
        #: Template *function* parameter names in scope (treated as types).
        self.type_params: Set[str] = set()

    # -- token helpers ----------------------------------------------------

    @property
    def tok(self) -> _Tok:
        return self.tokens[self.index]

    def _peek(self, ahead: int = 1) -> _Tok:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def _next(self) -> _Tok:
        t = self.tok
        if t.kind != "eof":
            self.index += 1
        return t

    def _expect(self, text: str) -> _Tok:
        if self.tok.text != text:
            raise CppParseError(f"expected {text!r}, found {self.tok.text!r}", self.tok.line)
        return self._next()

    def _eat(self, text: str) -> bool:
        if self.tok.text == text:
            self._next()
            return True
        return False

    def _span(self, line: int) -> Span:
        return Span(line, 1, line, 1)

    # -- top level ----------------------------------------------------------

    def parse_translation_unit(self) -> TranslationUnit:
        functions = []
        while self.tok.kind != "eof":
            if self.tok.text == "using":
                while self.tok.text != ";" and self.tok.kind != "eof":
                    self._next()
                self._eat(";")
                continue
            functions.append(self.parse_function())
        unit = TranslationUnit(functions)
        return unit

    def parse_function(self) -> FunctionDef:
        start_line = self.tok.line
        template_params: List[str] = []
        if self.tok.text == "template":
            self._next()
            self._expect("<")
            while True:
                if self.tok.text not in ("class", "typename"):
                    raise CppParseError("expected 'class' or 'typename'", self.tok.line)
                self._next()
                template_params.append(self._next().text)
                if not self._eat(","):
                    break
            self._expect(">")
        self.type_params = set(template_params)
        ret_type = self.parse_type()
        name = self._next().text
        self._expect("(")
        params: List[Param] = []
        if self.tok.text != ")":
            while True:
                params.append(self.parse_param())
                if not self._eat(","):
                    break
        self._expect(")")
        body = self.parse_block()
        fn = FunctionDef(name, ret_type, params, body, template_params)
        fn.span = self._span(start_line)
        self.type_params = set()
        return fn

    def parse_param(self) -> Param:
        line = self.tok.line
        param_type = self.parse_type()
        name = ""
        if self.tok.kind == "id":
            name = self._next().text
        # C-style function-pointer parameter: ``R (*name)(args)``.
        if self.tok.text == "(" and self._peek().text == "*":
            self._next()
            self._expect("*")
            name = self._next().text if self.tok.kind == "id" else ""
            self._expect(")")
            self._expect("(")
            arg_types = []
            if self.tok.text != ")":
                while True:
                    arg_types.append(self.parse_type())
                    if self.tok.kind == "id":
                        self._next()  # optional parameter name
                    if not self._eat(","):
                        break
            self._expect(")")
            param_type = TFunc(param_type, arg_types)
        param = Param(name, param_type)
        param.span = self._span(line)
        return param

    # -- types ----------------------------------------------------------------

    def _is_type_start(self) -> bool:
        text = self.tok.text
        if text == "const":
            return True
        if text in _PRIMS:
            return True
        if text in self.type_params:
            return True
        base = text.split("::")[-1]
        return base in self.template_names

    def parse_type(self) -> CppType:
        self._eat("const")
        tok = self._next()
        name = tok.text.split("::")[-1]
        base: CppType
        if name in _PRIMS:
            # allow ``long int`` / ``unsigned`` style two-word prims minimally
            if name == "long" and self.tok.text == "int":
                self._next()
            base = _PRIMS[name]
        elif name in self.type_params:
            base = TParam(name)
        else:
            args: List[CppType] = []
            if self.tok.text == "<":
                self._next()
                while True:
                    args.append(self.parse_type())
                    if not self._eat(","):
                        break
                self._expect(">")
            base = TClass(name, args)
        while True:
            if self._eat("*"):
                base = TPtr(base)
            elif self._eat("&"):
                base = TRef(base)
            elif self._eat("const"):
                pass
            else:
                break
        return base

    # -- statements --------------------------------------------------------

    def parse_block(self) -> Block:
        line = self.tok.line
        self._expect("{")
        stmts = []
        while self.tok.text != "}":
            if self.tok.kind == "eof":
                raise CppParseError("unterminated block", line)
            stmts.append(self.parse_stmt())
        self._expect("}")
        block = Block(stmts)
        block.span = self._span(line)
        return block

    def parse_stmt(self):
        line = self.tok.line
        if self.tok.text == "return":
            self._next()
            value = None if self.tok.text == ";" else self.parse_expr()
            self._expect(";")
            stmt = ReturnStmt(value)
        elif self.tok.text == "if":
            self._next()
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            then_block = self._stmt_as_block()
            else_block = self._stmt_as_block() if self._eat("else") else None
            stmt = IfStmt(cond, then_block, else_block)
        elif self.tok.text == "for":
            # Infinite loops appear only in the paper's magicFun; accept the
            # degenerate ``for (;;);`` form.
            self._next()
            self._expect("(")
            self._expect(";")
            self._expect(";")
            self._expect(")")
            self._expect(";")
            stmt = ExprStmt(CLit(0, "int"))
        elif self._is_type_start() and self._peek_decl():
            decl_type = self.parse_type()
            name = self._next().text
            init = None
            if self._eat("="):
                init = self.parse_expr()
            elif self.tok.text == "(":  # constructor-style init
                self._next()
                args = []
                if self.tok.text != ")":
                    while True:
                        args.append(self.parse_expr())
                        if not self._eat(","):
                            break
                self._expect(")")
                init = CCall(CTemplateId("__ctor", []), args)
            self._expect(";")
            stmt = DeclStmt(decl_type, name, init)
        else:
            expr = self.parse_expr()
            self._expect(";")
            stmt = ExprStmt(expr)
        stmt.span = self._span(line)
        return stmt

    def _stmt_as_block(self) -> Block:
        if self.tok.text == "{":
            return self.parse_block()
        stmt = self.parse_stmt()
        block = Block([stmt])
        block.span = stmt.span
        return block

    def _peek_decl(self) -> bool:
        """Disambiguate ``T x ...;`` declarations from expressions."""
        save = self.index
        try:
            self.parse_type()
            ok = self.tok.kind == "id"
        except CppParseError:
            ok = False
        finally:
            self.index = save
        return ok

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> CExpr:
        return self._parse_binary(0)

    _LEVELS = [
        ["||"],
        ["&&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> CExpr:
        if level >= len(self._LEVELS):
            return self._parse_unary()
        line = self.tok.line
        left = self._parse_binary(level + 1)
        while self.tok.text in self._LEVELS[level]:
            op = self._next().text
            right = self._parse_binary(level + 1)
            left = CBinop(op, left, right)
            left.span = self._span(line)
        return left

    def _parse_unary(self) -> CExpr:
        tok = self.tok
        if tok.text in ("*", "&", "-", "!"):
            self._next()
            operand = self._parse_unary()
            node = CUnop(tok.text, operand)
            node.span = self._span(tok.line)
            return node
        return self._parse_postfix()

    def _parse_postfix(self) -> CExpr:
        expr = self._parse_primary()
        while True:
            line = self.tok.line
            if self.tok.text == "(":
                self._next()
                args = []
                if self.tok.text != ")":
                    while True:
                        args.append(self.parse_expr())
                        if not self._eat(","):
                            break
                self._expect(")")
                expr = CCall(expr, args)
            elif self.tok.text == ".":
                self._next()
                member = self._next().text
                expr = CMember(expr, member, arrow=False)
            elif self.tok.text == "->":
                self._next()
                member = self._next().text
                expr = CMember(expr, member, arrow=True)
            elif self.tok.text == "[":
                self._next()
                index = self.parse_expr()
                self._expect("]")
                expr = CIndex(expr, index)
            else:
                return expr
            expr.span = self._span(line)

    def _parse_primary(self) -> CExpr:
        tok = self.tok
        if tok.kind == "num":
            self._next()
            if "." in tok.text:
                node: CExpr = CLit(float(tok.text), "double")
            else:
                node = CLit(int(tok.text), "int")
        elif tok.kind == "str":
            self._next()
            node = CLit(tok.text[1:-1], "string")
        elif tok.text in ("true", "false"):
            self._next()
            node = CLit(tok.text == "true", "bool")
        elif tok.text == "(":
            self._next()
            node = self.parse_expr()
            self._expect(")")
        elif tok.kind == "id":
            self._next()
            base = tok.text.split("::")[-1]
            if base in self.template_names and self.tok.text == "<":
                self._next()
                type_args = []
                while True:
                    type_args.append(self.parse_type())
                    if not self._eat(","):
                        break
                self._expect(">")
                node = CTemplateId(base, type_args)
            else:
                node = CName(base)
        else:
            raise CppParseError(f"unexpected token {tok.text!r}", tok.line)
        node.span = self._span(tok.line)
        return node


def parse_cpp(source: str, template_names: Optional[Sequence[str]] = None) -> TranslationUnit:
    """Parse MiniCpp source into a :class:`TranslationUnit`."""
    return CppParser(source, template_names).parse_translation_unit()
