"""Semantic types for MiniCpp.

C++ (as Section 4.1 notes) is explicitly and monomorphically typed except
for templates, so types here are plain trees — no unification variables.
Template *parameters* appear as :class:`TParam` inside template-function
bodies and are substituted away at instantiation.

Printing mimics gcc 3.x's spelling in Figure 11 (``long int``, and function
types printed as ``long int ()(long int)``), which matters because the
benchmark compares our conventional error text against the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class CppType:
    """Base class; instances are immutable and compared structurally."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CppType) and cpp_type_name(self) == cpp_type_name(other)

    def __hash__(self) -> int:
        return hash(cpp_type_name(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{cpp_type_name(self)}>"


class TPrim(CppType):
    """Primitive: void, bool, int, long, double, string."""

    def __init__(self, name: str):
        self.name = name


class TClass(CppType):
    """A (possibly template) class type, e.g. ``vector<long>``."""

    def __init__(self, name: str, args: Optional[Sequence[CppType]] = None):
        self.name = name
        self.args: List[CppType] = list(args or [])


class TPtr(CppType):
    """Pointer (we use it for iterators: ``vector<T>`` iterators are T*)."""

    def __init__(self, inner: CppType):
        self.inner = inner


class TRef(CppType):
    """Reference; the checker strips it for value semantics."""

    def __init__(self, inner: CppType):
        self.inner = inner


class TFunc(CppType):
    """Function (or decayed function-pointer) type."""

    def __init__(self, ret: CppType, params: Sequence[CppType]):
        self.ret = ret
        self.params = list(params)


class TParam(CppType):
    """A template parameter inside an uninstantiated template body."""

    def __init__(self, name: str):
        self.name = name


VOID = TPrim("void")
BOOL = TPrim("bool")
INT = TPrim("int")
LONG = TPrim("long")
DOUBLE = TPrim("double")
STRING = TPrim("string")

_GCC_PRIM_NAMES = {
    "int": "int",
    "long": "long int",
    "double": "double",
    "bool": "bool",
    "void": "void",
    "string": "std::string",
}


def cpp_type_name(t: CppType) -> str:
    """gcc-style spelling of a type (Figure 11's vocabulary)."""
    if isinstance(t, TPrim):
        return _GCC_PRIM_NAMES.get(t.name, t.name)
    if isinstance(t, TClass):
        if not t.args:
            return t.name
        inner = ", ".join(cpp_type_name(a) for a in t.args)
        # gcc inserts a space to avoid closing '>>'.
        if inner.endswith(">"):
            inner += " "
        return f"{t.name}<{inner}>"
    if isinstance(t, TPtr):
        return f"{cpp_type_name(t.inner)}*"
    if isinstance(t, TRef):
        return f"{cpp_type_name(t.inner)}&"
    if isinstance(t, TFunc):
        params = ", ".join(cpp_type_name(p) for p in t.params)
        # gcc 3.4 prints function types like ``long int ()(long int)``.
        return f"{cpp_type_name(t.ret)} ()({params})"
    if isinstance(t, TParam):
        return t.name
    raise TypeError(f"unknown type {t!r}")


def source_type_name(t: CppType) -> str:
    """Source-syntax spelling (what a programmer writes), for suggestions."""
    if isinstance(t, TPrim):
        return t.name
    if isinstance(t, TClass):
        if not t.args:
            return t.name
        inner = ", ".join(source_type_name(a) for a in t.args)
        if inner.endswith(">"):
            inner += " "
        return f"{t.name}<{inner}>"
    if isinstance(t, TPtr):
        return f"{source_type_name(t.inner)}*"
    if isinstance(t, TRef):
        return f"{source_type_name(t.inner)}&"
    if isinstance(t, TFunc):
        params = ", ".join(source_type_name(p) for p in t.params)
        return f"{source_type_name(t.ret)} (*)({params})"
    if isinstance(t, TParam):
        return t.name
    raise TypeError(f"unknown type {t!r}")


def strip_ref(t: CppType) -> CppType:
    return t.inner if isinstance(t, TRef) else t


def is_class_type(t: CppType) -> bool:
    """The constraint ``unary_compose`` enforces on its arguments."""
    return isinstance(t, TClass)


def substitute(t: CppType, bindings: Dict[str, CppType]) -> CppType:
    """Replace template parameters by their deduced bindings."""
    if isinstance(t, TParam):
        return bindings.get(t.name, t)
    if isinstance(t, TClass):
        return TClass(t.name, [substitute(a, bindings) for a in t.args])
    if isinstance(t, TPtr):
        return TPtr(substitute(t.inner, bindings))
    if isinstance(t, TRef):
        return TRef(substitute(t.inner, bindings))
    if isinstance(t, TFunc):
        return TFunc(substitute(t.ret, bindings), [substitute(p, bindings) for p in t.params])
    return t


class DeductionError(Exception):
    """Template argument deduction failed."""


def deduce(pattern: CppType, actual: CppType, bindings: Dict[str, CppType]) -> None:
    """Deduce template parameters by matching ``pattern`` against ``actual``.

    Mirrors C++ deduction closely enough for the mini-STL: references are
    stripped, and a mismatching structure raises :class:`DeductionError`.
    """
    pattern = strip_ref(pattern)
    actual = strip_ref(actual)
    if isinstance(pattern, TParam):
        existing = bindings.get(pattern.name)
        if existing is not None and existing != actual:
            raise DeductionError(
                f"conflicting deductions for {pattern.name}: "
                f"{cpp_type_name(existing)} vs {cpp_type_name(actual)}"
            )
        bindings[pattern.name] = actual
        return
    if isinstance(pattern, TClass) and isinstance(actual, TClass):
        if pattern.name != actual.name or len(pattern.args) != len(actual.args):
            raise DeductionError(
                f"cannot deduce {cpp_type_name(pattern)} from {cpp_type_name(actual)}"
            )
        for p, a in zip(pattern.args, actual.args):
            deduce(p, a, bindings)
        return
    if isinstance(pattern, TPtr) and isinstance(actual, TPtr):
        deduce(pattern.inner, actual.inner, bindings)
        return
    if isinstance(pattern, TFunc) and isinstance(actual, TFunc):
        if len(pattern.params) != len(actual.params):
            raise DeductionError("function-type arity mismatch")
        deduce(pattern.ret, actual.ret, bindings)
        for p, a in zip(pattern.params, actual.params):
            deduce(p, a, bindings)
        return
    if pattern == actual:
        return
    raise DeductionError(
        f"cannot deduce {cpp_type_name(pattern)} from {cpp_type_name(actual)}"
    )
