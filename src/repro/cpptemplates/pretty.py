"""Concrete-syntax printer for MiniCpp (suggestions quote source code)."""

from __future__ import annotations

from typing import List

from .ast_nodes import (
    Block,
    CBinop,
    CCall,
    CExpr,
    CIndex,
    CLit,
    CMember,
    CName,
    CTemplateId,
    CUnop,
    CStmt,
    DeclStmt,
    ExprStmt,
    FunctionDef,
    IfStmt,
    Param,
    ReturnStmt,
    TranslationUnit,
)
from .types import source_type_name

_BINOP_LEVEL = {
    "||": 1, "&&": 2, "==": 3, "!=": 3, "<": 4, ">": 4, "<=": 4, ">=": 4,
    "+": 5, "-": 5, "*": 6, "/": 6, "%": 6,
}


def pretty_cpp_expr(e: CExpr, level: int = 0) -> str:
    text, own = _expr(e)
    return f"({text})" if own < level else text


def _expr(e: CExpr):
    if isinstance(e, CLit):
        if e.kind == "string":
            return f'"{e.value}"', 10
        if e.kind == "bool":
            return ("true" if e.value else "false"), 10
        return str(e.value), 10
    if isinstance(e, CName):
        return e.name, 10
    if isinstance(e, CTemplateId):
        args = ", ".join(source_type_name(t) for t in e.type_args)
        if args.endswith(">"):
            args += " "
        return f"{e.name}<{args}>", 10
    if isinstance(e, CCall):
        if isinstance(e.func, CTemplateId) and e.func.name == "__ctor":
            inner = ", ".join(pretty_cpp_expr(a) for a in e.args)
            return f"({inner})", 10
        func = pretty_cpp_expr(e.func, 7)
        args = ", ".join(pretty_cpp_expr(a) for a in e.args)
        return f"{func}({args})", 8
    if isinstance(e, CMember):
        sep = "->" if e.arrow else "."
        return f"{pretty_cpp_expr(e.obj, 8)}{sep}{e.member}", 8
    if isinstance(e, CIndex):
        return f"{pretty_cpp_expr(e.obj, 8)}[{pretty_cpp_expr(e.index)}]", 8
    if isinstance(e, CBinop):
        own = _BINOP_LEVEL.get(e.op, 3)
        left = pretty_cpp_expr(e.left, own)
        right = pretty_cpp_expr(e.right, own + 1)
        return f"{left} {e.op} {right}", own
    if isinstance(e, CUnop):
        return f"{e.op}{pretty_cpp_expr(e.operand, 7)}", 7
    raise TypeError(f"unknown expression {type(e).__name__}")


def pretty_cpp_stmt(stmt: CStmt, indent: int = 0) -> str:
    pad = "    " * indent
    if isinstance(stmt, DeclStmt):
        init = f" = {pretty_cpp_expr(stmt.init)}" if stmt.init is not None else ""
        return f"{pad}{source_type_name(stmt.decl_type)} {stmt.name}{init};"
    if isinstance(stmt, ExprStmt):
        return f"{pad}{pretty_cpp_expr(stmt.expr)};"
    if isinstance(stmt, ReturnStmt):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {pretty_cpp_expr(stmt.value)};"
    if isinstance(stmt, IfStmt):
        lines = [f"{pad}if ({pretty_cpp_expr(stmt.cond)}) " + "{"]
        lines.append(pretty_cpp_block_body(stmt.then_block, indent + 1))
        if stmt.else_block is not None:
            lines.append(pad + "} else {")
            lines.append(pretty_cpp_block_body(stmt.else_block, indent + 1))
        lines.append(pad + "}")
        return "\n".join(lines)
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def pretty_cpp_block_body(block: Block, indent: int = 1) -> str:
    return "\n".join(pretty_cpp_stmt(s, indent) for s in block.stmts)


def pretty_cpp_function(fn: FunctionDef) -> str:
    lines: List[str] = []
    if fn.is_template:
        params = ", ".join(f"class {p}" for p in fn.template_params)
        lines.append(f"template <{params}>")
    params = ", ".join(f"{source_type_name(p.param_type)} {p.name}".rstrip() for p in fn.params)
    lines.append(f"{source_type_name(fn.ret_type)} {fn.name}({params}) " + "{")
    lines.append(pretty_cpp_block_body(fn.body))
    lines.append("}")
    return "\n".join(lines)


def pretty_cpp(node) -> str:
    """Dispatch helper."""
    if isinstance(node, TranslationUnit):
        return "\n\n".join(pretty_cpp_function(f) for f in node.functions)
    if isinstance(node, FunctionDef):
        return pretty_cpp_function(node)
    if isinstance(node, Block):
        return pretty_cpp_block_body(node, 0)
    if isinstance(node, CStmt):
        return pretty_cpp_stmt(node)
    if isinstance(node, CExpr):
        return pretty_cpp_expr(node)
    if isinstance(node, Param):
        return f"{source_type_name(node.param_type)} {node.name}"
    raise TypeError(f"unknown node {type(node).__name__}")
