"""Abstract syntax for MiniCpp (the Section 4 substrate).

The subset covers what the paper's Figure 10 client and the mini-STL
exercise: function definitions (optionally template), blocks, declarations,
expression/return/if statements, calls, member access (``.`` and ``->``),
template-ids (``multiplies<long>``), and the usual literals/operators.

Nodes derive from :class:`repro.tree.Node` so the same generic search
machinery (paths, replacement) drives the C++ prototype.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.tree import Node

from .types import CppType


class CppNode(Node):
    """Marker base for MiniCpp nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class CExpr(CppNode):
    """Base class of expressions."""


@dataclass(eq=False)
class CLit(CExpr):
    """Literal: ``kind`` is int/long/double/bool/string."""

    value: object
    kind: str


@dataclass(eq=False)
class CName(CExpr):
    """Variable or function name."""

    name: str


@dataclass(eq=False)
class CTemplateId(CExpr):
    """Explicit template-id used as a value, e.g. ``multiplies<long>()``
    parses as CCall(CTemplateId('multiplies', [long]), [])."""

    name: str
    type_args: List[CppType]


@dataclass(eq=False)
class CCall(CExpr):
    """Call: function, functor object, or constructor."""

    func: CExpr
    args: List[CExpr]


@dataclass(eq=False)
class CMember(CExpr):
    """Member access ``obj.m`` or ``obj->m`` (``arrow`` selects which)."""

    obj: CExpr
    member: str
    arrow: bool = False


@dataclass(eq=False)
class CBinop(CExpr):
    op: str
    left: CExpr
    right: CExpr


@dataclass(eq=False)
class CUnop(CExpr):
    """Prefix unary: ``*`` (deref), ``&`` (address-of), ``-``, ``!``."""

    op: str
    operand: CExpr


@dataclass(eq=False)
class CIndex(CExpr):
    obj: CExpr
    index: CExpr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class CStmt(CppNode):
    """Base class of statements."""


@dataclass(eq=False)
class Block(CppNode):
    stmts: List[CStmt] = field(default_factory=list)


@dataclass(eq=False)
class DeclStmt(CStmt):
    """``T name = init;`` (init optional)."""

    decl_type: CppType
    name: str
    init: Optional[CExpr] = None


@dataclass(eq=False)
class ExprStmt(CStmt):
    expr: CExpr


@dataclass(eq=False)
class ReturnStmt(CStmt):
    value: Optional[CExpr] = None


@dataclass(eq=False)
class IfStmt(CStmt):
    cond: CExpr
    then_block: Block
    else_block: Optional[Block] = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Param(CppNode):
    name: str
    param_type: CppType


@dataclass(eq=False)
class FunctionDef(CppNode):
    """A function definition; ``template_params`` non-empty for templates.

    Template bodies are *not* checked at definition time — only at each
    instantiation, which is exactly the late checking that produces the
    deep error chains of Section 4.1.
    """

    name: str
    ret_type: CppType
    params: List[Param]
    body: Block
    template_params: List[str] = field(default_factory=list)

    @property
    def is_template(self) -> bool:
        return bool(self.template_params)


@dataclass(eq=False)
class TranslationUnit(CppNode):
    functions: List[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> Optional[FunctionDef]:
        for f in self.functions:
            if f.name == name:
                return f
        return None
