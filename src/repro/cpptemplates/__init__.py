"""MiniCpp: the C++ template-function prototype of Section 4.

Public surface:

* :func:`parse_cpp` — source to AST,
* :func:`typecheck_cpp` / :func:`typecheck_cpp_source` — the gcc-style
  checker with instantiation-time template checking and cascading errors,
* :func:`explain_cpp` — SEMINAL adapted to C++ (ptr_fun wrapping, hoisting,
  statement removal, error-set-improvement success criterion).
"""

from .ast_nodes import (  # noqa: F401
    Block,
    CBinop,
    CCall,
    CExpr,
    CIndex,
    CLit,
    CMember,
    CName,
    CTemplateId,
    CUnop,
    DeclStmt,
    ExprStmt,
    FunctionDef,
    IfStmt,
    Param,
    ReturnStmt,
    TranslationUnit,
)
from .parser import CppParseError, parse_cpp  # noqa: F401
from .pretty import pretty_cpp, pretty_cpp_expr, pretty_cpp_function  # noqa: F401
from .search import (  # noqa: F401
    CppChange,
    CppExplainResult,
    CppSearcher,
    CppSuggestion,
    explain_cpp,
)
from .typecheck import CppCheckResult, CppError, typecheck_cpp, typecheck_cpp_source  # noqa: F401
from .types import cpp_type_name, source_type_name  # noqa: F401
