"""Persistent cross-run verdict store (disk tier behind the oracle memo).

SEMINAL's cost model is oracle calls: the searcher asks the type-checker
thousands of yes/no questions, and most of them recur verbatim across
runs — re-explaining the same file after an edit, re-running the corpus
study, or serving repeated traffic.  The in-process memo cache and prefix
reuse (PR 2) only live for one process; this package persists verdicts to
disk so every subsequent run warm-starts.

Contents:

* :mod:`repro.store.fingerprint` — the content-addressed key scheme:
  ``(checker fingerprint, prefix-snapshot fingerprint, structural key)``.
* :mod:`repro.store.verdicts` — :class:`VerdictStore`: append-only JSONL
  segment files published atomically (write-temp + rename) so concurrent
  processes share one directory without locks; corrupt or torn segments
  are skipped, never raised (the :mod:`repro.core.resilience` contract).
* :mod:`repro.store.cli` — ``python -m repro cache stats|clear|compact``.
"""

from .fingerprint import (
    NO_PREFIX_FP,
    STORE_SCHEMA_VERSION,
    checker_fingerprint,
    key_digest,
    prefix_fingerprint,
)
from .verdicts import StoredVerdict, StoreStats, VerdictStore

__all__ = [
    "NO_PREFIX_FP",
    "STORE_SCHEMA_VERSION",
    "StoreStats",
    "StoredVerdict",
    "VerdictStore",
    "checker_fingerprint",
    "key_digest",
    "prefix_fingerprint",
]
