"""Content-addressed fingerprints for the persistent verdict store.

A stored verdict is only reusable when three things are unchanged:

* **the checker itself** — :func:`checker_fingerprint` hashes the source
  bytes of every module the MiniML checker is built from (inference,
  unification, types, the stdlib environment, the AST definitions) plus
  the store schema version, so editing the type system or the standard
  library silently invalidates every stale verdict on the next run;
* **the incremental regime** — :func:`prefix_fingerprint` hashes the
  structural keys of the declarations an armed
  :class:`~repro.miniml.infer.PrefixSnapshot` covers (or the
  :data:`NO_PREFIX_FP` sentinel when no snapshot is armed).  This is the
  cross-process analogue of the oracle's in-memory ``_prefix_gen`` tag:
  a verdict computed under prefix reuse is only served to a check asked
  under the *same* prefix, which is also what makes the stored
  accounting ``kind`` replayable;
* **the program being asked about** — :func:`key_digest` hashes its
  :func:`~repro.tree.structural_key` (spans and formatting never matter,
  exactly as for the in-memory memo).

All digests are truncated SHA-256.  Hash-consed structural keys
(:class:`~repro.tree.HCKey`) contribute their cached Merkle ``digest`` —
content-derived, so deterministic across processes and platforms, and
O(1) amortized for shared subtrees; legacy tuple keys (and any other key
material) are digested over their deterministic ``repr``.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Iterable, Optional

#: Bump when the on-disk entry format changes incompatibly; folded into
#: the checker fingerprint so old segments degrade to "invalidated"
#: instead of being misread.
STORE_SCHEMA_VERSION = 1

#: Prefix fingerprint used when no snapshot is armed (full-check regime).
NO_PREFIX_FP = "-"

#: Modules whose source defines what "the checker" means.  The stdlib is
#: included because its typings are the environment every program is
#: checked in; the AST module because structural keys are built from its
#: class names and field lists.
_CHECKER_MODULES = (
    "repro.miniml.infer",
    "repro.miniml.unify",
    "repro.miniml.types",
    "repro.miniml.stdlib",
    "repro.miniml.ast_nodes",
    "repro.miniml.errors",
)


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:32]


@lru_cache(maxsize=None)
def checker_fingerprint() -> str:
    """Fingerprint of the type-checker implementation currently loaded.

    Cached for the life of the process (module sources cannot change
    under a running interpreter in any way the store could honour).
    Modules without reachable source (frozen, zipped) contribute their
    name only — the fingerprint still distinguishes schema versions.
    """
    import importlib

    h = hashlib.sha256()
    h.update(f"store-schema:{STORE_SCHEMA_VERSION};".encode())
    for name in _CHECKER_MODULES:
        h.update(name.encode())
        h.update(b"=")
        try:
            module = importlib.import_module(name)
            path = getattr(module, "__file__", None)
            if path:
                with open(path, "rb") as fh:
                    h.update(fh.read())
        except Exception:
            # Degrade, never raise: an unreadable module just contributes
            # its name, weakening invalidation rather than crashing.
            pass
        h.update(b";")
    return h.hexdigest()[:32]


def key_digest(structural_key: object) -> str:
    """Digest of one program's structural key (the per-entry address).

    Hash-consed keys (:class:`~repro.tree.HCKey`) carry a cached
    content-based Merkle digest, making repeated digests of shared
    subtrees O(1); anything else digests its deterministic ``repr``.
    """
    from repro.tree import HCKey

    if isinstance(structural_key, HCKey):
        return structural_key.digest
    return _digest(repr(structural_key).encode())


def prefix_fingerprint(prefix_keys: Optional[Iterable[object]]) -> str:
    """Digest of the structural keys of an armed snapshot's declarations.

    ``None`` (or an empty iterable) means "no snapshot armed" and maps to
    the :data:`NO_PREFIX_FP` sentinel.
    """
    if prefix_keys is None:
        return NO_PREFIX_FP
    keys = tuple(prefix_keys)
    if not keys:
        return NO_PREFIX_FP
    h = hashlib.sha256()
    for key in keys:
        h.update(key_digest(key).encode())
        h.update(b";")
    return h.hexdigest()[:32]
