"""Disk-backed verdict store: append-only, atomic, lock-free, degradable.

On-disk layout (one directory per store)::

    store/
      seg-<stamp>-<pid>-<n>.jsonl   published segments (immutable)
      .tmp-<pid>-<n>                in-flight segments (ignored by readers)
      hits/<segment-name>           last-hit markers (compaction recency)

Each segment is JSON Lines: a header line carrying the schema version and
the checker fingerprint the segment was written under, then one line per
verdict.  Writers build a segment in a ``.tmp-*`` file and *publish* it
with an atomic :func:`os.replace` — readers therefore only ever see whole
segments, which is what lets concurrent batch runs and pool workers share
one store directory without locks.  A reader that still encounters a torn
or corrupt line (a crashed writer's leftovers, disk corruption, a future
schema) skips that line or segment and keeps going: the store degrades to
a smaller cache, it never raises (the :mod:`repro.core.resilience`
contract).

Entries whose header fingerprint does not match the current
:func:`~repro.store.fingerprint.checker_fingerprint` are counted as
invalidated and not indexed; ``compact`` deletes such segments outright
and enforces a byte-size cap by evicting the least-recently-hit segments
first.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .fingerprint import checker_fingerprint, key_digest

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jsonl"
_TMP_PREFIX = ".tmp-"
_HITS_DIR = "hits"

#: Verdict kinds that may be persisted.  Crash/fallback outcomes are
#: checker *failures*, not answers — they must be recomputed every run.
STORABLE_KINDS = ("full", "reused", "invalidated")


@dataclass(frozen=True)
class StoredVerdict:
    """One persisted oracle answer."""

    ok: bool
    kind: str  # accounting kind the verdict was computed under
    err: Optional[str] = None  # rendered checker message, when failing
    err_kind: Optional[str] = None  # error class tag (display fidelity)
    segment: Optional[str] = None  # which segment served it (recency)


@dataclass
class StoreStats:
    """Shape returned by :meth:`VerdictStore.stats` (and ``cache stats``)."""

    path: str
    segments: int = 0
    entries: int = 0
    bytes: int = 0
    invalidated: int = 0
    skipped_segments: int = 0
    skipped_lines: int = 0
    tmp_files: int = 0
    hits: int = 0
    misses: int = 0
    writes: int = 0
    per_segment: List[Tuple[str, int, int]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "segments": self.segments,
            "entries": self.entries,
            "bytes": self.bytes,
            "invalidated": self.invalidated,
            "skipped_segments": self.skipped_segments,
            "skipped_lines": self.skipped_lines,
            "tmp_files": self.tmp_files,
            "per_segment": [
                {"segment": name, "entries": entries, "bytes": size}
                for name, entries, size in self.per_segment
            ],
        }


class VerdictStore:
    """A content-addressed verdict cache shared by many processes.

    Parameters
    ----------
    path:
        Store directory (created unless ``read_only``).
    read_only:
        Open for probing only: :meth:`put` and :meth:`flush` become
        no-ops.  Pool workers open the store this way — the parent
        performs all writes when it applies verdicts, which keeps a
        ``jobs=N`` run byte-identical to ``jobs=1`` and guarantees that
        candidates a worker checked but the search never applied leave
        no trace on disk.
    flush_every:
        Publish a segment automatically after this many buffered writes
        (buffered entries are also visible to :meth:`get` immediately,
        so a single process never misses its own work).
    """

    def __init__(
        self,
        path,
        *,
        read_only: bool = False,
        flush_every: int = 512,
        clock=time.time,
        retry_policy=None,
        sleep=time.sleep,
    ):
        self.path = Path(path)
        self.read_only = read_only
        self.flush_every = max(1, int(flush_every))
        self._clock = clock
        # Deferred import: repro.core's package __init__ imports the
        # oracle, which imports this module for STORABLE_KINDS — a
        # module-level ``from repro.core.retry import ...`` here would
        # close that cycle into an ImportError.
        if retry_policy is None:
            from repro.core.retry import RetryPolicy

            retry_policy = RetryPolicy(
                attempts=3, backoff_seconds=0.005, max_backoff_seconds=0.05
            )
        self._retry_policy = retry_policy
        self._sleep = sleep
        #: Transient segment I/O failures absorbed by a retry.
        self.io_retries = 0
        #: Segment I/O operations that exhausted their retries and
        #: degraded (read -> segment skipped, write -> cache miss later).
        self.io_errors = 0
        self._fingerprint = checker_fingerprint()
        self._index: Dict[Tuple[str, str], StoredVerdict] = {}
        self._pending: List[dict] = []
        self._segment_seq = 0
        self._hit_segments: Dict[str, float] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidated = 0
        self.skipped_segments = 0
        self.skipped_lines = 0
        self._invalidated_unreported = 0
        if not read_only:
            self.path.mkdir(parents=True, exist_ok=True)
        self._load()

    # ------------------------------------------------------------------
    # Loading (degrade, never raise)
    # ------------------------------------------------------------------

    def _segment_files(self) -> List[Path]:
        try:
            names = sorted(
                p
                for p in self.path.iterdir()
                if p.name.startswith(_SEGMENT_PREFIX)
                and p.name.endswith(_SEGMENT_SUFFIX)
            )
        except OSError:
            return []
        return names

    def _load(self) -> None:
        for segment in self._segment_files():
            self._load_segment(segment)

    def _with_retry(self, fn):
        """Wrap one I/O seam in the store's retry policy (lazy import —
        see ``__init__`` for the package-cycle note)."""
        from repro.core.retry import with_retry

        def note(attempt, err):
            self.io_retries += 1

        return with_retry(fn, self._retry_policy, sleep=self._sleep, on_retry=note)

    def _read_segment_text(self, segment: Path) -> str:
        """The raw-read seam (overridden by fault injection; retried)."""
        with open(segment, "r", encoding="utf-8", errors="replace") as fh:
            return fh.read()

    def _write_segment_file(self, tmp: Path, final: Path, body: str) -> None:
        """The write-and-publish seam (overridden by fault injection;
        retried as a unit so a republished rename never sees a partial
        temp file — the temp is rewritten from scratch each attempt)."""
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(body + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)

    def _load_segment(self, segment: Path) -> None:
        try:
            lines = self._with_retry(self._read_segment_text)(segment).splitlines()
        except OSError:
            self.io_errors += 1
            self.skipped_segments += 1
            return
        if not lines:
            self.skipped_segments += 1
            return
        try:
            header = json.loads(lines[0])
            version = header["v"]
            seg_fp = header["checker"]
        except Exception:
            self.skipped_segments += 1
            return
        if version != 1:
            # A future schema: skip the whole segment, never misread it.
            self.skipped_segments += 1
            return
        stale = seg_fp != self._fingerprint
        for line in lines[1:]:
            if not line.strip():
                continue
            if stale:
                # Checker (or stdlib, or schema) changed since this was
                # written: the verdict may no longer be true.
                self.invalidated += 1
                self._invalidated_unreported += 1
                continue
            try:
                raw = json.loads(line)
                address = (str(raw["p"]), str(raw["k"]))
                entry = StoredVerdict(
                    ok=bool(raw["ok"]),
                    kind=str(raw["kind"]),
                    err=raw.get("err"),
                    err_kind=raw.get("ek"),
                    segment=segment.name,
                )
            except Exception:
                # Torn tail of a crashed writer, or corruption: skip the
                # line, keep the rest of the segment.
                self.skipped_lines += 1
                continue
            self._index[address] = entry

    # ------------------------------------------------------------------
    # The probe/write interface
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def get(self, prefix_fp: str, structural_key: object) -> Optional[StoredVerdict]:
        """Probe for a verdict under ``(checker, prefix regime, program)``."""
        entry = self._index.get((prefix_fp, key_digest(structural_key)))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        if entry.segment is not None:
            self._hit_segments[entry.segment] = self._clock()
        return entry

    def note_hit(self, prefix_fp: str, structural_key: object) -> None:
        """Record recency for a hit observed elsewhere (a pool worker
        probed read-only; the parent replays the hit when applying the
        verdict so compaction still sees the segment as live)."""
        entry = self._index.get((prefix_fp, key_digest(structural_key)))
        self.hits += 1
        if entry is not None and entry.segment is not None:
            self._hit_segments[entry.segment] = self._clock()

    def put(
        self,
        prefix_fp: str,
        structural_key: object,
        ok: bool,
        kind: str,
        err: Optional[str] = None,
        err_kind: Optional[str] = None,
    ) -> bool:
        """Record a verdict; returns True when it was actually enqueued.

        Crash/fallback kinds and read-only stores are silently refused —
        only clean answers are worth remembering, and only the parent
        process writes.
        """
        if self.read_only or kind not in STORABLE_KINDS:
            return False
        digest = key_digest(structural_key)
        if (prefix_fp, digest) in self._index:
            return False  # already known: verdicts are deterministic
        self._index[(prefix_fp, digest)] = StoredVerdict(
            ok=ok, kind=kind, err=err, err_kind=err_kind
        )
        self._pending.append(
            {"p": prefix_fp, "k": digest, "ok": ok, "kind": kind, "err": err, "ek": err_kind}
        )
        self.writes += 1
        if len(self._pending) >= self.flush_every:
            self.flush()
        return True

    def take_invalidated(self) -> int:
        """Invalidated-entry count not yet surfaced to metrics (once)."""
        n = self._invalidated_unreported
        self._invalidated_unreported = 0
        return n

    def take_io_counters(self) -> Tuple[int, int]:
        """``(retries, errors)`` accumulated since the last call (the
        oracle drains these into ``oracle.store.retries`` /
        ``oracle.store.io_errors`` and a ``store_io_error`` event)."""
        counters = (self.io_retries, self.io_errors)
        self.io_retries = 0
        self.io_errors = 0
        return counters

    # ------------------------------------------------------------------
    # Publication (atomic) and lifecycle
    # ------------------------------------------------------------------

    def _next_names(self) -> Tuple[Path, Path]:
        self._segment_seq += 1
        pid = os.getpid()
        stamp = int(self._clock() * 1000)
        tmp = self.path / f"{_TMP_PREFIX}{pid}-{self._segment_seq}"
        final = (
            self.path
            / f"{_SEGMENT_PREFIX}{stamp:013d}-{pid}-{self._segment_seq}{_SEGMENT_SUFFIX}"
        )
        return tmp, final

    def flush(self) -> Optional[str]:
        """Publish buffered writes as one new segment (atomic rename).

        Returns the published segment name, or None when there was
        nothing to publish or publication failed (failure degrades: the
        verdicts stay served from memory for this process and are simply
        recomputed by the next one).
        """
        if self.read_only or not self._pending:
            return None
        tmp, final = self._next_names()
        header = json.dumps({"v": 1, "checker": self._fingerprint})
        body = "\n".join(
            [header] + [json.dumps(e, sort_keys=True) for e in self._pending]
        )
        try:
            self._with_retry(self._write_segment_file)(tmp, final, body)
        except OSError:
            self.io_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        self._pending = []
        return final.name

    def _write_hit_markers(self) -> None:
        if self.read_only or not self._hit_segments:
            return
        hits_dir = self.path / _HITS_DIR
        try:
            hits_dir.mkdir(exist_ok=True)
        except OSError:
            return
        for segment, stamp in self._hit_segments.items():
            marker = hits_dir / segment
            tmp = hits_dir / f"{_TMP_PREFIX}{os.getpid()}-{segment}"
            try:
                tmp.write_text(f"{stamp}\n", encoding="utf-8")
                os.replace(tmp, marker)
            except OSError:
                continue
        self._hit_segments = {}

    def close(self) -> None:
        """Flush pending writes and persist hit-recency markers."""
        self.flush()
        self._write_hit_markers()

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Maintenance (the ``repro cache`` subcommand)
    # ------------------------------------------------------------------

    def stats(self) -> StoreStats:
        stats = StoreStats(
            path=str(self.path),
            invalidated=self.invalidated,
            skipped_segments=self.skipped_segments,
            skipped_lines=self.skipped_lines,
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
        )
        for segment in self._segment_files():
            try:
                size = segment.stat().st_size
                with open(segment, "r", encoding="utf-8", errors="replace") as fh:
                    entries = max(0, sum(1 for line in fh if line.strip()) - 1)
            except OSError:
                continue
            stats.segments += 1
            stats.bytes += size
            stats.entries += entries
            stats.per_segment.append((segment.name, entries, size))
        try:
            stats.tmp_files = sum(
                1 for p in self.path.iterdir() if p.name.startswith(_TMP_PREFIX)
            )
        except OSError:
            pass
        return stats

    def clear(self) -> int:
        """Delete every segment, marker, and temp file.  Returns the
        number of files removed."""
        removed = 0
        try:
            candidates = list(self.path.iterdir())
        except OSError:
            return 0
        for p in candidates:
            if p.name == _HITS_DIR and p.is_dir():
                for marker in list(p.iterdir()):
                    removed += self._unlink(marker)
                continue
            if p.name.startswith((_SEGMENT_PREFIX, _TMP_PREFIX)):
                removed += self._unlink(p)
        self._index = {}
        self._pending = []
        self._hit_segments = {}
        return removed

    @staticmethod
    def _unlink(p: Path) -> int:
        try:
            p.unlink()
            return 1
        except OSError:
            return 0

    def _last_hit(self, segment: Path) -> float:
        """Recency key for eviction: the hit marker's stamp when present,
        else the segment's own mtime (never hit since written)."""
        marker = self.path / _HITS_DIR / segment.name
        try:
            return float(marker.read_text().strip())
        except (OSError, ValueError):
            pass
        try:
            return segment.stat().st_mtime
        except OSError:
            return 0.0

    def compact(self, max_bytes: Optional[int] = None) -> dict:
        """Trim the store: drop leftover temp files, delete segments whose
        checker fingerprint is stale, then — when ``max_bytes`` is given —
        evict least-recently-hit segments until the cap is met."""
        removed_segments = 0
        removed_bytes = 0
        removed_tmp = 0
        try:
            for p in list(self.path.iterdir()):
                if p.name.startswith(_TMP_PREFIX):
                    removed_tmp += self._unlink(p)
        except OSError:
            pass
        live: List[Tuple[Path, int]] = []
        for segment in self._segment_files():
            try:
                size = segment.stat().st_size
                with open(segment, "r", encoding="utf-8", errors="replace") as fh:
                    first = fh.readline()
                header = json.loads(first)
                fresh = header.get("v") == 1 and header.get("checker") == self._fingerprint
            except Exception:
                fresh = False
                size = 0
            if fresh:
                live.append((segment, size))
            else:
                removed_segments += 1
                removed_bytes += size
                self._unlink(segment)
                self._unlink(self.path / _HITS_DIR / segment.name)
        if max_bytes is not None:
            total = sum(size for _, size in live)
            # Coldest first; name as a deterministic tie-break.
            live.sort(key=lambda item: (self._last_hit(item[0]), item[0].name))
            while live and total > max_bytes:
                segment, size = live.pop(0)
                total -= size
                removed_segments += 1
                removed_bytes += size
                self._unlink(segment)
                self._unlink(self.path / _HITS_DIR / segment.name)
        remaining = self._segment_files()
        remaining_bytes = 0
        for segment in remaining:
            try:
                remaining_bytes += segment.stat().st_size
            except OSError:
                continue
        return {
            "removed_segments": removed_segments,
            "removed_bytes": removed_bytes,
            "removed_tmp": removed_tmp,
            "remaining_segments": len(remaining),
            "remaining_bytes": remaining_bytes,
        }
