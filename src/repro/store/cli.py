"""``python -m repro cache`` — inspect and maintain a verdict store.

Subcommands::

    repro cache stats   --store PATH            sizes, segments, invalidated
    repro cache clear   --store PATH            delete every segment
    repro cache compact --store PATH [--max-bytes N]
                                                drop stale/torn files, evict
                                                least-recently-hit segments
                                                until under the cap

Exit codes: 0 on success, 2 on usage errors (matching the main CLI).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .verdicts import VerdictStore


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect and maintain a persistent verdict store.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    for name, doc in (
        ("stats", "show store size, segments, and invalidation counts"),
        ("clear", "delete every segment in the store"),
        ("compact", "drop stale segments and enforce a size cap"),
    ):
        p = sub.add_parser(name, help=doc)
        p.add_argument("--store", required=True, help="store directory")
        if name == "compact":
            p.add_argument(
                "--max-bytes",
                type=int,
                default=None,
                help="evict least-recently-hit segments until total "
                "segment bytes fit under this cap",
            )
    return parser


def cache_main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:
        return 0 if exc.code in (0, None) else 2
    store = VerdictStore(args.store, read_only=(args.action == "stats"))
    if args.action == "stats":
        stats = store.stats()
        print(f"store: {stats.path}", file=out)
        print(
            f"  segments: {stats.segments}  entries: {stats.entries}"
            f"  bytes: {stats.bytes}",
            file=out,
        )
        print(
            f"  invalidated: {stats.invalidated}"
            f"  skipped segments: {stats.skipped_segments}"
            f"  skipped lines: {stats.skipped_lines}"
            f"  tmp files: {stats.tmp_files}",
            file=out,
        )
        for name, entries, size in stats.per_segment:
            print(f"    {name}  entries={entries}  bytes={size}", file=out)
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} file(s) from {store.path}", file=out)
        return 0
    summary = store.compact(max_bytes=args.max_bytes)
    print(
        f"compacted {store.path}: removed {summary['removed_segments']} "
        f"segment(s) ({summary['removed_bytes']} bytes) and "
        f"{summary['removed_tmp']} temp file(s); "
        f"{summary['remaining_segments']} segment(s) "
        f"({summary['remaining_bytes']} bytes) remain",
        file=out,
    )
    return 0
