"""Corpus generation: time-sequenced ill-typed files with ground truth.

Reproduces the *shape* of the paper's data collection (Section 3.1):

* 10 programmers x 5 assignments;
* each programmer hits several distinct problems per assignment;
* each problem yields an *equivalence class* of 1..n time-consecutive files
  with the same error (recompile habit), of which the study analyzes one
  representative — the paper collected 2122 files and analyzed 1075;
* every file knows its injected fault(s), replacing the paper's manual
  ground-truth analysis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.miniml.parser import parse_program

from .mutations import MutatedProgram, apply_mutations
from .profiles import Profile, default_profiles
from .seeds import ASSIGNMENTS


@dataclass(eq=False)
class CorpusFile:
    """One collected ill-typed file."""

    programmer: str
    assignment: str
    #: Identifies the same-problem equivalence class this file belongs to.
    class_id: int
    #: Position of this file inside its class's time sequence.
    sequence_index: int
    #: Seconds-since-course-start pseudo timestamp (for realism/sorting).
    timestamp: int
    mutated: MutatedProgram

    @property
    def program(self):
        return self.mutated.program

    @property
    def is_representative(self) -> bool:
        """The study analyzes the first file of each equivalence class."""
        return self.sequence_index == 0


@dataclass
class Corpus:
    """The full collection plus its quotient."""

    files: List[CorpusFile] = field(default_factory=list)

    @property
    def representatives(self) -> List[CorpusFile]:
        return [f for f in self.files if f.is_representative]

    @property
    def class_sizes(self) -> List[int]:
        """Sizes of the same-problem equivalence classes (paper Figure 6)."""
        sizes: Dict[int, int] = {}
        for f in self.files:
            sizes[f.class_id] = sizes.get(f.class_id, 0) + 1
        return sorted(sizes.values(), reverse=True)

    def by_programmer(self) -> Dict[str, List[CorpusFile]]:
        out: Dict[str, List[CorpusFile]] = {}
        for f in self.representatives:
            out.setdefault(f.programmer, []).append(f)
        return out

    def by_assignment(self) -> Dict[str, List[CorpusFile]]:
        out: Dict[str, List[CorpusFile]] = {}
        for f in self.representatives:
            out.setdefault(f.assignment, []).append(f)
        return out


def generate_corpus(
    profiles: Optional[Sequence[Profile]] = None,
    assignments: Optional[Dict[str, str]] = None,
    seed: int = 42,
    scale: float = 1.0,
) -> Corpus:
    """Generate the synthetic study corpus.

    ``scale`` multiplies the per-assignment problem counts: 1.0 gives a
    corpus on the order of the paper's (hundreds of representatives,
    ~2000 raw files); tests use much smaller scales.
    """
    rng = random.Random(seed)
    profiles = list(profiles) if profiles is not None else default_profiles()
    assignments = assignments if assignments is not None else ASSIGNMENTS
    parsed = {name: parse_program(src) for name, src in assignments.items()}

    corpus = Corpus()
    class_id = 0
    timestamp = 0
    for assignment_index, (assignment, seed_program) in enumerate(parsed.items()):
        for profile in profiles:
            n_problems = profile.problems_for_assignment(assignment_index, rng)
            n_problems = max(1, round(n_problems * scale))
            for _ in range(n_problems):
                families = profile.pick_families(rng)
                mutated = apply_mutations(seed_program, assignment, families, rng)
                if mutated is None:
                    continue
                class_id += 1
                size = profile.class_size(rng)
                for k in range(size):
                    timestamp += rng.randint(30, 1800)
                    corpus.files.append(
                        CorpusFile(
                            programmer=profile.name,
                            assignment=assignment,
                            class_id=class_id,
                            sequence_index=k,
                            timestamp=timestamp,
                            mutated=mutated,
                        )
                    )
    return corpus
