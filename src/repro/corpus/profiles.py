"""Simulated programmer profiles.

The paper's population: 10 part-time graduate students, experienced
programmers but new to Caml (Section 3.1).  Two behaviours of theirs shape
the data and are modeled here:

* **error mix** — different people fall into different traps; profiles
  weight the mutation families differently (Figure 5(a) buckets by
  programmer precisely because "personal coding style might affect the
  results");
* **recompile habits** — "some programmers tend to try recompiling much more
  often than others", which is why the paper quotients time-sequenced files
  with the same problem into equivalence classes (Figure 6 shows the class
  sizes, heavily skewed small, log scale).  Profiles carry a geometric
  recompile parameter that reproduces that skew.

Experience also grows across assignments ("programmers are more familiar
with Caml on later homeworks"), so the per-assignment error count decays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .mutations import family_names


@dataclass
class Profile:
    """One simulated student."""

    name: str
    #: Relative weight per mutation family.
    weights: Dict[str, float]
    #: Geometric parameter for same-problem recompiles; smaller -> longer
    #: equivalence classes (compulsive recompilers).
    recompile_p: float
    #: Expected number of distinct problems on the first assignment.
    base_problems: float
    #: Multiplicative decay of problem count per later assignment.
    learning_rate: float
    #: Probability that a given problem is a multi-error file.
    multi_error_rate: float

    def problems_for_assignment(self, index: int, rng: random.Random) -> int:
        """How many distinct ill-typed problems this student hits on
        assignment ``index`` (0-based)."""
        expected = self.base_problems * (self.learning_rate ** index)
        count = int(rng.gauss(expected, expected * 0.25))
        return max(1, count)

    def class_size(self, rng: random.Random) -> int:
        """Size of one same-problem equivalence class (>= 1, geometric)."""
        size = 1
        while rng.random() > self.recompile_p:
            size += 1
            if size >= 64:  # paper's Figure 6 tops out well below this
                break
        return size

    def pick_families(self, rng: random.Random) -> List[str]:
        """Families for one problem (usually one; several for multi-error)."""
        names = list(self.weights)
        weights = [self.weights[n] for n in names]
        count = 1
        if rng.random() < self.multi_error_rate:
            count = rng.choice([2, 2, 3])
        return rng.choices(names, weights=weights, k=count)


#: Families whose conventional-checker message already explains the cause
#: (wrong literal, unbound name, ...).  Real student corpora are dominated
#: by these everyday slips, which is why the paper's headline result is a
#: near-tie (19% vs 17%) rather than a blowout; the prior reproduces that.
_COMMON_FAMILIES = {
    "wrong-literal": 5.0,
    "branch-mismatch": 4.0,
    "unbound-name": 4.0,
    "wrong-pattern-literal": 3.0,
    "operator-confusion": 3.0,
    "forgot-rec": 2.0,
}


def _weights(rng: random.Random, emphasis: Sequence[str]) -> Dict[str, float]:
    weights = {
        name: (0.4 + rng.random()) * _COMMON_FAMILIES.get(name, 1.0)
        for name in family_names()
    }
    for name in emphasis:
        if name in weights:
            weights[name] += 1.5
    return weights


#: Styles to emphasize: each tuple biases a student toward a trap family.
_STYLES = [
    ("swap-args", "missing-arg"),
    ("tupled-args", "curried-params"),
    ("list-commas", "cons-misuse"),
    ("unbound-name",),
    ("operator-confusion", "wrong-literal"),
    ("forgot-rec",),
    ("field-update-eq", "operator-confusion"),
    ("missing-arg", "extra-arg"),
    ("branch-mismatch", "wrong-pattern-literal"),
    ("swap-args", "unbound-name"),
]


def default_profiles(count: int = 10, seed: int = 2007) -> List[Profile]:
    """The study's simulated cohort (deterministic for a given seed)."""
    rng = random.Random(seed)
    profiles = []
    for i in range(count):
        style = _STYLES[i % len(_STYLES)]
        profiles.append(
            Profile(
                name=f"p{i + 1:02d}",
                weights=_weights(rng, style),
                recompile_p=rng.uniform(0.15, 0.6),
                base_problems=rng.uniform(3.0, 7.0),
                learning_rate=rng.uniform(0.75, 0.95),
                multi_error_rate=rng.uniform(0.15, 0.35),
            )
        )
    return profiles
