"""Student-error injectors: turning well-typed seeds into realistic bugs.

Each mutator models one error *family* the paper's evaluation encountered
(argument order, currying vs tupling, missing/extra arguments, the
``[1,2,3]`` list pitfall, misspelled/unbound names, operator confusion,
forgotten ``rec``, wrong literals, pattern mistakes) plus compound
multi-error files for exercising triage.

A mutation records its **ground truth**: the path it broke, the pristine
subtree, and its family.  The paper graded message quality by hand against
the programmer's eventual fix; the synthetic corpus replaces that with exact
knowledge of the injected fault, which is strictly less subjective (see
DESIGN.md substitution 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.miniml.ast_nodes import (
    Binding,
    DLet,
    EAnnot,
    ETry,
    TEName,
    EApp,
    EBinop,
    ECons,
    EConst,
    EConstructor,
    EFieldSet,
    EFieldGet,
    EFun,
    EIf,
    EList,
    EMatch,
    ETuple,
    EVar,
    Expr,
    PConst,
    Pattern,
    Program,
)
from repro.miniml.infer import typecheck_program
from repro.miniml.parser import parse_program
from repro.tree import Node, Path, get_at, replace_at, walk


@dataclass(eq=False)
class Mutation:
    """One injected error with its ground truth."""

    family: str
    description: str
    path: Path
    original: Node
    mutated: Node


@dataclass(eq=False)
class MutatedProgram:
    """An ill-typed program plus the list of injected faults."""

    program: Program
    source_name: str
    mutations: List[Mutation] = field(default_factory=list)

    @property
    def families(self) -> List[str]:
        return [m.family for m in self.mutations]

    @property
    def is_multi_error(self) -> bool:
        return len(self.mutations) > 1


#: A mutator inspects a program and proposes (path, replacement) rewrites.
MutatorFn = Callable[[Program, random.Random], List[Tuple[Path, Node, str]]]


def _expr_sites(program: Program, predicate) -> List[Tuple[Path, Node]]:
    return [(p, n) for p, n in walk(program) if isinstance(n, Expr) and predicate(n)]


# ---------------------------------------------------------------------------
# Individual mutators: each returns candidate rewrites (path, new, note)
# ---------------------------------------------------------------------------


def swap_app_args(program: Program, rng: random.Random):
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, EApp) and len(n.args) >= 2):
        i, j = 0, len(node.args) - 1
        args = list(node.args)
        args[i], args[j] = args[j], args[i]
        out.append((path, EApp(node.func, args), "passed arguments in the wrong order"))
    return out


def tupled_instead_of_curried(program: Program, rng: random.Random):
    """Call ``f (a, b)`` where ``f`` expects curried arguments."""
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, EApp) and len(n.args) >= 2):
        out.append((path, EApp(node.func, [ETuple(list(node.args))]),
                    "packed curried arguments into a tuple"))
    return out


def curried_instead_of_tupled(program: Program, rng: random.Random):
    """Define ``fun x y`` where a tuple argument was needed, or vice versa."""
    out = []
    for path, node in _expr_sites(
        program, lambda n: isinstance(n, EFun) and len(n.params) == 1
        and type(n.params[0]).__name__ == "PTuple"
    ):
        out.append((path, EFun(list(node.params[0].items), node.body),
                    "took curried parameters where a tuple was expected"))
    for path, node in _expr_sites(
        program, lambda n: isinstance(n, EFun) and len(n.params) >= 2
    ):
        from repro.miniml.ast_nodes import PTuple

        out.append((path, EFun([PTuple(list(node.params))], node.body),
                    "took a tuple parameter where curried arguments were expected"))
    return out


def drop_argument(program: Program, rng: random.Random):
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, EApp) and len(n.args) >= 2):
        args = list(node.args[:-1])
        out.append((path, EApp(node.func, args), "forgot the last argument"))
    return out


def extra_argument(program: Program, rng: random.Random):
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, EApp)):
        args = list(node.args) + [EConst(0, "int")]
        out.append((path, EApp(node.func, args), "passed an extra argument"))
    return out


def list_commas(program: Program, rng: random.Random):
    """The ``[1,2,3]`` pitfall: one tuple instead of three elements."""
    out = []
    for path, node in _expr_sites(
        program, lambda n: isinstance(n, EList) and len(n.items) >= 2
    ):
        out.append((path, EList([ETuple(list(node.items))]),
                    "separated list elements with ',' instead of ';'"))
    return out


_OP_CONFUSIONS = {
    "+": ["+.", "^"],
    "^": ["+"],
    "@": ["+", "^"],
    "=": [":="],
    ":=": ["="],
}


def operator_confusion(program: Program, rng: random.Random):
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, EBinop)):
        for alt in _OP_CONFUSIONS.get(node.op, []):
            out.append((path, EBinop(alt, node.left, node.right),
                        f"used {alt} where {node.op} was needed"))
    return out


def wrong_literal(program: Program, rng: random.Random):
    """An int literal where a string belongs, or vice versa."""
    out = []
    for path, node in _expr_sites(
        program, lambda n: isinstance(n, EConst) and n.kind == "int"
    ):
        out.append((path, EConst(str(node.value), "string"),
                    "wrote a string literal where an int was needed"))
    for path, node in _expr_sites(
        program, lambda n: isinstance(n, EConst) and n.kind == "string"
    ):
        out.append((path, EConst(0, "int"),
                    "wrote an int literal where a string was needed"))
    return out


_MISSPELLINGS = {
    "print_string": "print",
    "print_int": "printint",
    "List.length": "List.size",
    "List.map": "map",
    "List.filter": "filter",
    "String.concat": "concat",
}


def unbound_name(program: Program, rng: random.Random):
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, EVar)):
        misspelled = _MISSPELLINGS.get(node.name)
        if misspelled:
            out.append((path, EVar(misspelled), f"called {misspelled} instead of {node.name}"))
    return out


def forgot_rec(program: Program, rng: random.Random):
    out = []
    for path, node in walk(program):
        if isinstance(node, DLet) and node.rec:
            out.append((path, DLet(False, node.bindings), "forgot 'rec' on a recursive function"))
    return out


def cons_misuse(program: Program, rng: random.Random):
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, ECons)):
        out.append((path, ECons(node.tail, node.head), "swapped the sides of ::"))
        out.append((path, EBinop("@", node.head, node.tail),
                    "used @ where :: was needed"))
    return out


def field_update_with_eq(program: Program, rng: random.Random):
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, EFieldSet)):
        getter = EFieldGet(node.record, node.field_name)
        out.append((path, EBinop("=", getter, node.value),
                    "wrote = instead of <- for a field update"))
        out.append((path, EBinop(":=", getter, node.value),
                    "wrote := instead of <- for a field update"))
    return out


def wrong_pattern_literal(program: Program, rng: random.Random):
    out = []
    for path, node in walk(program):
        if isinstance(node, PConst) and node.kind == "int":
            out.append((path, PConst(str(node.value), "string"),
                        "matched a string literal where an int was needed"))
    return out


def try_instead_of_match(program: Program, rng: random.Random):
    """Wrote ``match e with`` where ``try e with`` was needed (or the
    student converted one to the other and broke the handler patterns)."""
    out = []
    for path, node in _expr_sites(program, lambda n: isinstance(n, ETry)):
        out.append((path, EMatch(node.body, list(node.cases)),
                    "matched on a value where exception handling was needed"))
    return out


def stale_annotation(program: Program, rng: random.Random):
    """A type annotation left over from an earlier version of the code."""
    out = []
    for path, node in _expr_sites(
        program, lambda n: isinstance(n, EConst) and n.kind == "int"
    ):
        out.append((path, EAnnot(EConst(node.value, "int"), TEName("string", [])),
                    "kept a stale (e : string) annotation on an int"))
    for path, node in _expr_sites(
        program, lambda n: isinstance(n, EConst) and n.kind == "string"
    ):
        out.append((path, EAnnot(EConst(node.value, "string"), TEName("int", [])),
                    "kept a stale (e : int) annotation on a string"))
    return out


def branch_type_mismatch(program: Program, rng: random.Random):
    """Make an if/match branch return the wrong type."""
    out = []
    for path, node in _expr_sites(
        program, lambda n: isinstance(n, EIf) and n.else_branch is not None
    ):
        wrong = EConst("oops", "string")
        out.append((path + ("else_branch",), wrong,
                    "returned a string from one branch"))
    return out


#: Family name -> mutator function.
MUTATORS: Dict[str, MutatorFn] = {
    "swap-args": swap_app_args,
    "tupled-args": tupled_instead_of_curried,
    "curried-params": curried_instead_of_tupled,
    "missing-arg": drop_argument,
    "extra-arg": extra_argument,
    "list-commas": list_commas,
    "operator-confusion": operator_confusion,
    "wrong-literal": wrong_literal,
    "unbound-name": unbound_name,
    "forgot-rec": forgot_rec,
    "cons-misuse": cons_misuse,
    "field-update-eq": field_update_with_eq,
    "wrong-pattern-literal": wrong_pattern_literal,
    "branch-mismatch": branch_type_mismatch,
    "try-match-confusion": try_instead_of_match,
    "stale-annotation": stale_annotation,
}

#: Which SEMINAL constructive rules repair which mutation family; the
#: grading module uses this to decide whether a suggestion "described the
#: problem correctly".
FIXING_RULES: Dict[str, Sequence[str]] = {
    "swap-args": ("permute-args",),
    "tupled-args": ("untuple-args", "curry-params"),
    "curried-params": ("curry-params", "tuple-params", "untuple-args", "tuple-args"),
    "missing-arg": ("insert-arg", "add-param"),
    "extra-arg": ("drop-arg", "drop-param"),
    "list-commas": ("list-of-tuple-to-list",),
    "operator-confusion": ("swap-operator", "refupdate-to-fieldset", "fieldset-to-refupdate"),
    "wrong-literal": ("wrap-conversion",),
    "unbound-name": ("qualify-name",),
    "forgot-rec": ("make-rec",),
    "cons-misuse": ("swap-cons", "cons-to-append"),
    "field-update-eq": ("refupdate-to-fieldset",),
    "wrong-pattern-literal": (),
    "branch-mismatch": (),
    "try-match-confusion": ("match-to-try", "try-to-match"),
    "stale-annotation": ("drop-annot",),
}


def apply_mutation(
    program: Program,
    source_name: str,
    family: str,
    rng: random.Random,
    avoid_paths: Sequence[Path] = (),
    prefer_decl: Optional[object] = None,
) -> Optional[MutatedProgram]:
    """Apply one random mutation of ``family``; None if inapplicable or if
    the result still type-checks (some rewrites are accidentally benign).

    ``prefer_decl`` (a first path step) biases the site toward one top-level
    declaration — multi-error injection uses it so independent errors land
    in the *same* function, the regime triage exists for (Section 2.4).
    """
    candidates = MUTATORS[family](program, rng)
    if avoid_paths:
        candidates = [
            (p, n, d)
            for p, n, d in candidates
            if not any(p[: len(a)] == tuple(a) or tuple(a)[: len(p)] == p for a in avoid_paths)
        ]
    rng.shuffle(candidates)
    if prefer_decl is not None:
        candidates.sort(key=lambda c: 0 if (c[0] and c[0][0] == prefer_decl) else 1)
    for path, replacement, description in candidates:
        mutated = replace_at(program, path, replacement)
        if not typecheck_program(mutated).ok:
            original = get_at(program, path)
            mutation = Mutation(family, description, path, original, replacement)
            return MutatedProgram(mutated, source_name, [mutation])
    return None


def apply_mutations(
    program: Program,
    source_name: str,
    families: Sequence[str],
    rng: random.Random,
) -> Optional[MutatedProgram]:
    """Inject several *independent* errors (for triage evaluation).

    Each later mutation avoids paths overlapping earlier ones so the errors
    stay independent, and is validated to keep the program ill-typed.
    """
    current = program
    mutations: List[Mutation] = []
    for family in families:
        prefer = mutations[0].path[0] if mutations and mutations[0].path else None
        # For follow-up errors, try several families until one lands in the
        # same declaration as the first: triage targets multiple errors in
        # one function, so the corpus must actually contain that regime.
        tried = [family] + [f for f in MUTATORS if f != family]
        result = None
        for candidate_family in tried:
            attempt = apply_mutation(
                current,
                source_name,
                candidate_family,
                rng,
                avoid_paths=[m.path for m in mutations],
                prefer_decl=prefer,
            )
            if attempt is None:
                continue
            landed = attempt.mutations[0].path
            if prefer is None or (landed and landed[0] == prefer):
                result = attempt
                break
            if result is None:
                result = attempt  # keep the first any-decl fallback
        if result is None:
            continue
        current = result.program
        mutations.extend(result.mutations)
    if not mutations:
        return None
    return MutatedProgram(current, source_name, mutations)


def family_names() -> List[str]:
    return list(MUTATORS)
