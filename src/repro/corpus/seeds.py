"""Seed programs: five homework-style MiniML assignments.

The paper's corpus came from five homework assignments in a graduate PL
course (each 100-200 lines, list-processing and interpreter flavored — the
Fig. 9 excerpt is from "a small-step interpreter for a simple Logo-like
language").  These seeds are well-typed programs in the same genres; the
corpus generator injects student-style errors into them
(:mod:`repro.corpus.mutations`).

Every seed must type-check — ``tests/corpus/test_seeds.py`` enforces it.
"""

from __future__ import annotations

from typing import Dict, List

HW1_LIST_BASICS = """
(* Homework 1: warm-up list utilities. *)
let rec sum lst =
  match lst with
    [] -> 0
  | x :: rest -> x + sum rest

let rec map2 f aList bList =
  List.map (fun (a, b) -> f a b) (List.combine aList bList)

let rec zip xs ys =
  match (xs, ys) with
    ([], _) -> []
  | (_, []) -> []
  | (x :: xt, y :: yt) -> (x, y) :: zip xt yt

let add str lst = if List.mem str lst then lst else str :: lst

let rec lookup key pairs =
  match pairs with
    [] -> raise Not_found
  | (k, v) :: rest -> if k = key then v else lookup key rest

let dedup lst = List.fold_left (fun acc x -> add x acc) [] lst

let pairsums aList bList = map2 (fun x y -> x + y) aList bList

let count_if p lst = List.length (List.filter p lst)

let join sep parts = String.concat sep parts

let rec rev_map f lst acc =
  match lst with
    [] -> acc
  | x :: rest -> rev_map f rest (f x :: acc)

let rec intersperse sep lst =
  match lst with
    [] -> []
  | [x] -> [x]
  | x :: rest -> x :: sep :: intersperse sep rest

let maximum lst =
  match lst with
    [] -> raise (Failure "maximum of empty list")
  | x :: rest -> List.fold_left max x rest

let rec assoc_update key value pairs =
  match pairs with
    [] -> [(key, value)]
  | (k, v) :: rest ->
      if k = key then (key, value) :: rest
      else (k, v) :: assoc_update key value rest

let histogram words =
  List.fold_left
    (fun counts w ->
      let n = try lookup w counts with Not_found -> 0 in
      assoc_update w (n + 1) counts)
    [] words

let describe counts =
  join "; " (List.map (fun (w, n) -> w ^ "=" ^ string_of_int n) counts)

let main =
  let nums = [1; 2; 3; 4] in
  let names = ["alice"; "bob"; "alice"] in
  let uniq = dedup names in
  let total = sum nums in
  let tagged = zip names nums in
  let bumped = pairsums nums [10; 20; 30; 40] in
  let evens = count_if (fun n -> n mod 2 = 0) bumped in
  print_string (join ", " uniq);
  print_int (total + evens + List.length tagged);
  print_newline ()
"""

HW2_CALCULATOR = """
(* Homework 2: an arithmetic-expression interpreter. *)
type expr =
    Num of int
  | Var of string
  | Add of expr * expr
  | Mul of expr * expr
  | Neg of expr
  | Let of string * expr * expr

exception UnboundVar of string

let rec lookup env name =
  match env with
    [] -> raise (UnboundVar name)
  | (n, v) :: rest -> if n = name then v else lookup rest name

let rec eval env e =
  match e with
    Num n -> n
  | Var name -> lookup env name
  | Add (a, b) -> eval env a + eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Neg a -> 0 - eval env a
  | Let (name, bound, body) ->
      let v = eval env bound in
      eval ((name, v) :: env) body

let rec simplify e =
  match e with
    Add (Num 0, b) -> simplify b
  | Add (a, Num 0) -> simplify a
  | Mul (Num 1, b) -> simplify b
  | Mul (a, Num 1) -> simplify a
  | Add (a, b) -> Add (simplify a, simplify b)
  | Mul (a, b) -> Mul (simplify a, simplify b)
  | Neg a -> Neg (simplify a)
  | Let (n, a, b) -> Let (n, simplify a, simplify b)
  | other -> other

let rec size e =
  match e with
    Num _ -> 1
  | Var _ -> 1
  | Add (a, b) -> 1 + size a + size b
  | Mul (a, b) -> 1 + size a + size b
  | Neg a -> 1 + size a
  | Let (_, a, b) -> 1 + size a + size b

let rec to_string e =
  match e with
    Num n -> string_of_int n
  | Var name -> name
  | Add (a, b) -> "(" ^ to_string a ^ " + " ^ to_string b ^ ")"
  | Mul (a, b) -> "(" ^ to_string a ^ " * " ^ to_string b ^ ")"
  | Neg a -> "-" ^ to_string a
  | Let (n, a, b) -> "let " ^ n ^ " = " ^ to_string a ^ " in " ^ to_string b

let rec vars_of e =
  match e with
    Num _ -> []
  | Var name -> [name]
  | Add (a, b) -> vars_of a @ vars_of b
  | Mul (a, b) -> vars_of a @ vars_of b
  | Neg a -> vars_of a
  | Let (n, a, b) -> vars_of a @ List.filter (fun v -> v <> n) (vars_of b)

let rec depth e =
  match e with
    Num _ -> 1
  | Var _ -> 1
  | Add (a, b) -> 1 + max (depth a) (depth b)
  | Mul (a, b) -> 1 + max (depth a) (depth b)
  | Neg a -> 1 + depth a
  | Let (_, a, b) -> 1 + max (depth a) (depth b)

let is_closed e = vars_of e = []

let sample = Let ("x", Num 6, Add (Mul (Var "x", Num 7), Num 0))

let safe_eval env e = try eval env e with UnboundVar _ -> 0 | Not_found -> -1

let annotated_size = (size sample : int)

let report e =
  to_string e ^ " [size " ^ string_of_int (size e) ^ ", depth "
  ^ string_of_int (depth e) ^ "]"

let main =
  let simplified = simplify sample in
  print_int (eval [] simplified);
  print_string " size=";
  print_int (size simplified);
  print_newline ()
"""

HW3_LOGO_MOVER = """
(* Homework 3: a small-step interpreter for a Logo-like mover. *)
type move =
    Ahead of int
  | Turn of int
  | For of int * (move list)

let rec repeat n lst =
  if n <= 0 then []
  else lst @ repeat (n - 1) lst

let rec flatten moves =
  match moves with
    [] -> []
  | For (n, body) :: tl -> repeat n (flatten body) @ flatten tl
  | m :: tl -> m :: flatten tl

let step state m =
  let (x, y, dir) = state in
  match m with
    Ahead n ->
      if dir mod 4 = 0 then (x + n, y, dir)
      else if dir mod 4 = 1 then (x, y + n, dir)
      else if dir mod 4 = 2 then (x - n, y, dir)
      else (x, y - n, dir)
  | Turn n -> (x, y, dir + n)
  | For (_, _) -> (x, y, dir)

let rec run state moves =
  match moves with
    [] -> state
  | m :: rest -> run (step state m) rest

let distance state =
  let (x, y, _) = state in
  abs x + abs y

let rec total_turns moves =
  match moves with
    [] -> 0
  | Turn n :: tl -> n + total_turns tl
  | For (k, body) :: tl -> k * total_turns body + total_turns tl
  | _ :: tl -> total_turns tl

let rec mirror moves =
  match moves with
    [] -> []
  | Turn n :: tl -> Turn (0 - n) :: mirror tl
  | For (k, body) :: tl -> For (k, mirror body) :: mirror tl
  | m :: tl -> m :: mirror tl

let rec optimize moves =
  match moves with
    Ahead a :: Ahead b :: tl -> optimize (Ahead (a + b) :: tl)
  | Turn a :: Turn b :: tl -> optimize (Turn (a + b) :: tl)
  | For (0, _) :: tl -> optimize tl
  | For (1, body) :: tl -> optimize (body @ tl)
  | m :: tl -> m :: optimize tl
  | [] -> []

let trace states m =
  match states with
    [] -> [step (0, 0, 0) m]
  | s :: _ -> step s m :: states

let path_of moves = List.rev (List.fold_left trace [] (flatten moves))

let program = [Ahead 3; Turn 1; For (2, [Ahead 1; Turn 1]); Ahead 2]

let main =
  let final = run (0, 0, 0) (flatten program) in
  print_int (distance final);
  print_newline ()
"""

HW4_ACCOUNTS = """
(* Homework 4: records, refs, and mutable state. *)
type account = {owner : string; mutable balance : int; mutable ops : int}

let make_account name start = {owner = name; balance = start; ops = 0}

let deposit acct amount =
  acct.balance <- acct.balance + amount;
  acct.ops <- acct.ops + 1

let withdraw acct amount =
  if amount > acct.balance then raise (Failure "insufficient funds")
  else begin
    acct.balance <- acct.balance - amount;
    acct.ops <- acct.ops + 1
  end

let transfer src dst amount =
  withdraw src amount;
  deposit dst amount

let total_ops = ref 0

let audit accounts =
  List.iter (fun a -> total_ops := !total_ops + a.ops) accounts

let richest accounts =
  List.fold_left
    (fun best a -> if a.balance > best.balance then a else best)
    (List.hd accounts)
    accounts

let apply_interest rate acct =
  acct.balance <- acct.balance + acct.balance * rate / 100

let rec find_account name accounts =
  match accounts with
    [] -> raise Not_found
  | a :: rest -> if a.owner = name then a else find_account name rest

let safe_balance name accounts =
  try (find_account name accounts).balance with Not_found -> 0

let statement acct =
  acct.owner ^ ": " ^ string_of_int acct.balance ^ " ("
  ^ string_of_int acct.ops ^ " ops)"

let statements accounts = String.concat "\n" (List.map statement accounts)

let total_assets accounts =
  List.fold_left (fun sum a -> sum + a.balance) 0 accounts

let main =
  let alice = make_account "alice" 100 in
  let bob = make_account "bob" 50 in
  deposit alice 25;
  transfer alice bob 40;
  audit [alice; bob];
  print_string (richest [alice; bob]).owner;
  print_int !total_ops;
  print_newline ()
"""

HW5_TREES = """
(* Homework 5: polymorphic trees and higher-order functions. *)
type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree

let rec insert cmp t x =
  match t with
    Leaf -> Node (Leaf, x, Leaf)
  | Node (l, v, r) ->
      if cmp x v < 0 then Node (insert cmp l x, v, r)
      else if cmp x v > 0 then Node (l, v, insert cmp r x)
      else t

let rec tree_map f t =
  match t with
    Leaf -> Leaf
  | Node (l, v, r) -> Node (tree_map f l, f v, tree_map f r)

let rec tree_fold f acc t =
  match t with
    Leaf -> acc
  | Node (l, v, r) -> tree_fold f (f (tree_fold f acc l) v) r

let rec to_list t = tree_fold (fun acc v -> acc @ [v]) [] t

let rec height t =
  match t with
    Leaf -> 0
  | Node (l, _, r) -> 1 + max (height l) (height r)

let of_list cmp lst = List.fold_left (insert cmp) Leaf lst

let rec find opt_default f t =
  match t with
    Leaf -> opt_default
  | Node (l, v, r) ->
      if f v then Some v
      else
        (match find opt_default f l with
           Some x -> Some x
         | None -> find opt_default f r)

let rec mirror_tree t =
  match t with
    Leaf -> Leaf
  | Node (l, v, r) -> Node (mirror_tree r, v, mirror_tree l)

let rec tree_filter p t =
  match t with
    Leaf -> []
  | Node (l, v, r) ->
      let here = if p v then [v] else [] in
      tree_filter p l @ here @ tree_filter p r

let rec min_elem t =
  match t with
    Leaf -> None
  | Node (Leaf, v, _) -> Some v
  | Node (l, _, _) -> min_elem l

let rec is_balanced t =
  match t with
    Leaf -> true
  | Node (l, _, r) ->
      let d = height l - height r in
      d <= 1 && 0 - 1 <= d && is_balanced l && is_balanced r

let count t = tree_fold (fun acc _ -> acc + 1) 0 t

let main =
  let t = of_list compare [5; 3; 8; 1; 4] in
  let doubled = tree_map (fun n -> n * 2) t in
  let total = tree_fold (fun acc n -> acc + n) 0 doubled in
  let found = find None (fun n -> n > 6) doubled in
  let bonus = match found with Some n -> n | None -> 0 in
  print_int (total + height t + bonus + List.length (to_list t));
  print_newline ()
"""

#: Assignment name -> source text, in course order (the paper's Figure 5(b)
#: buckets results by assignment, "programmer experience increases for
#: higher-numbered assignments").
ASSIGNMENTS: Dict[str, str] = {
    "hw1": HW1_LIST_BASICS,
    "hw2": HW2_CALCULATOR,
    "hw3": HW3_LOGO_MOVER,
    "hw4": HW4_ACCOUNTS,
    "hw5": HW5_TREES,
}


def assignment_names() -> List[str]:
    return list(ASSIGNMENTS)


def assignment_source(name: str) -> str:
    return ASSIGNMENTS[name]
