"""Synthetic study corpus: seeds, student-error mutators, and grading.

Replaces the paper's collected student files (see DESIGN.md, substitution 3).
"""

from .generator import Corpus, CorpusFile, generate_corpus  # noqa: F401
from .grading import (  # noqa: F401
    FileGrades,
    Grade,
    grade_checker,
    grade_file,
    grade_seminal,
    grade_suggestion,
)
from .mutations import (  # noqa: F401
    FIXING_RULES,
    MUTATORS,
    MutatedProgram,
    Mutation,
    apply_mutation,
    apply_mutations,
    family_names,
)
from .profiles import Profile, default_profiles  # noqa: F401
from .seeds import ASSIGNMENTS, assignment_names, assignment_source  # noqa: F401
