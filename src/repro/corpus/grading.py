"""Automatic message-quality grading against mutation ground truth.

The paper graded messages by hand, separately scoring (Section 3.1) whether
a message "identified a good location" and whether it "described the problem
at that location correctly".  With a synthetic corpus we know the injected
fault exactly, so both judgments become mechanical:

**Location** — the blamed region must coincide with the fault: either the
blame lies inside the mutated subtree, or the mutated subtree lies inside a
blamed region that is not grossly larger (a message that says "replace the
entire function" does not count as locating a one-token fault — that is
precisely the failure mode triage exists to fix).

**Accuracy** — the message must describe the *cause*, not just a symptom:

* a SEMINAL suggestion is accurate when it proposes the exact inverse of
  the mutation, or applies a constructive rule from the fault family's
  known-fix set (:data:`repro.corpus.mutations.FIXING_RULES`), or pinpoints
  the exact mutated node with a removal/adaptation/unbound report;
* the conventional checker is accurate when the fault family is one whose
  symptom *is* its cause (a wrong literal, an unbound name): the mismatch
  message at the right spot fully explains those.  For structural faults
  (swapped arguments, currying confusion, a missing argument) the checker's
  "has type X but is used with type Y" names only the downstream symptom —
  the paper's Figure 8 discussion is exactly this distinction.

A grade is 2 (location + accurate), 1 (location only), or 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.changes import KIND_REMOVE, Suggestion
from repro.core.seminal import ExplainResult
from repro.miniml.errors import (
    MiniMLTypeError,
    RecursionError_,
    UnboundConstructorError,
    UnboundVariableError,
)
from repro.tree import Node, Path, find_path, node_size, structurally_equal

from .mutations import FIXING_RULES, MutatedProgram, Mutation

#: Fault families whose conventional-checker symptom fully describes the
#: cause (see module docstring).
CHECKER_TRANSPARENT_FAMILIES = frozenset(
    {
        "wrong-literal",
        "branch-mismatch",
        "wrong-pattern-literal",
        "operator-confusion",
        "unbound-name",
        "forgot-rec",
    }
)

#: How much larger than the fault a blamed region may be and still count as
#: "a good location" (in AST nodes).
LOCATION_SLACK_FACTOR = 3
LOCATION_SLACK_BASE = 4


@dataclass
class Grade:
    """Quality of one message for one file."""

    location: bool
    accurate: bool

    @property
    def score(self) -> int:
        if self.location and self.accurate:
            return 2
        if self.location:
            return 1
        return 0


def _is_prefix(a: Path, b: Path) -> bool:
    return len(a) <= len(b) and tuple(b[: len(a)]) == tuple(a)


def _location_good(blame_path: Optional[Path], blame_node: Optional[Node],
                   mutation: Mutation, fault_node: Node) -> bool:
    if blame_path is None:
        return False
    fault_path = tuple(mutation.path)
    blame_path = tuple(blame_path)
    if _is_prefix(fault_path, blame_path):
        return True  # blame inside the mutated region
    if _is_prefix(blame_path, fault_path):
        # Mutated region inside the blame: only good if the blame is not
        # grossly larger than the fault.
        if blame_node is None:
            return False
        limit = node_size(fault_node) * LOCATION_SLACK_FACTOR + LOCATION_SLACK_BASE
        return node_size(blame_node) <= limit
    return False


# ---------------------------------------------------------------------------
# Conventional checker
# ---------------------------------------------------------------------------


def grade_checker(mutated: MutatedProgram, error: MiniMLTypeError) -> Grade:
    """Grade the conventional type-checker's message for a mutated file."""
    blame_node = error.node
    blame_path = find_path(mutated.program, blame_node) if blame_node is not None else None
    for mutation in mutated.mutations:
        fault_node = _fault_node(mutated, mutation)
        if not _location_good(blame_path, blame_node, mutation, fault_node):
            continue
        accurate = mutation.family in CHECKER_TRANSPARENT_FAMILIES
        if mutation.family == "unbound-name" and not isinstance(
            error, (UnboundVariableError, UnboundConstructorError)
        ):
            accurate = False
        if mutation.family == "forgot-rec" and not isinstance(
            error, (UnboundVariableError, RecursionError_)
        ):
            accurate = False
        return Grade(location=True, accurate=accurate)
    return Grade(location=False, accurate=False)


def _fault_node(mutated: MutatedProgram, mutation: Mutation) -> Node:
    """The mutated subtree inside the mutated program."""
    try:
        from repro.tree import get_at

        return get_at(mutated.program, mutation.path)
    except (KeyError, AttributeError, IndexError, TypeError):
        return mutation.mutated


# ---------------------------------------------------------------------------
# SEMINAL
# ---------------------------------------------------------------------------


#: SEMINAL presents a short ranked report; grading judges the best message
#: among the leading suggestions, mirroring how the paper's graders saw the
#: tool's output (the paper presents a ranked list, "though we often
#: present only one" — two is the headline-plus-runner-up the examples in
#: the paper's Section 2 discuss).
DISPLAYED_SUGGESTIONS = 2


def grade_seminal(
    mutated: MutatedProgram, result: ExplainResult, top_k: int = DISPLAYED_SUGGESTIONS
) -> Grade:
    """Grade the displayed report: the best of the top ``top_k`` suggestions."""
    best_grade = Grade(location=False, accurate=False)
    for suggestion in result.suggestions[:top_k]:
        grade = grade_suggestion(mutated, suggestion)
        if grade.score > best_grade.score:
            best_grade = grade
        if best_grade.score == 2:
            break
    return best_grade


def grade_suggestion(mutated: MutatedProgram, suggestion: Suggestion) -> Grade:
    blame_path = tuple(suggestion.change.path)
    blame_node = suggestion.change.original
    # A known-fix rule for one of the fault families counts wherever it was
    # applied: def/use-mismatch faults (currying, argument order, arity) can
    # be correctly repaired at the *other* end of the mismatch — e.g. fixing
    # a call site to match a mis-declared function.  The suggestion's very
    # existence proves the repair makes the (focused) program type-check.
    for mutation in mutated.mutations:
        if suggestion.change.rule and suggestion.change.rule in FIXING_RULES.get(
            mutation.family, ()
        ):
            return Grade(location=True, accurate=True)
    for mutation in mutated.mutations:
        fault_node = _fault_node(mutated, mutation)
        if not _location_good(blame_path, blame_node, mutation, fault_node):
            continue
        return Grade(location=True, accurate=_suggestion_accurate(mutation, suggestion))
    return Grade(location=False, accurate=False)


def _suggestion_accurate(mutation: Mutation, suggestion: Suggestion) -> bool:
    fault_path = tuple(mutation.path)
    blame_path = tuple(suggestion.change.path)
    # Exact inverse of the mutation: unquestionably accurate.
    if blame_path == fault_path and structurally_equal(
        suggestion.change.replacement, mutation.original
    ):
        return True
    # A known-fix constructive rule for this fault family, at the fault.
    if suggestion.change.rule in FIXING_RULES.get(mutation.family, ()):
        return True
    # An unbound-variable report for an unbound-name fault.
    if suggestion.unbound_variable is not None and mutation.family in (
        "unbound-name",
        "forgot-rec",
    ):
        return True
    # A removal/adaptation that pinpoints exactly the mutated node: the
    # message quotes precisely the bad code and the type it should have.
    if blame_path == fault_path or _is_prefix(fault_path, blame_path):
        return suggestion.kind in (KIND_REMOVE, "adapt")
    return False


# ---------------------------------------------------------------------------
# Convenience: grade all three messages for one file
# ---------------------------------------------------------------------------


@dataclass
class FileGrades:
    """The three message grades the study compares per analyzed file."""

    checker: Grade
    seminal: Grade
    seminal_no_triage: Grade


def grade_file(
    mutated: MutatedProgram,
    checker_error: MiniMLTypeError,
    with_triage: ExplainResult,
    without_triage: ExplainResult,
) -> FileGrades:
    return FileGrades(
        checker=grade_checker(mutated, checker_error),
        seminal=grade_seminal(mutated, with_triage),
        seminal_no_triage=grade_seminal(mutated, without_triage),
    )
