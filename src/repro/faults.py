"""``repro.faults`` — deterministic fault injection for the search stack.

The resilience layer (:mod:`repro.core.resilience`, plus the oracle's crash
guard) promises that ``explain()`` degrades to best-effort suggestions under
*any* oracle failure.  This module is how we prove it: :class:`ChaosOracle`
wraps the real :class:`~repro.core.oracle.Oracle` and injects failures on a
deterministic, seeded schedule —

* **crashes** (``crash_every``): every Nth check raises (a plain
  :class:`ChaosCrash` or a simulated :class:`RecursionError`), exercising
  the oracle's crash-isolation guard;
* **latency** (``latency_every``/``latency_seconds``): every Nth check
  sleeps first, exercising wall-clock deadlines;
* **cache corruption** (``corrupt_cache_every``): every Nth check flips the
  verdict of a random (seeded) memo entry, exercising the search's
  tolerance of a lying oracle — outcomes may be wrong but must stay
  well-formed;
* **snapshot poisoning** (``poison_snapshot_after``): once armed, the
  prefix snapshot is wrapped so any use of it explodes, exercising the
  self-healing incremental fallback (``oracle.prefix.fallbacks``).

Schedules key off the oracle's own call counter, so a given
``(plan, program)`` pair replays identically — chaos tests are ordinary
deterministic tests.  The injected ``sleep`` is swappable for tests that
must not actually block.

Inspired by fault-injection harnesses around solver-backed tools: the SMT
localizers bound solver effort per query and treat timeouts as ordinary
answers; we hold our oracle to the same standard and test it by firing
every failure mode on every corpus program (see ``tests/faults``).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, fields
from typing import Callable, Dict, Optional

from repro.core.oracle import Oracle


class ChaosCrash(RuntimeError):
    """An injected oracle crash (the generic fault)."""


class SnapshotPoisoned(RuntimeError):
    """An injected failure from using a poisoned prefix snapshot."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic schedule of injected failures.

    All knobs default to "off"; the empty plan makes :class:`ChaosOracle`
    a transparent wrapper (the equivalence tests rely on that).  ``seed``
    feeds the RNG used only where a schedule needs a choice (which cache
    entry to corrupt), keeping every run replayable.
    """

    name: str = "chaos"
    #: Raise on every Nth oracle check (1 = every check).
    crash_every: Optional[int] = None
    #: Flavour of injected crashes: "runtime" or "recursion" raise an
    #: exception through the crash-isolation guard; "hard-exit" kills the
    #: whole process with ``os._exit`` — no guard can catch that, so it is
    #: only meaningful routed into a parallel pool worker (via
    #: ``SearchConfig.worker_fault_plan``), where it exercises true
    #: worker-death degradation.  In-process it would kill the test runner.
    crash_kind: str = "runtime"
    #: Sleep before every Nth check.
    latency_every: Optional[int] = None
    latency_seconds: float = 0.0
    #: Flip the verdict of one random memo entry every Nth check
    #: (requires the oracle cache to be enabled to have any effect).
    corrupt_cache_every: Optional[int] = None
    #: Poison the armed prefix snapshot from the Nth check onward.
    poison_snapshot_after: Optional[int] = None
    seed: int = 0

    @property
    def active(self) -> bool:
        return any(
            getattr(self, f.name) for f in fields(self)
            if f.name not in ("name", "crash_kind", "seed", "latency_seconds")
        )

    def crash_exception(self) -> BaseException:
        if self.crash_kind == "recursion":
            return RecursionError(f"[{self.name}] injected deep-recursion crash")
        return ChaosCrash(f"[{self.name}] injected oracle crash")


def standard_fault_plans() -> Dict[str, FaultPlan]:
    """The named plans the chaos suite (and CI smoke) runs every program
    through.  Latencies are kept tiny: the point is schedule coverage,
    not real waiting."""
    return {
        "crash-every-3": FaultPlan(name="crash-every-3", crash_every=3),
        "crash-every-1": FaultPlan(name="crash-every-1", crash_every=1),
        "recursion-crash": FaultPlan(
            name="recursion-crash", crash_every=4, crash_kind="recursion"
        ),
        "latency": FaultPlan(
            name="latency", latency_every=2, latency_seconds=0.0002
        ),
        "cache-corruption": FaultPlan(
            name="cache-corruption", corrupt_cache_every=2, seed=1234
        ),
        "snapshot-poison": FaultPlan(
            name="snapshot-poison", poison_snapshot_after=1
        ),
    }


class _PoisonedSnapshot:
    """Wraps a real snapshot: still *matches* candidates (so the oracle
    takes the incremental path) but explodes the moment inference touches
    any of its state — exactly the shape of a corrupted-snapshot bug."""

    __slots__ = ("_inner",)

    def __init__(self, inner):
        object.__setattr__(self, "_inner", inner)

    def matches(self, program) -> bool:
        return object.__getattribute__(self, "_inner").matches(program)

    def __getattr__(self, name):
        raise SnapshotPoisoned(f"poisoned snapshot attribute access: {name!r}")


class ChaosOracle(Oracle):
    """An :class:`Oracle` that injects failures per a :class:`FaultPlan`.

    Construct it with the same keyword arguments as :class:`Oracle`
    (budget, cache, metrics, ...) plus the plan; pass it to
    ``explain(..., oracle=...)``.  Injected-fault counts are exposed in
    :attr:`injected` (reset per search, like the oracle's own counters).
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        sleep: Callable[[float], None] = time.sleep,
        **oracle_kwargs,
    ):
        super().__init__(**oracle_kwargs)
        self.plan = plan
        self._sleep = sleep
        self._rng = random.Random(plan.seed)
        self.injected: Dict[str, int] = {
            "crash": 0, "latency": 0, "cache": 0, "snapshot": 0,
        }

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.plan.seed)
        self.injected = {"crash": 0, "latency": 0, "cache": 0, "snapshot": 0}

    def _check_once(self, program):
        # ``check`` has already incremented ``calls``, so the schedule
        # counter n is 1-based: "every Nth" fires on calls N, 2N, ...
        n = self.calls
        plan = self.plan
        if plan.latency_every and n % plan.latency_every == 0:
            self.injected["latency"] += 1
            self._sleep(plan.latency_seconds)
        if (
            plan.poison_snapshot_after is not None
            and n >= plan.poison_snapshot_after
            and self._snapshot is not None
            and not isinstance(self._snapshot, _PoisonedSnapshot)
        ):
            self.injected["snapshot"] += 1
            self._snapshot = _PoisonedSnapshot(self._snapshot)
        if plan.crash_every and n % plan.crash_every == 0:
            self.injected["crash"] += 1
            if plan.crash_kind == "hard-exit":
                os._exit(23)
            raise plan.crash_exception()
        result = super()._check_once(program)
        if (
            plan.corrupt_cache_every
            and self._cache
            and n % plan.corrupt_cache_every == 0
        ):
            self._corrupt_cache_entry()
        return result

    def _corrupt_cache_entry(self) -> None:
        """Flip the verdict of one seeded-random memo entry in place.

        The corrupted entry is a structurally valid ``CheckResult`` with
        the opposite ``ok`` — the worst *silent* cache failure: the oracle
        confidently serves a wrong answer.  The search must still return a
        well-formed (if wrong) outcome.
        """
        from repro.miniml.infer import CheckResult

        key = self._rng.choice(list(self._cache))
        old = self._cache[key]
        self.injected["cache"] += 1
        self._cache[key] = CheckResult(ok=not old.ok)
