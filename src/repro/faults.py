"""``repro.faults`` — deterministic fault injection for the search stack.

The resilience layer (:mod:`repro.core.resilience`, plus the oracle's crash
guard) promises that ``explain()`` degrades to best-effort suggestions under
*any* oracle failure.  This module is how we prove it: :class:`ChaosOracle`
wraps the real :class:`~repro.core.oracle.Oracle` and injects failures on a
deterministic, seeded schedule —

* **crashes** (``crash_every``): every Nth check raises (a plain
  :class:`ChaosCrash` or a simulated :class:`RecursionError`), exercising
  the oracle's crash-isolation guard;
* **latency** (``latency_every``/``latency_seconds``): every Nth check
  sleeps first, exercising wall-clock deadlines;
* **cache corruption** (``corrupt_cache_every``): every Nth check flips the
  verdict of a random (seeded) memo entry, exercising the search's
  tolerance of a lying oracle — outcomes may be wrong but must stay
  well-formed;
* **snapshot poisoning** (``poison_snapshot_after``): once armed, the
  prefix snapshot is wrapped so any use of it explodes, exercising the
  self-healing incremental fallback (``oracle.prefix.fallbacks``);
* **hangs** (``hang_every``/``hang_seconds``): every Nth check stalls,
  exercising the pool's hung-worker detection and the per-candidate
  wall-clock watchdog;
* **poison candidates** (``poison_digest``/``poison_kind``): any check of
  the candidate with this structural digest crashes — *reproducibly*, by
  content rather than schedule — exercising bisection quarantine (see
  :func:`poison_candidate_plan`);
* **flaky store I/O** (``store_fail_every``/``store_fail_streak``):
  :class:`FlakyStore` raises ``OSError`` from the verdict store's segment
  read/write seams on a deterministic schedule, exercising the
  ``repro.core.retry`` policy and the degrade-to-cache-miss path;
* **memory hogging** (``hog_every``/``hog_bytes``): every Nth check leaks
  a ballast allocation, exercising the per-worker RSS watchdog.

Schedules key off the oracle's own call counter, so a given
``(plan, program)`` pair replays identically — chaos tests are ordinary
deterministic tests.  The injected ``sleep`` is swappable for tests that
must not actually block.

Inspired by fault-injection harnesses around solver-backed tools: the SMT
localizers bound solver effort per query and treat timeouts as ordinary
answers; we hold our oracle to the same standard and test it by firing
every failure mode on every corpus program (see ``tests/faults``).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, fields
from typing import Callable, Dict, Optional

from repro.core.oracle import Oracle
from repro.store.verdicts import VerdictStore


class ChaosCrash(RuntimeError):
    """An injected oracle crash (the generic fault)."""


class SnapshotPoisoned(RuntimeError):
    """An injected failure from using a poisoned prefix snapshot."""


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic schedule of injected failures.

    All knobs default to "off"; the empty plan makes :class:`ChaosOracle`
    a transparent wrapper (the equivalence tests rely on that).  ``seed``
    feeds the RNG used only where a schedule needs a choice (which cache
    entry to corrupt), keeping every run replayable.
    """

    name: str = "chaos"
    #: Raise on every Nth oracle check (1 = every check).
    crash_every: Optional[int] = None
    #: Flavour of injected crashes: "runtime" or "recursion" raise an
    #: exception through the crash-isolation guard; "hard-exit" kills the
    #: whole process with ``os._exit`` — no guard can catch that, so it is
    #: only meaningful routed into a parallel pool worker (via
    #: ``SearchConfig.worker_fault_plan``), where it exercises true
    #: worker-death degradation.  In-process it would kill the test runner.
    crash_kind: str = "runtime"
    #: Sleep before every Nth check.
    latency_every: Optional[int] = None
    latency_seconds: float = 0.0
    #: Flip the verdict of one random memo entry every Nth check
    #: (requires the oracle cache to be enabled to have any effect).
    corrupt_cache_every: Optional[int] = None
    #: Poison the armed prefix snapshot from the Nth check onward.
    poison_snapshot_after: Optional[int] = None
    #: Stall (sleep) before every Nth check — a "hung worker" in miniature.
    hang_every: Optional[int] = None
    hang_seconds: float = 0.05
    #: Crash any check of the candidate whose structural digest (see
    #: :func:`repro.store.fingerprint.key_digest`) matches — content-keyed,
    #: so it reproduces on retry where schedule crashes do not.
    poison_digest: Optional[str] = None
    #: Flavour of the poison crash: "hard-exit" (kill the process; pool
    #: workers only) or "runtime" (raise through the crash guard).
    poison_kind: str = "hard-exit"
    #: Inject an OSError from every Nth verdict-store segment I/O
    #: operation (via :class:`FlakyStore`), each failure repeating for
    #: ``store_fail_streak`` consecutive attempts (a streak >= the retry
    #: policy's attempt budget exhausts the retry and degrades).
    store_fail_every: Optional[int] = None
    store_fail_streak: int = 1
    #: Leak ``hog_bytes`` of ballast before every Nth check.
    hog_every: Optional[int] = None
    hog_bytes: int = 1 << 20
    #: Mark the armed declaration outcome table stale on every Nth check:
    #: every replay-time fingerprint verification must then refuse,
    #: degrading replays to real checks — correct answers, never wrong.
    stale_decl_table: Optional[int] = None
    seed: int = 0

    @property
    def active(self) -> bool:
        return any(
            getattr(self, f.name) for f in fields(self)
            if f.name not in (
                "name", "crash_kind", "seed", "latency_seconds",
                "hang_seconds", "poison_kind", "store_fail_streak", "hog_bytes",
            )
        )

    def crash_exception(self) -> BaseException:
        if self.crash_kind == "recursion":
            return RecursionError(f"[{self.name}] injected deep-recursion crash")
        return ChaosCrash(f"[{self.name}] injected oracle crash")


def standard_fault_plans() -> Dict[str, FaultPlan]:
    """The named plans the chaos suite (and CI smoke) runs every program
    through.  Latencies are kept tiny: the point is schedule coverage,
    not real waiting."""
    return {
        "crash-every-3": FaultPlan(name="crash-every-3", crash_every=3),
        "crash-every-1": FaultPlan(name="crash-every-1", crash_every=1),
        "recursion-crash": FaultPlan(
            name="recursion-crash", crash_every=4, crash_kind="recursion"
        ),
        "latency": FaultPlan(
            name="latency", latency_every=2, latency_seconds=0.0002
        ),
        "cache-corruption": FaultPlan(
            name="cache-corruption", corrupt_cache_every=2, seed=1234
        ),
        "snapshot-poison": FaultPlan(
            name="snapshot-poison", poison_snapshot_after=1
        ),
        "worker-hang": FaultPlan(
            name="worker-hang", hang_every=3, hang_seconds=0.0005
        ),
        "flaky-store": FaultPlan(name="flaky-store", store_fail_every=2),
        "memory-hog": FaultPlan(
            name="memory-hog", hog_every=4, hog_bytes=1 << 16
        ),
        "stale-decl-table": FaultPlan(
            name="stale-decl-table", stale_decl_table=1
        ),
    }


def poison_candidate_plan(
    digest: str, *, kind: str = "hard-exit", name: str = "poison-candidate"
) -> FaultPlan:
    """A plan that kills any worker checking one specific candidate.

    ``digest`` is the candidate's structural digest
    (``key_digest(keyer(program))``); matching is by content, so the
    crash reproduces on every retry — the shape bisection quarantine
    exists for.  Never added to :func:`standard_fault_plans`: the default
    "hard-exit" kind run in-process would kill the test runner; route it
    into pool workers via ``SearchConfig.worker_fault_plan``.
    """
    return FaultPlan(name=name, poison_digest=digest, poison_kind=kind)


#: Template for :attr:`ChaosOracle.injected` (one key per fault family).
_INJECTED_ZERO: Dict[str, int] = {
    "crash": 0, "latency": 0, "cache": 0, "snapshot": 0,
    "hang": 0, "poison": 0, "hog": 0, "stale": 0,
}


class _PoisonedSnapshot:
    """Wraps a real snapshot: still *matches* candidates (so the oracle
    takes the incremental path) but explodes the moment inference touches
    any of its state — exactly the shape of a corrupted-snapshot bug."""

    __slots__ = ("_inner",)

    def __init__(self, inner):
        object.__setattr__(self, "_inner", inner)

    def matches(self, program) -> bool:
        return object.__getattribute__(self, "_inner").matches(program)

    def __getattr__(self, name):
        raise SnapshotPoisoned(f"poisoned snapshot attribute access: {name!r}")


class ChaosOracle(Oracle):
    """An :class:`Oracle` that injects failures per a :class:`FaultPlan`.

    Construct it with the same keyword arguments as :class:`Oracle`
    (budget, cache, metrics, ...) plus the plan; pass it to
    ``explain(..., oracle=...)``.  Injected-fault counts are exposed in
    :attr:`injected` (reset per search, like the oracle's own counters).
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        sleep: Callable[[float], None] = time.sleep,
        **oracle_kwargs,
    ):
        super().__init__(**oracle_kwargs)
        self.plan = plan
        self._sleep = sleep
        self._rng = random.Random(plan.seed)
        self._ballast: list = []
        self.injected: Dict[str, int] = dict(_INJECTED_ZERO)

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.plan.seed)
        self._ballast = []
        self.injected = dict(_INJECTED_ZERO)

    def _poison_match(self, program) -> bool:
        from repro.store.fingerprint import key_digest

        try:
            return key_digest(self._key(program)) == self.plan.poison_digest
        except Exception:
            return False

    def _check_once(self, program):
        # ``check`` has already incremented ``calls``, so the schedule
        # counter n is 1-based: "every Nth" fires on calls N, 2N, ...
        n = self.calls
        plan = self.plan
        if plan.latency_every and n % plan.latency_every == 0:
            self.injected["latency"] += 1
            self._sleep(plan.latency_seconds)
        if plan.hang_every and n % plan.hang_every == 0:
            self.injected["hang"] += 1
            self._sleep(plan.hang_seconds)
        if plan.hog_every and n % plan.hog_every == 0:
            self.injected["hog"] += 1
            self._ballast.append(bytearray(plan.hog_bytes))
        if plan.poison_digest is not None and self._poison_match(program):
            self.injected["poison"] += 1
            if plan.poison_kind == "hard-exit":
                os._exit(23)
            raise ChaosCrash(f"[{plan.name}] injected poison-candidate crash")
        if (
            plan.poison_snapshot_after is not None
            and n >= plan.poison_snapshot_after
            and self._snapshot is not None
            and not isinstance(self._snapshot, _PoisonedSnapshot)
        ):
            self.injected["snapshot"] += 1
            self._snapshot = _PoisonedSnapshot(self._snapshot)
        if (
            plan.stale_decl_table
            and n % plan.stale_decl_table == 0
            and self._decl_table is not None
        ):
            # A stale table must *degrade* — every replay refuses its
            # fingerprint verification and re-checks for real — never
            # serve a wrong answer.
            self.injected["stale"] += 1
            self._decl_table.stale = True
        if plan.crash_every and n % plan.crash_every == 0:
            self.injected["crash"] += 1
            if plan.crash_kind == "hard-exit":
                os._exit(23)
            raise plan.crash_exception()
        result = super()._check_once(program)
        if (
            plan.corrupt_cache_every
            and self._cache
            and n % plan.corrupt_cache_every == 0
        ):
            self._corrupt_cache_entry()
        return result

    def _corrupt_cache_entry(self) -> None:
        """Flip the verdict of one seeded-random memo entry in place.

        The corrupted entry is a structurally valid ``CheckResult`` with
        the opposite ``ok`` — the worst *silent* cache failure: the oracle
        confidently serves a wrong answer.  The search must still return a
        well-formed (if wrong) outcome.
        """
        from repro.miniml.infer import CheckResult

        key = self._rng.choice(list(self._cache))
        old = self._cache[key]
        self.injected["cache"] += 1
        self._cache[key] = CheckResult(ok=not old.ok)


class FlakyStore(VerdictStore):
    """A :class:`~repro.store.VerdictStore` whose segment I/O fails on a
    deterministic schedule — the fault route behind the ``flaky-store``
    plan.

    Every ``fail_every``-th segment I/O attempt raises ``OSError``, and
    each failure repeats for ``fail_streak - 1`` further attempts: a
    streak of 1 is a transient blip a single retry absorbs; a streak at
    or past the retry policy's attempt budget exhausts the retry and
    exercises the degrade path (read → segment skipped, write → verdicts
    recomputed by the next process).  The schedule counts attempts
    (retries included), so a given (plan, workload, policy) triple
    replays identically.
    """

    def __init__(
        self,
        path,
        *,
        fail_every: int = 3,
        fail_streak: int = 1,
        fail_reads: bool = True,
        fail_writes: bool = True,
        **store_kwargs,
    ):
        # Fault state must exist before super().__init__, which calls
        # _load() straight into the overridden read seam.
        self._fail_every = max(1, int(fail_every))
        self._fail_streak = max(1, int(fail_streak))
        self._fail_reads = fail_reads
        self._fail_writes = fail_writes
        self._io_ops = 0
        self._streak_left = 0
        self.injected_io_failures = 0
        super().__init__(path, **store_kwargs)

    def _maybe_fail(self, op: str) -> None:
        if op == "read" and not self._fail_reads:
            return
        if op == "write" and not self._fail_writes:
            return
        if self._streak_left:
            self._streak_left -= 1
            self.injected_io_failures += 1
            raise OSError(f"[flaky-store] injected {op} failure (streak)")
        self._io_ops += 1
        if self._io_ops % self._fail_every == 0:
            self._streak_left = self._fail_streak - 1
            self.injected_io_failures += 1
            raise OSError(f"[flaky-store] injected {op} failure #{self._io_ops}")

    def _read_segment_text(self, segment):
        self._maybe_fail("read")
        return super()._read_segment_text(segment)

    def _write_segment_file(self, tmp, final, body):
        self._maybe_fail("write")
        super()._write_segment_file(tmp, final, body)
