"""Generic abstract-syntax-tree infrastructure shared by every language front end.

The SEMINAL search procedure (``repro.core``) is language agnostic: it only
needs to walk an AST, address subtrees by *path*, and rebuild a tree with one
subtree replaced.  Both substrates (``repro.miniml`` and
``repro.cpptemplates``) derive their node classes from :class:`Node`, which
gives them:

* automatic child discovery (any dataclass field holding a ``Node`` or a
  list/tuple of ``Node`` is a child),
* purely functional subtree replacement (:func:`replace_at`),
* source spans and the ``synthetic`` flag used to render the paper's
  ``[[...]]`` wildcard without the type-checker ever knowing about it.

Paths
-----
A path is a tuple of steps.  Each step is either a field name (``"body"``)
for a direct child, or a ``(field, index)`` pair for a child stored inside a
list field.  The empty tuple addresses the root.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, fields
from typing import Any, Iterator, Optional, Sequence, Tuple, Union

PathStep = Union[str, Tuple[str, int]]
Path = Tuple[PathStep, ...]


@dataclass(eq=False)
class Span:
    """A half-open region of source text, 1-based line/column for display."""

    start_line: int = 0
    start_col: int = 0
    end_line: int = 0
    end_col: int = 0
    start_offset: int = 0
    end_offset: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.start_line}:{self.start_col}-{self.end_line}:{self.end_col})"

    def covers(self, other: "Span") -> bool:
        """Whether this span textually encloses ``other``."""
        return (
            self.start_offset <= other.start_offset
            and other.end_offset <= self.end_offset
        )


class Node:
    """Base class for all AST nodes of every mini-language.

    Concrete nodes are ``@dataclass(eq=False)`` subclasses; equality is
    object identity so nodes can key dictionaries during search.  Structural
    equality, when needed, goes through :func:`structurally_equal`.

    Attributes set outside the dataclass machinery (class-level defaults so
    subclasses need not repeat them):

    ``span``
        Source location, filled in by parsers; ``None`` for synthesized nodes.
    ``synthetic``
        True for nodes the *searcher* created (the ``raise Foo`` wildcard and
        the ``adapt`` wrapper).  The type-checker ignores this flag entirely;
        only message rendering consults it, preserving the paper's
        "no change to the type-checker" property.
    """

    span: Optional[Span] = None
    synthetic: bool = False

    def child_items(self) -> Iterator[Tuple[PathStep, "Node"]]:
        """Yield ``(step, child)`` for every direct AST child, in field order."""
        for name in _field_names(self.__class__):
            value = getattr(self, name)
            if isinstance(value, Node):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Node):
                        yield (name, i), item

    def children(self) -> list["Node"]:
        """All direct AST children, in field order.

        Built directly from the cached per-class field layout: this runs
        once per node inside the depth probe and the keyer, where the
        generator round-trip through :meth:`child_items` is measurable.
        """
        out: list["Node"] = []
        for name in _field_names(self.__class__):
            value = getattr(self, name)
            if isinstance(value, Node):
                out.append(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        out.append(item)
        return out

    def with_child(self, step: PathStep, new_child: "Node") -> "Node":
        """Return a shallow copy of this node with one child replaced."""
        if isinstance(step, str):
            return dataclasses.replace(self, **{step: new_child})  # type: ignore[type-var]
        field_name, index = step
        seq = list(getattr(self, field_name))
        seq[index] = new_child
        value: Any = tuple(seq) if isinstance(getattr(self, field_name), tuple) else seq
        return dataclasses.replace(self, **{field_name: value})  # type: ignore[type-var]


def get_at(root: Node, path: Path) -> Node:
    """Return the node addressed by ``path`` (the root for the empty path)."""
    node = root
    for step in path:
        if isinstance(step, str):
            node = getattr(node, step)
        else:
            field_name, index = step
            node = getattr(node, field_name)[index]
        if not isinstance(node, Node):
            raise KeyError(f"path step {step!r} does not address a Node")
    return node


def replace_at(root: Node, path: Path, new_node: Node) -> Node:
    """Return a new tree equal to ``root`` with the subtree at ``path`` replaced.

    The original tree is never mutated: nodes along the path are shallow
    copied, everything off the path is shared.  This is what lets the searcher
    cheaply try thousands of candidate programs.
    """
    if not path:
        return new_node
    step, rest = path[0], path[1:]
    child = get_at(root, (step,))
    return root.with_child(step, replace_at(child, rest, new_node))


def walk(root: Node, path: Path = ()) -> Iterator[Tuple[Path, Node]]:
    """Pre-order traversal yielding ``(path, node)`` for every node."""
    yield path, root
    for step, child in root.child_items():
        yield from walk(child, path + (step,))


def find_path(root: Node, target: Node) -> Optional[Path]:
    """Locate ``target`` (by identity) inside ``root``; ``None`` if absent."""
    for path, node in walk(root):
        if node is target:
            return path
    return None


def node_size(root: Node) -> int:
    """Number of nodes in the subtree — the ranker's notion of change size."""
    return sum(1 for _ in walk(root))


def node_depth(root: Node) -> int:
    """Height of the subtree (a leaf has depth 1).

    Iterative (explicit stack) so it is safe on trees far deeper than the
    interpreter's recursion limit — it is exactly the probe the oracle uses
    to *reject* such trees before recursive inference would trip over them.
    """
    depths: dict = {}
    stack: list = [(root, None)]
    while stack:
        node, children = stack.pop()
        if children is None:
            if id(node) in depths:
                continue
            children = node.children()
            stack.append((node, children))
            for child in children:
                if id(child) not in depths:
                    stack.append((child, None))
        else:
            depth = 1
            for child in children:
                child_depth = depths[id(child)]
                if child_depth >= depth:
                    depth = child_depth + 1
            depths[id(node)] = depth
    return depths[id(root)]


class TreeTooDeep(RuntimeError):
    """A tree exceeded the recursion headroom of a structural operation.

    Raised *instead of* the interpreter's :class:`RecursionError` by
    :func:`structural_key`/:class:`StructuralKeyer` so callers get a
    domain-level "reject this tree" signal rather than a half-unwound
    interpreter state."""


class DepthProbe:
    """Memoized iterative subtree-depth oracle (crash-avoidance pre-check).

    Candidate programs are built with :func:`replace_at`, which shares every
    unchanged subtree with the original program by identity — so, exactly
    like :class:`StructuralKeyer`, memoizing depths by ``id(node)`` makes
    probing a candidate cost O(changed spine) instead of O(program).  The
    oracle consults it before every typecheck to reject candidates deep
    enough to trip Python's recursion limit *inside* inference, where the
    resulting ``RecursionError`` would otherwise surface mid-unification.

    The memo pins nodes (strong references) so ids cannot be recycled;
    call :meth:`clear` between searches to release the pinned trees.
    """

    __slots__ = ("_memo",)

    def __init__(self) -> None:
        self._memo: dict = {}

    def clear(self) -> None:
        self._memo.clear()

    def depth(self, root: Node) -> int:
        memo = self._memo
        entry = memo.get(id(root))
        if entry is not None:
            return entry[1]
        stack: list = [(root, None)]
        while stack:
            node, children = stack.pop()
            if children is None:
                if id(node) in memo:
                    continue
                children = node.children()
                stack.append((node, children))
                for child in children:
                    if id(child) not in memo:
                        stack.append((child, None))
            else:
                depth = 1
                for child in children:
                    child_depth = memo[id(child)][1]
                    if child_depth >= depth:
                        depth = child_depth + 1
                memo[id(node)] = (node, depth)
        return memo[id(root)][1]

    def exceeds(self, root: Node, limit: int) -> bool:
        return self.depth(root) > limit


def structurally_equal(a: Node, b: Node) -> bool:
    """Deep structural equality ignoring spans and the ``synthetic`` flag."""
    if type(a) is not type(b):
        return False
    for f in fields(a):  # type: ignore[arg-type]
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, Node) or isinstance(vb, Node):
            if not (isinstance(va, Node) and isinstance(vb, Node)):
                return False
            if not structurally_equal(va, vb):
                return False
        elif isinstance(va, (list, tuple)) and isinstance(vb, (list, tuple)):
            if len(va) != len(vb):
                return False
            for xa, xb in zip(va, vb):
                if isinstance(xa, Node) and isinstance(xb, Node):
                    if not structurally_equal(xa, xb):
                        return False
                elif isinstance(xa, Node) or isinstance(xb, Node):
                    return False
                elif xa != xb:
                    return False
        elif va != vb:
            return False
    return True


class HCKey:
    """A hash-consed structural key: one interned node per distinct subtree.

    ``parts`` holds one level of the classic nested-tuple structural key —
    the node's class name followed by one entry per dataclass field: a
    child :class:`HCKey` for node fields, a tuple of element keys for list
    fields, and a ``("#", value)`` pair for scalars.  Two properties make
    this the cheap currency of the whole search pipeline:

    * the hash is computed once at construction, so every later dict
      operation (dedup memo, oracle cache, decl-table lookups) costs O(1)
      instead of re-hashing the whole subtree — CPython does not cache
      tuple hashes, so the old nested-tuple keys paid O(subtree) on every
      lookup;
    * keys from one interner (:class:`StructuralKeyer` or one
      :func:`structural_key` call) are unique per content, so equality is
      usually a pointer comparison; across interners (and across process
      boundaries) it falls back to structural comparison, so a hash
      collision can never alias two different candidates.

    ``digest`` is a content-based Merkle digest: a shared subtree's digest
    is computed once and reused, making persistent-store addressing
    (:func:`repro.store.fingerprint.key_digest`) O(1) amortized per node.
    """

    __slots__ = ("parts", "_hash", "_digest")

    def __init__(self, parts: Tuple) -> None:
        self.parts = parts
        self._hash = hash(parts)
        self._digest: Optional[str] = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is HCKey:
            return self._hash == other._hash and self.parts == other.parts
        return NotImplemented

    def __reduce__(self):
        # Rebuild (rather than ship slot state) so the hash is recomputed
        # in the receiving process — per-process hash randomization makes
        # a shipped hash value meaningless there.
        return (HCKey, (self.parts,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HCKey({self.parts[0]}, digest={self.digest[:12]})"

    @property
    def digest(self) -> str:
        """Deterministic content digest (stable across processes/runs)."""
        d = self._digest
        if d is None:
            h = hashlib.sha256()
            for part in self.parts:
                if type(part) is HCKey:
                    h.update(b"K")
                    h.update(part.digest.encode())
                elif type(part) is tuple and not (
                    len(part) == 2 and part[0] == "#"
                ):
                    h.update(b"L(")
                    for element in part:
                        if type(element) is HCKey:
                            h.update(b"K")
                            h.update(element.digest.encode())
                        else:
                            h.update(repr(element).encode())
                        h.update(b",")
                    h.update(b")")
                else:
                    h.update(repr(part).encode())
                h.update(b";")
            d = h.hexdigest()[:32]
            self._digest = d
        return d


def structural_key(root: Node) -> HCKey:
    """A hashable key capturing the structure the type-checker sees.

    Two trees get equal keys iff they are :func:`structurally_equal`
    (spans and the ``synthetic`` flag are ignored — they are not dataclass
    fields).  The key is a hash-consed :class:`HCKey` tree mirroring the
    AST: class name first, then one entry per dataclass field — a sub-key
    for node fields, a tuple of element keys for list fields, and a
    ``("#", value)`` pair for scalars (the tag keeps a scalar from
    imitating a node key).  Being a real key (not a bare hash), dictionary
    lookups still compare structurally on hash collision, so a collision
    can never return a wrong cached answer.  For repeated keying of
    programs that share subtrees, use :class:`StructuralKeyer`.

    Trees too deep to key recursively raise :class:`TreeTooDeep` rather
    than leaking the interpreter's :class:`RecursionError`.
    """
    return StructuralKeyer()(root)


class StructuralKeyer:
    """:func:`structural_key` with an identity memo and hash-cons interning.

    The searcher's candidates are built with :func:`replace_at`, which
    shares every unchanged subtree with the original program by object
    identity.  Memoizing subtree keys by ``id(node)`` therefore makes
    keying a candidate cost O(changed spine) instead of O(program) — the
    point of switching the oracle cache off pretty-printed-source keys.
    On top of the identity memo, subtree keys are *interned by content*:
    two structurally equal subtrees (however they were built) map to the
    same :class:`HCKey` object, so the rebuilt spine nodes of every
    candidate share all unchanged child keys and downstream consumers
    compare keys by pointer.

    The memo pins each node (strong reference) so an ``id`` can never be
    recycled for a different object while cached.  Sound as long as nodes
    are treated immutably between :meth:`clear` calls, which is how the
    whole search pipeline operates (``span``/``synthetic`` mutations do
    not participate in keys).  Call :meth:`clear` between searches to
    release the pinned trees.
    """

    __slots__ = ("_memo", "_intern")

    def __init__(self) -> None:
        self._memo: dict = {}
        self._intern: dict = {}

    def clear(self) -> None:
        self._memo.clear()
        self._intern.clear()

    @property
    def interned(self) -> int:
        """How many distinct subtrees this keyer has interned so far."""
        return len(self._memo)

    def __call__(self, root: Node) -> HCKey:
        try:
            return self._key(root)
        except RecursionError:
            raise TreeTooDeep(
                "tree is too deeply nested to compute a structural key"
            ) from None

    def _key(self, root: Node) -> HCKey:
        memo = self._memo
        entry = memo.get(id(root))
        if entry is not None:
            return entry[1]
        parts: list = [root.__class__.__name__]
        append = parts.append
        for name in _field_names(root.__class__):
            value = getattr(root, name)
            if isinstance(value, Node):
                append(self._key(value))
            elif isinstance(value, (list, tuple)):
                append(
                    tuple(
                        self._key(element) if isinstance(element, Node) else ("#", element)
                        for element in value
                    )
                )
            else:
                append(("#", value))
        parts_t = tuple(parts)
        key = self._intern.get(parts_t)
        if key is None:
            key = HCKey(parts_t)
            self._intern[parts_t] = key
        memo[id(root)] = (root, key)
        return key


#: ``dataclasses.fields`` is surprisingly costly per call; the field layout
#: of a node class never changes, so cache the names per class.
_FIELD_NAMES: dict = {}


def _field_names(cls: type) -> Tuple[str, ...]:
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in fields(cls))
        _FIELD_NAMES[cls] = names
    return names


def copy_tree(root: Node) -> Node:
    """Deep copy of an AST (spans shared, node objects fresh)."""
    replacements = {}
    for step, child in root.child_items():
        replacements[step] = copy_tree(child)
    node = root
    for step, child in replacements.items():
        node = node.with_child(step, child)
    if node is root:  # leaf: force a fresh object
        node = dataclasses.replace(root)  # type: ignore[type-var]
        node.span = root.span
        node.synthetic = root.synthetic
    return node


def mark_synthetic(node: Node) -> Node:
    """Flag a node (in place) as searcher-created and return it."""
    node.synthetic = True
    return node


def spanned(node: Node, span: Optional[Span]) -> Node:
    """Attach a span (in place) and return the node, for parser convenience."""
    node.span = span
    return node


def ancestor_paths(path: Path) -> Iterator[Path]:
    """Yield every proper prefix of ``path``, longest first (excluding itself)."""
    for i in range(len(path) - 1, -1, -1):
        yield path[:i]
