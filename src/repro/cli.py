"""Command-line interface: ``python -m repro [options] file``.

Plays the role of the compiler wrapper in the paper's Figure 1: files that
type-check pass straight through; ill-typed files get the conventional
message *and* the ranked search suggestions.  ``--fix`` additionally applies
the top suggestion(s) and prints the patched source (the quick-fix flow).

MiniML is assumed for ``.ml`` files; ``--cpp`` (or a ``.cpp``/``.cc``
extension) selects the MiniCpp front end.

Observability (see :mod:`repro.obs`): ``--trace out.json`` records a
Perfetto-loadable span trace of the whole search, ``--metrics`` prints the
full counter/histogram table, ``--cache`` turns on the oracle memo cache
(whose hit/miss counts then show up under ``--stats``/``--metrics``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence, Tuple


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Search-based type-error messages (SEMINAL, PLDI 2007).",
    )
    parser.add_argument("file", help="source file (.ml for MiniML, .cpp for MiniCpp)")
    parser.add_argument("--cpp", action="store_true", help="treat the input as MiniCpp")
    parser.add_argument("--top", type=int, default=3, metavar="N",
                        help="number of suggestions to print (default 3)")
    parser.add_argument("--no-triage", action="store_true",
                        help="disable triage (the paper's Section 3 baseline)")
    parser.add_argument("--checker-only", action="store_true",
                        help="print only the conventional type-checker message")
    parser.add_argument("--fix", action="store_true",
                        help="apply suggestions until the program type-checks "
                             "and print the patched source (MiniML only)")
    parser.add_argument("--max-calls", type=int, default=20000, metavar="N",
                        help="oracle-call budget (default 20000)")
    parser.add_argument("--stats", action="store_true",
                        help="print oracle-call statistics")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome/Perfetto trace of the search "
                             "(open at https://ui.perfetto.dev)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the full telemetry counter table")
    parser.add_argument("--cache", action="store_true",
                        help="memoize oracle results by structural key "
                             "(hit/miss counts appear under --stats)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="disable prefix-reuse incremental typechecking: "
                             "re-infer every candidate from the empty "
                             "environment (escape hatch / benchmarking)")
    return parser


def _telemetry(args: argparse.Namespace) -> Tuple[object, object]:
    """Build the (tracer, metrics) pair the flags ask for (else nulls)."""
    from repro.obs import NULL_METRICS, NULL_TRACER, MetricsRegistry, Tracer

    metrics = MetricsRegistry() if (args.metrics or args.stats) else NULL_METRICS
    tracer = Tracer(metrics=metrics if metrics is not NULL_METRICS else None) \
        if args.trace else NULL_TRACER
    return tracer, metrics


def _emit_telemetry(args: argparse.Namespace, tracer, metrics) -> None:
    """Write the trace file / print the metrics table after a run."""
    from repro.obs import NULL_TRACER

    if args.trace and tracer is not NULL_TRACER:
        tracer.write(args.trace)
        print(f"[trace written to {args.trace} — open at https://ui.perfetto.dev]",
              file=sys.stderr)
    if args.metrics:
        print(metrics.render_table(title="telemetry"), file=sys.stderr)


def _run_miniml(source: str, args: argparse.Namespace) -> int:
    from repro.core import Oracle, explain, fix_all
    from repro.obs import NULL_METRICS

    tracer, metrics = _telemetry(args)
    oracle = None
    if args.cache:
        oracle = Oracle(
            max_calls=args.max_calls,
            cache=True,
            incremental=not args.no_incremental,
            metrics=metrics if metrics is not NULL_METRICS else None,
        )
    telemetry_kwargs = dict(tracer=tracer, metrics=metrics, oracle=oracle)

    if args.fix:
        result = fix_all(
            source,
            enable_triage=not args.no_triage,
            incremental=not args.no_incremental,
            max_oracle_calls=args.max_calls,
            **telemetry_kwargs,
        )
        for step in result.applied:
            print(f"applied: {step}")
        print()
        print(result.source, end="" if result.source.endswith("\n") else "\n")
        _emit_telemetry(args, tracer, metrics)
        if result.ok:
            print("-- the program now type-checks", file=sys.stderr)
            return 0
        print("-- could not fully repair the program", file=sys.stderr)
        return 1

    result = explain(
        source,
        enable_triage=not args.no_triage,
        incremental=not args.no_incremental,
        max_oracle_calls=args.max_calls,
        **telemetry_kwargs,
    )
    if result.ok:
        print("The program type-checks.")
        from repro.miniml import match_warnings_source

        for warning in match_warnings_source(source):
            print(warning.render())
        _emit_telemetry(args, tracer, metrics)
        return 0
    print("Type-checker:")
    print("    " + (result.checker_message or "").replace("\n", "\n    "))
    if not args.checker_only:
        print()
        print("Search suggestions:")
        print("    " + result.render(limit=args.top).replace("\n", "\n    "))
    if args.stats:
        print(f"\n[{result.oracle_calls} oracle calls"
              + (", budget exhausted" if result.budget_exhausted else "") + "]",
              file=sys.stderr)
        if result.stats is not None:
            print(result.stats.summary(), file=sys.stderr)
        hits = metrics.value("oracle.cache.hits")
        misses = metrics.value("oracle.cache.misses")
        cache_note = "" if args.cache else " (cache disabled; enable with --cache)"
        print(f"oracle cache: {hits} hits, {misses} misses{cache_note}",
              file=sys.stderr)
        reused = metrics.value("oracle.prefix.reused")
        full = metrics.value("oracle.full_checks")
        incr_note = (" (disabled with --no-incremental)"
                     if args.no_incremental else "")
        print(f"oracle prefix reuse: {reused} incremental, {full} full checks"
              f"{incr_note}", file=sys.stderr)
    _emit_telemetry(args, tracer, metrics)
    return 1


def _run_cpp(source: str, args: argparse.Namespace) -> int:
    from repro.cpptemplates import explain_cpp

    tracer, metrics = _telemetry(args)
    result = explain_cpp(
        source, max_checker_calls=args.max_calls, tracer=tracer, metrics=metrics
    )
    if result.ok:
        print("The program compiles.")
        _emit_telemetry(args, tracer, metrics)
        return 0
    print("Compiler errors:")
    print("    " + result.check.render(args.file).replace("\n", "\n    "))
    if not args.checker_only:
        print()
        print("Search suggestions:")
        for i, suggestion in enumerate(result.suggestions[: args.top], start=1):
            print(f"    {i}. " + suggestion.render().replace("\n", "\n       "))
        if not result.suggestions:
            print("    (none found)")
    if args.stats:
        print(f"\n[{result.checker_calls} compiler calls]", file=sys.stderr)
    _emit_telemetry(args, tracer, metrics)
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    path = pathlib.Path(args.file)
    try:
        source = path.read_text()
    except OSError as err:
        print(f"error: cannot read {args.file}: {err}", file=sys.stderr)
        return 2
    is_cpp = args.cpp or path.suffix in (".cpp", ".cc", ".cxx", ".C")
    try:
        if is_cpp:
            return _run_cpp(source, args)
        return _run_miniml(source, args)
    except Exception as err:  # parse errors etc.
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
